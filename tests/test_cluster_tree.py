"""Tests for the KD cluster tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ClusterTree, uniform_cube_points


class TestStructure:
    def test_basic_shape(self, tree_2d, points_2d):
        assert tree_2d.num_points == points_2d.shape[0]
        assert tree_2d.dim == 2
        assert tree_2d.num_nodes == (1 << (tree_2d.depth + 1)) - 1

    def test_validate(self, tree_2d):
        tree_2d.validate()

    def test_root_covers_everything(self, tree_2d):
        assert tree_2d.starts[0] == 0
        assert tree_2d.ends[0] == tree_2d.num_points

    def test_permutation_is_permutation(self, tree_2d):
        assert np.array_equal(np.sort(tree_2d.perm), np.arange(tree_2d.num_points))
        assert np.array_equal(tree_2d.perm[tree_2d.iperm], np.arange(tree_2d.num_points))

    def test_points_are_permuted_original(self, points_2d, tree_2d):
        assert np.allclose(tree_2d.points, points_2d[tree_2d.perm])

    def test_children_partition_parent(self, tree_2d):
        for node in range(tree_2d.num_nodes):
            if tree_2d.is_leaf(node):
                continue
            left, right = tree_2d.children(node)
            assert tree_2d.starts[left] == tree_2d.starts[node]
            assert tree_2d.ends[left] == tree_2d.starts[right]
            assert tree_2d.ends[right] == tree_2d.ends[node]

    def test_leaf_sizes_within_bound(self, tree_2d):
        sizes = tree_2d.leaf_cluster_sizes()
        assert max(sizes) <= tree_2d.leaf_size
        assert min(sizes) >= 1

    def test_levels(self, tree_2d):
        total = 0
        for level in range(tree_2d.num_levels):
            nodes = list(tree_2d.nodes_at_level(level))
            assert len(nodes) == tree_2d.num_nodes_at_level(level) == 2**level
            for node in nodes:
                assert tree_2d.level_of(node) == level
            total += len(nodes)
        assert total == tree_2d.num_nodes

    def test_parent_child_roundtrip(self, tree_2d):
        for node in range(1, tree_2d.num_nodes):
            parent = tree_2d.parent(node)
            assert node in tree_2d.children(parent)

    def test_parent_of_root_raises(self, tree_2d):
        with pytest.raises(ValueError):
            tree_2d.parent(0)

    def test_children_of_leaf_raises(self, tree_2d):
        leaf = next(iter(tree_2d.leaves()))
        with pytest.raises(ValueError):
            tree_2d.children(leaf)

    def test_index_set_matches_range(self, tree_2d):
        for node in (0, 1, tree_2d.num_nodes - 1):
            idx = tree_2d.index_set(node)
            assert idx[0] == tree_2d.starts[node]
            assert idx[-1] == tree_2d.ends[node] - 1
            assert len(idx) == tree_2d.cluster_size(node)

    def test_bounding_boxes_contain_points(self, tree_2d):
        for node in range(tree_2d.num_nodes):
            pts = tree_2d.cluster_points(node)
            assert np.all(pts >= tree_2d.box_low[node] - 1e-12)
            assert np.all(pts <= tree_2d.box_high[node] + 1e-12)

    def test_distance_and_diameter_consistency(self, tree_2d):
        # sibling leaves should be closer than far-apart leaves on average
        assert tree_2d.distance(1, 2) <= tree_2d.diameter(0)
        assert tree_2d.diameter(0) >= tree_2d.diameter(1)

    def test_iter_levels_bottom_up(self, tree_2d):
        levels = list(tree_2d.iter_levels_bottom_up())
        assert levels == list(range(tree_2d.depth, 0, -1))

    def test_level_sizes_sum_to_n(self, tree_2d):
        for level in range(tree_2d.num_levels):
            assert tree_2d.level_sizes(level).sum() == tree_2d.num_points

    def test_describe(self, tree_2d):
        text = tree_2d.describe()
        assert "ClusterTree" in text and str(tree_2d.num_points) in text


class TestBuildEdgeCases:
    def test_single_leaf_tree(self):
        pts = uniform_cube_points(10, dim=2, seed=0)
        tree = ClusterTree.build(pts, leaf_size=64)
        assert tree.depth == 0
        assert tree.num_nodes == 1
        assert tree.is_leaf(0)

    def test_non_power_of_two(self):
        pts = uniform_cube_points(777, dim=3, seed=1)
        tree = ClusterTree.build(pts, leaf_size=50)
        tree.validate()
        assert sum(tree.leaf_cluster_sizes()) == 777

    def test_leaf_size_one(self):
        pts = uniform_cube_points(17, dim=2, seed=3)
        tree = ClusterTree.build(pts, leaf_size=1)
        tree.validate()
        assert max(tree.leaf_cluster_sizes()) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ClusterTree.build(np.zeros((0, 3)), leaf_size=4)
        with pytest.raises(ValueError):
            ClusterTree.build(uniform_cube_points(10), leaf_size=0)

    def test_one_dimensional_points(self):
        pts = np.linspace(0, 1, 100)[:, None]
        tree = ClusterTree.build(pts, leaf_size=10)
        tree.validate()
        # 1D median splits should produce contiguous, ordered leaves
        leaf_mins = [tree.cluster_points(leaf).min() for leaf in tree.leaves()]
        assert leaf_mins == sorted(leaf_mins)

    def test_duplicate_points(self):
        pts = np.ones((64, 3))
        tree = ClusterTree.build(pts, leaf_size=8)
        tree.validate()
        assert sum(tree.leaf_cluster_sizes()) == 64

    @given(
        n=st.integers(min_value=2, max_value=300),
        dim=st.integers(min_value=1, max_value=3),
        leaf=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_structural_invariants(self, n, dim, leaf, seed):
        pts = uniform_cube_points(n, dim=dim, seed=seed)
        tree = ClusterTree.build(pts, leaf_size=leaf)
        tree.validate()
        assert max(tree.leaf_cluster_sizes()) <= leaf
        assert sum(tree.leaf_cluster_sizes()) == n
        # sibling sizes differ by at most one (median split)
        for node in range(tree.num_nodes):
            if not tree.is_leaf(node):
                left, right = tree.children(node)
                assert abs(tree.cluster_size(left) - tree.cluster_size(right)) <= 1

"""Tests for repro.observe: spans, tracers, metrics, exporters and the
trace-backed diagnostics views.

The integration tests run one traced ``Session`` pipeline (compress → factor →
solve → GP evaluate) and check the acceptance contract: per-span launch deltas
sum exactly to the policy counter totals, phase spans reproduce the legacy
``PhaseBreakdown`` numbers exactly, and the exporters emit valid output.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

import repro
from repro import (
    ExecutionPolicy,
    ExponentialKernel,
    KernelLaunchCounter,
    Session,
    SpanTracer,
    uniform_cube_points,
)
from repro.diagnostics import PhaseBreakdown, phase_breakdown
from repro.diagnostics.apply_report import ApplyReport, apply_report
from repro.observe import (
    Histogram,
    MetricsRegistry,
    NOOP_TRACER,
    console_tree,
    find_spans,
    from_jsonl,
    launches_by_operation,
    phase_seconds,
    to_chrome_trace,
    to_jsonl,
    total_launches,
)

N = 256
LEAF = 32


def fresh_tracer(counter=None):
    """A tracer with a private metrics registry (keeps the global one clean)."""
    return SpanTracer(counter=counter, metrics=MetricsRegistry())


# ---------------------------------------------------------------------- spans
class TestSpanNesting:
    def test_nesting_and_launch_attribution(self):
        counter = KernelLaunchCounter()
        tracer = fresh_tracer(counter)
        with tracer.span("outer", category="test") as outer:
            counter.record("gemm", 3)
            with tracer.span("inner", category="test") as inner:
                assert tracer.current is inner
                counter.record("gemm", 2)
                counter.record("qr", 1)
            counter.record("gemm", 1)
        assert tracer.current is None
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent is outer
        # Deltas are inclusive: outer covers its own records plus inner's.
        assert outer.launches == {"gemm": 6, "qr": 1}
        assert inner.launches == {"gemm": 2, "qr": 1}
        assert outer.total_launches == 7
        assert outer.self_launches == 4
        assert inner.self_launches == 3
        # Calls count batched-primitive invocations, not shape groups.
        assert outer.calls == {"gemm": 3, "qr": 1}
        assert inner.calls == {"gemm": 1, "qr": 1}

    def test_durations_nest(self):
        tracer = fresh_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.002)
        assert outer.closed and inner.closed
        assert inner.duration > 0.0
        assert outer.duration >= inner.duration
        assert outer.self_duration >= 0.0
        assert outer.self_duration == pytest.approx(
            outer.duration - inner.duration
        )

    def test_open_span_reports_zero_duration(self):
        tracer = fresh_tracer()
        with tracer.span("outer") as outer:
            assert not outer.closed
            assert outer.duration == 0.0
        assert outer.closed

    def test_exception_marks_span(self):
        tracer = fresh_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.closed
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.current is None

    def test_events_and_attributes(self):
        tracer = fresh_tracer()
        tracer.event("orphan", detail=1)
        with tracer.span("work", category="test", n=4) as span:
            span.set(extra="yes").add_flops(100)
            span.add_bytes(64)
            tracer.event("tick", step=1)
            tracer.add_flops(20)
            tracer.add_bytes(16)
        assert [event.name for event in tracer.orphan_events] == ["orphan"]
        assert span.attributes == {"n": 4, "extra": "yes"}
        assert [event.name for event in span.events] == ["tick"]
        assert span.events[0].attributes == {"step": 1}
        assert span.flops == 120
        assert span.bytes == 80

    def test_walk_and_find(self):
        tracer = fresh_tracer()
        with tracer.span("a", category="x"):
            with tracer.span("b", category="y"):
                pass
            with tracer.span("b", category="x"):
                pass
        (root,) = tracer.roots
        assert [span.name for span in root.walk()] == ["a", "b", "b"]
        assert len(root.find(name="b")) == 2
        assert len(root.find(category="x")) == 2
        assert len(find_spans(tracer, name="b", category="y")) == 1

    def test_reset_clears_spans_not_counter(self):
        counter = KernelLaunchCounter()
        tracer = fresh_tracer(counter)
        with tracer.span("work"):
            counter.record("gemm", 1)
        tracer.reset()
        assert tracer.roots == []
        assert tracer.current is None
        assert counter.total() == 1

    def test_bind_counter_first_wins(self):
        first = KernelLaunchCounter()
        tracer = fresh_tracer(first)
        tracer.bind_counter(KernelLaunchCounter())
        assert tracer.counter is first

    def test_metrics_fed_per_category(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(metrics=registry)
        with tracer.span("work", category="solve"):
            pass
        with tracer.span("bare-name"):
            pass
        assert registry.histogram("span.solve.seconds").count == 1
        assert registry.histogram("span.bare-name.seconds").count == 1


class TestNoopTracer:
    def test_disabled_and_reusable(self):
        assert NOOP_TRACER.enabled is False
        assert NOOP_TRACER.current is None
        ctx_a = NOOP_TRACER.span("anything", category="x", n=1)
        ctx_b = NOOP_TRACER.span("else")
        assert ctx_a is ctx_b  # one cached context: zero allocation per span
        with ctx_a as span:
            assert span.set(a=1) is span
            span.add_event("tick", 0.0)
            span.add_flops(10)
            span.add_bytes(10)
            assert span.duration == 0.0
        NOOP_TRACER.event("ignored")
        NOOP_TRACER.add_flops(5)
        NOOP_TRACER.bind_counter(KernelLaunchCounter())
        NOOP_TRACER.reset()
        assert NOOP_TRACER.counter is None
        assert NOOP_TRACER.roots == []


# -------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.counter("runs").inc(4)
        assert registry.counter("runs").value == 5
        with pytest.raises(ValueError):
            registry.counter("runs").inc(-1)
        registry.gauge("depth").set(3.0)
        registry.gauge("depth").add(-1.0)
        assert registry.gauge("depth").value == 2.0

    def test_histogram_percentiles(self):
        hist = Histogram("lat")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.sum == pytest.approx(5050.0)
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(100.0) == 100.0
        assert hist.p50 == pytest.approx(50.5)
        assert hist.p95 == pytest.approx(95.05)
        assert hist.p99 == pytest.approx(99.01)

    def test_histogram_sliding_window(self):
        hist = Histogram("lat", capacity=8)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100  # exact totals survive the bounded reservoir
        assert hist.max == 99.0
        assert len(hist._samples) == 8
        assert hist.p50 >= 90.0  # reservoir holds the most recent window

    def test_registry_get_or_create_and_snapshot(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        json.dumps(snap)  # must be JSON-safe
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.counter("c").value == 0

    def test_global_registry_accessor(self):
        registry = repro.observe.metrics()
        assert registry is repro.observe.metrics()


# ------------------------------------------------------------------ exporters
def _sample_trace():
    counter = KernelLaunchCounter()
    tracer = fresh_tracer(counter)
    with tracer.span("root", category="test", n=8) as root:
        counter.record("gemm", 2)
        root.add_flops(1000)
        with tracer.span("child", category="test.sub", tag="a") as child:
            counter.record("qr", 1)
            tracer.event("tick", step=1)
            child.add_bytes(256)
    return tracer


class TestExporters:
    def test_jsonl_round_trip(self):
        tracer = _sample_trace()
        text = to_jsonl(tracer)
        assert len(text.splitlines()) == 2
        for line in text.splitlines():
            json.loads(line)
        (root,) = from_jsonl(text)
        original = tracer.roots[0]
        assert root.to_dict() == original.to_dict()
        (child,) = root.children
        assert child.to_dict() == original.children[0].to_dict()
        assert child.parent is root

    def test_jsonl_accepts_span_or_list(self):
        tracer = _sample_trace()
        root = tracer.roots[0]
        assert to_jsonl(root) == to_jsonl(tracer) == to_jsonl([root])
        assert to_jsonl([]) == ""
        assert from_jsonl("") == []

    def test_chrome_trace_schema(self):
        tracer = _sample_trace()
        trace = to_chrome_trace(tracer)
        json.dumps(trace)  # must be valid JSON
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(meta) == 1 and len(complete) == 2 and len(instants) == 1
        by_name = {e["name"]: e for e in complete}
        root, child = by_name["root"], by_name["child"]
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert {"pid", "tid", "cat", "args"} <= set(event)
        assert root["ts"] <= child["ts"]
        assert root["ts"] + root["dur"] >= child["ts"] + child["dur"]
        assert root["args"]["total_launches"] == 3
        assert root["args"]["flops"] == 1000
        assert child["args"]["launches"] == {"qr": 1}

    def test_save_chrome_trace(self, tmp_path):
        tracer = _sample_trace()
        path = repro.observe.save_chrome_trace(tracer, str(tmp_path / "t.json"))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded == json.loads(json.dumps(to_chrome_trace(tracer)))

    def test_console_tree(self):
        tracer = _sample_trace()
        text = console_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "100.0%" in lines[0]
        assert "launches=3" in lines[0]
        assert "launches=1" in lines[1]
        assert "events=1" in lines[1]

    def test_console_tree_min_duration_folds_children(self):
        tracer = _sample_trace()
        text = console_tree(tracer, min_duration=3600.0)
        assert "child" not in text


class TestViews:
    def test_phase_seconds_accumulates(self):
        tracer = fresh_tracer()
        with tracer.span("construct", category="construct"):
            with tracer.span("phase/id", category="construct.phase", phase="id"):
                time.sleep(0.001)
            with tracer.span("phase/id", category="construct.phase", phase="id"):
                time.sleep(0.001)
        seconds = phase_seconds(tracer)
        assert set(seconds) == {"id"}
        spans = find_spans(tracer, category="construct.phase")
        assert seconds["id"] == sum(span.duration for span in spans)

    def test_launch_totals_use_root_deltas(self):
        tracer = _sample_trace()
        assert launches_by_operation(tracer) == {"gemm": 2, "qr": 1}
        assert total_launches(tracer) == 3
        assert total_launches(tracer) == tracer.counter.total()


# ------------------------------------------------- traced pipeline (tentpole)
@pytest.fixture(scope="module")
def traced_session():
    """One fully traced pipeline: compress → factor → solve → GP evaluate."""
    points = uniform_cube_points(N, dim=2, seed=3)
    kernel = ExponentialKernel(0.25)
    policy = ExecutionPolicy(tracer=fresh_tracer())
    sess = Session(points, leaf_size=LEAF, seed=1, policy=policy)
    sess.compress(kernel, tol=1e-6).factor(noise=1e-2)
    solve = sess.solve(np.ones(N), tol=1e-8)
    gp = sess.gp(kernel, noise=1e-2)
    gp.fit(np.sin(points[:, 0] * 5.0), length_scales=[0.2, 0.3])
    return {
        "session": sess,
        "policy": policy,
        "tracer": policy.tracer,
        "solve": solve,
        "gp": gp,
    }


class TestTracedPipeline:
    def test_launch_sums_match_policy_counter_exactly(self, traced_session):
        tracer = traced_session["tracer"]
        counter = traced_session["policy"].launch_counter()
        assert tracer.counter is counter
        assert total_launches(tracer) == counter.total()
        assert launches_by_operation(tracer) == counter.by_operation()
        # Self-attribution partitions the inclusive totals without loss.
        for root in tracer.roots:
            assert sum(s.self_launches for s in root.walk()) == root.total_launches

    def test_construct_span_structure(self, traced_session):
        tracer = traced_session["tracer"]
        # The GP sweep re-constructs under its gp/evaluate spans; the session
        # compress is the only *root* construct span.
        (construct,) = [s for s in tracer.roots if s.name == "construct"]
        assert construct.category == "construct"
        assert construct.attributes["n"] == N
        levels = construct.find(category="construct.level")
        assert len(levels) >= 2
        phases = construct.find(category="construct.phase")
        assert phases, "PhaseTimer should emit phase spans under the tracer"

    def test_phase_breakdown_matches_trace_exactly(self, traced_session):
        result = traced_session["session"].result
        assert result.trace is not None
        legacy = phase_breakdown(result)
        traced = PhaseBreakdown.from_span(result.trace)
        assert traced.seconds == dict(result.phase_seconds)
        assert traced.seconds == legacy.seconds
        assert phase_breakdown(result.trace).seconds == legacy.seconds

    def test_construction_launch_delta_equals_span(self, traced_session):
        result = traced_session["session"].result
        assert dict(result.kernel_launches) == dict(result.trace.launches)
        assert result.total_kernel_launches == result.trace.total_launches

    def test_solver_span_and_iteration_events(self, traced_session):
        tracer = traced_session["tracer"]
        solve = traced_session["solve"]
        # GP evaluations run their own nested CG solves; the session solve is
        # the only root-level solver span.
        (span,) = [s for s in tracer.roots if s.name == "solve/cg"]
        assert span.category == "solve"
        assert span.attributes["iterations"] == solve.iterations
        assert span.attributes["converged"] == solve.converged
        iteration_events = [e for e in span.events if e.name == "iteration"]
        assert len(iteration_events) == solve.iterations
        residuals = [e.attributes["residual"] for e in iteration_events]
        assert residuals == [float(r) for r in solve.residual_norms[1:]]

    def test_factor_and_gp_spans(self, traced_session):
        tracer = traced_session["tracer"]
        factors = find_spans(tracer, name="factor/hodlr")
        assert len(factors) >= 1
        assert factors[0].attributes["n"] == N
        evaluates = find_spans(tracer, category="gp")
        assert len(evaluates) == len(traced_session["gp"].fit_reports_)
        for span in evaluates:
            assert "log_marginal_likelihood" in span.attributes

    def test_chrome_trace_of_full_pipeline_is_valid(self, traced_session):
        trace = to_chrome_trace(traced_session["tracer"])
        text = json.dumps(trace)
        events = json.loads(text)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == sum(
            1 for root in traced_session["tracer"].roots for _ in root.walk()
        )
        tree = console_tree(traced_session["tracer"])
        assert "construct" in tree and "solve/cg" in tree

    def test_jsonl_round_trip_of_full_pipeline(self, traced_session):
        tracer = traced_session["tracer"]
        roots = from_jsonl(to_jsonl(tracer))
        assert len(roots) == len(tracer.roots)
        assert total_launches(roots) == total_launches(tracer)
        assert phase_seconds(roots) == phase_seconds(tracer)


@pytest.fixture(scope="module")
def apply_matrix():
    points = uniform_cube_points(N, dim=2, seed=7)
    return repro.compress(
        points, ExponentialKernel(0.25), tol=1e-6, leaf_size=LEAF, seed=1
    )


class TestApplyReportFromSpan:
    def test_matches_dedicated_measurement(self, apply_matrix):
        matrix = apply_matrix
        legacy = apply_report(matrix, backend="vectorized", k=2, repeats=1)
        tracer = fresh_tracer()
        policy = ExecutionPolicy(tracer=tracer)
        backend = policy.resolve_backend()
        x = np.random.default_rng(0).standard_normal((matrix.num_rows, 2))
        matrix.matvec(x, backend=backend)
        (span,) = find_spans(tracer, name="apply")
        report = ApplyReport.from_span(span)
        assert report.n == legacy.n
        assert report.k == legacy.k == 2
        assert report.backend == legacy.backend
        assert report.levels == legacy.levels
        assert report.launches_per_apply == legacy.launches_per_apply
        assert report.launches_by_phase == legacy.launches_by_phase
        assert report.block_products == legacy.block_products
        assert report.flops_per_apply == legacy.flops_per_apply
        assert report.operand_bytes == legacy.operand_bytes
        assert report.seconds_per_apply > 0.0
        assert report.gflops > 0.0

    def test_traced_apply_matches_untraced_result(self, apply_matrix):
        x = np.random.default_rng(1).standard_normal(apply_matrix.num_rows)
        policy = ExecutionPolicy(tracer=fresh_tracer())
        traced = apply_matrix.matvec(x, backend=policy.resolve_backend())
        untraced = apply_matrix.matvec(x)
        np.testing.assert_array_equal(traced, untraced)


# ---------------------------------------------------------- policy/facade wiring
class TestPolicyWiring:
    def test_default_policy_uses_noop_tracer(self):
        policy = ExecutionPolicy(backend="serial")
        assert policy.tracer is NOOP_TRACER
        backend = policy.resolve_backend()
        assert backend.tracer is NOOP_TRACER

    def test_resolve_binds_tracer_and_counter(self):
        tracer = fresh_tracer()
        policy = ExecutionPolicy(backend="serial", tracer=tracer)
        backend = policy.resolve_backend()
        assert backend.tracer is tracer
        assert tracer.counter is backend.counter
        assert policy.launch_counter() is tracer.counter

    def test_tracer_with_preexisting_counter_is_shared(self):
        counter = KernelLaunchCounter()
        tracer = fresh_tracer(counter)
        policy = ExecutionPolicy(backend="serial", tracer=tracer)
        backend = policy.resolve_backend()
        assert backend.counter is counter

    def test_counter_kwarg_is_deprecated_but_works(self):
        counter = KernelLaunchCounter()
        with pytest.warns(DeprecationWarning, match="counter"):
            policy = ExecutionPolicy(backend="serial", counter=counter)
        assert policy.resolve_backend().counter is counter

    def test_with_backend_keeps_tracer(self):
        tracer = fresh_tracer()
        policy = ExecutionPolicy(backend="serial", tracer=tracer)
        assert policy.with_backend("vectorized").tracer is tracer


# ------------------------------------------------------------------- overhead
@pytest.mark.slow
class TestTracingOverhead:
    def test_disabled_tracing_overhead_below_bound(self):
        """Acceptance: untraced matvec through execute() stays within 2% of
        the raw apply body at N=8192 (knob: REPRO_TRACE_OVERHEAD_MAX)."""
        from repro.batched.backend import get_backend

        n = 8192
        points = uniform_cube_points(n, dim=2, seed=5)
        matrix = repro.compress(points, ExponentialKernel(0.2), tol=1e-6, seed=1)
        plan = matrix.apply_plan()
        backend = get_backend("vectorized")
        assert not backend.tracer.enabled
        x = np.random.default_rng(0).standard_normal((n, 1))

        def best_of(fn, repeats=7):
            best = np.inf
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        plan.execute(x, backend=backend)  # warm both paths
        plan._execute(x, backend)
        baseline = best_of(lambda: plan._execute(x, backend))
        guarded = best_of(lambda: plan.execute(x, backend=backend))
        bound = float(os.environ.get("REPRO_TRACE_OVERHEAD_MAX", "1.02"))
        assert guarded <= baseline * bound, (
            f"disabled-tracing overhead {guarded / baseline:.4f}x "
            f"exceeds bound {bound}x"
        )


# -------------------------------------------------------------- thread safety
class TestMetricsThreadSafety:
    """The serving layer mutates instruments from worker threads; hammer the
    registry concurrently and check the totals are exact."""

    WORKERS = 8
    OPS = 2000

    def test_concurrent_instrument_hammer(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(self.WORKERS)
        errors = []

        def worker():
            try:
                barrier.wait()
                for i in range(self.OPS):
                    registry.counter("hammer.count").inc()
                    registry.gauge("hammer.gauge").add(1.0)
                    hist = registry.histogram("hammer.lat", capacity=64)
                    hist.observe(float(i))
                    if i % 128 == 0:
                        # concurrent reads must never see torn state
                        hist.percentile(95.0)
                        registry.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker) for _ in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        total = self.WORKERS * self.OPS
        assert registry.counter("hammer.count").value == total
        assert registry.gauge("hammer.gauge").value == float(total)
        hist = registry.histogram("hammer.lat")
        assert hist.count == total
        assert hist.sum == pytest.approx(self.WORKERS * sum(range(self.OPS)))
        assert len(hist._samples) == 64  # reservoir never overfills
        assert np.isfinite(hist.p99)

    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(self.WORKERS)
        seen = []

        def worker():
            barrier.wait()
            seen.append(
                (
                    registry.counter("only.one"),
                    registry.gauge("only.one"),
                    registry.histogram("only.one"),
                )
            )

        threads = [
            threading.Thread(target=worker) for _ in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        counters, gauges, histograms = zip(*seen)
        assert len({id(c) for c in counters}) == 1
        assert len({id(g) for g in gauges}) == 1
        assert len({id(h) for h in histograms}) == 1

"""Tests for sketching operators and entry extractors."""

import numpy as np
import pytest

from repro import (
    DenseEntryExtractor,
    DenseOperator,
    H2EntryExtractor,
    H2Operator,
    KernelEntryExtractor,
    KernelLaunchCounter,
    KernelMatVecOperator,
    LowRankEntryExtractor,
    LowRankOperator,
    SumEntryExtractor,
    SumOperator,
    random_low_rank,
)


class TestOperators:
    def test_dense_operator_multiply(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        rng = np.random.default_rng(0)
        omega = rng.standard_normal((op.n, 4))
        assert np.allclose(op.multiply(omega), dense_cov_2d @ omega)

    def test_statistics_tracking(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        rng = np.random.default_rng(1)
        op.multiply(rng.standard_normal((op.n, 3)))
        op.multiply(rng.standard_normal((op.n, 5)))
        assert op.samples_taken == 8
        assert op.applications == 2
        op.reset_statistics()
        assert op.samples_taken == 0 and op.applications == 0

    def test_matvec_does_not_count_samples(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        op.matvec(np.ones(op.n))
        assert op.samples_taken == 0

    def test_vector_input_promoted(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        x = np.ones(op.n)
        assert op.multiply(x).shape == (op.n, 1)
        assert op.matvec(x).shape == (op.n,)

    def test_dimension_mismatch_raises(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        with pytest.raises(ValueError):
            op.multiply(np.ones((op.n + 1, 2)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            DenseOperator(np.zeros((3, 4)))

    def test_kernel_matvec_operator_matches_dense(self, tree_2d, exp_kernel, dense_cov_2d):
        op = KernelMatVecOperator(exp_kernel, tree_2d.points, row_block=100)
        rng = np.random.default_rng(2)
        omega = rng.standard_normal((op.n, 3))
        assert np.allclose(op.multiply(omega), dense_cov_2d @ omega, atol=1e-10)

    def test_low_rank_operator(self):
        lr = random_low_rank(40, 3, seed=3)
        op = LowRankOperator(lr)
        x = np.random.default_rng(4).standard_normal((40, 2))
        assert np.allclose(op.multiply(x), lr.to_dense() @ x)

    def test_sum_operator(self, dense_cov_2d):
        lr = random_low_rank(dense_cov_2d.shape[0], 4, seed=5)
        op = SumOperator([DenseOperator(dense_cov_2d), LowRankOperator(lr)])
        x = np.random.default_rng(6).standard_normal((op.n, 3))
        assert np.allclose(op.multiply(x), dense_cov_2d @ x + lr.to_dense() @ x)

    def test_sum_operator_validation(self, dense_cov_2d):
        with pytest.raises(ValueError):
            SumOperator([])
        with pytest.raises(ValueError):
            SumOperator([DenseOperator(dense_cov_2d), LowRankOperator(random_low_rank(3, 1))])

    def test_h2_operator_matches_matrix(self, cov_h2):
        op = H2Operator(cov_h2)
        x = np.random.default_rng(7).standard_normal((op.n, 2))
        assert np.allclose(op.multiply(x), cov_h2.matvec(x, permuted=True))


class TestEntryExtractors:
    def test_dense_extractor(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        rows = np.array([0, 5, 11])
        cols = np.array([2, 3])
        assert np.allclose(ex.extract(rows, cols), dense_cov_2d[np.ix_(rows, cols)])

    def test_kernel_extractor_matches_dense(self, tree_2d, exp_kernel, dense_cov_2d):
        ex = KernelEntryExtractor(exp_kernel, tree_2d.points)
        rows = np.arange(10)
        cols = np.arange(20, 35)
        assert np.allclose(ex.extract(rows, cols), dense_cov_2d[np.ix_(rows, cols)], atol=1e-12)

    def test_entries_evaluated_counter(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        ex.extract(np.arange(4), np.arange(6))
        ex.extract(np.arange(2), np.arange(3))
        assert ex.entries_evaluated == 24 + 6

    def test_empty_request(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        out = ex.extract(np.zeros(0, dtype=np.int64), np.arange(5))
        assert out.shape == (0, 5)

    def test_extract_blocks_counts_one_launch_per_shape_group(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        counter = KernelLaunchCounter()
        blocks = ex.extract_blocks(
            [(np.arange(3), np.arange(4)), (np.arange(5), np.arange(2))],
            counter=counter,
        )
        assert len(blocks) == 2
        # Two distinct block shapes -> two batched-generation launches ...
        assert counter.by_operation()["batched_gen"] == 2
        # ... but uniform shapes collapse into a single launch, ...
        counter.reset()
        uniform = ex.extract_blocks(
            [(np.arange(3), np.arange(4)), (np.arange(7, 10), np.arange(2, 6))],
            counter=counter,
        )
        assert counter.by_operation()["batched_gen"] == 1
        assert np.array_equal(uniform[1], dense_cov_2d[np.ix_(np.arange(7, 10), np.arange(2, 6))])
        # ... and an empty request list records nothing at all.
        counter.reset()
        assert ex.extract_blocks([], counter=counter) == []
        assert counter.by_operation() == {}

    def test_low_rank_extractor(self):
        lr = random_low_rank(30, 3, seed=8)
        ex = LowRankEntryExtractor(lr)
        rows, cols = np.array([0, 7]), np.array([1, 2, 29])
        assert np.allclose(ex.extract(rows, cols), lr.to_dense()[np.ix_(rows, cols)])

    def test_sum_extractor(self, dense_cov_2d):
        lr = random_low_rank(dense_cov_2d.shape[0], 2, seed=9)
        ex = SumEntryExtractor(
            [DenseEntryExtractor(dense_cov_2d), LowRankEntryExtractor(lr)]
        )
        rows, cols = np.arange(5), np.arange(10, 14)
        expected = (dense_cov_2d + lr.to_dense())[np.ix_(rows, cols)]
        assert np.allclose(ex.extract(rows, cols), expected)

    def test_sum_extractor_validation(self, dense_cov_2d):
        with pytest.raises(ValueError):
            SumEntryExtractor([])
        with pytest.raises(ValueError):
            SumEntryExtractor(
                [DenseEntryExtractor(dense_cov_2d), LowRankEntryExtractor(random_low_rank(3, 1))]
            )

    def test_callable_interface(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        assert np.allclose(ex(np.arange(2), np.arange(2)), dense_cov_2d[:2, :2])

    def test_h2_extractor_matches_h2_block(self, cov_h2):
        ex = H2EntryExtractor(cov_h2)
        rows = np.arange(0, 40, 7)
        cols = np.arange(100, 140, 5)
        assert np.allclose(
            ex.extract(rows, cols), cov_h2.get_block(rows, cols, permuted=True)
        )


class TestStackedExtraction:
    """Batched (per-shape-group) block evaluation and the padded stack layout."""

    def _requests(self, rng, n, shapes):
        return [
            (
                rng.choice(n, size=p, replace=False),
                rng.choice(n, size=q, replace=False),
            )
            for p, q in shapes
        ]

    def test_stacked_kernel_blocks_match_per_block_extraction(
        self, tree_2d, exp_kernel
    ):
        ex = KernelEntryExtractor(exp_kernel, tree_2d.points)
        assert ex.supports_stacked
        rng = np.random.default_rng(3)
        requests = self._requests(rng, ex.n, [(6, 9), (6, 9), (6, 9), (4, 9)])
        blocks = ex.extract_blocks(requests)
        for (rows, cols), block in zip(requests, blocks):
            assert np.allclose(
                block, exp_kernel.evaluate(tree_2d.points[rows], tree_2d.points[cols]),
                rtol=0.0, atol=1e-14,
            )

    def test_pairwise_distances_stacked_matches_flat(self, tree_2d):
        from repro.kernels import pairwise_distances, pairwise_distances_stacked

        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 7, 3))
        y = rng.standard_normal((4, 5, 3))
        stacked = pairwise_distances_stacked(x, y)
        for i in range(4):
            assert np.allclose(
                stacked[i], pairwise_distances(x[i], y[i]), rtol=0.0, atol=1e-14
            )
        with pytest.raises(ValueError, match="stacked"):
            pairwise_distances_stacked(x[0], y[0])

    def test_padded_extraction_matches_and_pads_with_exact_zeros(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        rng = np.random.default_rng(7)
        requests = self._requests(
            rng, dense_cov_2d.shape[0], [(3, 5), (3, 5), (2, 4), (1, 1)]
        )
        counter = KernelLaunchCounter()
        padded = ex.extract_blocks_padded(requests, 4, 6, counter=counter)
        assert padded.shape == (4, 4, 6)
        # Three distinct shapes -> three generation launches.
        assert counter.by_operation()["batched_gen"] == 3
        for i, (rows, cols) in enumerate(requests):
            p, q = len(rows), len(cols)
            assert np.array_equal(padded[i, :p, :q], dense_cov_2d[np.ix_(rows, cols)])
            mask = np.ones((4, 6), dtype=bool)
            mask[:p, :q] = False
            assert np.all(padded[i][mask] == 0.0)

    def test_padded_extraction_empty_request_list(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        counter = KernelLaunchCounter()
        out = ex.extract_blocks_padded([], 3, 3, counter=counter)
        assert out.shape == (0, 3, 3)
        assert counter.by_operation() == {}

    def test_padded_extraction_skips_zero_size_blocks(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        empty = np.zeros(0, dtype=np.int64)
        out = ex.extract_blocks_padded(
            [(np.arange(2), np.arange(3)), (empty, np.arange(3))], 3, 3
        )
        assert np.array_equal(out[0, :2, :3], dense_cov_2d[:2, :3])
        assert np.all(out[1] == 0.0)

    def test_non_stacked_extractor_falls_back_to_block_loop(self, cov_h2):
        ex = H2EntryExtractor(cov_h2)
        assert not ex.supports_stacked
        rng = np.random.default_rng(9)
        requests = self._requests(rng, ex.n, [(3, 4), (3, 4), (2, 2)])
        counter = KernelLaunchCounter()
        blocks = ex.extract_blocks(requests, counter=counter)
        # Launches are still recorded per shape group (the batched dispatch
        # granularity), even though the evaluation loops over the blocks.
        assert counter.by_operation()["batched_gen"] == 2
        for (rows, cols), block in zip(requests, blocks):
            assert np.allclose(
                block, cov_h2.get_block(rows, cols, permuted=True)
            )
        padded = ex.extract_blocks_padded(requests, 3, 4)
        for i, (rows, cols) in enumerate(requests):
            assert np.allclose(
                padded[i, : len(rows), : len(cols)],
                cov_h2.get_block(rows, cols, permuted=True),
            )

    def test_white_noise_diagonal_survives_stacked_path(self, tree_2d):
        """profile_with_diagonal over the distance stack keeps exact diagonals."""
        from repro.kernels import WhiteNoiseKernel

        ex = KernelEntryExtractor(WhiteNoiseKernel(1.0), tree_2d.points)
        assert ex.supports_stacked
        blocks = ex.extract_blocks([(np.arange(3), np.arange(3))] * 2)
        for block in blocks:
            assert np.array_equal(block, np.eye(3))

    def test_non_pairwise_kernel_uses_per_block_path(self, tree_2d):
        from repro.kernels import KernelFunction

        class DotKernel(KernelFunction):
            """Non-radial kernel: no batched distance path available."""

            def evaluate(self, x, y):
                return x @ y.T

        ex = KernelEntryExtractor(DotKernel(), tree_2d.points)
        assert not ex.supports_stacked
        rows = np.arange(4)
        blocks = ex.extract_blocks([(rows, rows)] * 2)
        expected = tree_2d.points[rows] @ tree_2d.points[rows].T
        for block in blocks:
            assert np.array_equal(block, expected)

"""Tests for sketching operators and entry extractors."""

import numpy as np
import pytest

from repro import (
    DenseEntryExtractor,
    DenseOperator,
    H2EntryExtractor,
    H2Operator,
    KernelEntryExtractor,
    KernelLaunchCounter,
    KernelMatVecOperator,
    LowRankEntryExtractor,
    LowRankOperator,
    SumEntryExtractor,
    SumOperator,
    random_low_rank,
)


class TestOperators:
    def test_dense_operator_multiply(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        rng = np.random.default_rng(0)
        omega = rng.standard_normal((op.n, 4))
        assert np.allclose(op.multiply(omega), dense_cov_2d @ omega)

    def test_statistics_tracking(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        rng = np.random.default_rng(1)
        op.multiply(rng.standard_normal((op.n, 3)))
        op.multiply(rng.standard_normal((op.n, 5)))
        assert op.samples_taken == 8
        assert op.applications == 2
        op.reset_statistics()
        assert op.samples_taken == 0 and op.applications == 0

    def test_matvec_does_not_count_samples(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        op.matvec(np.ones(op.n))
        assert op.samples_taken == 0

    def test_vector_input_promoted(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        x = np.ones(op.n)
        assert op.multiply(x).shape == (op.n, 1)
        assert op.matvec(x).shape == (op.n,)

    def test_dimension_mismatch_raises(self, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        with pytest.raises(ValueError):
            op.multiply(np.ones((op.n + 1, 2)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            DenseOperator(np.zeros((3, 4)))

    def test_kernel_matvec_operator_matches_dense(self, tree_2d, exp_kernel, dense_cov_2d):
        op = KernelMatVecOperator(exp_kernel, tree_2d.points, row_block=100)
        rng = np.random.default_rng(2)
        omega = rng.standard_normal((op.n, 3))
        assert np.allclose(op.multiply(omega), dense_cov_2d @ omega, atol=1e-10)

    def test_low_rank_operator(self):
        lr = random_low_rank(40, 3, seed=3)
        op = LowRankOperator(lr)
        x = np.random.default_rng(4).standard_normal((40, 2))
        assert np.allclose(op.multiply(x), lr.to_dense() @ x)

    def test_sum_operator(self, dense_cov_2d):
        lr = random_low_rank(dense_cov_2d.shape[0], 4, seed=5)
        op = SumOperator([DenseOperator(dense_cov_2d), LowRankOperator(lr)])
        x = np.random.default_rng(6).standard_normal((op.n, 3))
        assert np.allclose(op.multiply(x), dense_cov_2d @ x + lr.to_dense() @ x)

    def test_sum_operator_validation(self, dense_cov_2d):
        with pytest.raises(ValueError):
            SumOperator([])
        with pytest.raises(ValueError):
            SumOperator([DenseOperator(dense_cov_2d), LowRankOperator(random_low_rank(3, 1))])

    def test_h2_operator_matches_matrix(self, cov_h2):
        op = H2Operator(cov_h2)
        x = np.random.default_rng(7).standard_normal((op.n, 2))
        assert np.allclose(op.multiply(x), cov_h2.matvec(x, permuted=True))


class TestEntryExtractors:
    def test_dense_extractor(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        rows = np.array([0, 5, 11])
        cols = np.array([2, 3])
        assert np.allclose(ex.extract(rows, cols), dense_cov_2d[np.ix_(rows, cols)])

    def test_kernel_extractor_matches_dense(self, tree_2d, exp_kernel, dense_cov_2d):
        ex = KernelEntryExtractor(exp_kernel, tree_2d.points)
        rows = np.arange(10)
        cols = np.arange(20, 35)
        assert np.allclose(ex.extract(rows, cols), dense_cov_2d[np.ix_(rows, cols)], atol=1e-12)

    def test_entries_evaluated_counter(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        ex.extract(np.arange(4), np.arange(6))
        ex.extract(np.arange(2), np.arange(3))
        assert ex.entries_evaluated == 24 + 6

    def test_empty_request(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        out = ex.extract(np.zeros(0, dtype=np.int64), np.arange(5))
        assert out.shape == (0, 5)

    def test_extract_blocks_counts_one_launch(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        counter = KernelLaunchCounter()
        blocks = ex.extract_blocks(
            [(np.arange(3), np.arange(4)), (np.arange(5), np.arange(2))],
            counter=counter,
        )
        assert len(blocks) == 2
        assert counter.by_operation()["batched_gen"] == 1

    def test_low_rank_extractor(self):
        lr = random_low_rank(30, 3, seed=8)
        ex = LowRankEntryExtractor(lr)
        rows, cols = np.array([0, 7]), np.array([1, 2, 29])
        assert np.allclose(ex.extract(rows, cols), lr.to_dense()[np.ix_(rows, cols)])

    def test_sum_extractor(self, dense_cov_2d):
        lr = random_low_rank(dense_cov_2d.shape[0], 2, seed=9)
        ex = SumEntryExtractor(
            [DenseEntryExtractor(dense_cov_2d), LowRankEntryExtractor(lr)]
        )
        rows, cols = np.arange(5), np.arange(10, 14)
        expected = (dense_cov_2d + lr.to_dense())[np.ix_(rows, cols)]
        assert np.allclose(ex.extract(rows, cols), expected)

    def test_sum_extractor_validation(self, dense_cov_2d):
        with pytest.raises(ValueError):
            SumEntryExtractor([])
        with pytest.raises(ValueError):
            SumEntryExtractor(
                [DenseEntryExtractor(dense_cov_2d), LowRankEntryExtractor(random_low_rank(3, 1))]
            )

    def test_callable_interface(self, dense_cov_2d):
        ex = DenseEntryExtractor(dense_cov_2d)
        assert np.allclose(ex(np.arange(2), np.arange(2)), dense_cov_2d[:2, :2])

    def test_h2_extractor_matches_h2_block(self, cov_h2):
        ex = H2EntryExtractor(cov_h2)
        rows = np.arange(0, 40, 7)
        cols = np.arange(100, 140, 5)
        assert np.allclose(
            ex.extract(rows, cols), cov_h2.get_block(rows, cols, permuted=True)
        )

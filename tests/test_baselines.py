"""Tests for the comparator algorithms (top-down peeling, colored-probing H sketch)."""

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    uniform_cube_points,
)
from repro.baselines import HMatrixSketchingConstructor, TopDownPeelingConstructor


@pytest.fixture(scope="module")
def small_problem():
    points = uniform_cube_points(500, dim=2, seed=42)
    tree = ClusterTree.build(points, leaf_size=32)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = ExponentialKernel(0.2).matrix(tree.points)
    return tree, partition, dense


class TestTopDownPeeling:
    @pytest.fixture(scope="class")
    def result(self, small_problem):
        tree, _, dense = small_problem
        return TopDownPeelingConstructor(
            tree,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            tolerance=1e-6,
            sample_block_size=16,
            seed=1,
        ).construct()

    def test_accuracy(self, result, small_problem, rel_err):
        _, _, dense = small_problem
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-3

    def test_matvec(self, result, small_problem, rel_err):
        _, _, dense = small_problem
        x = np.random.default_rng(0).standard_normal(dense.shape[0])
        assert rel_err(result.matrix.matvec(x, permuted=True), dense @ x) < 1e-3

    def test_sample_accounting(self, result):
        assert result.total_samples > 0
        assert result.operator_applications > 0
        assert sum(result.samples_per_level.values()) <= result.total_samples
        assert result.memory_mb() > 0

    def test_needs_many_more_samples_than_bottom_up(self, result, small_problem):
        """The core claim of the paper: top-down peeling needs far more samples."""
        _, partition, dense = small_problem
        ours = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, sample_block_size=16),
            seed=2,
        ).construct()
        assert result.total_samples > 3 * ours.total_samples

    def test_hodlr_ranks_grow_toward_root(self, result):
        """Weak-admissibility ranks grow for coarser levels (why peeling needs samples)."""
        ranks = result.rank_per_level
        assert ranks[min(ranks)] >= ranks[max(ranks)]

    def test_dimension_validation(self, small_problem):
        tree, _, dense = small_problem
        wrong = np.eye(10)
        with pytest.raises(ValueError):
            TopDownPeelingConstructor(
                tree, DenseOperator(wrong), DenseEntryExtractor(wrong)
            )


class TestHMatrixSketch:
    @pytest.fixture(scope="class")
    def result(self, small_problem):
        _, partition, dense = small_problem
        return HMatrixSketchingConstructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            tolerance=1e-6,
            sample_block_size=16,
            seed=3,
        ).construct()

    def test_accuracy(self, result, small_problem, rel_err):
        _, _, dense = small_problem
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-3

    def test_covers_all_partition_blocks(self, result, small_problem):
        _, partition, _ = small_problem
        assert len(result.matrix.low_rank) == partition.num_admissible_blocks()
        assert len(result.matrix.dense) == partition.num_inadmissible_blocks()

    def test_coloring_respects_conflicts(self, result, small_problem):
        """No two columns of one color may be unresolved partners of the same row."""
        _, partition, _ = small_problem
        assert all(v >= 1 for v in result.colors_per_level.values())

    def test_needs_more_samples_than_bottom_up(self, result, small_problem):
        _, partition, dense = small_problem
        ours = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, sample_block_size=16),
            seed=4,
        ).construct()
        assert result.total_samples > 3 * ours.total_samples

    def test_non_nested_memory_at_least_h2(self, result, small_problem):
        _, partition, dense = small_problem
        ours = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, sample_block_size=16),
            seed=5,
        ).construct()
        assert result.memory_mb() >= 0.8 * ours.memory_mb()

    def test_sample_accounting(self, result):
        assert result.total_samples > 0
        assert result.operator_applications > 0
        assert result.rank_range()[1] >= result.rank_range()[0] >= 0

"""Tests for repro.linalg: pivoted QR, interpolative decomposition, low-rank
objects and randomized norm estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import (
    LowRankMatrix,
    estimate_relative_error,
    estimate_spectral_norm,
    random_low_rank,
    row_id,
)
from repro.linalg.interpolative import column_id
from repro.linalg.qr import (
    householder_orthonormalize,
    smallest_r_diagonal,
    truncated_pivoted_qr,
)


def random_rank_k(m, n, k, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)) @ rng.standard_normal((k, n))
    if noise:
        a = a + noise * rng.standard_normal((m, n))
    return a


class TestTruncatedPivotedQR:
    def test_exact_rank_detected(self):
        a = random_rank_k(40, 30, 5, seed=1)
        _, _, _, rank = truncated_pivoted_qr(a, rel_tol=1e-10)
        assert rank == 5

    def test_reconstruction(self):
        a = random_rank_k(25, 20, 8, seed=2)
        q, r, perm, rank = truncated_pivoted_qr(a, rel_tol=1e-12)
        recon = q[:, :rank] @ r[:rank]
        assert np.allclose(recon, a[:, perm], atol=1e-8)

    def test_abs_tol(self):
        a = np.diag([10.0, 1.0, 1e-8])
        _, _, _, rank = truncated_pivoted_qr(a, abs_tol=1e-4)
        assert rank == 2

    def test_max_rank_cap(self):
        a = random_rank_k(30, 30, 10, seed=3)
        _, _, _, rank = truncated_pivoted_qr(a, rel_tol=1e-12, max_rank=4)
        assert rank == 4

    def test_zero_matrix(self):
        _, _, _, rank = truncated_pivoted_qr(np.zeros((10, 7)), rel_tol=1e-10)
        assert rank == 0

    def test_empty_matrix(self):
        q, r, perm, rank = truncated_pivoted_qr(np.zeros((0, 5)))
        assert rank == 0 and perm.shape == (5,)

    def test_no_tolerance_full_rank(self):
        a = np.random.default_rng(4).standard_normal((12, 9))
        _, _, _, rank = truncated_pivoted_qr(a)
        assert rank == 9


class TestSmallestRDiagonal:
    def test_full_rank_positive(self):
        a = np.random.default_rng(5).standard_normal((20, 10))
        assert smallest_r_diagonal(a) > 1e-3

    def test_rank_deficient_small(self):
        a = random_rank_k(30, 10, 3, seed=6)
        assert smallest_r_diagonal(a) < 1e-8

    def test_wide_matrix_reports_converged(self):
        a = np.random.default_rng(7).standard_normal((5, 10))
        assert smallest_r_diagonal(a) == 0.0

    def test_empty(self):
        assert smallest_r_diagonal(np.zeros((0, 4))) == 0.0
        assert smallest_r_diagonal(np.zeros((4, 0))) == 0.0

    def test_orthonormalize(self):
        a = np.random.default_rng(8).standard_normal((15, 6))
        q = householder_orthonormalize(a)
        assert np.allclose(q.T @ q, np.eye(6), atol=1e-10)


class TestInterpolativeDecomposition:
    def test_row_id_exact_low_rank(self):
        a = random_rank_k(50, 30, 7, seed=9)
        dec = row_id(a, rel_tol=1e-10)
        assert dec.rank == 7
        assert np.allclose(dec.reconstruct(a[dec.skeleton]), a, atol=1e-7)

    def test_identity_on_skeleton_rows(self):
        a = random_rank_k(40, 25, 6, seed=10)
        dec = row_id(a, rel_tol=1e-10)
        assert np.allclose(dec.interpolation[dec.skeleton], np.eye(dec.rank), atol=1e-12)

    def test_skeleton_and_redundant_partition_rows(self):
        a = random_rank_k(30, 20, 5, seed=11)
        dec = row_id(a, rel_tol=1e-10)
        combined = np.sort(np.concatenate([dec.skeleton, dec.redundant]))
        assert np.array_equal(combined, np.arange(30))

    def test_tolerance_controls_error(self):
        a = random_rank_k(60, 40, 30, seed=12, noise=1e-9)
        for tol in (1e-2, 1e-4, 1e-6):
            dec = row_id(a, rel_tol=tol)
            err = np.linalg.norm(dec.reconstruct(a[dec.skeleton]) - a) / np.linalg.norm(a)
            # pivoted-QR based ID satisfies a tolerance up to a modest factor
            assert err <= 50 * tol

    def test_rank_monotone_in_tolerance(self):
        a = random_rank_k(60, 40, 30, seed=13, noise=1e-10)
        ranks = [row_id(a, rel_tol=tol).rank for tol in (1e-2, 1e-5, 1e-9)]
        assert ranks == sorted(ranks)

    def test_max_rank(self):
        a = random_rank_k(30, 30, 10, seed=14)
        dec = row_id(a, rel_tol=1e-12, max_rank=3)
        assert dec.rank == 3

    def test_zero_matrix_rank_zero(self):
        dec = row_id(np.zeros((20, 10)), rel_tol=1e-8)
        assert dec.rank == 0
        assert dec.interpolation.shape == (20, 0)

    def test_column_id(self):
        a = random_rank_k(20, 35, 6, seed=15)
        skeleton, coeffs, rank = column_id(a, rel_tol=1e-10)
        assert rank == 6
        assert np.allclose(a[:, skeleton] @ coeffs, a, atol=1e-7)

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            row_id(np.zeros(5))

    @given(
        m=st.integers(5, 40),
        n=st.integers(5, 40),
        k=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_exact_recovery(self, m, n, k, seed):
        k = min(k, m, n)
        a = random_rank_k(m, n, k, seed=seed)
        dec = row_id(a, rel_tol=1e-9)
        assert dec.rank <= min(m, n)
        recon = dec.reconstruct(a[dec.skeleton])
        assert np.linalg.norm(recon - a) <= 1e-6 * max(np.linalg.norm(a), 1.0)


class TestLowRank:
    def test_shapes_and_rank(self):
        lr = random_low_rank(30, 4, seed=0)
        assert lr.shape == (30, 30)
        assert lr.rank == 4

    def test_matvec_matches_dense(self):
        lr = random_low_rank(25, 3, seed=1)
        x = np.random.default_rng(2).standard_normal((25, 5))
        assert np.allclose(lr.matvec(x), lr.to_dense() @ x)
        assert np.allclose(lr.rmatvec(x), lr.to_dense().T @ x)

    def test_entries(self):
        lr = random_low_rank(20, 2, seed=3)
        rows = np.array([1, 5, 7])
        cols = np.array([0, 19])
        assert np.allclose(lr.entries(rows, cols), lr.to_dense()[np.ix_(rows, cols)])

    def test_frobenius_norm(self):
        lr = random_low_rank(40, 5, seed=4)
        assert lr.frobenius_norm() == pytest.approx(np.linalg.norm(lr.to_dense()), rel=1e-10)

    def test_symmetric_generation(self):
        lr = random_low_rank(15, 3, seed=5, symmetric=True)
        dense = lr.to_dense()
        assert np.allclose(dense, dense.T)

    def test_symmetrized(self):
        lr = random_low_rank(15, 3, seed=6)
        sym = lr.symmetrized()
        assert np.allclose(sym.to_dense(), 0.5 * (lr.to_dense() + lr.to_dense().T))
        assert sym.rank == 6

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            LowRankMatrix(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_invalid_random_args(self):
        with pytest.raises(ValueError):
            random_low_rank(0, 3)
        with pytest.raises(ValueError):
            random_low_rank(5, 0)


class TestNormEstimation:
    def test_spectral_norm_of_diagonal(self):
        d = np.diag(np.array([5.0, 2.0, 1.0, 0.1]))
        est = estimate_spectral_norm(lambda x: d @ x, 4, num_iterations=30, seed=0)
        assert est == pytest.approx(5.0, rel=1e-3)

    def test_spectral_norm_nonsymmetric(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((30, 30))
        est = estimate_spectral_norm(
            lambda x: a @ x, 30, rmatvec=lambda x: a.T @ x, num_iterations=60, seed=2
        )
        assert est == pytest.approx(np.linalg.norm(a, 2), rel=5e-2)

    def test_zero_operator(self):
        est = estimate_spectral_norm(lambda x: 0.0 * x, 10, num_iterations=5, seed=3)
        assert est == 0.0

    def test_relative_error_zero_for_identical(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((20, 20))
        err = estimate_relative_error(lambda x: a @ x, lambda x: a @ x, 20, seed=5)
        assert err < 1e-12

    def test_relative_error_detects_perturbation(self):
        rng = np.random.default_rng(6)
        a = rng.standard_normal((40, 40))
        e = 1e-3 * rng.standard_normal((40, 40))
        err = estimate_relative_error(
            lambda x: a @ x, lambda x: (a + e) @ x, 40, num_iterations=20, seed=7
        )
        exact = np.linalg.norm(e, 2) / np.linalg.norm(a, 2)
        assert 0.2 * exact <= err <= 5 * exact

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            estimate_spectral_norm(lambda x: x, 0)

    def test_rmatvec_defaulted_assumes_symmetry(self):
        """Without rmatvec the power method runs on A A (not A^T A): exact for
        symmetric operators, generally wrong for nonsymmetric ones."""
        rng = np.random.default_rng(8)
        sym = rng.standard_normal((25, 25))
        sym = 0.5 * (sym + sym.T)
        defaulted = estimate_spectral_norm(lambda x: sym @ x, 25, num_iterations=60, seed=9)
        supplied = estimate_spectral_norm(
            lambda x: sym @ x, 25, rmatvec=lambda x: sym.T @ x, num_iterations=60, seed=9
        )
        assert defaulted == pytest.approx(supplied, rel=1e-10)
        assert defaulted == pytest.approx(np.linalg.norm(sym, 2), rel=1e-2)

    def test_rmatvec_supplied_fixes_nonsymmetric_bias(self):
        """A strongly non-normal matrix: the defaulted (symmetric) path
        underestimates the spectral norm, the rmatvec path recovers it."""
        a = np.array([[0.0, 100.0], [0.0, 0.01]])
        supplied = estimate_spectral_norm(
            lambda x: a @ x, 2, rmatvec=lambda x: a.T @ x, num_iterations=30, seed=10
        )
        defaulted = estimate_spectral_norm(lambda x: a @ x, 2, num_iterations=30, seed=10)
        assert supplied == pytest.approx(np.linalg.norm(a, 2), rel=1e-6)
        assert defaulted < 0.1 * supplied

    def test_relative_error_seed_reproducibility(self):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((30, 30))
        b = a + 1e-4 * rng.standard_normal((30, 30))
        first = estimate_relative_error(lambda x: a @ x, lambda x: b @ x, 30, seed=12)
        second = estimate_relative_error(lambda x: a @ x, lambda x: b @ x, 30, seed=12)
        other = estimate_relative_error(lambda x: a @ x, lambda x: b @ x, 30, seed=13)
        assert first == second
        assert first > 0.0
        # A different seed gives a (generally) different estimate of the same
        # quantity — both must still be in the right ballpark.
        exact = np.linalg.norm(a - b, 2) / np.linalg.norm(a, 2)
        assert 0.2 * exact <= first <= 5 * exact
        assert 0.2 * exact <= other <= 5 * exact

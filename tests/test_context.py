"""Tests of the geometry-reuse construction context (repro.core.context)
and the apply-plan coefficient refresh it drives.

The context must be a pure optimization: constructions through it have to
match the accuracy of from-scratch constructions at every cache policy, while
actually re-using the cached pieces (frozen sample pattern, warm-started
sample counts, result cache, plan skeleton).  The slow acceptance test pins
the headline claim — a 3-point length-scale sweep at N = 4096 at least 2x
faster than three from-scratch constructions.
"""

import os
import time

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    ExponentialKernel,
    GaussianKernel,
    GeneralAdmissibility,
    GeometryContext,
    H2Constructor,
    Matern52Kernel,
    WeakAdmissibility,
    build_block_partition,
    uniform_cube_points,
)
from repro.core.context import BlockDistanceCachingExtractor
from repro.sketching import KernelEntryExtractor, KernelMatVecOperator

N = 700
TOL = 1e-7


def rel_err(approx, exact):
    return float(np.linalg.norm(approx - exact) / np.linalg.norm(exact))


@pytest.fixture(scope="module")
def points():
    return uniform_cube_points(N, dim=2, seed=19)


@pytest.fixture(scope="module")
def context(points):
    return GeometryContext(points, leaf_size=32, seed=5)


class TestConstructionEquivalence:
    @pytest.mark.parametrize("length_scale", [0.15, 0.3])
    def test_matches_dense_reference(self, context, points, length_scale):
        kernel = ExponentialKernel(length_scale)
        result = context.construct(kernel, tolerance=TOL)
        dense = kernel.matrix(context.tree.points)
        x = np.random.default_rng(0).standard_normal(N)
        err = rel_err(result.matrix.matvec(x, permuted=True), dense @ x)
        assert err < 50 * TOL

    def test_matches_from_scratch_accuracy(self, points):
        """Context constructions are as accurate as cold ones at the same tol."""
        kernel = Matern52Kernel(0.25)
        ctx = GeometryContext(points, leaf_size=32, seed=5)
        warm = ctx.construct(kernel, tolerance=TOL)

        tree = ClusterTree.build(points, leaf_size=32)
        partition = build_block_partition(tree, WeakAdmissibility())
        cold = H2Constructor(
            partition,
            KernelMatVecOperator(kernel, tree.points),
            KernelEntryExtractor(kernel, tree.points),
            ConstructionConfig(tolerance=TOL),
            seed=5,
        ).construct()

        dense = kernel.matrix(tree.points)
        x = np.random.default_rng(1).standard_normal(N)
        err_warm = rel_err(warm.matrix.matvec(x, permuted=True), dense @ x)
        err_cold = rel_err(cold.matrix.matvec(x, permuted=True), dense @ x)
        assert err_warm < max(10 * err_cold, 50 * TOL)

    @pytest.mark.parametrize("cache", ["dense", "blocks", "none"])
    def test_cache_policies_agree(self, points, cache):
        kernel = ExponentialKernel(0.2)
        ctx = GeometryContext(points, leaf_size=32, distance_cache=cache, seed=5)
        result = ctx.construct(kernel, tolerance=TOL)
        dense = kernel.matrix(ctx.tree.points)
        x = np.random.default_rng(2).standard_normal(N)
        assert rel_err(result.matrix.matvec(x, permuted=True), dense @ x) < 50 * TOL

    def test_general_admissibility_context(self, points):
        kernel = ExponentialKernel(0.2)
        ctx = GeometryContext(
            points, leaf_size=32, admissibility=GeneralAdmissibility(eta=0.7), seed=5
        )
        result = ctx.construct(kernel, tolerance=TOL)
        assert len(result.matrix.dense) > len(list(ctx.tree.leaves()))
        dense = kernel.matrix(ctx.tree.points)
        x = np.random.default_rng(3).standard_normal(N)
        assert rel_err(result.matrix.matvec(x, permuted=True), dense @ x) < 50 * TOL

    def test_rejects_bad_cache_mode(self, points):
        with pytest.raises(ValueError):
            GeometryContext(points, distance_cache="everything")


class TestReuse:
    def test_frozen_sample_pattern(self, points):
        """Same seed => identical constructions (the sample pattern is cached)."""
        kernel = ExponentialKernel(0.2)
        a = GeometryContext(points, leaf_size=32, seed=9).construct(kernel, tolerance=TOL)
        b = GeometryContext(points, leaf_size=32, seed=9).construct(kernel, tolerance=TOL)
        x = np.random.default_rng(4).standard_normal(N)
        assert np.array_equal(
            a.matrix.matvec(x, permuted=True), b.matrix.matvec(x, permuted=True)
        )

    def test_result_cache_hit_on_identical_point(self, points):
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        first = ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        second = ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        assert second is first
        assert ctx.statistics.result_cache_hits == 1
        # A different hyperparameter must re-construct.
        third = ctx.construct(ExponentialKernel(0.35), tolerance=TOL)
        assert third is not first
        assert ctx.statistics.constructions == 2

    def test_construction_plan_compiled_once_per_context(self, points):
        """The packed sweep's static packing is compiled once and shared."""
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        plan = ctx._construction_plan
        assert plan is not None
        ctx.construct(ExponentialKernel(0.35), tolerance=TOL)
        ctx.construct(GaussianKernel(0.3), tolerance=TOL)
        assert ctx._construction_plan is plan
        assert ctx.statistics.construction_plan_compilations == 1
        assert (
            ctx.statistics.as_dict()["construction_plan_compilations"] == 1
        )

    def test_frozen_bank_replays_identically_through_packed_workspace(self, points):
        """Re-constructing a sweep point replays the frozen sample columns
        bit-identically through the packed level buffers."""
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        kernel = ExponentialKernel(0.2)
        # Passing an explicit config bypasses the result cache, so both runs
        # execute the full packed sweep against the same frozen Omega bank;
        # warm-starting is disabled so they run the identical sample schedule.
        config = ConstructionConfig(
            tolerance=TOL, construction_path="packed", backend=ctx.backend
        )
        first = ctx.construct(kernel, config=config, warm_start=False)
        second = ctx.construct(kernel, config=config, warm_start=False)
        assert first is not second
        x = np.random.default_rng(4).standard_normal(N)
        assert np.array_equal(
            first.matrix.matvec(x, permuted=True),
            second.matrix.matvec(x, permuted=True),
        )
        assert first.total_samples == second.total_samples
        assert first.construction_path == second.construction_path == "packed"

    def test_packed_and_loop_paths_share_the_frozen_bank(self, points):
        """Both execution paths draw the identical cached sample columns."""
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        kernel = ExponentialKernel(0.2)
        packed = ctx.construct(
            kernel,
            config=ConstructionConfig(
                tolerance=TOL, construction_path="packed", backend=ctx.backend
            ),
            warm_start=False,
        )
        cached_columns = ctx.statistics.sample_columns_cached
        loop = ctx.construct(
            kernel,
            config=ConstructionConfig(
                tolerance=TOL, construction_path="loop", backend=ctx.backend
            ),
            warm_start=False,
        )
        # The loop replay consumed the same bank without growing it.
        assert ctx.statistics.sample_columns_cached == cached_columns
        assert loop.total_samples == packed.total_samples
        x = np.random.default_rng(4).standard_normal(N)
        err = rel_err(
            loop.matrix.matvec(x, permuted=True),
            packed.matrix.matvec(x, permuted=True),
        )
        assert err < 10 * TOL

    def test_result_cache_misses_on_in_place_kernel_mutation(self, points):
        """Mutating a kernel in place must not produce a stale cache hit."""
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        kernel = ExponentialKernel(0.2)
        first = ctx.construct(kernel, tolerance=TOL)
        kernel.length_scale = 0.4  # dataclasses are mutable
        second = ctx.construct(kernel, tolerance=TOL)
        assert second is not first
        assert ctx.statistics.result_cache_hits == 0
        dense = ExponentialKernel(0.4).matrix(ctx.tree.points)
        x = np.random.default_rng(7).standard_normal(N)
        assert rel_err(second.matrix.matvec(x, permuted=True), dense @ x) < 50 * TOL

    def test_plan_reuse_does_not_corrupt_earlier_results(self, points):
        """Refreshing the shared plan must detach, not poison, earlier matrices.

        A noise-style sweep revisiting the same structure re-stacks the shared
        plan skeleton with new coefficients; matrices returned earlier in the
        sweep have to keep computing *their own* kernel's products.
        """
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        x = np.random.default_rng(8).standard_normal(N)
        # Warm-started runs replay an identical sample schedule, so from the
        # second construction onward the structure repeats; bypass the result
        # cache to force actual re-constructions.
        ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        ctx._last_result = None
        first = ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        before = first.matrix.matvec(x, permuted=True)
        ctx._last_result = None
        second = ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        assert ctx.statistics.plan_reuses >= 1
        after = first.matrix.matvec(x, permuted=True)
        assert np.array_equal(before, after)
        dense = ExponentialKernel(0.2).matrix(ctx.tree.points)
        assert rel_err(after, dense @ x) < 50 * TOL
        assert rel_err(second.matrix.matvec(x, permuted=True), dense @ x) < 50 * TOL

    def test_warm_start_reduces_operator_applications(self, points):
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        first = ctx.construct(ExponentialKernel(0.15), tolerance=TOL)
        # Nearby hyperparameter: the warm-started sketch should need at most
        # as many black-box applications as the cold adaptive run.
        second = ctx.construct(ExponentialKernel(0.18), tolerance=TOL)
        assert second.operator_applications <= first.operator_applications
        assert second.total_samples >= 1

    def test_norm_estimate_reuse_skips_probes(self, points):
        ctx = GeometryContext(points, leaf_size=32, distance_cache="none", seed=9)
        first = ctx.construct(GaussianKernel(0.2), tolerance=TOL)
        op_apps_cold = first.operator_applications
        second = ctx.construct(
            GaussianKernel(0.22), tolerance=TOL, reuse_norm_estimate=True
        )
        assert second.norm_estimate == pytest.approx(first.norm_estimate)
        assert second.operator_applications < op_apps_cold

    def test_statistics_and_describe(self, points):
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        stats = ctx.statistics.as_dict()
        assert stats["constructions"] == 1
        assert stats["plan_compilations"] == 1
        assert stats["sample_columns_cached"] > 0
        assert ctx.memory_bytes() > 0
        assert "GeometryContext" in ctx.describe()
        assert "cache=dense" in ctx.describe()


class TestPlanRefresh:
    @pytest.fixture(scope="class")
    def refresh_pair(self, points):
        """Two constructions with identical structure but different coefficients."""
        ctx = GeometryContext(points, leaf_size=32, seed=9)
        first = ctx.construct(ExponentialKernel(0.2), tolerance=TOL)
        plan = first.matrix.apply_plan()
        # Re-scale every block of a copy of the matrix: same structure,
        # different coefficients.
        import copy

        scaled = copy.deepcopy(first.matrix)
        for key in scaled.coupling:
            scaled.coupling[key] = 2.0 * scaled.coupling[key]
        for key in scaled.dense:
            scaled.dense[key] = 2.0 * scaled.dense[key]
        object.__setattr__(scaled, "_plan", None)
        return first.matrix, scaled, plan

    def test_refresh_reproduces_recompiled_apply(self, refresh_pair):
        original, scaled, plan = refresh_pair
        x = np.random.default_rng(5).standard_normal((N, 3))
        expected = scaled.apply_plan(rebuild=True).execute(x)
        refreshed = scaled.reuse_plan(plan)
        assert np.allclose(refreshed.execute(x), expected, atol=1e-12)

    def test_refresh_covers_transpose_stages(self, refresh_pair):
        original, scaled, plan = refresh_pair
        x = np.random.default_rng(6).standard_normal(N)
        expected = scaled.matvec_loop(x)  # symmetric data: loop as reference
        scaled.reuse_plan(plan)
        assert np.allclose(scaled.rmatvec(x), expected, atol=1e-10)

    def test_matches_reports_structure(self, refresh_pair, points):
        original, scaled, plan = refresh_pair
        assert plan.matches(scaled)
        other = GeometryContext(points, leaf_size=64, seed=1).construct(
            ExponentialKernel(0.2), tolerance=TOL
        )
        assert not plan.matches(other.matrix)
        with pytest.raises(ValueError):
            plan.refresh(other.matrix)


class TestBlockDistanceCachingExtractor:
    def test_contiguous_blocks_cached_and_exact(self, points):
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(0.2)
        cache = {}
        extractor = BlockDistanceCachingExtractor(
            kernel, tree.points, cache, cache_limit_bytes=1 << 24
        )
        reference = KernelEntryExtractor(kernel, tree.points)
        rows = tree.index_set(tree.num_nodes - 1)
        cols = tree.index_set(tree.num_nodes - 2)
        first = extractor.extract(rows, cols)
        assert len(cache) == 1
        assert np.array_equal(first, reference.extract(rows, cols))
        # Second call hits the cache and re-evaluates only the profile.
        again = extractor.extract(rows, cols)
        assert np.array_equal(again, first)
        assert len(cache) == 1

    def test_stacked_batches_use_and_fill_the_cache(self, points):
        """The compiled sweep's shape-grouped extraction stays batched here."""
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(0.2)
        cache = {}
        extractor = BlockDistanceCachingExtractor(
            kernel, tree.points, cache, cache_limit_bytes=1 << 24
        )
        assert extractor.supports_stacked
        reference = KernelEntryExtractor(kernel, tree.points)
        # Equal-size contiguous leaf ranges + one permuted (skeleton-style)
        # request of the same shape — grouped into a single stacked pass.
        contiguous = [
            t for t in range(tree.num_nodes) if tree.is_leaf(t)
        ][:3]
        size = min(tree.cluster_size(t) for t in contiguous)
        requests = [
            (tree.index_set(t)[:size], tree.index_set(contiguous[0])[:size])
            for t in contiguous
        ]
        rng = np.random.default_rng(8)
        permuted = rng.permutation(len(points))[:size]
        requests.append((permuted, requests[0][1]))
        blocks = extractor.extract_blocks(requests)
        for (rows, cols), block in zip(requests, blocks):
            assert np.allclose(
                block, reference.extract(rows, cols), rtol=0.0, atol=1e-12
            )
        # The contiguous pairs were cached; the permuted request was not.
        assert len(cache) == len(requests) - 1
        # A second stacked pass is served from the cache bit-identically.
        again = extractor.extract_blocks(requests[:-1])
        for block, prev in zip(again, blocks):
            assert np.array_equal(block, prev)
        assert len(cache) == len(requests) - 1

    def test_permuted_and_gapped_sets_bypass_cache(self, points):
        """Span == size is not contiguity: skeleton pivot orders are unsorted.

        A permuted set keyed as a range would poison the cache for the true
        contiguous request (and vice versa) with silently reordered blocks.
        """
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(0.2)
        cache = {}
        extractor = BlockDistanceCachingExtractor(
            kernel, tree.points, cache, cache_limit_bytes=1 << 24
        )
        reference = KernelEntryExtractor(kernel, tree.points)
        permuted = np.array([10, 12, 11, 13])
        cols = np.array([0, 1, 2])
        gapped = np.array([20, 21, 23, 24])  # span 5, size 4
        for rows in (permuted, gapped):
            values = extractor.extract(rows, cols)
            assert not cache
            assert np.array_equal(values, reference.extract(rows, cols))
        # The genuine range afterwards is keyed and still exact.
        sorted_rows = np.arange(10, 14)
        values = extractor.extract(sorted_rows, cols)
        assert len(cache) == 1
        assert np.array_equal(values, reference.extract(sorted_rows, cols))
        again = extractor.extract(permuted, cols)
        assert np.array_equal(again, reference.extract(permuted, cols))

    def test_non_contiguous_requests_bypass_cache(self, points):
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(0.2)
        cache = {}
        extractor = BlockDistanceCachingExtractor(
            kernel, tree.points, cache, cache_limit_bytes=1 << 24
        )
        rows = np.array([1, 5, 9])
        cols = np.array([0, 2])
        values = extractor.extract(rows, cols)
        assert not cache
        assert np.allclose(
            values, kernel.evaluate(tree.points[rows], tree.points[cols])
        )

    def test_cache_respects_byte_budget(self, points):
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(0.2)
        cache = {}
        extractor = BlockDistanceCachingExtractor(
            kernel, tree.points, cache, cache_limit_bytes=0
        )
        leaf = tree.num_nodes - 1
        extractor.extract(tree.index_set(leaf), tree.index_set(leaf))
        assert not cache


@pytest.mark.slow
class TestAcceptance:
    def test_sweep_speedup_at_4096(self):
        """Acceptance: 3-point length-scale sweep >= 2x over cold constructions."""
        n = 4096
        scales = [0.15, 0.2, 0.3]
        tolerance = 1e-6
        pts = uniform_cube_points(n, dim=3, seed=1)

        t0 = time.perf_counter()
        for ls in scales:
            tree = ClusterTree.build(pts, leaf_size=64)
            partition = build_block_partition(tree, WeakAdmissibility())
            kernel = ExponentialKernel(ls)
            H2Constructor(
                partition,
                KernelMatVecOperator(kernel, tree.points),
                KernelEntryExtractor(kernel, tree.points),
                ConstructionConfig(tolerance=tolerance),
                seed=3,
            ).construct()
        cold_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        ctx = GeometryContext(pts, leaf_size=64, seed=3)
        results = [
            ctx.construct(ExponentialKernel(ls), tolerance=tolerance)
            for ls in scales
        ]
        sweep_seconds = time.perf_counter() - t0

        # Accuracy parity on the last sweep point.
        kernel = ExponentialKernel(scales[-1])
        x = np.random.default_rng(0).standard_normal(n)
        reference = KernelMatVecOperator(kernel, ctx.tree.points).matvec(x)
        err = rel_err(results[-1].matrix.matvec(x, permuted=True), reference)
        assert err < 1e-4

        speedup = cold_seconds / sweep_seconds
        floor = float(os.environ.get("REPRO_GP_SWEEP_SPEEDUP_MIN", "2.0"))
        assert speedup >= floor, (
            f"geometry-reuse sweep speedup {speedup:.2f}x below the {floor}x floor "
            f"(cold {cold_seconds:.1f}s, sweep {sweep_seconds:.1f}s)"
        )

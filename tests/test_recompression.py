"""Tests of H2 recompression and the H2 + low-rank update application."""

import numpy as np
import pytest

from repro import (
    ConstructionConfig,
    H2Operator,
    LowRankOperator,
    SumOperator,
    random_low_rank,
    recompress_h2,
)
from repro.core.recompression import low_rank_update_reference_matvec


class TestPlainRecompression:
    def test_recompress_without_update(self, cov_h2, dense_cov_2d, rel_err):
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = recompress_h2(cov_h2, config=cfg, seed=3)
        err = rel_err(result.matrix.to_dense(permuted=True), cov_h2.to_dense(permuted=True))
        assert err < 1e-4
        # and still close to the original dense matrix
        assert rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d) < 1e-4

    def test_recompression_statistics(self, cov_h2):
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = recompress_h2(cov_h2, config=cfg, seed=4)
        assert result.total_samples > 0
        assert result.entries_evaluated > 0
        assert result.matrix.partition is cov_h2.partition


class TestLowRankUpdate:
    def test_update_accuracy(self, cov_h2, rel_err):
        n = cov_h2.num_rows
        update = random_low_rank(n, 16, seed=7, symmetric=True, scale=0.5)
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = recompress_h2(cov_h2, update, config=cfg, seed=8)
        reference = cov_h2.to_dense(permuted=True) + update.to_dense()
        assert rel_err(result.matrix.to_dense(permuted=True), reference) < 1e-4

    def test_update_changes_matrix(self, cov_h2, rel_err):
        n = cov_h2.num_rows
        update = random_low_rank(n, 8, seed=9, symmetric=True, scale=1.0)
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = recompress_h2(cov_h2, update, config=cfg, seed=10)
        # result should NOT equal the original (the update is not negligible)
        diff = rel_err(
            result.matrix.to_dense(permuted=True), cov_h2.to_dense(permuted=True)
        )
        assert diff > 1e-4

    def test_reference_matvec_helper(self, cov_h2):
        n = cov_h2.num_rows
        update = random_low_rank(n, 4, seed=11, symmetric=True)
        matvec = low_rank_update_reference_matvec(cov_h2, update)
        x = np.random.default_rng(0).standard_normal(n)
        expected = cov_h2.matvec(x, permuted=True) + update.matvec(x)
        assert np.allclose(matvec(x), expected)

    def test_sum_operator_equivalence(self, cov_h2):
        n = cov_h2.num_rows
        update = random_low_rank(n, 4, seed=12, symmetric=True)
        op = SumOperator([H2Operator(cov_h2), LowRankOperator(update)])
        x = np.random.default_rng(1).standard_normal((n, 3))
        expected = cov_h2.matvec(x, permuted=True) + update.matvec(x)
        assert np.allclose(op.multiply(x), expected)

    def test_dimension_validation(self, cov_h2):
        with pytest.raises(ValueError):
            recompress_h2(cov_h2, random_low_rank(cov_h2.num_rows + 1, 4, seed=13))

"""Tests for repro.persist — versioned artifacts and the content-addressed cache.

Covers the tentpole of the persistence PR:

* exact (bitwise) save → load round trips for every hierarchical format,
  through both the package functions and the ``op.save(path)`` mixin;
* zero-copy loads: every block buffer is a read-only view into one memmap;
* container validation: bad magic, truncated files, corrupted headers and
  format-version mismatches fail loudly with typed errors;
* :class:`repro.persist.ArtifactCache` keying, hit/miss accounting, LRU
  eviction, corrupted-entry recovery;
* the cache-aside integration of :func:`repro.compress`, :class:`repro.Session`
  and :class:`repro.GeometryContext` (including the ``REPRO_CACHE_DIR``
  environment opt-in), and the warm-vs-cold acceptance speedup.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

import repro
from repro import ArtifactCache, ExponentialKernel, Session, compress, uniform_cube_points
from repro.persist import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    MAGIC,
    kernel_descriptor,
    load_operator,
    read_artifact,
    save_operator,
    write_artifact,
)

N = 300
LEAF = 32
TOL = 1e-7


@pytest.fixture(scope="module")
def persist_points() -> np.ndarray:
    return uniform_cube_points(N, dim=2, seed=11)


@pytest.fixture(scope="module")
def persist_kernel() -> ExponentialKernel:
    return ExponentialKernel(length_scale=0.3)


@pytest.fixture(scope="module", params=["h2", "hss", "hodlr", "hmatrix"])
def saved_operator(request, persist_points, persist_kernel, tmp_path_factory):
    fmt = request.param
    op = compress(
        persist_points, persist_kernel, format=fmt, tol=TOL, leaf_size=LEAF, seed=5
    )
    path = tmp_path_factory.mktemp("artifacts") / f"{fmt}.repro"
    op.save(path)
    return fmt, op, path


class TestRoundTrip:
    def test_bitwise_exact_to_dense(self, saved_operator):
        _, op, path = saved_operator
        loaded = load_operator(path)
        assert type(loaded) is type(op)
        assert loaded.shape == op.shape
        assert np.array_equal(loaded.to_dense(), op.to_dense())
        assert np.array_equal(
            loaded.to_dense(permuted=True), op.to_dense(permuted=True)
        )

    def test_bitwise_exact_matvec(self, saved_operator):
        _, op, path = saved_operator
        loaded = load_operator(path)
        x = np.random.default_rng(0).standard_normal(N)
        assert np.array_equal(loaded.matvec(x), op.matvec(x))
        assert np.array_equal(loaded.rmatvec(x), op.rmatvec(x))

    def test_tree_round_trips(self, saved_operator):
        _, op, path = saved_operator
        loaded = load_operator(path)
        assert np.array_equal(loaded.tree.perm, op.tree.perm)
        assert np.array_equal(loaded.tree.points, op.tree.points)
        assert loaded.tree.depth == op.tree.depth
        assert loaded.tree.leaf_size == op.tree.leaf_size

    def test_materialized_load_matches(self, saved_operator):
        _, op, path = saved_operator
        loaded = load_operator(path, mmap=False)
        assert np.array_equal(loaded.to_dense(), op.to_dense())

    def test_save_function_matches_mixin(self, saved_operator, tmp_path):
        fmt, op, _ = saved_operator
        path = save_operator(op, tmp_path / "again.repro")
        assert np.array_equal(load_operator(path).to_dense(), op.to_dense())

    def test_statistics_preserved(self, saved_operator):
        _, op, path = saved_operator
        loaded = load_operator(path)
        assert loaded.statistics()["format"] == op.statistics()["format"]
        assert loaded.memory_bytes()["total"] == op.memory_bytes()["total"]


class TestZeroCopy:
    def test_buffers_are_memmap_views(self, saved_operator):
        _, _, path = saved_operator
        _, buffers = read_artifact(path)
        assert buffers
        for name, array in buffers.items():
            assert isinstance(array.base, np.memmap), name
            assert not array.flags.writeable, name

    def test_materialized_buffers_are_read_only(self, saved_operator):
        _, _, path = saved_operator
        _, buffers = read_artifact(path, mmap=False)
        for name, array in buffers.items():
            assert not isinstance(array.base, np.memmap), name
            assert not array.flags.writeable, name

    def test_alignment(self, saved_operator):
        from repro.persist import ALIGNMENT

        _, _, path = saved_operator
        header, _ = read_artifact(path)
        for entry in header["buffers"]:
            assert entry["offset"] % ALIGNMENT == 0


class TestContainerValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.repro"
        path.write_bytes(b"NOTMAGIC" + b"\0" * 64)
        with pytest.raises(ArtifactFormatError, match="magic"):
            read_artifact(path)

    def test_truncated_preamble(self, tmp_path):
        path = tmp_path / "short.repro"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(ArtifactFormatError, match="truncated"):
            read_artifact(path)

    def test_corrupted_header_json(self, saved_operator, tmp_path):
        _, _, source = saved_operator
        data = bytearray(source.read_bytes())
        # Scribble over the JSON header, preserving the preamble.
        data[24:40] = b"\xff" * 16
        path = tmp_path / "corrupt.repro"
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactFormatError):
            read_artifact(path)

    def test_truncated_data_section(self, saved_operator, tmp_path):
        _, _, source = saved_operator
        data = source.read_bytes()
        path = tmp_path / "truncated.repro"
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactError):
            load_operator(path)

    def test_format_version_mismatch(self, saved_operator, tmp_path):
        _, _, source = saved_operator
        header, buffers = read_artifact(source)
        path = tmp_path / "future.repro"
        write_artifact(
            path,
            header["format"],
            int(header["format_version"]) + 1,
            header["meta"],
            list(buffers.items()),
        )
        with pytest.raises(ArtifactVersionError, match="version"):
            load_operator(path)

    def test_unregistered_format(self, tmp_path):
        path = tmp_path / "alien.repro"
        write_artifact(path, "butterfly", 1, {}, [("x", np.zeros(3))])
        with pytest.raises(ArtifactFormatError, match="butterfly"):
            load_operator(path)

    def test_unpersistable_operator(self, tmp_path):
        with pytest.raises(ArtifactError, match="register_format"):
            save_operator(object(), tmp_path / "nope.repro")


class TestKernelDescriptor:
    def test_scalar_hyperparameters(self, persist_kernel):
        desc = kernel_descriptor(persist_kernel)
        assert desc["class"].endswith("ExponentialKernel")
        assert desc["params"]["length_scale"] == pytest.approx(0.3)

    def test_composites_recurse(self):
        scaled = repro.ScaledKernel(ExponentialKernel(0.2), variance=2.0)
        summed = repro.SumKernel([ExponentialKernel(0.2), repro.WhiteNoiseKernel(0.1)])
        assert kernel_descriptor(scaled)["inner"]["class"].endswith("ExponentialKernel")
        assert len(kernel_descriptor(summed)["components"]) == 2

    def test_distinguishes_parameters_and_classes(self):
        a = kernel_descriptor(ExponentialKernel(0.2))
        b = kernel_descriptor(ExponentialKernel(0.3))
        c = kernel_descriptor(repro.GaussianKernel(0.2))
        assert a != b and a != c


class TestArtifactCache:
    def test_key_sensitivity(self, persist_points, persist_kernel, tmp_path):
        cache = ArtifactCache(tmp_path)
        base = dict(tol=1e-6, format="h2", leaf_size=LEAF, seed=3)
        key = cache.key(persist_points, persist_kernel, **base)
        assert key == cache.key(persist_points, persist_kernel, **base)
        variants = [
            cache.key(persist_points, persist_kernel, **{**base, "tol": 1e-5}),
            cache.key(persist_points, persist_kernel, **{**base, "seed": 4}),
            cache.key(persist_points, persist_kernel, **{**base, "leaf_size": 16}),
            cache.key(persist_points, persist_kernel, **{**base, "format": "hss"}),
            cache.key(persist_points, ExponentialKernel(0.4), **base),
            cache.key(persist_points * 1.1, persist_kernel, **base),
            cache.key(
                persist_points, persist_kernel, **base, extra={"max_rank": 10}
            ),
        ]
        assert len({key, *variants}) == len(variants) + 1

    def test_unknown_format_raises(self, persist_points, persist_kernel, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ArtifactError, match="butterfly"):
            cache.key(persist_points, persist_kernel, tol=1e-6, format="butterfly")

    def test_miss_then_hit(self, saved_operator, persist_points, persist_kernel, tmp_path):
        _, op, _ = saved_operator
        cache = ArtifactCache(tmp_path)
        key = cache.key(persist_points, persist_kernel, tol=TOL, seed=5)
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, op)
        loaded = cache.get(key)
        assert loaded is not None
        assert cache.hits == 1
        assert np.array_equal(loaded.to_dense(), op.to_dense())

    def test_get_or_build(self, saved_operator, tmp_path):
        _, op, _ = saved_operator
        cache = ArtifactCache(tmp_path)
        builds = []

        def builder():
            builds.append(1)
            return op

        first = cache.get_or_build("somekey", builder)
        second = cache.get_or_build("somekey", builder)
        assert len(builds) == 1
        assert np.array_equal(first.to_dense(), second.to_dense())

    def test_corrupted_entry_counts_as_miss_and_is_dropped(
        self, saved_operator, tmp_path
    ):
        _, op, _ = saved_operator
        cache = ArtifactCache(tmp_path)
        cache.put("k", op)
        cache.path_for("k").write_bytes(b"garbage")
        assert cache.get("k") is None
        assert cache.misses == 1
        assert not cache.path_for("k").exists()

    def test_lru_eviction(self, saved_operator, tmp_path):
        _, op, _ = saved_operator
        size = save_operator(op, tmp_path / "probe.repro").stat().st_size
        (tmp_path / "probe.repro").unlink()
        cache = ArtifactCache(tmp_path, max_bytes=2 * size + size // 2)
        cache.put("a", op)
        time.sleep(0.01)
        cache.put("b", op)
        time.sleep(0.01)
        assert cache.get("a") is not None  # refresh a's LRU stamp
        time.sleep(0.01)
        cache.put("c", op)  # over budget: evicts b (oldest mtime)
        assert cache.evictions == 1
        assert cache.path_for("a").exists()
        assert not cache.path_for("b").exists()
        assert cache.path_for("c").exists()

    def test_clear_and_statistics(self, saved_operator, tmp_path):
        _, op, _ = saved_operator
        cache = ArtifactCache(tmp_path)
        cache.put("x", op)
        stats = cache.statistics()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert cache.size_bytes() == stats["bytes"]
        cache.clear()
        assert cache.statistics()["entries"] == 0

    def test_observe_counters(self, saved_operator, tmp_path):
        from repro.observe.metrics import metrics

        _, op, _ = saved_operator
        registry = metrics()
        hits0 = registry.counter("persist.cache.hits").value
        misses0 = registry.counter("persist.cache.misses").value
        cache = ArtifactCache(tmp_path)
        cache.get("absent")
        cache.put("present", op)
        cache.get("present")
        assert registry.counter("persist.cache.hits").value == hits0 + 1
        assert registry.counter("persist.cache.misses").value == misses0 + 1


class TestCompressIntegration:
    def test_cold_then_warm(self, persist_points, persist_kernel, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=3,
            cache=cache,
        )
        assert (cache.hits, cache.misses) == (0, 1)
        warm = compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=3,
            cache=cache,
        )
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.array_equal(warm.to_dense(), cold.to_dense())

    @pytest.mark.parametrize("fmt", ["hss", "hodlr", "hmatrix"])
    def test_every_format_participates(
        self, fmt, persist_points, persist_kernel, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        cold = compress(
            persist_points, persist_kernel, format=fmt, tol=1e-6, leaf_size=LEAF,
            seed=3, cache=cache,
        )
        warm = compress(
            persist_points, persist_kernel, format=fmt, tol=1e-6, leaf_size=LEAF,
            seed=3, cache=cache,
        )
        assert cache.hits == 1
        assert np.array_equal(warm.to_dense(), cold.to_dense())

    def test_cache_dir_and_env_opt_in(
        self, persist_points, persist_kernel, tmp_path, monkeypatch
    ):
        compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=3,
            cache_dir=tmp_path,
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        warm_env = compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=3
        )
        warm_again = compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=3,
        )
        assert np.array_equal(warm_env.to_dense(), warm_again.to_dense())
        assert len(list(tmp_path.glob("*.repro"))) == 1

    def test_expert_overrides_bypass_cache(
        self, persist_points, persist_kernel, tmp_path
    ):
        from repro import ClusterTree

        cache = ArtifactCache(tmp_path)
        tree = ClusterTree.build(persist_points, leaf_size=LEAF)
        compress(
            persist_points, persist_kernel, tol=1e-6, seed=3, tree=tree, cache=cache
        )
        compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF,
            seed=np.random.default_rng(0), cache=cache,
        )
        compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=3,
            full_result=True, cache=cache,
        )
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.statistics()["entries"] == 0

    def test_warm_operator_still_solves(self, persist_points, persist_kernel, tmp_path):
        from repro import gmres

        cache = ArtifactCache(tmp_path)
        kwargs = dict(tol=1e-8, leaf_size=LEAF, seed=3, cache=cache)
        compress(persist_points, persist_kernel, **kwargs)
        warm = compress(persist_points, persist_kernel, **kwargs)
        b = np.random.default_rng(1).standard_normal(N)
        result = gmres(warm, b, tol=1e-8, restart=60, maxiter=4000)
        assert result.converged


class TestSessionIntegration:
    def test_second_session_loads_from_cache(
        self, persist_points, persist_kernel, tmp_path
    ):
        first = Session(persist_points, leaf_size=LEAF, seed=1, cache_dir=tmp_path)
        first.compress(persist_kernel, tol=1e-6)
        assert first.context.statistics.artifact_cache_hits == 0
        assert first.context.statistics.constructions == 1

        second = Session(persist_points, leaf_size=LEAF, seed=1, cache_dir=tmp_path)
        second.compress(persist_kernel, tol=1e-6)
        stats = second.context.statistics
        assert stats.artifact_cache_hits == 1
        assert stats.constructions == 0
        assert second.result.construction_path == "cache"
        assert second.result.converged
        assert np.array_equal(
            second.operator.to_dense(), first.operator.to_dense()
        )

    def test_loaded_operator_factors_and_solves(
        self, persist_points, persist_kernel, tmp_path
    ):
        Session(persist_points, leaf_size=LEAF, seed=1, cache_dir=tmp_path).compress(
            persist_kernel, tol=1e-8
        )
        warm = Session(persist_points, leaf_size=LEAF, seed=1, cache_dir=tmp_path)
        solve = (
            warm.compress(persist_kernel, tol=1e-8)
            .factor(noise=1e-2)
            .solve(np.ones(N))
        )
        assert warm.context.statistics.artifact_cache_hits == 1
        assert solve.converged

    def test_in_memory_result_cache_still_first(
        self, persist_points, persist_kernel, tmp_path
    ):
        sess = Session(persist_points, leaf_size=LEAF, seed=1, cache_dir=tmp_path)
        sess.compress(persist_kernel, tol=1e-6)
        sess.compress(persist_kernel, tol=1e-6)
        stats = sess.context.statistics
        assert stats.result_cache_hits == 1
        assert stats.artifact_cache_hits == 0

    def test_generator_seed_disables_artifact_cache(
        self, persist_points, persist_kernel, tmp_path
    ):
        from repro import GeometryContext

        context = GeometryContext(
            persist_points,
            leaf_size=LEAF,
            seed=np.random.default_rng(0),
            artifact_cache=ArtifactCache(tmp_path),
        )
        assert context.artifact_cache is None
        context.construct(persist_kernel, tolerance=1e-6)
        assert context.statistics.artifact_cache_hits == 0


@pytest.mark.slow
class TestAcceptance:
    def test_warm_compress_speedup_4096(self, tmp_path):
        """Cached re-compression at N=4096 beats cold construction >= 10x
        (override the floor with REPRO_PERSIST_SPEEDUP_MIN for slow I/O)."""
        n = 4096
        points = uniform_cube_points(n, dim=2, seed=7)
        kernel = ExponentialKernel(length_scale=0.2)
        cache = ArtifactCache(tmp_path)
        kwargs = dict(tol=1e-6, leaf_size=64, seed=3, cache=cache)

        start = time.perf_counter()
        cold = compress(points, kernel, **kwargs)
        cold_seconds = time.perf_counter() - start
        assert cache.misses == 1

        start = time.perf_counter()
        warm = compress(points, kernel, **kwargs)
        warm_seconds = time.perf_counter() - start
        assert cache.hits == 1
        assert np.array_equal(warm.to_dense(), cold.to_dense())

        floor = float(os.environ.get("REPRO_PERSIST_SPEEDUP_MIN", "10.0"))
        speedup = cold_seconds / max(warm_seconds, 1e-9)
        assert speedup >= floor, (
            f"warm load {warm_seconds:.3f}s vs cold construction "
            f"{cold_seconds:.3f}s: speedup {speedup:.1f}x < {floor:.1f}x"
        )


class TestIntegrityHardening:
    """Container v2 checksums, truncation detection, corruption policies and
    the cache directory lock (the resilience PR's persistence hardening)."""

    @pytest.fixture()
    def small_artifact(self, tmp_path):
        path = tmp_path / "small.repro"
        a = np.arange(20.0).reshape(4, 5)
        b = np.arange(6, dtype=np.int64)
        write_artifact(path, "test", 1, {"k": 1}, [("a", a), ("b", b)])
        return path, a, b

    def test_v2_writes_checksums(self, small_artifact):
        path, a, b = small_artifact
        header, buffers = read_artifact(path, verify=True)
        assert header["container_version"] == 2
        assert all(len(e["sha256"]) == 64 for e in header["buffers"])
        assert np.array_equal(buffers["a"], a)
        assert np.array_equal(buffers["b"], b)

    def test_verify_catches_flipped_payload_byte(self, small_artifact, tmp_path):
        path, _, _ = small_artifact
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        bad = tmp_path / "flipped.repro"
        bad.write_bytes(bytes(data))
        read_artifact(bad)  # lazy read does not touch the payload
        with pytest.raises(ArtifactFormatError, match="checksum"):
            read_artifact(bad, verify=True)

    def test_zero_byte_file(self, tmp_path):
        path = tmp_path / "zero.repro"
        path.write_bytes(b"")
        with pytest.raises(ArtifactFormatError, match="truncated"):
            read_artifact(path)

    def test_bogus_header_length(self, tmp_path):
        from repro.persist.format import CONTAINER_VERSION, _PREAMBLE

        path = tmp_path / "huge.repro"
        path.write_bytes(_PREAMBLE.pack(MAGIC, CONTAINER_VERSION, 10**15))
        with pytest.raises(ArtifactFormatError, match="exceeds the file size"):
            read_artifact(path)

    def test_v1_artifact_without_digests_still_reads(self, tmp_path):
        # A hand-built version-1 container (no sha256 entries) must load even
        # under verify=True: verification is skipped, not failed.
        import json

        from repro.persist.format import _PREAMBLE, _align

        a = np.arange(12.0).reshape(3, 4)
        header = {
            "container_version": 1,
            "format": "test",
            "format_version": 1,
            "meta": {},
            "buffers": [
                {"name": "a", "dtype": a.dtype.str, "shape": list(a.shape),
                 "offset": 0, "nbytes": int(a.nbytes)}
            ],
        }
        payload = json.dumps(header, separators=(",", ":")).encode()
        data_start = _align(_PREAMBLE.size + len(payload))
        path = tmp_path / "v1.repro"
        with open(path, "wb") as fh:
            fh.write(_PREAMBLE.pack(MAGIC, 1, len(payload)))
            fh.write(payload)
            fh.write(b"\0" * (data_start - _PREAMBLE.size - len(payload)))
            fh.write(a.tobytes())
        _, buffers = read_artifact(path, verify=True)
        assert np.array_equal(buffers["a"], a)

    def _corrupt_entry(self, cache, key):
        path = cache.path_for(key)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF
        path.write_bytes(bytes(data))
        return path

    @pytest.fixture()
    def cached_operator(self, persist_points, persist_kernel, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        op = compress(persist_points, persist_kernel, tol=TOL, seed=3)
        cache.put("k", op)
        return cache, op

    def test_corruption_evicts_by_default(self, cached_operator):
        cache, _ = cached_operator
        path = self._corrupt_entry(cache, "k")
        assert cache.get("k", verify=True) is None
        assert not path.exists()

    def test_corruption_raise_mode(self, cached_operator):
        from repro.resilience import ArtifactIntegrityError

        cache, _ = cached_operator
        path = self._corrupt_entry(cache, "k")
        with pytest.raises(ArtifactIntegrityError) as excinfo:
            cache.get("k", on_corruption="raise", verify=True)
        assert excinfo.value.stage == "persist.get"
        assert path.exists()  # kept for forensics

    def test_corruption_warn_mode(self, cached_operator):
        import logging

        cache, _ = cached_operator
        path = self._corrupt_entry(cache, "k")
        records: list = []
        handler = logging.Handler()
        handler.emit = lambda record: records.append(record.getMessage())
        logger = logging.getLogger("repro.resilience")
        logger.addHandler(handler)
        try:
            assert cache.get("k", on_corruption="warn", verify=True) is None
        finally:
            logger.removeHandler(handler)
        assert not path.exists()
        assert any("artifact-corrupted" in m for m in records)

    def test_zero_byte_cache_entry_is_a_miss(self, cached_operator):
        cache, _ = cached_operator
        cache.path_for("k").write_bytes(b"")
        assert cache.get("k") is None
        assert not cache.path_for("k").exists()

    def test_corrupt_artifact_fault_through_compress(
        self, persist_points, persist_kernel, tmp_path
    ):
        from repro import ExecutionPolicy

        cdir = tmp_path / "cache"
        kwargs = dict(tol=TOL, seed=3, cache_dir=cdir)
        faulty = ExecutionPolicy(
            faults="corrupt-artifact-buffer:nth=1", recovery="recover"
        )
        first = compress(persist_points, persist_kernel, policy=faulty, **kwargs)
        # The artifact on disk is now corrupted; the next compress must
        # detect it, evict and reconstruct rather than return garbage.
        healed = compress(
            persist_points, persist_kernel,
            policy=ExecutionPolicy(recovery="recover"), **kwargs
        )
        x = np.random.default_rng(0).standard_normal(len(persist_points))
        assert np.allclose(first.matvec(x), healed.matvec(x))

    def test_corrupt_artifact_fault_strict_raises(
        self, persist_points, persist_kernel, tmp_path
    ):
        from repro import ExecutionPolicy
        from repro.resilience import ArtifactIntegrityError

        cdir = tmp_path / "cache"
        kwargs = dict(tol=TOL, seed=3, cache_dir=cdir)
        compress(
            persist_points, persist_kernel,
            policy=ExecutionPolicy(
                faults="corrupt-artifact-buffer:nth=1", recovery="recover"
            ),
            **kwargs,
        )
        with pytest.raises(ArtifactIntegrityError):
            compress(
                persist_points, persist_kernel,
                policy=ExecutionPolicy(recovery="strict"), **kwargs
            )

    def test_lock_times_out_then_steals_stale(self, tmp_path):
        from repro.persist.cache import ArtifactLockError, _DirectoryLock

        ldir = tmp_path / "locked"
        ldir.mkdir()
        lock_path = ldir / ".repro-cache.lock"
        lock_path.write_text("99999")  # a foreign holder
        with pytest.raises(ArtifactLockError):
            with _DirectoryLock(ldir, timeout=0.15, stale_seconds=30.0):
                pass
        # Backdate the lock past the staleness horizon: it must be stolen.
        old = os.path.getmtime(lock_path) - 120
        os.utime(lock_path, (old, old))
        with _DirectoryLock(ldir, timeout=0.5, stale_seconds=30.0):
            pass
        assert not lock_path.exists()

    def test_put_is_lock_guarded(self, persist_points, persist_kernel, tmp_path):
        # A held (fresh) lock makes put fail typed instead of racing.
        from repro.persist.cache import ArtifactLockError

        cache = ArtifactCache(tmp_path, lock_timeout=0.15)
        op = compress(persist_points, persist_kernel, tol=TOL, seed=3)
        (tmp_path / ".repro-cache.lock").write_text("99999")
        with pytest.raises(ArtifactLockError):
            cache.put("k", op)


# -------------------------------------------------------------- thread safety
class TestArtifactCacheThreadSafety:
    """The serving registry resolves models through one shared cache from
    concurrent requests; hammer in-process get/put and check the LRU
    bookkeeping stays exact (cross-process safety is the directory lock's
    job, exercised elsewhere)."""

    WORKERS = 4
    ITERS = 3

    @pytest.fixture(scope="class")
    def hammer_operator(self, persist_points, persist_kernel):
        return compress(
            persist_points, persist_kernel, tol=1e-6, leaf_size=LEAF, seed=2
        )

    def test_concurrent_get_put(self, hammer_operator, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = [f"hammer-{w}" for w in range(self.WORKERS)]
        barrier = threading.Barrier(self.WORKERS)
        errors = []

        def worker(wid):
            try:
                cache.put(keys[wid], hammer_operator)
                barrier.wait()  # every key resident before the gets start
                for _ in range(self.ITERS):
                    # re-put races against the other workers' gets: the
                    # atomic-rename overwrite must always leave a loadable
                    # entry, and every hit/miss must be counted exactly once
                    cache.put(keys[wid], hammer_operator)
                    for key in keys:
                        loaded = cache.get(key)
                        assert loaded is not None
                        assert loaded.shape == hammer_operator.shape
                    assert cache.get(f"missing-{wid}") is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert cache.hits == self.WORKERS * self.ITERS * len(keys)
        assert cache.misses == self.WORKERS * self.ITERS
        stats = cache.statistics()
        assert stats["hits"] == cache.hits
        assert stats["entries"] == len(keys)

    def test_concurrent_eviction_budget(self, hammer_operator, tmp_path):
        entry_bytes = os.path.getsize(
            ArtifactCache(tmp_path / "probe").put("probe", hammer_operator)
        )
        cache = ArtifactCache(tmp_path / "evict",
                              max_bytes=int(entry_bytes * 2.5))
        errors = []

        def worker(wid):
            try:
                for i in range(self.ITERS):
                    cache.put(f"evict-{wid}-{i}", hammer_operator)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        stats = cache.statistics()
        # budget enforced under concurrency: at most 2 entries survive
        assert stats["entries"] <= 2
        assert stats["bytes"] <= entry_bytes * 2.5
        assert stats["evictions"] >= self.WORKERS * self.ITERS - 2

"""Tests for repro.geometry: bounding boxes and point-set generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    BoundingBox,
    grid_points,
    plane_points,
    random_sphere_points,
    uniform_cube_points,
)


class TestBoundingBox:
    def test_from_points_tight(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        box = BoundingBox.from_points(pts)
        assert np.array_equal(box.low, [0.0, -1.0])
        assert np.array_equal(box.high, [2.0, 1.0])

    def test_diameter_and_center(self):
        box = BoundingBox(np.zeros(3), np.array([3.0, 4.0, 0.0]))
        assert box.diameter() == pytest.approx(5.0)
        assert np.array_equal(box.center, [1.5, 2.0, 0.0])

    def test_longest_axis(self):
        box = BoundingBox(np.zeros(3), np.array([1.0, 5.0, 2.0]))
        assert box.longest_axis() == 1

    def test_distance_disjoint(self):
        a = BoundingBox(np.zeros(2), np.ones(2))
        b = BoundingBox(np.array([4.0, 5.0]), np.array([5.0, 6.0]))
        assert a.distance(b) == pytest.approx(np.sqrt(9 + 16))

    def test_distance_overlapping_is_zero(self):
        a = BoundingBox(np.zeros(2), np.ones(2))
        b = BoundingBox(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        assert a.distance(b) == 0.0
        assert b.distance(a) == 0.0

    def test_distance_symmetric(self):
        a = BoundingBox(np.zeros(3), np.ones(3))
        b = BoundingBox(np.full(3, 2.0), np.full(3, 3.0))
        assert a.distance(b) == pytest.approx(b.distance(a))

    def test_contains(self):
        box = BoundingBox(np.zeros(2), np.ones(2))
        pts = np.array([[0.5, 0.5], [1.5, 0.5]])
        assert box.contains(pts).tolist() == [True, False]

    def test_union(self):
        a = BoundingBox(np.zeros(2), np.ones(2))
        b = BoundingBox(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        u = a.union(b)
        assert np.array_equal(u.low, [0.0, -1.0])
        assert np.array_equal(u.high, [3.0, 1.0])

    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(np.ones(2), np.zeros(2))

    def test_empty_points_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.zeros((0, 3)))

    @given(
        st.lists(
            st.tuples(
                st.floats(-10, 10, allow_nan=False),
                st.floats(-10, 10, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_from_points_contains_all(self, raw_points):
        pts = np.array(raw_points, dtype=float)
        box = BoundingBox.from_points(pts)
        assert bool(np.all(box.contains(pts, atol=1e-12)))


class TestPointClouds:
    def test_uniform_cube_shape_and_range(self):
        pts = uniform_cube_points(100, dim=3, seed=0, side=2.0)
        assert pts.shape == (100, 3)
        assert pts.min() >= 0.0 and pts.max() <= 2.0

    def test_uniform_cube_reproducible(self):
        assert np.array_equal(
            uniform_cube_points(50, seed=7), uniform_cube_points(50, seed=7)
        )

    def test_uniform_cube_invalid_n(self):
        with pytest.raises(ValueError):
            uniform_cube_points(0)

    def test_grid_points(self):
        pts = grid_points((2, 3), spacing=0.5)
        assert pts.shape == (6, 2)
        assert np.array_equal(pts[0], [0.0, 0.0])
        assert np.array_equal(pts[-1], [0.5, 1.0])

    def test_grid_points_invalid(self):
        with pytest.raises(ValueError):
            grid_points((0, 3))

    def test_plane_points_embedded_in_3d(self):
        pts = plane_points(3, 4, spacing=1.0, z=2.5)
        assert pts.shape == (12, 3)
        assert np.all(pts[:, 2] == 2.5)

    def test_sphere_points_on_sphere(self):
        pts = random_sphere_points(200, seed=1, radius=2.0)
        radii = np.linalg.norm(pts, axis=1)
        assert np.allclose(radii, 2.0)

    def test_sphere_invalid_n(self):
        with pytest.raises(ValueError):
            random_sphere_points(-1)

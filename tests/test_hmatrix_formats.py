"""Tests for ACA, HODLR, the non-nested H matrix and the HSS wrapper."""

import numpy as np
import pytest

from repro import (
    DenseEntryExtractor,
    DenseOperator,
    WeakAdmissibility,
    build_block_partition,
    build_hodlr,
    compress,
)
from repro.hmatrix.aca import aca_from_entry_function, aca_low_rank
from repro.hmatrix.hmatrix import build_hmatrix_aca


class TestACA:
    def test_exact_low_rank_recovery(self):
        rng = np.random.default_rng(0)
        block = rng.standard_normal((40, 3)) @ rng.standard_normal((3, 30))
        u, v = aca_low_rank(
            lambda i: block[i], lambda j: block[:, j], 40, 30, tol=1e-12
        )
        assert u.shape[1] <= 6
        assert np.linalg.norm(u @ v.T - block) < 1e-8 * np.linalg.norm(block)

    def test_smooth_kernel_block(self, exp_kernel):
        rng = np.random.default_rng(1)
        left = rng.random((60, 2)) * 0.2
        right = rng.random((50, 2)) * 0.2 + 0.8
        block = exp_kernel.evaluate(left, right)
        u, v = aca_low_rank(
            lambda i: block[i], lambda j: block[:, j], 60, 50, tol=1e-8
        )
        assert np.linalg.norm(u @ v.T - block) < 1e-5 * np.linalg.norm(block)
        assert u.shape[1] < 30

    def test_max_rank_cap(self):
        rng = np.random.default_rng(2)
        block = rng.standard_normal((20, 20))
        u, v = aca_low_rank(lambda i: block[i], lambda j: block[:, j], 20, 20, max_rank=5)
        assert u.shape[1] <= 5

    def test_zero_block(self):
        block = np.zeros((10, 8))
        u, v = aca_low_rank(lambda i: block[i], lambda j: block[:, j], 10, 8)
        assert u.shape[1] == 0 and v.shape[1] == 0

    def test_empty_block(self):
        u, v = aca_low_rank(lambda i: None, lambda j: None, 0, 5)
        assert u.shape == (0, 0) and v.shape == (5, 0)

    def test_entry_function_wrapper(self, dense_cov_2d):
        rows = np.arange(0, 50)
        cols = np.arange(400, 460)
        block = dense_cov_2d[np.ix_(rows, cols)]
        u, v = aca_from_entry_function(
            lambda r, c: dense_cov_2d[np.ix_(r, c)], rows, cols, tol=1e-9
        )
        assert np.linalg.norm(u @ v.T - block) < 1e-5 * np.linalg.norm(block)


class TestHODLR:
    @pytest.fixture(scope="class")
    def hodlr(self, tree_2d, dense_cov_2d):
        return build_hodlr(
            tree_2d, lambda r, c: dense_cov_2d[np.ix_(r, c)], tol=1e-7
        )

    def test_accuracy(self, hodlr, dense_cov_2d, rel_err):
        assert rel_err(hodlr.to_dense(permuted=True), dense_cov_2d) < 1e-4

    def test_matvec(self, hodlr, dense_cov_2d, rel_err):
        x = np.random.default_rng(0).standard_normal((dense_cov_2d.shape[0], 3))
        assert rel_err(hodlr.matvec(x, permuted=True), dense_cov_2d @ x) < 1e-4

    def test_structure(self, hodlr, tree_2d):
        # one off-diagonal block per direction per non-root node
        assert len(hodlr.off_diagonal) == tree_2d.num_nodes - 1
        assert len(hodlr.diagonal) == len(list(tree_2d.leaves()))

    def test_memory_and_ranks(self, hodlr, dense_cov_2d):
        mem = hodlr.memory_bytes()
        assert mem["total"] == mem["low_rank"] + mem["dense"]
        assert mem["total"] < dense_cov_2d.nbytes
        lo, hi = hodlr.rank_range()
        assert 0 < lo <= hi

    def test_statistics(self, hodlr):
        stats = hodlr.statistics()
        assert stats["num_low_rank_blocks"] == len(hodlr.off_diagonal)


class TestHMatrixACA:
    @pytest.fixture(scope="class")
    def hmatrix(self, partition_2d, dense_cov_2d):
        return build_hmatrix_aca(
            partition_2d, lambda r, c: dense_cov_2d[np.ix_(r, c)], tol=1e-7
        )

    def test_accuracy(self, hmatrix, dense_cov_2d, rel_err):
        assert rel_err(hmatrix.to_dense(permuted=True), dense_cov_2d) < 1e-4

    def test_matvec(self, hmatrix, dense_cov_2d, rel_err):
        x = np.random.default_rng(1).standard_normal(dense_cov_2d.shape[0])
        assert rel_err(hmatrix.matvec(x, permuted=True), dense_cov_2d @ x) < 1e-4

    def test_block_counts_match_partition(self, hmatrix, partition_2d):
        assert len(hmatrix.low_rank) == partition_2d.num_admissible_blocks()
        assert len(hmatrix.dense) == partition_2d.num_inadmissible_blocks()

    def test_memory(self, hmatrix, dense_cov_2d):
        assert 0 < hmatrix.memory_bytes()["total"] < dense_cov_2d.nbytes

    def test_h2_memory_beats_h_memory(self, hmatrix, cov_h2):
        """Nested bases should not use more memory than independent block factors."""
        assert cov_h2.memory_bytes()["total"] <= 1.2 * hmatrix.memory_bytes()["total"]


class TestHSS:
    def test_hss_accuracy(self, tree_2d, dense_cov_2d, rel_err):
        result = compress(
            format="hss",
            tree=tree_2d,
            operator=DenseOperator(dense_cov_2d),
            extractor=DenseEntryExtractor(dense_cov_2d),
            tol=1e-6,
            sample_block_size=64,
            seed=3,
            full_result=True,
        )
        assert rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d) < 1e-3

    def test_hss_partition_is_weak(self, tree_2d, dense_cov_2d):
        result = compress(
            format="hss",
            tree=tree_2d,
            operator=DenseOperator(dense_cov_2d),
            extractor=DenseEntryExtractor(dense_cov_2d),
            tol=1e-4,
            sample_block_size=32,
            seed=4,
            full_result=True,
        )
        partition = result.matrix.partition
        assert isinstance(partition.admissibility, WeakAdmissibility)
        # weak partition: dense blocks only on the diagonal
        for s in tree_2d.leaves():
            assert partition.near(s) == [s]

    def test_hss_ranks_larger_than_h2(self, tree_2d, dense_cov_2d, cov_h2_result):
        """Weak admissibility forces larger ranks than the strong-admissibility H2."""
        result = compress(
            format="hss",
            tree=tree_2d,
            operator=DenseOperator(dense_cov_2d),
            extractor=DenseEntryExtractor(dense_cov_2d),
            tol=1e-7,
            sample_block_size=64,
            seed=5,
            full_result=True,
        )
        assert result.rank_range[1] >= cov_h2_result.rank_range[1]

"""Integration tests of the bottom-up sketching H2 construction (Algorithm 1)."""

import numpy as np
import pytest

from repro import (
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    ClusterTree,
    H2Constructor,
    HelmholtzKernel,
    KernelEntryExtractor,
    KernelMatVecOperator,
    WeakAdmissibility,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import construction_error


def build_problem(kernel, n=700, dim=2, leaf_size=32, eta=0.7, seed=11):
    points = uniform_cube_points(n, dim=dim, seed=seed)
    tree = ClusterTree.build(points, leaf_size=leaf_size)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=eta))
    dense = kernel.matrix(tree.points)
    return tree, partition, dense


class TestConfig:
    def test_defaults(self):
        cfg = ConstructionConfig()
        assert cfg.adaptive and cfg.tolerance == 1e-6
        assert cfg.effective_initial_samples == cfg.sample_block_size

    def test_fixed_sample_helper(self):
        cfg = ConstructionConfig().fixed_sample(256)
        assert not cfg.adaptive and cfg.initial_samples == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstructionConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            ConstructionConfig(sample_block_size=0)
        with pytest.raises(ValueError):
            ConstructionConfig(initial_samples=-4)
        with pytest.raises(ValueError):
            ConstructionConfig(id_tolerance_mode="bogus")
        with pytest.raises(ValueError):
            ConstructionConfig(convergence_safety_factor=0.0)

    def test_dimension_mismatch_rejected(self, partition_2d):
        wrong = np.eye(10)
        with pytest.raises(ValueError):
            H2Constructor(
                partition_2d, DenseOperator(wrong), DenseEntryExtractor(wrong)
            )


class TestCovarianceAccuracy:
    def test_adaptive_meets_tolerance(self, partition_2d, dense_cov_2d, rel_err):
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=1,
        ).construct()
        err = rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d)
        assert err < 1e-4  # measured errors are typically ~1e-7
        assert result.converged

    def test_fixed_sample_variant(self, partition_2d, dense_cov_2d, rel_err):
        cfg = ConstructionConfig(tolerance=1e-6, adaptive=False, initial_samples=128)
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=2,
        ).construct()
        assert result.total_samples == 128
        err = rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d)
        assert err < 1e-4

    def test_tolerance_controls_accuracy(self, partition_2d, dense_cov_2d, rel_err):
        errors = []
        for tol in (1e-2, 1e-4, 1e-7):
            cfg = ConstructionConfig(tolerance=tol, sample_block_size=32)
            result = H2Constructor(
                partition_2d,
                DenseOperator(dense_cov_2d),
                DenseEntryExtractor(dense_cov_2d),
                cfg,
                seed=3,
            ).construct()
            errors.append(rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d))
        assert errors[0] > errors[2]
        assert errors[2] < 1e-5

    def test_looser_tolerance_smaller_ranks_and_memory(self, partition_2d, dense_cov_2d):
        results = []
        for tol in (1e-2, 1e-8):
            cfg = ConstructionConfig(tolerance=tol, sample_block_size=32)
            results.append(
                H2Constructor(
                    partition_2d,
                    DenseOperator(dense_cov_2d),
                    DenseEntryExtractor(dense_cov_2d),
                    cfg,
                    seed=4,
                ).construct()
            )
        assert results[0].rank_range[1] <= results[1].rank_range[1]
        assert results[0].memory_mb() <= results[1].memory_mb()

    def test_kernel_operator_path(self, tree_2d, partition_2d, exp_kernel, dense_cov_2d, rel_err):
        """Construction through the matrix-free kernel operator and extractor."""
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = H2Constructor(
            partition_2d,
            KernelMatVecOperator(exp_kernel, tree_2d.points, row_block=256),
            KernelEntryExtractor(exp_kernel, tree_2d.points),
            cfg,
            seed=5,
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d) < 1e-4

    def test_absolute_id_tolerance_mode(self, partition_2d, dense_cov_2d, rel_err):
        cfg = ConstructionConfig(
            tolerance=1e-6, sample_block_size=32, id_tolerance_mode="absolute"
        )
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=6,
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d) < 1e-4


class TestHelmholtzAccuracy:
    def test_ie_kernel(self, rel_err):
        kernel = HelmholtzKernel(wavenumber=3.0, diagonal_value=0.0)
        tree, partition, dense = build_problem(kernel, n=700, dim=2, seed=21)
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        result = H2Constructor(
            partition, DenseOperator(dense), DenseEntryExtractor(dense), cfg, seed=7
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-4

    def test_3d_problem(self, rel_err):
        kernel = ExponentialKernel(0.2)
        tree, partition, dense = build_problem(
            kernel, n=800, dim=3, leaf_size=16, eta=1.0, seed=22
        )
        assert partition.num_admissible_blocks() > 0
        cfg = ConstructionConfig(tolerance=1e-5, sample_block_size=16)
        result = H2Constructor(
            partition, DenseOperator(dense), DenseEntryExtractor(dense), cfg, seed=8
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-3


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_both_backends_accurate(self, backend, partition_2d, dense_cov_2d, rel_err):
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32, backend=backend)
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=9,
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d) < 1e-4

    def test_backends_identical_results_with_same_seed(self, partition_2d, dense_cov_2d):
        results = {}
        for backend in ("serial", "vectorized"):
            cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32, backend=backend)
            results[backend] = H2Constructor(
                partition_2d,
                DenseOperator(dense_cov_2d),
                DenseEntryExtractor(dense_cov_2d),
                cfg,
                seed=10,
            ).construct()
        a = results["serial"].matrix.to_dense(permuted=True)
        b = results["vectorized"].matrix.to_dense(permuted=True)
        assert np.allclose(a, b, atol=1e-8)
        assert results["serial"].total_samples == results["vectorized"].total_samples


class TestAdaptiveSampling:
    def test_adaptive_adds_samples_when_block_too_small(self, partition_2d, dense_cov_2d):
        """With a tiny sample block the adaptive loop must top up the samples."""
        cfg = ConstructionConfig(tolerance=1e-8, sample_block_size=8, initial_samples=8)
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=11,
        ).construct()
        assert result.total_samples > 8
        assert any(level.sampling_rounds > 1 for level in result.levels)

    def test_fixed_never_adds_samples(self, partition_2d, dense_cov_2d):
        cfg = ConstructionConfig(tolerance=1e-8, adaptive=False, initial_samples=48)
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=12,
        ).construct()
        assert result.total_samples == 48
        assert all(level.sampling_rounds == 1 for level in result.levels)

    def test_max_samples_cap_respected(self, partition_2d, dense_cov_2d):
        cfg = ConstructionConfig(
            tolerance=1e-12, sample_block_size=8, initial_samples=8, max_samples=24
        )
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=13,
        ).construct()
        assert result.total_samples <= 24

    def test_adaptive_uses_fewer_samples_than_paper_fixed(self, partition_2d, dense_cov_2d):
        """Table II: adaptive sampling needs far fewer vectors than a large fixed block."""
        adaptive = H2Constructor(
            partition_2d,
            DenseOperator(dense_cov_2d),
            DenseEntryExtractor(dense_cov_2d),
            ConstructionConfig(tolerance=1e-6, sample_block_size=32),
            seed=14,
        ).construct()
        assert adaptive.total_samples < 256

    def test_max_rank_cap(self, partition_2d, dense_cov_2d):
        cfg = ConstructionConfig(tolerance=1e-10, sample_block_size=32, max_rank=5)
        result = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=15,
        ).construct()
        assert result.rank_range[1] <= 5


class TestResultMetadata:
    def test_summary_and_counters(self, cov_h2_result):
        summary = cov_h2_result.summary()
        assert summary["n"] == cov_h2_result.matrix.num_rows
        assert cov_h2_result.total_kernel_launches > 0
        assert cov_h2_result.total_kernel_calls > 0
        assert cov_h2_result.total_kernel_calls <= cov_h2_result.total_kernel_launches
        assert cov_h2_result.entries_evaluated > 0
        assert cov_h2_result.operator_applications >= 1

    def test_phase_times_cover_known_phases(self, cov_h2_result):
        phases = set(cov_h2_result.phase_seconds)
        assert {"sampling", "entry_generation", "bsr_gemm", "id"}.issubset(phases)
        assert all(v >= 0 for v in cov_h2_result.phase_seconds.values())

    def test_level_reports(self, cov_h2_result):
        levels = cov_h2_result.levels
        assert len(levels) >= 2
        depths = [lvl.depth for lvl in levels]
        assert depths == sorted(depths, reverse=True)
        assert levels[0].num_nodes == 2 ** levels[0].depth

    def test_entries_evaluated_matches_stored_blocks(self, cov_h2_result):
        """Only dense and coupling blocks are evaluated directly (O(r N) asymptotically)."""
        n = cov_h2_result.matrix.num_rows
        matrix = cov_h2_result.matrix
        stored = sum(d.size for d in matrix.dense.values()) + sum(
            b.size for b in matrix.coupling.values()
        )
        assert cov_h2_result.entries_evaluated == stored
        assert cov_h2_result.entries_evaluated < n * n

    def test_norm_estimate_positive(self, cov_h2_result):
        assert cov_h2_result.norm_estimate > 0

    def test_power_method_error_estimate(self, cov_h2_result, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        err = construction_error(cov_h2_result.matrix, op, num_iterations=8, seed=0)
        assert err < 1e-4


class TestDegenerateStructures:
    def test_fully_dense_problem(self, rel_err):
        """A tiny 3D problem with eta=0.5 has no admissible blocks: pure dense storage."""
        kernel = ExponentialKernel(0.2)
        points = uniform_cube_points(120, dim=3, seed=30)
        tree = ClusterTree.build(points, leaf_size=32)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.5))
        dense = kernel.matrix(tree.points)
        result = H2Constructor(
            partition, DenseOperator(dense), DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6), seed=16,
        ).construct()
        if partition.num_admissible_blocks() == 0:
            assert result.total_samples == 0
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-10

    def test_weak_admissibility_hss_case(self, tree_2d, dense_cov_2d, rel_err):
        partition = build_block_partition(tree_2d, WeakAdmissibility())
        result = H2Constructor(
            partition, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            ConstructionConfig(tolerance=1e-6, sample_block_size=64), seed=17,
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense_cov_2d) < 1e-3

    def test_single_leaf_tree(self, rel_err):
        kernel = ExponentialKernel(0.2)
        points = uniform_cube_points(40, dim=2, seed=31)
        tree = ClusterTree.build(points, leaf_size=64)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = kernel.matrix(tree.points)
        result = H2Constructor(
            partition, DenseOperator(dense), DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6), seed=18,
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-12

    def test_reproducible_with_seed(self, partition_2d, dense_cov_2d):
        cfg = ConstructionConfig(tolerance=1e-6, sample_block_size=32)
        a = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=99,
        ).construct()
        b = H2Constructor(
            partition_2d, DenseOperator(dense_cov_2d), DenseEntryExtractor(dense_cov_2d),
            cfg, seed=99,
        ).construct()
        assert np.allclose(
            a.matrix.to_dense(permuted=True), b.matrix.to_dense(permuted=True)
        )
        assert a.total_samples == b.total_samples

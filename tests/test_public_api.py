"""Guards on the public API surface of the top-level ``repro`` package.

* ``repro.__all__`` stays alphabetically sorted, duplicate-free, and every
  name is actually importable;
* the façade names are part of the contract;
* the module-docstring quickstart stays executable (the same docstring runs
  under ``pytest --doctest-modules src/repro/__init__.py`` in CI).
"""

from __future__ import annotations

import doctest

import repro


class TestAllListing:
    def test_sorted(self):
        assert repro.__all__ == sorted(repro.__all__), (
            "repro.__all__ must stay alphabetically sorted"
        )

    def test_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_name_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_facade_names_exported(self):
        for name in (
            "compress",
            "convert",
            "register_conversion",
            "Session",
            "ExecutionPolicy",
            "HierarchicalOperator",
            "HierarchicalOperatorMixin",
            "backends",
        ):
            assert name in repro.__all__, name

    def test_legacy_names_still_exported(self):
        for name in ("build_hss", "hodlr_from_h2", "H2Constructor", "build_hodlr"):
            assert name in repro.__all__, name


class TestQuickstartDoctest:
    def test_module_docstring_runs(self):
        parser = doctest.DocTestParser()
        test = parser.get_doctest(
            repro.__doc__, {"repro": repro}, "repro.__doc__", None, 0
        )
        runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
        runner.run(test)
        assert runner.failures == 0, "the repro quickstart docstring must execute"
        # The quickstart must exercise the façade, not the legacy boilerplate.
        assert "repro.compress(" in repro.__doc__
        assert "Session(" in repro.__doc__

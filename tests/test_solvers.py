"""Tests for the solver subsystem (Krylov, HODLR factorization, preconditioning,
multifrontal solve) including the acceptance criteria on the 4096-point SPD
covariance system."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import (
    ClusterTree,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    HODLRFactorization,
    HierarchicalPreconditioner,
    LowRankMatrix,
    MultifrontalSolver,
    as_linear_operator,
    bicgstab,
    build_hodlr,
    compress,
    cg,
    gmres,
    convert,
    uniform_cube_points,
)
from repro.diagnostics import convergence_table, residual_series
from repro.multifrontal import poisson_matrix


@pytest.fixture(scope="module")
def spd_system():
    """A small dense SPD system."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((60, 60))
    a = a @ a.T + 60.0 * np.eye(60)
    b = rng.standard_normal(60)
    return a, b


@pytest.fixture(scope="module")
def covariance_4096():
    """The acceptance-criteria system: a 4096-point SPD covariance matrix.

    Exponential covariance over 4096 2D points plus a small nugget; returned
    in both the original ordering (``a``) and the cluster-tree ordering
    (``a_perm``), together with the tree and a right-hand side.
    """
    n = 4096
    points = uniform_cube_points(n, dim=2, seed=7)
    tree = ClusterTree.build(points, leaf_size=64)
    kernel = ExponentialKernel(length_scale=0.2)
    a = kernel.matrix(points) + 0.01 * np.eye(n)
    a_perm = a[np.ix_(tree.perm, tree.perm)]
    b = np.random.default_rng(3).standard_normal(n)
    return {"a": a, "a_perm": a_perm, "tree": tree, "b": b}


class TestLinearOperatorAdapter:
    def test_dense_array(self):
        a = np.arange(9.0).reshape(3, 3)
        op = as_linear_operator(a)
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(op @ x, a @ x)
        assert np.allclose(op.rmatvec(x), a.T @ x)

    def test_sparse_matrix(self):
        a = poisson_matrix((4, 4))
        op = as_linear_operator(a)
        x = np.ones(16)
        assert np.allclose(op.matvec(x), a @ x)

    def test_h2_matrix(self, cov_h2):
        op = as_linear_operator(cov_h2)
        x = np.random.default_rng(1).standard_normal(op.n)
        assert np.allclose(op.matvec(x), cov_h2.matvec(x))

    def test_low_rank(self):
        rng = np.random.default_rng(2)
        lr = LowRankMatrix(rng.standard_normal((8, 2)), rng.standard_normal((8, 2)))
        op = as_linear_operator(lr)
        x = rng.standard_normal(8)
        assert np.allclose(op @ x, lr.to_dense() @ x)

    def test_callable_requires_dimension(self):
        with pytest.raises(ValueError):
            as_linear_operator(lambda x: x)
        op = as_linear_operator(lambda x: 2.0 * x, n=5)
        assert np.allclose(op.matvec(np.ones(5)), 2.0 * np.ones(5))

    def test_block_input(self):
        a = np.random.default_rng(3).standard_normal((6, 6))
        x = np.random.default_rng(4).standard_normal((6, 3))
        assert np.allclose(as_linear_operator(a).matvec(x), a @ x)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            as_linear_operator(np.eye(4)).matvec(np.ones(5))

    def test_block_rhs_routed_through_matmat(self, cov_h2):
        """Block RHS must hit the batched multi-RHS apply, not k matvecs."""
        calls = {"matmat": 0}
        original = cov_h2.matmat

        class Spy:
            shape = cov_h2.shape

            def matvec(self, x):
                return cov_h2.matvec(x)

            def matmat(self, x):
                calls["matmat"] += 1
                return original(x)

        op = as_linear_operator(Spy())
        block = np.random.default_rng(5).standard_normal((cov_h2.num_rows, 3))
        out = op.matvec(block)
        assert calls["matmat"] == 1
        assert np.allclose(out, cov_h2.matmat(block))

    def test_gmres_iteration_counts_unchanged_by_matmat_routing(self, cov_h2):
        """GMRES(m) on the batched/matmat-routed operator must match the
        legacy column-wise loop operator iteration for iteration."""
        from repro.hmatrix.linear_operator import LinearOperator

        n = cov_h2.num_rows
        b = np.random.default_rng(9).standard_normal(n)
        shift = 0.2  # nugget: the raw covariance is near-singular
        legacy = LinearOperator((n, n), lambda x: cov_h2.matvec_loop(x) + shift * x)
        batched = LinearOperator(
            (n, n),
            lambda x: cov_h2.matvec(x) + shift * x,
            matmat=lambda x: cov_h2.matmat(x) + shift * x,
        )
        result_legacy = gmres(legacy, b, tol=1e-8, restart=25, maxiter=500)
        result_batched = gmres(batched, b, tol=1e-8, restart=25, maxiter=500)
        assert result_batched.converged and result_legacy.converged
        # The regression target: the same iteration count.  The two operators
        # compute the same product with reordered floating-point arithmetic,
        # so on an ill-conditioned system the residual may cross the tolerance
        # one step apart on a different BLAS; allow that single step of slack
        # while requiring the early descent to coincide tightly.
        assert abs(result_batched.iterations - result_legacy.iterations) <= 1
        assert abs(result_batched.matvecs - result_legacy.matvecs) <= 2
        assert np.allclose(
            result_batched.residual_norms[:20], result_legacy.residual_norms[:20],
            rtol=1e-6,
        )
        assert result_batched.final_residual <= 1e-8

    def test_krylov_records_apply_backend(self, cov_h2):
        b = np.random.default_rng(10).standard_normal(cov_h2.num_rows)
        result = cg(cov_h2, b, tol=1e-6, maxiter=2000)
        assert result.extra.get("apply_backend") == "vectorized"
        counter = result.extra["apply_launch_counter"]
        assert counter.total_calls() > 0

    def test_shift_kwarg_builds_shifted_operator(self):
        from repro import ShiftedLinearOperator

        a = np.random.default_rng(11).standard_normal((7, 7))
        op = as_linear_operator(a, shift=0.25)
        assert isinstance(op, ShiftedLinearOperator)
        x = np.random.default_rng(12).standard_normal(7)
        assert np.allclose(op.matvec(x), a @ x + 0.25 * x)
        assert np.allclose(op.rmatvec(x), a.T @ x + 0.25 * x)
        block = np.random.default_rng(13).standard_normal((7, 3))
        assert np.allclose(op.matmat(block), a @ block + 0.25 * block)
        # shift=0 stays on the plain adapter path.
        assert not isinstance(as_linear_operator(a), ShiftedLinearOperator)

    def test_shifted_h2_keeps_apply_diagnostics(self, cov_h2):
        """The shifted wrapper must not hide the H2 apply backend from solvers."""
        b = np.random.default_rng(14).standard_normal(cov_h2.num_rows)
        op = as_linear_operator(cov_h2, shift=0.05)
        result = cg(op, b, tol=1e-8, maxiter=2000)
        assert result.converged
        assert result.extra.get("apply_backend") == "vectorized"
        # The solution solves the shifted system, not the bare covariance.
        residual = b - (cov_h2.matvec(result.x) + 0.05 * result.x)
        assert np.linalg.norm(residual) / np.linalg.norm(b) <= 1e-7


class TestKrylov:
    @pytest.mark.parametrize("solver", [cg, gmres, bicgstab])
    def test_solves_spd_system(self, solver, spd_system):
        a, b = spd_system
        result = solver(a, b, tol=1e-10, maxiter=300)
        assert result.converged
        assert np.linalg.norm(a @ result.x - b) / np.linalg.norm(b) < 1e-9
        assert result.final_residual < 1e-10
        assert result.matvecs > 0

    @pytest.mark.parametrize("solver", [gmres, bicgstab])
    def test_nonsymmetric_system(self, solver):
        rng = np.random.default_rng(5)
        a = np.eye(40) + 0.3 * rng.standard_normal((40, 40))
        b = rng.standard_normal(40)
        result = solver(a, b, tol=1e-9, maxiter=400, restart=40) if solver is gmres else solver(
            a, b, tol=1e-9, maxiter=400
        )
        assert result.converged
        assert np.linalg.norm(a @ result.x - b) / np.linalg.norm(b) < 1e-8

    @pytest.mark.parametrize("solver", [cg, gmres, bicgstab])
    def test_zero_rhs(self, solver, spd_system):
        a, _ = spd_system
        result = solver(a, np.zeros(60))
        assert result.converged
        assert result.iterations == 0
        assert np.allclose(result.x, 0.0)

    def test_residual_history_tracks_convergence(self, spd_system):
        a, b = spd_system
        result = cg(a, b, tol=1e-10)
        assert result.residual_norms[0] == pytest.approx(1.0)
        assert result.residual_norms[-1] <= 1e-10
        assert result.iterations == result.residual_norms.shape[0] - 1

    def test_initial_guess(self, spd_system):
        a, b = spd_system
        x_star = np.linalg.solve(a, b)
        result = cg(a, b, tol=1e-12, x0=x_star)
        assert result.converged
        assert result.iterations == 0

    def test_exact_inverse_preconditioner(self, spd_system):
        a, b = spd_system
        a_inv = np.linalg.inv(a)
        result = cg(a, b, tol=1e-12, M=lambda r: a_inv @ r)
        assert result.converged
        assert result.iterations <= 2
        assert result.preconditioner_applications >= 1

    def test_operator_input(self, cov_h2):
        b = np.random.default_rng(8).standard_normal(cov_h2.num_rows)
        result = cg(cov_h2, b, tol=1e-6, maxiter=2000)
        assert result.converged
        assert np.linalg.norm(cov_h2.matvec(result.x) - b) / np.linalg.norm(b) < 1e-5

    def test_callback(self, spd_system):
        a, b = spd_system
        seen = []
        cg(a, b, tol=1e-8, callback=lambda k, r: seen.append((k, r)))
        assert seen and seen[-1][1] <= 1e-8

    def test_maxiter_reports_nonconvergence(self, spd_system):
        a, b = spd_system
        result = cg(a, b, tol=1e-14, maxiter=2)
        assert not result.converged
        assert result.iterations == 2

    @pytest.mark.parametrize("solver", [cg, gmres, bicgstab])
    def test_complex_rhs_rejected_loudly(self, solver, spd_system):
        """Complex b/x0 raise instead of being silently .real-truncated."""
        a, b = spd_system
        with pytest.raises(TypeError, match="complex"):
            solver(a, b.astype(np.complex128))
        with pytest.raises(TypeError, match="complex"):
            solver(a, b, x0=np.zeros_like(b, dtype=np.complex128))


class TestHODLRFactorization:
    @pytest.fixture(scope="class")
    def kernel_system(self):
        points = uniform_cube_points(700, dim=2, seed=21)
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(length_scale=0.3)
        a_perm = kernel.matrix(tree.points) + 0.05 * np.eye(700)
        return tree, a_perm

    def test_direct_solve(self, kernel_system):
        tree, a_perm = kernel_system
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-12)
        fact = HODLRFactorization(hodlr)
        b = np.random.default_rng(1).standard_normal((700, 3))
        x = fact.solve(b, permuted=True)
        assert np.linalg.norm(a_perm @ x - b) / np.linalg.norm(b) < 1e-9

    def test_solve_in_original_ordering(self, kernel_system):
        tree, a_perm = kernel_system
        a_orig = a_perm[np.ix_(tree.iperm, tree.iperm)]
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-12)
        fact = HODLRFactorization(hodlr)
        b = np.random.default_rng(2).standard_normal(700)
        x = fact.solve(b)
        assert np.linalg.norm(a_orig @ x - b) / np.linalg.norm(b) < 1e-9

    def test_slogdet_matches_numpy(self, kernel_system):
        tree, a_perm = kernel_system
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-12)
        fact = HODLRFactorization(hodlr)
        sign_ref, logdet_ref = np.linalg.slogdet(a_perm)
        sign, logdet = fact.slogdet()
        assert sign == pytest.approx(sign_ref)
        assert logdet == pytest.approx(logdet_ref, rel=1e-8)
        assert fact.logdet() == pytest.approx(logdet_ref, rel=1e-8)
        assert fact.determinant_sign == pytest.approx(sign_ref)

    def test_negative_determinant_sign(self, kernel_system):
        """An indefinite shift flips eigenvalue signs; the sign must track numpy."""
        tree, a_perm = kernel_system
        shifted = a_perm - 1.05 * np.eye(700)
        hodlr = build_hodlr(tree, lambda r, c: shifted[np.ix_(r, c)], tol=1e-12)
        fact = HODLRFactorization(hodlr)
        sign_ref, logdet_ref = np.linalg.slogdet(shifted)
        sign, logdet = fact.slogdet()
        assert sign == pytest.approx(sign_ref)
        assert logdet == pytest.approx(logdet_ref, rel=1e-6)
        if sign_ref < 0:
            with pytest.raises(ValueError):
                fact.logdet()

    def test_diagonal_shift(self, kernel_system):
        tree, a_perm = kernel_system
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-12)
        fact = HODLRFactorization(hodlr, shift=0.5)
        b = np.random.default_rng(3).standard_normal(700)
        x = fact.solve(b, permuted=True)
        shifted = a_perm + 0.5 * np.eye(700)
        assert np.linalg.norm(shifted @ x - b) / np.linalg.norm(b) < 1e-9

    def test_factor_of_sketched_hss(self, kernel_system):
        """convert(h2, "hodlr") of a tight HSS construction supports direct solves."""
        tree, a_perm = kernel_system
        result = compress(
            format="hss",
            tree=tree,
            operator=DenseOperator(a_perm),
            extractor=DenseEntryExtractor(a_perm),
            tol=1e-10,
            seed=4,
            full_result=True,
        )
        fact = HODLRFactorization(convert(result.matrix, "hodlr"))
        b = np.random.default_rng(4).standard_normal(700)
        x = fact.solve(b, permuted=True)
        assert np.linalg.norm(a_perm @ x - b) / np.linalg.norm(b) < 1e-6

    def test_hodlr_conversion_recompresses_strong_partition(self, cov_h2, rel_err):
        """Strong-admissibility H2 converts via per-block ACA re-compression
        (the internal weak-partition ValueError no longer leaks)."""
        hodlr = convert(cov_h2, "hodlr", tol=1e-8)
        assert rel_err(hodlr.to_dense(), cov_h2.to_dense()) < 1e-6

    def test_singular_matrix_sign_is_zero(self, kernel_system):
        tree, _ = kernel_system
        ones = np.ones((700, 700))  # rank 1: every leaf diagonal block singular
        with np.errstate(all="ignore"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                fact = HODLRFactorization(
                    build_hodlr(tree, lambda r, c: ones[np.ix_(r, c)], tol=1e-10)
                )
        assert fact.determinant_sign == 0.0
        assert fact.slogdet()[1] == -np.inf
        with pytest.raises(ValueError):
            fact.logdet()

    def test_memory_accounting(self, kernel_system):
        tree, a_perm = kernel_system
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-8)
        fact = HODLRFactorization(hodlr)
        assert fact.memory_bytes() > 0


class TestSlogdetRegression:
    """Pin slogdet()/logdet() against numpy on shifted SPD covariances.

    The Gaussian-process marginal likelihood rides on these values, so they
    are regression-tested across tree depths (leaf sizes) and shift values,
    including the ``shift=0`` edge case where the bare covariance is barely
    positive definite.
    """

    N = 640

    @pytest.fixture(scope="class")
    def covariance(self):
        points = uniform_cube_points(self.N, dim=2, seed=33)
        return points, ExponentialKernel(length_scale=0.25)

    @pytest.mark.parametrize("leaf_size", [16, 40, 160])
    @pytest.mark.parametrize("shift", [0.0, 1e-6, 1e-2, 1.0])
    def test_matches_numpy_across_depths_and_shifts(self, covariance, leaf_size, shift):
        points, kernel = covariance
        tree = ClusterTree.build(points, leaf_size=leaf_size)
        a_perm = kernel.matrix(tree.points)
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-12)
        fact = HODLRFactorization(hodlr, shift=shift)

        shifted = a_perm + shift * np.eye(self.N)
        sign_ref, logdet_ref = np.linalg.slogdet(shifted)
        sign, logdet = fact.slogdet()
        assert sign == pytest.approx(sign_ref)
        assert logdet == pytest.approx(logdet_ref, rel=1e-8, abs=1e-8)
        assert fact.logdet() == pytest.approx(logdet_ref, rel=1e-8, abs=1e-8)

    def test_shift_zero_equals_unshifted_factorization(self, covariance):
        points, kernel = covariance
        tree = ClusterTree.build(points, leaf_size=32)
        a_perm = kernel.matrix(tree.points)
        entries = lambda r, c: a_perm[np.ix_(r, c)]  # noqa: E731
        plain = HODLRFactorization(build_hodlr(tree, entries, tol=1e-12))
        explicit = HODLRFactorization(build_hodlr(tree, entries, tol=1e-12), shift=0.0)
        assert plain.slogdet() == explicit.slogdet()

    def test_slogdet_of_sketched_gp_covariance(self, covariance):
        """End-to-end: constructor output -> HODLR -> slogdet vs numpy."""
        points, kernel = covariance
        tree = ClusterTree.build(points, leaf_size=32)
        a_perm = kernel.matrix(tree.points)
        result = compress(
            format="hss",
            tree=tree,
            operator=DenseOperator(a_perm),
            extractor=DenseEntryExtractor(a_perm),
            tol=1e-10,
            seed=11,
            full_result=True,
        )
        nugget = 5e-2
        fact = HODLRFactorization(convert(result.matrix, "hodlr"), shift=nugget)
        sign_ref, logdet_ref = np.linalg.slogdet(a_perm + nugget * np.eye(self.N))
        sign, logdet = fact.slogdet()
        assert sign == pytest.approx(sign_ref)
        assert logdet == pytest.approx(logdet_ref, rel=1e-7)


class TestAcceptance:
    """The ISSUE acceptance criteria on the 4096-point SPD covariance system."""

    def test_hss_preconditioned_cg_iteration_reduction(self, covariance_4096):
        a, a_perm, tree, b = (
            covariance_4096["a"],
            covariance_4096["a_perm"],
            covariance_4096["tree"],
            covariance_4096["b"],
        )
        plain = cg(a, b, tol=1e-8, maxiter=4000)
        assert plain.converged

        preconditioner = HierarchicalPreconditioner.from_operator(
            tree,
            DenseOperator(a_perm),
            DenseEntryExtractor(a_perm),
            tolerance=1e-4,
            seed=3,
        )
        preconditioned = cg(a, b, tol=1e-8, maxiter=4000, M=preconditioner)
        assert preconditioned.converged
        assert preconditioned.final_residual <= 1e-8
        # The tentpole criterion: at least a 3x iteration reduction.
        assert preconditioned.iterations <= plain.iterations / 3
        # And the preconditioner did nontrivial work each iteration.
        assert preconditioned.preconditioner_applications >= preconditioned.iterations

    def test_hodlr_direct_solve_matches_dense_reference(self, covariance_4096):
        a, a_perm, tree, b = (
            covariance_4096["a"],
            covariance_4096["a_perm"],
            covariance_4096["tree"],
            covariance_4096["b"],
        )
        hodlr = build_hodlr(tree, lambda r, c: a_perm[np.ix_(r, c)], tol=1e-11)
        fact = HODLRFactorization(hodlr)
        x = fact.solve(b)
        reference = np.linalg.solve(a, b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) <= 1e-6
        assert np.linalg.norm(x - reference) / np.linalg.norm(reference) <= 1e-6


class TestHierarchicalPreconditioner:
    @pytest.fixture(scope="class")
    def system(self):
        points = uniform_cube_points(900, dim=2, seed=31)
        tree = ClusterTree.build(points, leaf_size=32)
        kernel = ExponentialKernel(length_scale=0.2)
        a = kernel.matrix(points) + 0.01 * np.eye(900)
        a_perm = a[np.ix_(tree.perm, tree.perm)]
        b = np.random.default_rng(6).standard_normal(900)
        return tree, a, a_perm, b

    def test_from_operator_accelerates_cg(self, system):
        tree, a, a_perm, b = system
        plain = cg(a, b, tol=1e-8, maxiter=3000)
        preconditioner = HierarchicalPreconditioner.from_operator(
            tree, DenseOperator(a_perm), DenseEntryExtractor(a_perm),
            tolerance=1e-3, seed=1,
        )
        accelerated = cg(a, b, tol=1e-8, maxiter=3000, M=preconditioner)
        assert accelerated.converged
        assert accelerated.iterations < plain.iterations

    def test_from_entries(self, system):
        tree, a, a_perm, b = system
        preconditioner = HierarchicalPreconditioner.from_entries(
            tree, lambda r, c: a_perm[np.ix_(r, c)], tolerance=1e-4
        )
        result = cg(a, b, tol=1e-8, maxiter=3000, M=preconditioner)
        assert result.converged
        assert result.iterations < 60

    def test_statistics(self, system):
        tree, _, a_perm, _ = system
        preconditioner = HierarchicalPreconditioner.from_operator(
            tree, DenseOperator(a_perm), DenseEntryExtractor(a_perm),
            tolerance=1e-2, seed=2,
        )
        stats = preconditioner.statistics()
        assert stats["n"] == 900
        assert stats["factor_memory_mb"] > 0
        assert "rank_range" in stats

    def test_gmres_with_hierarchical_preconditioner(self, system):
        tree, a, a_perm, b = system
        preconditioner = HierarchicalPreconditioner.from_entries(
            tree, lambda r, c: a_perm[np.ix_(r, c)], tolerance=1e-4
        )
        result = gmres(a, b, tol=1e-8, restart=30, maxiter=900, M=preconditioner)
        assert result.converged
        assert np.linalg.norm(a @ result.x - b) / np.linalg.norm(b) < 1e-7


class TestMultifrontalSolver:
    def test_exact_solve_2d(self):
        a = poisson_matrix((15, 15))
        solver = MultifrontalSolver.build(a, (15, 15), max_levels=3)
        assert solver.is_exact
        b = np.random.default_rng(0).standard_normal(225)
        x = solver.solve(b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-12

    def test_exact_solve_3d(self):
        a = poisson_matrix((7, 7, 7))
        solver = MultifrontalSolver.build(a, (7, 7, 7), max_levels=2)
        b = np.random.default_rng(1).standard_normal(343)
        x = solver.solve(b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-12

    def test_matches_sparse_direct(self):
        a = poisson_matrix((12, 12))
        solver = MultifrontalSolver.build(a, (12, 12), max_levels=2)
        b = np.random.default_rng(2).standard_normal(144)
        assert np.allclose(solver.solve(b), spla.spsolve(a.tocsc(), b), atol=1e-10)

    def test_multiple_rhs(self):
        a = poisson_matrix((10, 10))
        solver = MultifrontalSolver.build(a, (10, 10), max_levels=2)
        b = np.random.default_rng(3).standard_normal((100, 4))
        x = solver.solve(b)
        assert x.shape == (100, 4)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-12

    def test_front_report(self):
        a = poisson_matrix((15, 15))
        solver = MultifrontalSolver.build(a, (15, 15), max_levels=3)
        fronts = solver.front_report()
        assert len(fronts) == 7  # 1 + 2 + 4 separators over 3 levels
        assert fronts[0].level == 0
        assert fronts[0].size == 15  # root separator is a full grid line
        stats = solver.statistics()
        assert stats["num_fronts"] == 7
        assert stats["largest_front"] == 15

    @pytest.mark.slow
    def test_compressed_fronts_precondition_cg(self):
        """Compressed-front multifrontal solve works as a CG preconditioner."""
        shape = (31, 31)
        a = poisson_matrix(shape)
        n = a.shape[0]
        solver = MultifrontalSolver.build(
            a,
            shape,
            max_levels=2,
            compress_tolerance=1e-4,
            compress_min_size=24,
            compress_leaf_size=8,
        )
        assert any(f.compressed for f in solver.fronts)
        b = np.random.default_rng(4).standard_normal(n)
        plain = cg(a, b, tol=1e-10, maxiter=5000)
        preconditioned = cg(a, b, tol=1e-10, maxiter=5000, M=solver)
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations / 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MultifrontalSolver.build(poisson_matrix((5, 5)), (6, 6))

    def test_degenerate_cuts_fall_back_to_leaves(self):
        """Deep dissection of a tiny grid (empty half-domains) stays exact."""
        a = poisson_matrix((5, 5))
        solver = MultifrontalSolver.build(a, (5, 5), max_levels=6, min_size=2)
        b = np.random.default_rng(5).standard_normal(25)
        x = solver.solve(b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-12


class TestSolverReporting:
    def test_convergence_table(self, spd_system):
        a, b = spd_system
        results = {"cg": cg(a, b, tol=1e-8), "gmres": gmres(a, b, tol=1e-8, restart=60)}
        text = convergence_table(results)
        assert "cg" in text and "gmres" in text
        assert "rel resid" in text

    def test_convergence_table_from_sequence(self, spd_system):
        a, b = spd_system
        text = convergence_table([cg(a, b, tol=1e-8)], title=None)
        assert "cg" in text

    def test_convergence_table_keeps_duplicate_methods(self, spd_system):
        a, b = spd_system
        runs = [cg(a, b, tol=1e-8), cg(a, b, tol=1e-8, M=lambda r: r)]
        text = convergence_table(runs, title=None)
        # one header + one separator + one row per run
        assert len(text.splitlines()) == 4

    def test_residual_series(self, spd_system):
        a, b = spd_system
        result = cg(a, b, tol=1e-8)
        text = residual_series({"cg": result}, every=5)
        assert "iteration" in text
        assert "cg" in text

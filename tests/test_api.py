"""Tests for the unified repro.api surface.

Covers the tentpole of the façade PR:

* the :class:`~repro.api.protocol.HierarchicalOperator` conformance suite —
  every format produced by :func:`repro.compress` (plus recompression /
  low-rank-update results) runs through the same matvec/matmat/rmatvec/
  rmatmat/to_dense/dense-equivalence and ``permuted=`` round-trip checks;
* the :func:`repro.convert` format-conversion registry;
* the :class:`~repro.api.policy.ExecutionPolicy` / :mod:`repro.backends`
  registry threading;
* :class:`repro.Session` chaining (compress → factor → solve, sweep, gp);
* the deprecation shims of the legacy entry points.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro import (
    ExecutionPolicy,
    HierarchicalOperator,
    HMatrix,
    HODLRMatrix,
    H2Matrix,
    KernelLaunchCounter,
    SerialBackend,
    Session,
    compress,
    convert,
    random_low_rank,
    recompress_h2,
    uniform_cube_points,
)
from repro.api import FORMATS, available_conversions, register_conversion
from repro.api.protocol import PROTOCOL_METHODS

N = 400
LEAF = 32
TOL = 1e-8


def rel(actual: np.ndarray, expected: np.ndarray) -> float:
    return float(
        np.linalg.norm(actual - expected) / max(np.linalg.norm(expected), 1e-300)
    )


@pytest.fixture(scope="module")
def api_points() -> np.ndarray:
    return uniform_cube_points(N, dim=2, seed=21)


@pytest.fixture(scope="module")
def api_kernel():
    return repro.ExponentialKernel(length_scale=0.3)


@pytest.fixture(scope="module")
def api_dense(api_points, api_kernel) -> np.ndarray:
    """Dense reference in the *original* point ordering."""
    return api_kernel.evaluate(api_points, api_points)


@pytest.fixture(scope="module", params=["h2", "hss", "hodlr", "hmatrix", "recompressed"])
def conforming_operator(request, api_points, api_kernel):
    """Every operator family that must satisfy the protocol."""
    fmt = request.param
    if fmt == "recompressed":
        base = compress(
            api_points, api_kernel, format="h2", tol=TOL, leaf_size=LEAF, seed=3
        )
        update = random_low_rank(N, 8, seed=4, symmetric=True)
        result = recompress_h2(base, low_rank_update=update, seed=5)
        extra = update.to_dense()
        # The update acts in the permuted ordering; map it back to original.
        extra = extra[np.ix_(base.tree.iperm, base.tree.iperm)]
        return fmt, result.matrix, extra
    op = compress(api_points, api_kernel, format=fmt, tol=TOL, leaf_size=LEAF, seed=3)
    return fmt, op, None


@pytest.fixture
def reference(conforming_operator, api_dense):
    fmt, op, extra = conforming_operator
    dense = api_dense if extra is None else api_dense + extra
    return fmt, op, dense


class TestProtocolConformance:
    def test_structural_isinstance(self, conforming_operator):
        _, op, _ = conforming_operator
        assert isinstance(op, HierarchicalOperator)
        for method in PROTOCOL_METHODS:
            assert hasattr(op, method)

    def test_shape_and_dtype(self, conforming_operator):
        _, op, _ = conforming_operator
        assert op.shape == (N, N)
        assert op.dtype == np.dtype(np.float64)

    def test_matvec_matches_dense(self, reference):
        _, op, dense = reference
        x = np.random.default_rng(0).standard_normal(N)
        assert rel(op.matvec(x), dense @ x) < 1e-6

    def test_matmat_matches_columnwise(self, reference):
        _, op, dense = reference
        X = np.random.default_rng(1).standard_normal((N, 3))
        out = op.matmat(X)
        assert out.shape == (N, 3)
        assert rel(out, dense @ X) < 1e-6
        cols = np.stack([op.matvec(X[:, j]) for j in range(3)], axis=1)
        assert np.allclose(out, cols, rtol=0, atol=1e-12)

    def test_matmat_rejects_vectors(self, conforming_operator):
        _, op, _ = conforming_operator
        with pytest.raises(ValueError):
            op.matmat(np.ones(N))
        with pytest.raises(ValueError):
            op.rmatmat(np.ones(N))

    def test_rmatvec_is_exact_transpose(self, reference):
        _, op, dense = reference
        x = np.random.default_rng(2).standard_normal(N)
        assert rel(op.rmatvec(x), dense.T @ x) < 1e-6
        X = np.random.default_rng(3).standard_normal((N, 2))
        assert rel(op.rmatmat(X), dense.T @ X) < 1e-6

    def test_matmul_operator(self, reference):
        _, op, dense = reference
        x = np.random.default_rng(4).standard_normal(N)
        assert rel(op @ x, dense @ x) < 1e-6

    def test_to_dense_equivalence(self, reference):
        _, op, dense = reference
        rebuilt = op.to_dense()
        assert rel(rebuilt, dense) < 1e-6

    def test_permuted_round_trip(self, conforming_operator):
        """permuted= semantics are uniform: perm-in/perm-out matches plain."""
        _, op, _ = conforming_operator
        tree = op.tree
        x = np.random.default_rng(5).standard_normal(N)
        plain = op.matvec(x)
        permuted = op.matvec(x[tree.perm], permuted=True)
        assert np.allclose(permuted, plain[tree.perm], rtol=0, atol=1e-12)
        dense_plain = op.to_dense()
        dense_perm = op.to_dense(permuted=True)
        assert np.allclose(
            dense_perm, dense_plain[np.ix_(tree.perm, tree.perm)], rtol=0, atol=0
        )

    def test_dimension_mismatch_raises(self, conforming_operator):
        _, op, _ = conforming_operator
        with pytest.raises(ValueError):
            op.matvec(np.ones(N + 1))

    def test_complex_matvec_splits_real_imag(self, reference):
        """A(x_re + i x_im) = A x_re + i A x_im — no silent .real truncation."""
        _, op, dense = reference
        rng = np.random.default_rng(7)
        z = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        out = op.matvec(z)
        assert np.iscomplexobj(out)
        split = op.matvec(z.real.copy()) + 1j * op.matvec(z.imag.copy())
        assert np.allclose(out, split, rtol=0, atol=1e-12)
        assert rel(out, dense @ z) < 1e-6

    def test_complex_matmat_rmatvec_rmatmat(self, reference):
        _, op, dense = reference
        rng = np.random.default_rng(8)
        Z = rng.standard_normal((N, 2)) + 1j * rng.standard_normal((N, 2))
        assert rel(op.matmat(Z), dense @ Z) < 1e-6
        assert rel(op.rmatmat(Z), dense.T @ Z) < 1e-6
        assert rel(op @ Z, dense @ Z) < 1e-6
        z = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        assert rel(op.rmatvec(z), dense.T @ z) < 1e-6

    def test_complex_permuted_matches_plain(self, conforming_operator):
        _, op, _ = conforming_operator
        tree = op.tree
        rng = np.random.default_rng(9)
        z = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        plain = op.matvec(z)
        permuted = op.matvec(z[tree.perm], permuted=True)
        assert np.allclose(permuted, plain[tree.perm], rtol=0, atol=1e-12)

    def test_adapted_linear_operator_handles_complex(self, reference):
        from repro import as_linear_operator

        _, op, dense = reference
        adapted = as_linear_operator(op)
        rng = np.random.default_rng(10)
        z = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        assert rel(adapted.matvec(z), dense @ z) < 1e-6
        assert rel(adapted.rmatvec(z), dense.T @ z) < 1e-6

    def test_unified_memory_keys(self, conforming_operator):
        _, op, _ = conforming_operator
        mem = op.memory_bytes()
        assert {"low_rank", "dense", "total"} <= set(mem)
        assert mem["total"] == mem["low_rank"] + mem["dense"]
        assert mem["total"] > 0
        assert op.total_memory_mb() == pytest.approx(mem["total"] / 2**20)

    def test_unified_statistics_keys(self, conforming_operator):
        fmt, op, _ = conforming_operator
        stats = op.statistics()
        assert {
            "format",
            "n",
            "depth",
            "rank_min",
            "rank_max",
            "num_low_rank_blocks",
            "num_dense_blocks",
            "memory_mb",
        } <= set(stats)
        assert stats["n"] == N
        expected = {"recompressed": "h2", "hss": "h2"}.get(fmt, fmt)
        assert stats["format"] == expected

    def test_solvers_accept_protocol_operator(self, reference):
        """as_linear_operator adapts any HierarchicalOperator, no isinstance."""
        from repro import as_linear_operator, gmres

        _, op, dense = reference
        adapted = as_linear_operator(op)
        assert adapted.source is op
        b = np.random.default_rng(6).standard_normal(N)
        solve = gmres(op, b, tol=1e-10, restart=60, maxiter=4000)
        assert solve.converged
        # Exact residual against the operator the solver iterated on; the
        # dense comparison additionally absorbs compression error amplified
        # by the system's conditioning.
        assert rel(op @ solve.x, b) < 1e-8
        assert rel(dense @ solve.x, b) < 1e-3

    def test_linear_operator_is_not_hierarchical(self):
        from repro import LinearOperator

        op = LinearOperator((4, 4), lambda x: x)
        assert not isinstance(op, HierarchicalOperator)


class TestCompressFacade:
    def test_unknown_format_raises(self, api_points, api_kernel):
        with pytest.raises(ValueError, match="unknown format"):
            compress(api_points, api_kernel, format="butterfly")

    def test_requires_geometry(self, api_kernel):
        with pytest.raises(ValueError, match="points"):
            compress(None, api_kernel)

    def test_requires_kernel_or_evaluators(self, api_points):
        with pytest.raises(ValueError, match="kernel"):
            compress(api_points, None)

    def test_dense_array_kernel(self, api_points, api_dense):
        op = compress(api_points, api_dense, format="h2", tol=TOL, leaf_size=LEAF, seed=3)
        x = np.random.default_rng(0).standard_normal(N)
        assert np.allclose(op.matvec(x), api_dense @ x, rtol=0, atol=1e-5)

    def test_full_result_carries_statistics(self, api_points, api_kernel):
        result = compress(
            api_points, api_kernel, format="hss", tol=1e-6, leaf_size=LEAF,
            seed=3, full_result=True,
        )
        assert result.matrix.shape == (N, N)
        assert result.total_samples > 0
        assert result.total_kernel_launches > 0

    def test_full_result_rejected_for_aca_formats(self, api_points, api_kernel):
        with pytest.raises(ValueError, match="full_result"):
            compress(api_points, api_kernel, format="hodlr", full_result=True)

    def test_hss_uses_weak_partition(self, api_points, api_kernel):
        from repro import WeakAdmissibility

        op = compress(api_points, api_kernel, format="hss", tol=1e-6, leaf_size=LEAF, seed=3)
        assert isinstance(op.partition.admissibility, WeakAdmissibility)


class TestConvertRegistry:
    @pytest.fixture(scope="class")
    def weak_h2(self, api_points, api_kernel):
        return compress(
            api_points, api_kernel, format="hss", tol=TOL, leaf_size=LEAF, seed=7
        )

    def test_h2_to_hodlr(self, weak_h2):
        hodlr = convert(weak_h2, "hodlr")
        assert isinstance(hodlr, HODLRMatrix)
        assert np.allclose(hodlr.to_dense(), weak_h2.to_dense(), rtol=0, atol=1e-10)

    def test_h2_to_hmatrix(self, weak_h2):
        h = convert(weak_h2, "hmatrix", tol=1e-10)
        assert isinstance(h, HMatrix)
        assert np.allclose(h.to_dense(), weak_h2.to_dense(), rtol=0, atol=1e-5)

    def test_to_dense_target(self, weak_h2):
        dense = convert(weak_h2, "dense")
        assert np.allclose(dense, weak_h2.to_dense(), rtol=0, atol=0)

    def test_identity_conversion(self, weak_h2):
        assert convert(weak_h2, "h2") is weak_h2
        assert convert(weak_h2, "hss") is weak_h2
        hodlr = convert(weak_h2, "hodlr")
        assert convert(hodlr, "hodlr") is hodlr

    def test_unknown_target_raises(self, weak_h2):
        with pytest.raises(ValueError, match="no conversion"):
            convert(weak_h2, "butterfly")

    def test_hss_target_rejects_strong_partition(self, api_points, api_kernel):
        strong = compress(
            api_points, api_kernel, format="h2", tol=TOL, leaf_size=LEAF, seed=7
        )
        with pytest.raises(ValueError, match="weak-admissibility"):
            convert(strong, "hss")
        hodlr = convert(
            compress(api_points, api_kernel, format="hss", tol=TOL,
                     leaf_size=LEAF, seed=7),
            "hodlr",
        )
        with pytest.raises(ValueError, match="weak-admissibility"):
            convert(hodlr, "hss")

    def test_unsupported_source_lists_targets(self, weak_h2):
        hodlr = convert(weak_h2, "hodlr")
        with pytest.raises(ValueError, match="dense"):
            convert(hodlr, "hmatrix")

    def test_registry_is_extensible(self, weak_h2):
        sentinel = object()
        register_conversion(H2Matrix, "sentinel", lambda op: sentinel)
        try:
            assert convert(weak_h2, "sentinel") is sentinel
            with pytest.raises(ValueError, match="already registered"):
                register_conversion(H2Matrix, "sentinel", lambda op: None)
            assert ("H2Matrix", "sentinel") in available_conversions()
        finally:
            from repro.api import conversion

            conversion._CONVERSIONS.pop((H2Matrix, "sentinel"))

    def test_strong_partition_converts_to_hodlr(self, api_points, api_kernel):
        """General-admissibility H2 re-compresses into HODLR (ACA per block)
        instead of leaking the internal weak-partition ValueError."""
        strong = compress(
            api_points, api_kernel, format="h2", tol=TOL, leaf_size=LEAF, seed=7
        )
        hodlr = convert(strong, "hodlr", tol=1e-8)
        assert isinstance(hodlr, HODLRMatrix)
        assert rel(hodlr.to_dense(), strong.to_dense()) < 1e-6

    def test_weak_partition_hodlr_conversion_stays_exact(self, weak_h2):
        """The weak-partition fast path is untouched: exact, no re-compression."""
        hodlr = convert(weak_h2, "hodlr")
        assert np.allclose(hodlr.to_dense(), weak_h2.to_dense(), rtol=0, atol=1e-10)


class TestExecutionPolicy:
    def test_backend_registry_roundtrip(self):
        assert "serial" in repro.backends.available()
        assert "vectorized" in repro.backends.available()
        assert repro.backends.get("serial").name == "serial"
        with pytest.raises(ValueError, match="unknown backend"):
            repro.backends.get("warp")

    def test_register_custom_backend(self, api_points, api_kernel):
        class TaggedSerial(SerialBackend):
            name = "tagged-serial"

        try:
            repro.backends.register("tagged-serial", TaggedSerial)
            with pytest.raises(ValueError, match="already registered"):
                repro.backends.register("tagged-serial", TaggedSerial)
            policy = ExecutionPolicy(backend="tagged-serial")
            assert policy.resolve_backend().name == "tagged-serial"
            result = compress(
                api_points, api_kernel, tol=1e-4, leaf_size=LEAF, seed=1,
                policy=policy, full_result=True,
            )
            assert result.matrix.apply_backend.name == "tagged-serial"
        finally:
            from repro.batched import backend as backend_module

            backend_module._BACKENDS.pop("tagged-serial")

    def test_env_override_resolves_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert ExecutionPolicy().resolve_backend().name == "serial"
        assert repro.get_backend("auto").name == "serial"
        monkeypatch.delenv("REPRO_BACKEND")
        assert ExecutionPolicy().resolve_backend().name == "vectorized"

    def test_env_override_normalizes_whitespace_and_case(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  SeRiAl ")
        assert ExecutionPolicy().resolve_backend().name == "serial"
        assert repro.get_backend("auto").name == "serial"
        monkeypatch.setenv("REPRO_CONSTRUCT_PATH", " LOOP\t")
        assert ExecutionPolicy().resolve_construction_path() == "loop"
        policy = ExecutionPolicy.from_env()
        assert policy.backend == "serial"
        assert policy.construction_path == "loop"

    def test_blank_env_values_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "   ")
        monkeypatch.setenv("REPRO_CONSTRUCT_PATH", "")
        assert ExecutionPolicy().resolve_backend().name == "vectorized"
        assert ExecutionPolicy().resolve_construction_path() == "packed"

    def test_inline_values_normalized(self):
        policy = ExecutionPolicy(construction_path=" Packed ")
        assert policy.construction_path == "packed"
        assert repro.get_backend(" Vectorized ").name == "vectorized"

    def test_from_env_snapshot(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        monkeypatch.setenv("REPRO_CONSTRUCT_PATH", "loop")
        policy = ExecutionPolicy.from_env()
        assert policy.backend == "serial"
        assert policy.construction_path == "loop"
        assert policy.resolve_construction_path() == "loop"

    def test_invalid_construction_path_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(construction_path="warp")

    def test_construction_config_threading(self):
        policy = ExecutionPolicy(backend="serial", construction_path="loop")
        config = policy.construction_config(tolerance=1e-4)
        assert config.tolerance == 1e-4
        assert config.construction_path == "loop"
        assert config.backend.name == "serial"

    def test_shared_counter_accumulates(self, api_points, api_kernel):
        counter = KernelLaunchCounter()
        with pytest.warns(DeprecationWarning, match="counter"):
            policy = ExecutionPolicy(backend="serial", counter=counter)
        op = compress(
            api_points, api_kernel, tol=1e-4, leaf_size=LEAF, seed=1, policy=policy
        )
        after_construction = counter.total()
        assert after_construction > 0
        op.matvec(np.ones(N))
        assert counter.total() > after_construction

    def test_shared_backend_instance(self):
        policy = ExecutionPolicy(backend="serial")
        assert policy.resolve_backend() is policy.resolve_backend()

    def test_with_backend_copies(self):
        policy = ExecutionPolicy(backend="serial", construction_path="loop")
        other = policy.with_backend("vectorized")
        assert other.construction_path == "loop"
        assert other.resolve_backend().name == "vectorized"
        assert policy.resolve_backend().name == "serial"

    def test_launch_counter_accessor(self):
        policy = ExecutionPolicy(backend="serial")
        assert policy.launch_counter() is policy.resolve_backend().counter

    def test_counter_with_backend_instance_rejected(self):
        with pytest.warns(DeprecationWarning, match="counter"):
            policy = ExecutionPolicy(
                backend=SerialBackend(), counter=KernelLaunchCounter()
            )
        with pytest.raises(ValueError, match="backend name"):
            policy.resolve_backend()

    def test_failed_alias_registration_is_atomic(self):
        with pytest.raises(ValueError, match="already registered"):
            repro.backends.register("brand-new", SerialBackend, aliases=("serial",))
        assert "brand-new" not in repro.backends.available()


class TestSession:
    @pytest.fixture(scope="class")
    def session(self, api_points):
        return Session(api_points, leaf_size=LEAF, seed=9)

    def test_compress_factor_solve_chain(self, session, api_kernel, api_dense):
        b = np.random.default_rng(10).standard_normal(N)
        solve = session.compress(api_kernel, tol=TOL).factor(noise=1e-2).solve(b)
        assert solve.converged
        assert np.allclose(
            (api_dense + 1e-2 * np.eye(N)) @ solve.x, b, rtol=0, atol=1e-5
        )

    def test_operator_and_result_properties(self, session, api_kernel):
        session.compress(api_kernel, tol=TOL)
        assert isinstance(session.operator, HierarchicalOperator)
        assert session.result.matrix is session.operator

    def test_solve_methods(self, session, api_kernel, api_dense):
        session.compress(api_kernel, tol=TOL).factor(noise=1e-2)
        b = np.ones(N)
        for method in ("cg", "gmres", "bicgstab"):
            solve = session.solve(b, tol=1e-8, method=method)
            assert solve.converged, method
        with pytest.raises(ValueError, match="unknown method"):
            session.solve(b, method="direct-inverse")

    def test_compress_to_other_formats(self, session, api_kernel):
        hodlr = session.compress(api_kernel, tol=TOL, format="hodlr").operator
        assert isinstance(hodlr, HODLRMatrix)
        with pytest.raises(ValueError, match="unknown format"):
            session.compress(api_kernel, format="butterfly")

    def test_hss_format_requires_weak_session(self, api_points, api_kernel):
        from repro import GeneralAdmissibility

        strong = Session(
            api_points, leaf_size=LEAF, admissibility=GeneralAdmissibility(eta=0.7)
        )
        with pytest.raises(ValueError, match="weak-admissibility"):
            strong.compress(api_kernel, format="hss")

    def test_recompress_resets_factorization_shift(self, api_points, api_kernel, api_dense):
        """A re-compress must drop the previous factor() and its noise shift."""
        sess = Session(api_points, leaf_size=LEAF, seed=4)
        sess.compress(api_kernel, tol=TOL).factor(noise=0.5)
        other = repro.ExponentialKernel(0.45)
        sess.compress(other, tol=TOL)
        b = np.random.default_rng(11).standard_normal(N)
        solve = sess.solve(b, tol=1e-10)
        dense_other = other.evaluate(api_points, api_points)
        assert solve.converged
        # Unshifted system: with the stale 0.5 shift this residual is ~0.4.
        assert rel(dense_other @ solve.x, b) < 1e-4

    def test_sweep_reuses_geometry(self, session):
        before = session.context.statistics.constructions
        kernels = [repro.ExponentialKernel(ls) for ls in (0.2, 0.3, 0.45)]
        results = session.sweep(kernels, tol=1e-6)
        assert len(results) == 3
        assert session.context.statistics.constructions >= before + 2

    def test_gp_shares_context(self, session, api_points):
        gp = session.gp(repro.ExponentialKernel(0.3), noise=1e-2, tolerance=1e-6)
        assert gp.context is session.context
        y = np.sin(api_points[:, 0] * 4.0)
        gp.fit(y)
        assert np.isfinite(gp.log_marginal_likelihood_)

    def test_requires_compress_before_factor(self, api_points):
        fresh = Session(api_points, leaf_size=LEAF)
        with pytest.raises(RuntimeError, match="compress"):
            fresh.factor()
        with pytest.raises(RuntimeError, match="compress"):
            _ = fresh.operator

    def test_policy_threads_into_construction(self, api_points, api_kernel):
        sess = Session(
            api_points, leaf_size=LEAF, policy=ExecutionPolicy(backend="serial")
        )
        result = sess.compress(api_kernel, tol=1e-4).result
        assert result.matrix.apply_backend.name == "serial"

    def test_describe_and_geometry_accessors(self, session):
        assert session.describe().startswith("Session(")
        assert session.tree.num_points == N
        assert session.partition.tree is session.tree
        assert session.points.shape == (N, 2)


class TestDeprecationShims:
    """Old entry points keep working but warn (legacy-import contract)."""

    @pytest.fixture(scope="class")
    def weak_h2(self, api_points, api_kernel):
        return compress(
            api_points, api_kernel, format="hss", tol=TOL, leaf_size=LEAF, seed=7
        )

    def test_legacy_names_importable(self):
        from repro import build_hss, hodlr_from_h2  # noqa: F401
        from repro.hmatrix.hodlr import hodlr_from_h2 as nested  # noqa: F401
        from repro.hmatrix.hss import build_hss as nested_hss  # noqa: F401

    def test_hodlr_from_h2_warns_and_works(self, weak_h2):
        with pytest.warns(DeprecationWarning, match="convert"):
            legacy = repro.hodlr_from_h2(weak_h2)
        assert isinstance(legacy, HODLRMatrix)
        modern = convert(weak_h2, "hodlr")
        assert np.allclose(legacy.to_dense(), modern.to_dense(), rtol=0, atol=0)

    def test_build_hss_warns_and_works(self, api_points, api_kernel):
        from repro import ClusterTree, KernelEntryExtractor, KernelMatVecOperator

        tree = ClusterTree.build(api_points, leaf_size=LEAF)
        with pytest.warns(DeprecationWarning, match="compress"):
            legacy = repro.build_hss(
                tree,
                KernelMatVecOperator(api_kernel, tree.points),
                KernelEntryExtractor(api_kernel, tree.points),
                tolerance=1e-6,
                seed=7,
            )
        modern = compress(
            api_points, api_kernel, format="hss", tol=1e-6, leaf_size=LEAF,
            seed=7, full_result=True,
        )
        assert np.allclose(
            legacy.matrix.to_dense(), modern.matrix.to_dense(), rtol=0, atol=1e-10
        )

    def test_internal_paths_do_not_warn(self, api_points, api_kernel):
        """The library's own subsystems route through the impls, not the shims."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = Session(api_points, leaf_size=LEAF, seed=1)
            session.compress(api_kernel, tol=1e-6).factor(noise=1e-2).solve(
                np.ones(N)
            )
            gp = session.gp(api_kernel, noise=1e-2, tolerance=1e-6)
            gp.fit(np.sin(api_points[:, 0]))

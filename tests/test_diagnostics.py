"""Tests for diagnostics: error measurement, memory reports, profiling, reporting."""

import numpy as np
import pytest

from repro import DenseOperator
from repro.diagnostics import (
    construction_error,
    dense_relative_error,
    format_series,
    format_table,
    memory_report,
    phase_breakdown,
)
from repro.diagnostics.profiling import PHASE_ORDER, PhaseBreakdown


class TestErrorMeasurement:
    def test_dense_relative_error(self):
        a = np.eye(5)
        b = np.eye(5) + 1e-3
        err = dense_relative_error(b, a)
        assert err == pytest.approx(np.linalg.norm(b - a) / np.linalg.norm(a))

    def test_dense_relative_error_spectral(self):
        a = np.diag([2.0, 1.0])
        b = np.diag([2.0, 1.5])
        assert dense_relative_error(b, a, norm="2") == pytest.approx(0.25)

    def test_identical_matrices(self):
        a = np.random.default_rng(0).standard_normal((4, 4))
        assert dense_relative_error(a, a) == 0.0

    def test_zero_reference(self):
        assert dense_relative_error(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0
        assert dense_relative_error(np.ones((2, 2)), np.zeros((2, 2))) == np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dense_relative_error(np.eye(2), np.eye(3))

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            dense_relative_error(np.eye(2), np.eye(2), norm="max")

    def test_construction_error_close_to_dense_error(self, cov_h2, dense_cov_2d):
        op = DenseOperator(dense_cov_2d)
        sketched = construction_error(cov_h2, op, num_iterations=10, seed=1)
        exact = dense_relative_error(cov_h2.to_dense(permuted=True), dense_cov_2d, norm="2")
        assert sketched <= 50 * max(exact, 1e-16)
        assert sketched < 1e-4


class TestMemoryReport:
    def test_report_totals(self, cov_h2):
        report = memory_report(cov_h2)
        assert report.total_bytes == cov_h2.memory_bytes()["total"]
        assert report.total_gb == pytest.approx(report.total_mb / 1024.0)

    def test_report_from_plain_number(self):
        class Fake:
            def memory_bytes(self):
                return 2048

        report = memory_report(Fake())
        assert report.total_bytes == 2048
        assert report.total_mb == pytest.approx(2048 / 1024**2)


class TestPhaseBreakdown:
    def test_percentages_sum_to_100(self, cov_h2_result):
        breakdown = phase_breakdown(cov_h2_result)
        pct = breakdown.percentages()
        assert abs(sum(pct.values()) - 100.0) < 1e-9

    def test_ordered_phases(self):
        breakdown = PhaseBreakdown(seconds={"id": 1.0, "sampling": 3.0, "custom": 0.5})
        ordered = breakdown.ordered()
        assert list(ordered)[: len(PHASE_ORDER)] == list(PHASE_ORDER)
        assert ordered["custom"] == 0.5
        assert ordered["convergence"] == 0.0

    def test_empty_breakdown(self):
        breakdown = PhaseBreakdown(seconds={})
        assert breakdown.total_seconds == 0.0
        assert breakdown.percentages() == {}


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["N", "time"], [[1024, 0.5], [2048, 1.25]], title="Construction time"
        )
        assert "Construction time" in text
        assert "1024" in text and "2048" in text
        assert len(text.splitlines()) == 5

    def test_format_series_missing_points(self):
        text = format_series(
            "N",
            {"ours": {1024: 0.1, 2048: 0.2}, "baseline": {1024: 1.0}},
            title="Fig 5",
        )
        assert "Fig 5" in text
        assert "-" in text  # the missing baseline point at N=2048

    def test_format_table_float_format(self):
        text = format_table(["x"], [[0.123456789]], float_format="{:.2f}")
        assert "0.12" in text

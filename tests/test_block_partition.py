"""Tests for admissibility conditions and the dual-tree block partition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ClusterTree,
    GeneralAdmissibility,
    WeakAdmissibility,
    build_block_partition,
    uniform_cube_points,
)


class TestAdmissibility:
    def test_diagonal_never_admissible(self, tree_2d):
        adm = GeneralAdmissibility(eta=10.0)
        for node in (0, 1, tree_2d.num_nodes - 1):
            assert not adm.is_admissible(tree_2d, node, node)

    def test_far_apart_leaves_admissible(self, tree_2d):
        adm = GeneralAdmissibility(eta=0.7)
        leaves = list(tree_2d.leaves())
        # the first and last leaf are on opposite corners of the square
        assert adm.is_admissible(tree_2d, leaves[0], leaves[-1]) == (
            0.5 * (tree_2d.diameter(leaves[0]) + tree_2d.diameter(leaves[-1]))
            <= 0.7 * tree_2d.distance(leaves[0], leaves[-1])
        )

    def test_eta_monotonicity(self, tree_2d):
        loose = GeneralAdmissibility(eta=2.0)
        strict = GeneralAdmissibility(eta=0.3)
        leaves = list(tree_2d.leaves())
        for s in leaves[:4]:
            for t in leaves[-4:]:
                if strict.is_admissible(tree_2d, s, t):
                    assert loose.is_admissible(tree_2d, s, t)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            GeneralAdmissibility(eta=0.0)

    def test_weak_admissibility(self, tree_2d):
        adm = WeakAdmissibility()
        assert not adm.is_admissible(tree_2d, 3, 3)
        assert adm.is_admissible(tree_2d, 1, 2)

    def test_callable_interface(self, tree_2d):
        adm = GeneralAdmissibility(eta=0.7)
        assert adm(tree_2d, 1, 1) == adm.is_admissible(tree_2d, 1, 1)


class TestBlockPartition:
    def test_tiles_matrix(self, partition_2d):
        partition_2d.validate_disjoint_cover()

    def test_symmetry_of_far_and_near(self, partition_2d, tree_2d):
        for s in range(tree_2d.num_nodes):
            for t in partition_2d.far(s):
                assert s in partition_2d.far(t)
        for s in tree_2d.leaves():
            for t in partition_2d.near(s):
                assert s in partition_2d.near(t)

    def test_near_field_only_on_leaves(self, partition_2d, tree_2d):
        for node in range(tree_2d.num_nodes):
            if not tree_2d.is_leaf(node):
                assert partition_2d.near(node) == []

    def test_diagonal_blocks_are_near(self, partition_2d, tree_2d):
        for leaf in tree_2d.leaves():
            assert leaf in partition_2d.near(leaf)

    def test_far_pairs_are_admissible(self, partition_2d, tree_2d):
        adm = partition_2d.admissibility
        for s in range(tree_2d.num_nodes):
            for t in partition_2d.far(s):
                assert adm.is_admissible(tree_2d, s, t)
                assert tree_2d.level_of(s) == tree_2d.level_of(t)

    def test_far_parents_inadmissible(self, partition_2d, tree_2d):
        """F_tau contains only clusters whose parent pair was inadmissible."""
        adm = partition_2d.admissibility
        for s in range(1, tree_2d.num_nodes):
            for t in partition_2d.far(s):
                ps, pt = tree_2d.parent(s), tree_2d.parent(t)
                assert not adm.is_admissible(tree_2d, ps, pt)

    def test_sparsity_constant_positive_and_bounded(self, partition_2d, tree_2d):
        csp = partition_2d.sparsity_constant()
        assert csp >= 1
        assert csp <= tree_2d.num_nodes_at_level(tree_2d.depth)

    def test_statistics_keys(self, partition_2d):
        stats = partition_2d.statistics()
        assert stats["num_admissible_blocks"] == partition_2d.num_admissible_blocks()
        assert stats["num_inadmissible_blocks"] == partition_2d.num_inadmissible_blocks()
        assert "per_level" in stats and stats["sparsity_constant"] >= 1

    def test_admissible_pairs_at_level(self, partition_2d, tree_2d):
        total = sum(
            len(partition_2d.admissible_pairs_at_level(level))
            for level in range(tree_2d.num_levels)
        )
        assert total == partition_2d.num_admissible_blocks()

    def test_weak_partition_is_hodlr(self, tree_2d):
        part = build_block_partition(tree_2d, WeakAdmissibility())
        part.validate_disjoint_cover()
        # every non-root node has exactly its sibling in the far field
        for node in range(1, tree_2d.num_nodes):
            parent = tree_2d.parent(node)
            left, right = tree_2d.children(parent)
            sibling = right if node == left else left
            assert part.far(node) == [sibling]
        # dense blocks are exactly the diagonal leaf blocks
        for leaf in tree_2d.leaves():
            assert part.near(leaf) == [leaf]

    def test_smaller_eta_refines_partition(self, tree_2d):
        coarse = build_block_partition(tree_2d, GeneralAdmissibility(eta=1.5))
        fine = build_block_partition(tree_2d, GeneralAdmissibility(eta=0.5))
        # stricter admissibility -> more dense blocks and at least as large Csp
        assert fine.num_inadmissible_blocks() >= coarse.num_inadmissible_blocks()
        assert fine.sparsity_constant() >= coarse.sparsity_constant()

    def test_default_admissibility_is_general(self, tree_2d):
        part = build_block_partition(tree_2d)
        assert isinstance(part.admissibility, GeneralAdmissibility)
        assert part.admissibility.eta == pytest.approx(0.7)

    @given(
        n=st.integers(min_value=20, max_value=300),
        dim=st.integers(min_value=1, max_value=3),
        eta=st.floats(min_value=0.3, max_value=2.5),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_partition_tiles_matrix(self, n, dim, eta, seed):
        pts = uniform_cube_points(n, dim=dim, seed=seed)
        tree = ClusterTree.build(pts, leaf_size=16)
        part = build_block_partition(tree, GeneralAdmissibility(eta=eta))
        part.validate_disjoint_cover()

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_property_weak_partition_tiles_matrix(self, seed):
        pts = uniform_cube_points(150, dim=2, seed=seed)
        tree = ClusterTree.build(pts, leaf_size=16)
        part = build_block_partition(tree, WeakAdmissibility())
        part.validate_disjoint_cover()

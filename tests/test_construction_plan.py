"""Cross-backend equivalence and property tests of the compiled construction sweep.

The packed level-wise engine (:mod:`repro.batched.construction_plan`) must run
the *identical* numerical schedule on both backends: serial and vectorized
compiled constructions have to produce the same skeleton indices, ranks and
coupling blocks for every kernel and tree depth, while issuing O(levels)
batched sweep launches per convergence round instead of O(nodes) per-node
operations.  Against the per-node reference loop (``construct_loop``, the
analogue of ``matvec_loop``), the packed path reproduces the fixed-seed
skeleton selections at the acceptance configuration and always reproduces the
sample schedule and compression quality.  Property tests pin down the
workspace lifecycle (plan sharing, capacity growth, frozen-bank replay) and
the path-selection plumbing.
"""

import os

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    ConstructionPlan,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    HelmholtzKernel,
    build_block_partition,
    uniform_cube_points,
)
from repro.batched.construction_plan import PackedSweepEngine, _LevelState
from repro.diagnostics import construction_report, dense_relative_error
from repro.sketching.operators import H2Operator

BACKENDS = ["serial", "vectorized"]
#: (kernel name, leaf size) — leaf size 16 doubles the tree depth vs 48.
PROBLEMS = [
    ("covariance", 16),
    ("covariance", 48),
    ("helmholtz", 16),
    ("helmholtz", 48),
]


def _kernel(name):
    if name == "covariance":
        return ExponentialKernel(length_scale=0.2)
    return HelmholtzKernel(wavenumber=3.0)


def _construct(partition, dense, path, backend, seed=3, plan=None, **config_kwargs):
    config_kwargs.setdefault("tolerance", 1e-6)
    config_kwargs.setdefault("sample_block_size", 16)
    config = ConstructionConfig(backend=backend, **config_kwargs)
    constructor = H2Constructor(
        partition,
        DenseOperator(dense),
        DenseEntryExtractor(dense),
        config,
        seed=seed,
        plan=plan,
    )
    result = (
        constructor.construct_packed() if path == "packed" else constructor.construct_loop()
    )
    return constructor, result


@pytest.fixture(scope="module", params=PROBLEMS, ids=lambda p: f"{p[0]}-leaf{p[1]}")
def problem(request):
    """One (partition, dense matrix) pair plus all four path × backend runs."""
    name, leaf_size = request.param
    points = uniform_cube_points(460, dim=2, seed=13)
    tree = ClusterTree.build(points, leaf_size=leaf_size)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = _kernel(name).matrix(tree.points)
    runs = {
        (path, backend): _construct(partition, dense, path, backend)
        for path in ("loop", "packed")
        for backend in BACKENDS
    }
    return {"partition": partition, "tree": tree, "dense": dense, "runs": runs}


def assert_same_skeletons(c1: H2Constructor, c2: H2Constructor, context: str):
    assert set(c1.skeletons.nodes()) == set(c2.skeletons.nodes())
    for node in c1.skeletons.nodes():
        s1, s2 = c1.skeletons.get(node), c2.skeletons.get(node)
        assert s1.rank == s2.rank, f"{context}: rank mismatch at node {node}"
        assert np.array_equal(s1.skeleton_global, s2.skeleton_global), (
            f"{context}: skeleton mismatch at node {node}"
        )


class TestCrossBackendEquivalence:
    """Serial × vectorized compiled constructions are the same computation."""

    def test_identical_skeletons_and_ranks(self, problem):
        serial, _ = problem["runs"][("packed", "serial")]
        vectorized, _ = problem["runs"][("packed", "vectorized")]
        assert_same_skeletons(serial, vectorized, "packed serial vs vectorized")

    def test_identical_interpolations_and_couplings(self, problem):
        serial, _ = problem["runs"][("packed", "serial")]
        vectorized, _ = problem["runs"][("packed", "vectorized")]
        for node in serial.skeletons.nodes():
            a = serial.skeletons.get(node).interpolation
            b = vectorized.skeletons.get(node).interpolation
            assert np.allclose(a, b, rtol=0.0, atol=1e-12)
        assert set(serial.couplings) == set(vectorized.couplings)
        for key, block in serial.couplings.items():
            assert np.allclose(block, vectorized.couplings[key], rtol=0.0, atol=1e-12)
        assert set(serial.dense_blocks) == set(vectorized.dense_blocks)
        for key, block in serial.dense_blocks.items():
            assert np.array_equal(block, vectorized.dense_blocks[key])

    def test_packed_matches_loop_compression_quality(self, problem):
        """Both paths compress to the configured tolerance with the same samples."""
        dense = problem["dense"]
        _, loop_result = problem["runs"][("loop", "vectorized")]
        _, packed_result = problem["runs"][("packed", "vectorized")]
        assert packed_result.total_samples == loop_result.total_samples
        assert packed_result.converged == loop_result.converged
        loop_err = dense_relative_error(
            loop_result.matrix.to_dense(permuted=True), dense
        )
        packed_err = dense_relative_error(
            packed_result.matrix.to_dense(permuted=True), dense
        )
        assert packed_err < 1e-5
        assert packed_err < 10 * max(loop_err, 1e-9)

    def test_loop_backends_agree_on_skeletons(self, problem):
        serial, _ = problem["runs"][("loop", "serial")]
        vectorized, _ = problem["runs"][("loop", "vectorized")]
        assert_same_skeletons(serial, vectorized, "loop serial vs vectorized")

    def test_level_reports_match_loop(self, problem):
        _, loop_result = problem["runs"][("loop", "vectorized")]
        _, packed_result = problem["runs"][("packed", "vectorized")]
        assert len(loop_result.levels) == len(packed_result.levels)
        for lhs, rhs in zip(loop_result.levels, packed_result.levels):
            assert (lhs.depth, lhs.num_nodes) == (rhs.depth, rhs.num_nodes)
            assert lhs.sampling_rounds == rhs.sampling_rounds
            assert (lhs.min_rank, lhs.max_rank) == (rhs.min_rank, rhs.max_rank)


class TestFixedSeedSkeletonParity:
    """Loop ↔ packed bit-parity of skeleton selections at fixed seed.

    The packed sweep only reorders floating-point accumulations at the
    ~1e-15 level; wherever the ID tolerance genuinely truncates (rather than
    capping at the sample count, where near-tie pivots may flip), the loop and
    packed paths select identical skeletons.
    """

    @pytest.mark.parametrize("tolerance", [1e-6, 1e-8])
    def test_skeletons_identical_at_2048(self, tolerance):
        points = uniform_cube_points(2048, dim=2, seed=13)
        tree = ClusterTree.build(points, leaf_size=16)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = ExponentialKernel(0.2).matrix(tree.points)
        loop, _ = _construct(
            partition, dense, "loop", "vectorized",
            tolerance=tolerance, sample_block_size=8,
        )
        packed, _ = _construct(
            partition, dense, "packed", "vectorized",
            tolerance=tolerance, sample_block_size=8,
        )
        assert_same_skeletons(loop, packed, f"loop vs packed at tol={tolerance}")
        for key, block in loop.couplings.items():
            assert np.allclose(block, packed.couplings[key], rtol=0.0, atol=1e-12)


class TestLaunchCounts:
    """The packed sweep issues O(levels) launches per round, not O(nodes)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sweep_launches_are_o_levels(self, problem, backend):
        _, packed_result = problem["runs"][("packed", backend)]
        report = construction_report(packed_result)
        levels = problem["tree"].num_levels
        rounds = max(report.sampling_rounds, 1)
        # Entry generation is inherently one launch per block-shape group;
        # everything else — gathers, dense/coupling GEMMs, upsweeps, QRs and
        # rank-grouped IDs — must stay a small multiple of the level count.
        assert report.sweep_launches <= 10 * levels * rounds

    def test_packed_beats_loop_launch_count(self, problem):
        _, loop_result = problem["runs"][("loop", "vectorized")]
        _, packed_result = problem["runs"][("packed", "vectorized")]
        loop_report = construction_report(loop_result)
        packed_report = construction_report(packed_result)
        num_nodes = sum(level.num_nodes for level in loop_result.levels)
        assert packed_report.sweep_launches < loop_report.sweep_launches / 2
        assert loop_report.sweep_launches > num_nodes  # the per-node schedule
        # Both paths request the identical dense/coupling blocks, so the
        # per-shape-group generation launches agree exactly.
        assert packed_report.generation_launches == loop_report.generation_launches

    def test_report_round_trip(self, problem):
        _, packed_result = problem["runs"][("packed", "vectorized")]
        report = construction_report(packed_result)
        payload = report.as_dict()
        assert payload["path"] == "packed"
        assert payload["sweep_launches"] + payload["generation_launches"] == (
            packed_result.total_kernel_launches
        )
        assert report.points_per_second > 0
        assert report.sweep_launches_per_round <= report.sweep_launches


class TestWorkspaceLifecycle:
    """Plan sharing, preallocated sample buffers and frozen-bank replay."""

    @pytest.fixture(scope="class")
    def small_problem(self):
        points = uniform_cube_points(460, dim=2, seed=13)
        tree = ClusterTree.build(points, leaf_size=16)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = ExponentialKernel(0.2).matrix(tree.points)
        return partition, dense

    def test_plan_is_shared_across_constructions(self, small_problem):
        partition, dense = small_problem
        plan = ConstructionPlan(partition)
        c1, _ = _construct(partition, dense, "packed", "vectorized", plan=plan)
        c2, _ = _construct(partition, dense, "packed", "vectorized", plan=plan)
        assert c1.plan is plan and c2.plan is plan
        assert_same_skeletons(c1, c2, "shared-plan constructions")

    def test_plan_compiled_lazily_when_absent(self, small_problem):
        partition, dense = small_problem
        constructor, _ = _construct(partition, dense, "packed", "vectorized")
        assert isinstance(constructor.plan, ConstructionPlan)
        assert constructor.plan.partition is partition

    def test_plan_partition_mismatch_rejected(self, small_problem):
        partition, dense = small_problem
        other_points = uniform_cube_points(460, dim=2, seed=14)
        other_tree = ClusterTree.build(other_points, leaf_size=16)
        other_partition = build_block_partition(
            other_tree, GeneralAdmissibility(eta=0.7)
        )
        with pytest.raises(ValueError, match="different"):
            H2Constructor(
                partition,
                DenseOperator(dense),
                DenseEntryExtractor(dense),
                ConstructionConfig(),
                plan=ConstructionPlan(other_partition),
            )

    def test_fan_pad_validation(self, small_problem):
        partition, _ = small_problem
        with pytest.raises(ValueError, match="fan_pad"):
            ConstructionPlan(partition, fan_pad=0)

    def test_frozen_sample_source_replays_identically(self, small_problem):
        """The same sample bank pushes bit-identical state through the workspace."""
        partition, dense = small_problem
        # Two packed constructions drawing the identical sample columns (the
        # frozen-bank scenario of GeometryContext) must replay identically.
        draws = []

        def frozen_source(count):
            index = len(draws)
            rng = np.random.default_rng(2000 + index)
            block = rng.standard_normal((partition.tree.num_points, count))
            draws.append(block)
            return block

        c1 = H2Constructor(
            partition, DenseOperator(dense), DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, sample_block_size=16),
            sample_source=frozen_source,
        )
        c1.construct_packed()
        replay = iter(list(draws))
        c2 = H2Constructor(
            partition, DenseOperator(dense), DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, sample_block_size=16),
            sample_source=lambda count: next(replay),
        )
        c2.construct_packed()
        assert_same_skeletons(c1, c2, "frozen-bank replay")
        for key, block in c1.couplings.items():
            assert np.array_equal(block, c2.couplings[key])

    def test_level_state_append_grows_capacity(self):
        state = _LevelState(
            depth=2, nodes=[0, 1], heights=np.array([3, 2]), m_pad=3, cols=2,
            capacity=2,
        )
        state.y[:2, :3, :2] = 1.0
        state.omega[:2, :3, :2] = 2.0
        before = state.y[:, :, :2].copy()
        slab_y = np.full((3, 3, 5), 3.0)
        slab_o = np.full((3, 3, 5), 4.0)
        state.append(slab_o, slab_y)
        assert state.cols == 7
        assert state.capacity >= 7
        # Existing columns survive the growth; new columns land after them.
        assert np.array_equal(state.y[:, :, :2], before)
        assert np.all(state.y[:, :, 2:7] == 3.0)
        assert np.all(state.omega[:, :, 2:7] == 4.0)

    def test_level_state_views_and_blocks(self):
        state = _LevelState(
            depth=1, nodes=[7], heights=np.array([2]), m_pad=4, cols=3,
            capacity=8,
        )
        assert state.y_view.shape == (2, 4, 3)
        assert state.y_active.shape == (1, 4, 3)
        assert state.node_block(0).shape == (2, 3)
        assert state.node_block(0, padded=True).shape == (4, 3)

    def test_plan_and_engine_memory_accounting(self, small_problem):
        partition, dense = small_problem
        plan = ConstructionPlan(partition)
        assert plan.memory_bytes() > 0
        assert "ConstructionPlan" in repr(plan)
        constructor, _ = _construct(
            partition, dense, "packed", "vectorized", plan=plan
        )
        # The engine is transient, but its operand accounting is reachable
        # through a fresh engine fed by the same plan.
        from repro.batched.backend import get_backend
        from repro.utils.timing import PhaseTimer

        engine = PackedSweepEngine(plan, get_backend("vectorized"), PhaseTimer())
        assert engine.memory_bytes() == 0  # nothing marshalled yet


class TestPathSelection:
    """`construction_path` config / env plumbing mirrors the apply side."""

    @pytest.fixture(scope="class")
    def tiny(self):
        points = uniform_cube_points(220, dim=2, seed=5)
        tree = ClusterTree.build(points, leaf_size=16)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = ExponentialKernel(0.2).matrix(tree.points)
        return partition, dense

    def _constructor(self, tiny, **config_kwargs):
        partition, dense = tiny
        return H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, **config_kwargs),
            seed=3,
        )

    def test_result_records_path(self, tiny):
        assert self._constructor(tiny).construct_packed().construction_path == "packed"
        assert self._constructor(tiny).construct_loop().construction_path == "loop"

    def test_config_selects_path(self, tiny):
        assert (
            self._constructor(tiny, construction_path="loop")
            .construct()
            .construction_path
            == "loop"
        )
        assert (
            self._constructor(tiny, construction_path="packed")
            .construct()
            .construction_path
            == "packed"
        )

    def test_env_selects_path_in_auto_mode(self, tiny, monkeypatch):
        monkeypatch.setenv("REPRO_CONSTRUCT_PATH", "loop")
        assert self._constructor(tiny).construct().construction_path == "loop"
        monkeypatch.setenv("REPRO_CONSTRUCT_PATH", "packed")
        assert self._constructor(tiny).construct().construction_path == "packed"
        monkeypatch.delenv("REPRO_CONSTRUCT_PATH")
        assert self._constructor(tiny).construct().construction_path == "packed"

    def test_invalid_path_rejected(self, tiny, monkeypatch):
        with pytest.raises(ValueError, match="construction_path"):
            self._constructor(tiny, construction_path="gpu")
        monkeypatch.setenv("REPRO_CONSTRUCT_PATH", "warp")
        with pytest.raises(ValueError, match="unknown construction path"):
            self._constructor(tiny).construct()


class TestAcceptance:
    """ISSUE acceptance: ≥ 3× compiled-construction speedup at N = 8192."""

    @pytest.mark.slow
    def test_packed_construction_speedup_8192(self):
        import time

        n = 8192
        points = uniform_cube_points(n, dim=2, seed=1)
        tree = ClusterTree.build(points, leaf_size=8)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = ExponentialKernel(0.2).matrix(tree.points)
        # The paper's black-box regime (same as recompress_h2): the sampler is
        # a fast compressed apply, so the sweep itself dominates.
        bootstrap = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-8, norm_estimate=8.0),
            seed=3,
        ).construct()
        sampler_matrix = bootstrap.matrix
        sampler_matrix.matvec(np.zeros(n))  # compile the apply plan up front
        plan = ConstructionPlan(partition)
        config = ConstructionConfig(
            tolerance=1e-8, sample_block_size=8, norm_estimate=8.0
        )

        def run(path):
            constructor = H2Constructor(
                partition,
                H2Operator(sampler_matrix),
                DenseEntryExtractor(dense),
                config,
                seed=7,
                plan=plan if path == "packed" else None,
            )
            start = time.perf_counter()
            result = (
                constructor.construct_packed()
                if path == "packed"
                else constructor.construct_loop()
            )
            return constructor, result, time.perf_counter() - start

        loop_c, loop_result, loop_1 = run("loop")
        packed_c, packed_result, packed_1 = run("packed")
        _, _, loop_2 = run("loop")
        _, _, packed_2 = run("packed")
        loop_s, packed_s = min(loop_1, loop_2), min(packed_1, packed_2)

        # Bit-compatible skeleton selections at fixed seed.
        assert_same_skeletons(loop_c, packed_c, "acceptance loop vs packed")
        assert packed_result.total_samples == loop_result.total_samples

        # O(levels) sweep launches per convergence round.
        report = construction_report(packed_result)
        levels = tree.num_levels
        assert report.sweep_launches <= 10 * levels * max(report.sampling_rounds, 1)

        speedup = loop_s / packed_s
        # 3x is the acceptance bar on a quiet machine; contended CI runners can
        # relax it through the environment without weakening the local claim.
        floor = float(os.environ.get("REPRO_CONSTRUCT_SPEEDUP_MIN", "3.0"))
        assert speedup >= floor, (
            f"packed construction speedup {speedup:.2f}x below the {floor}x floor "
            f"(loop {loop_s:.2f}s, packed {packed_s:.2f}s)"
        )

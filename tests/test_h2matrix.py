"""Tests of the H2 matrix data structure (basis tree, matvec, entry extraction,
memory accounting and dense reconstruction) using a constructed matrix."""

import numpy as np
import pytest

from repro.diagnostics import memory_report


class TestBasisTree:
    def test_shapes_consistent(self, cov_h2):
        cov_h2.basis.validate_shapes()

    def test_leaf_bases_identity_on_skeleton(self, cov_h2):
        """Interpolation-based bases contain an identity block (U = P [T; I])."""
        for node, basis in cov_h2.basis.leaf_bases.items():
            if basis.shape[1] == 0:
                continue
            # every column must contain a unit entry in a distinct row
            gram = basis.T @ basis
            assert gram.shape == (basis.shape[1], basis.shape[1])
            assert np.all(np.diag(gram) >= 1.0 - 1e-12)

    def test_rank_range(self, cov_h2):
        lo, hi = cov_h2.basis.rank_range()
        assert 0 <= lo <= hi
        assert hi > 0

    def test_explicit_basis_nested_property(self, cov_h2):
        """Explicit inner bases must equal the stacked child expansion (Eq. 2)."""
        tree = cov_h2.tree
        basis = cov_h2.basis
        checked = 0
        for node in range(tree.num_nodes):
            if tree.is_leaf(node) or not basis.has_basis(node):
                continue
            left, right = tree.children(node)
            if left not in basis.transfers or right not in basis.transfers:
                continue
            explicit = basis.explicit_basis(node)
            expected = np.vstack(
                [
                    basis.explicit_basis(left) @ basis.transfers[left],
                    basis.explicit_basis(right) @ basis.transfers[right],
                ]
            )
            assert np.allclose(explicit, expected)
            checked += 1
        assert checked > 0

    def test_basis_rows_subset(self, cov_h2):
        node = next(iter(cov_h2.basis.leaf_bases))
        full = cov_h2.basis.explicit_basis(node)
        rows = np.array([0, 2, 4])
        assert np.allclose(cov_h2.basis.basis_rows(node, rows), full[rows])

    def test_memory_positive(self, cov_h2):
        assert cov_h2.basis.memory_bytes() > 0

    def test_wrong_leaf_basis_shape_rejected(self, cov_h2):
        node = next(iter(cov_h2.tree.leaves()))
        with pytest.raises(ValueError):
            cov_h2.basis.set_leaf_basis(node, np.zeros((1, 1)))


class TestH2Structure:
    def test_shape(self, cov_h2, tree_2d):
        assert cov_h2.shape == (tree_2d.num_points, tree_2d.num_points)

    def test_coupling_block_shapes(self, cov_h2):
        for (s, t), block in cov_h2.coupling.items():
            assert block.shape == (cov_h2.basis.rank(s), cov_h2.basis.rank(t))

    def test_dense_block_shapes(self, cov_h2):
        tree = cov_h2.tree
        for (s, t), block in cov_h2.dense.items():
            assert block.shape == (tree.cluster_size(s), tree.cluster_size(t))

    def test_every_admissible_pair_has_coupling(self, cov_h2):
        part = cov_h2.partition
        tree = cov_h2.tree
        for level in range(tree.num_levels):
            for s in tree.nodes_at_level(level):
                for t in part.far(s):
                    assert (s, t) in cov_h2.coupling

    def test_every_near_pair_has_dense(self, cov_h2):
        part = cov_h2.partition
        for s in cov_h2.tree.leaves():
            for t in part.near(s):
                assert (s, t) in cov_h2.dense

    def test_statistics(self, cov_h2):
        stats = cov_h2.statistics()
        assert stats["n"] == cov_h2.num_rows
        assert stats["num_coupling_blocks"] == len(cov_h2.coupling)
        assert stats["memory_mb"] > 0


class TestMatvec:
    def test_matvec_matches_dense_permuted(self, cov_h2, dense_cov_2d, rel_err):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(cov_h2.num_rows)
        assert rel_err(cov_h2.matvec(x, permuted=True), dense_cov_2d @ x) < 1e-5

    def test_block_matvec(self, cov_h2, dense_cov_2d, rel_err):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((cov_h2.num_rows, 7))
        assert rel_err(cov_h2.matvec(x, permuted=True), dense_cov_2d @ x) < 1e-5

    def test_matvec_original_ordering(self, cov_h2, dense_cov_2d, rel_err):
        """In original ordering the operator equals P^T K P applied accordingly."""
        tree = cov_h2.tree
        rng = np.random.default_rng(2)
        x = rng.standard_normal(cov_h2.num_rows)
        dense_original = dense_cov_2d[np.ix_(tree.iperm, tree.iperm)]
        assert rel_err(cov_h2.matvec(x), dense_original @ x) < 1e-5

    def test_matmul_operator(self, cov_h2):
        x = np.ones(cov_h2.num_rows)
        assert np.allclose(cov_h2 @ x, cov_h2.matvec(x))

    def test_dimension_mismatch(self, cov_h2):
        with pytest.raises(ValueError):
            cov_h2.matvec(np.ones(cov_h2.num_rows + 3))

    def test_symmetry_of_action(self, cov_h2):
        """The constructed covariance H2 matrix should be (nearly) symmetric."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal(cov_h2.num_rows)
        y = rng.standard_normal(cov_h2.num_rows)
        left = y @ cov_h2.matvec(x, permuted=True)
        right = x @ cov_h2.matvec(y, permuted=True)
        assert abs(left - right) / max(abs(left), 1e-30) < 1e-5


class TestDenseReconstructionAndEntries:
    def test_to_dense_accuracy(self, cov_h2, dense_cov_2d, rel_err):
        assert rel_err(cov_h2.to_dense(permuted=True), dense_cov_2d) < 1e-5

    def test_to_dense_original_ordering(self, cov_h2, dense_cov_2d, rel_err):
        tree = cov_h2.tree
        expected = dense_cov_2d[np.ix_(tree.iperm, tree.iperm)]
        assert rel_err(cov_h2.to_dense(permuted=False), expected) < 1e-5

    def test_leaf_of_index(self, cov_h2):
        tree = cov_h2.tree
        for leaf in tree.leaves():
            mid = (tree.starts[leaf] + tree.ends[leaf] - 1) // 2
            assert cov_h2.leaf_of_index(int(mid)) == leaf

    def test_get_block_matches_dense(self, cov_h2, dense_cov_2d):
        rng = np.random.default_rng(4)
        rows = rng.choice(cov_h2.num_rows, size=25, replace=False)
        cols = rng.choice(cov_h2.num_rows, size=30, replace=False)
        block = cov_h2.get_block(rows, cols, permuted=True)
        reference = dense_cov_2d[np.ix_(rows, cols)]
        assert np.linalg.norm(block - reference) / np.linalg.norm(reference) < 1e-4

    def test_get_block_consistent_with_to_dense(self, cov_h2):
        rows = np.arange(0, 64)
        cols = np.arange(200, 264)
        dense = cov_h2.to_dense(permuted=True)
        assert np.allclose(
            cov_h2.get_block(rows, cols, permuted=True),
            dense[np.ix_(rows, cols)],
            atol=1e-10,
        )

    def test_get_block_empty(self, cov_h2):
        out = cov_h2.get_block(np.zeros(0, dtype=int), np.arange(5), permuted=True)
        assert out.shape == (0, 5)

    def test_get_block_original_ordering(self, cov_h2, dense_cov_2d):
        tree = cov_h2.tree
        rows = np.arange(5)
        cols = np.arange(10, 20)
        dense_original = dense_cov_2d[np.ix_(tree.iperm, tree.iperm)]
        block = cov_h2.get_block(rows, cols, permuted=False)
        assert np.allclose(block, dense_original[np.ix_(rows, cols)], atol=1e-4)


class TestMemory:
    def test_memory_components(self, cov_h2):
        mem = cov_h2.memory_bytes()
        # Format-specific breakdown plus the unified protocol keys.
        assert set(mem) == {"basis", "coupling", "dense", "low_rank", "total"}
        assert mem["total"] == mem["basis"] + mem["coupling"] + mem["dense"]
        assert mem["low_rank"] == mem["basis"] + mem["coupling"]
        assert mem["total"] > 0

    def test_compression_beats_dense(self, cov_h2, dense_cov_2d):
        assert cov_h2.memory_bytes()["total"] < dense_cov_2d.nbytes

    def test_memory_report_helper(self, cov_h2):
        report = memory_report(cov_h2)
        assert report.total_mb == pytest.approx(cov_h2.total_memory_mb())
        assert report.component_mb("basis") > 0
        assert "total_mb" in report.as_dict()

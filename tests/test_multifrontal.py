"""Tests for the multifrontal substrate (Poisson, nested dissection, frontal matrices)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
)
from repro.multifrontal import (
    nested_dissection,
    poisson_grid_points,
    poisson_matrix,
    root_frontal_matrix,
    schur_complement,
)
from repro.multifrontal.poisson import grid_coordinates, grid_index


class TestPoisson:
    def test_1d_matrix(self):
        a = poisson_matrix((5,)).toarray()
        assert np.allclose(np.diag(a), 2.0)
        assert np.allclose(np.diag(a, 1), -1.0)

    def test_2d_row_sums_interior(self):
        a = poisson_matrix((5, 5)).toarray()
        assert np.allclose(np.diag(a), 4.0)
        # interior point (2,2) has 4 off-diagonal -1 entries
        idx = grid_index((5, 5), np.array([2, 2]))[0]
        assert a[idx].sum() == pytest.approx(0.0)

    def test_3d_diagonal(self):
        a = poisson_matrix((4, 4, 4))
        assert np.allclose(a.diagonal(), 6.0)

    def test_symmetric_positive_definite(self):
        a = poisson_matrix((6, 5)).toarray()
        assert np.allclose(a, a.T)
        assert np.linalg.eigvalsh(a).min() > 0

    def test_grid_points_match_dimension(self):
        pts = poisson_grid_points((3, 4, 5))
        assert pts.shape == (60, 3)

    def test_grid_index_and_coordinates_roundtrip(self):
        shape = (3, 4, 2)
        coords = np.stack(grid_coordinates(shape), axis=1)
        idx = grid_index(shape, coords)
        assert np.array_equal(idx, np.arange(np.prod(shape)))

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            poisson_matrix((0, 3))
        with pytest.raises(ValueError):
            poisson_matrix((2, 2, 2, 2))


class TestNestedDissection:
    def test_permutation_valid(self):
        nd = nested_dissection((9, 9), max_levels=3)
        assert np.array_equal(np.sort(nd.permutation), np.arange(81))

    def test_top_separator_is_plane(self):
        nd = nested_dissection((9, 9, 9), max_levels=1)
        sep = nd.top_separator()
        assert sep.level == 0
        assert sep.indices.shape[0] == 81  # a full 9x9 plane

    def test_separator_disconnects_halves(self):
        shape = (7, 7)
        a = poisson_matrix(shape).tolil()
        nd = nested_dissection(shape, max_levels=1)
        sep = set(nd.top_separator().indices.tolist())
        remaining = [i for i in range(49) if i not in sep]
        sub = a[np.ix_(remaining, remaining)].tocsr()
        n_components = sp.csgraph.connected_components(sub, directed=False)[0]
        assert n_components >= 2

    def test_multiple_levels(self):
        nd = nested_dissection((15, 15), max_levels=3)
        assert nd.num_levels == 3
        assert len(nd.separators_at_level(0)) == 1
        assert len(nd.separators_at_level(1)) == 2
        assert len(nd.separators_at_level(2)) == 4

    def test_separators_are_disjoint(self):
        nd = nested_dissection((11, 11), max_levels=3)
        all_indices = np.concatenate([s.indices for s in nd.separators])
        assert np.unique(all_indices).shape[0] == all_indices.shape[0]


class TestFrontalMatrices:
    def test_schur_complement_definition(self):
        a = poisson_matrix((4, 4))
        separator = np.array([5, 6, 9, 10])
        dense = a.toarray()
        mask = np.ones(16, dtype=bool)
        mask[separator] = False
        interior = np.nonzero(mask)[0]
        expected = dense[np.ix_(separator, separator)] - dense[
            np.ix_(separator, interior)
        ] @ np.linalg.solve(dense[np.ix_(interior, interior)], dense[np.ix_(interior, separator)])
        assert np.allclose(schur_complement(a, separator), expected, atol=1e-10)

    def test_schur_no_interior(self):
        a = poisson_matrix((3, 3))
        separator = np.arange(9)
        assert np.allclose(
            schur_complement(a, separator, interior=np.zeros(0, dtype=int)), a.toarray()
        )

    def test_root_frontal_matrix_properties(self):
        front = root_frontal_matrix((8, 8, 8))
        assert front.size == 64
        assert front.points.shape == (64, 3)
        f = front.matrix
        assert np.allclose(f, f.T, atol=1e-10)
        # the Schur complement of an SPD matrix is SPD
        assert np.linalg.eigvalsh(f).min() > 0

    def test_frontal_matrix_is_compressible(self, rel_err):
        """The frontal matrix must compress well with the H2 constructor (Fig. 6b)."""
        front = root_frontal_matrix((10, 10, 10))
        tree = ClusterTree.build(front.points, leaf_size=16)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = front.matrix[np.ix_(tree.perm, tree.perm)]
        result = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6, sample_block_size=16),
            seed=0,
        ).construct()
        assert rel_err(result.matrix.to_dense(permuted=True), dense) < 1e-4

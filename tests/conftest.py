"""Shared fixtures for the test-suite.

Fixtures are session-scoped where the underlying objects are immutable and
expensive (cluster trees, dense kernel matrices, constructed H2 matrices) so
the several hundred tests stay fast.  Problem sizes are deliberately small and
mostly two-dimensional: at small N a 2D geometry already produces a rich
strong-admissibility block structure (many admissible blocks over several
levels), whereas a 3D geometry would need far more points to show any
admissible block at eta = 0.7.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    HelmholtzKernel,
    build_block_partition,
    uniform_cube_points,
)


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Reset the process-global metrics registry and memory ledger per test.

    Both are module-level singletons that production code writes into as a
    side effect (cache hits, health probes, ledger accounting); without a
    reset, counts would leak between tests and depend on execution order.
    """
    from repro.observe import reset_memory_ledger, reset_metrics

    reset_metrics()
    reset_memory_ledger()
    yield
    reset_metrics()
    reset_memory_ledger()


@pytest.fixture(scope="session")
def points_2d() -> np.ndarray:
    return uniform_cube_points(700, dim=2, seed=11)


@pytest.fixture(scope="session")
def points_3d() -> np.ndarray:
    return uniform_cube_points(600, dim=3, seed=12)


@pytest.fixture(scope="session")
def tree_2d(points_2d) -> ClusterTree:
    return ClusterTree.build(points_2d, leaf_size=32)


@pytest.fixture(scope="session")
def tree_3d(points_3d) -> ClusterTree:
    return ClusterTree.build(points_3d, leaf_size=32)


@pytest.fixture(scope="session")
def partition_2d(tree_2d):
    return build_block_partition(tree_2d, GeneralAdmissibility(eta=0.7))


@pytest.fixture(scope="session")
def exp_kernel() -> ExponentialKernel:
    return ExponentialKernel(length_scale=0.2)


@pytest.fixture(scope="session")
def helmholtz_kernel() -> HelmholtzKernel:
    return HelmholtzKernel(wavenumber=3.0)


@pytest.fixture(scope="session")
def dense_cov_2d(tree_2d, exp_kernel) -> np.ndarray:
    """Dense exponential-covariance matrix over the permuted 2D points."""
    return exp_kernel.matrix(tree_2d.points)


@pytest.fixture(scope="session")
def cov_operator_2d(dense_cov_2d) -> DenseOperator:
    return DenseOperator(dense_cov_2d)


@pytest.fixture(scope="session")
def cov_extractor_2d(dense_cov_2d) -> DenseEntryExtractor:
    return DenseEntryExtractor(dense_cov_2d)


@pytest.fixture(scope="session")
def cov_h2_result(partition_2d, dense_cov_2d):
    """An adaptively constructed H2 matrix of the 2D covariance problem."""
    constructor = H2Constructor(
        partition_2d,
        DenseOperator(dense_cov_2d),
        DenseEntryExtractor(dense_cov_2d),
        ConstructionConfig(tolerance=1e-7, sample_block_size=32),
        seed=5,
    )
    return constructor.construct()


@pytest.fixture(scope="session")
def cov_h2(cov_h2_result):
    return cov_h2_result.matrix


def relative_error(approx: np.ndarray, reference: np.ndarray) -> float:
    return float(np.linalg.norm(approx - reference) / np.linalg.norm(reference))


@pytest.fixture(scope="session")
def rel_err():
    return relative_error

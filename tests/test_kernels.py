"""Tests for the kernel functions (covariance and volume-IE)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ExponentialKernel,
    GaussianKernel,
    HelmholtzKernel,
    LaplaceKernel,
    Matern32Kernel,
    Matern52Kernel,
    uniform_cube_points,
)
from repro.kernels.base import pairwise_distances
from repro import ScaledKernel, SumKernel, WhiteNoiseKernel

ALL_KERNELS = [
    ExponentialKernel(0.2),
    GaussianKernel(0.3),
    Matern32Kernel(0.25),
    Matern52Kernel(0.25),
    HelmholtzKernel(wavenumber=3.0, diagonal_value=1.0),
    LaplaceKernel(diagonal_value=2.0),
]


class TestPairwiseDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x, y = rng.random((20, 3)), rng.random((15, 3))
        naive = np.linalg.norm(x[:, None, :] - y[None, :, :], axis=2)
        assert np.allclose(pairwise_distances(x, y), naive, atol=1e-10)

    def test_zero_on_identical_points(self):
        x = np.random.default_rng(1).random((10, 3))
        d = pairwise_distances(x, x)
        assert np.allclose(np.diag(d), 0.0)

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.random((8, 2)), rng.random((9, 2))
        assert np.all(pairwise_distances(x, y) >= 0.0)


class TestKernelValues:
    def test_exponential_formula(self):
        k = ExponentialKernel(0.2)
        x = np.array([[0.0, 0.0, 0.0]])
        y = np.array([[0.3, 0.4, 0.0]])
        assert k(x, y)[0, 0] == pytest.approx(np.exp(-0.5 / 0.2))

    def test_exponential_diagonal_is_one(self):
        pts = uniform_cube_points(50, seed=0)
        mat = ExponentialKernel(0.2).matrix(pts)
        assert np.allclose(np.diag(mat), 1.0)

    def test_gaussian_formula(self):
        k = GaussianKernel(0.5)
        x, y = np.zeros((1, 2)), np.array([[0.5, 0.0]])
        assert k(x, y)[0, 0] == pytest.approx(np.exp(-0.5))

    def test_matern_decreasing_in_distance(self):
        for k in (Matern32Kernel(0.2), Matern52Kernel(0.2)):
            r = np.linspace(0, 2, 50)
            vals = k.profile(r)
            assert np.all(np.diff(vals) <= 1e-12)
            assert vals[0] == pytest.approx(1.0)

    def test_helmholtz_formula_offdiagonal(self):
        k = HelmholtzKernel(wavenumber=3.0)
        x, y = np.zeros((1, 3)), np.array([[0.5, 0.0, 0.0]])
        assert k(x, y)[0, 0] == pytest.approx(np.cos(1.5) / 0.5)

    def test_helmholtz_diagonal_value_used(self):
        k = HelmholtzKernel(wavenumber=3.0, diagonal_value=7.5)
        pts = uniform_cube_points(20, seed=1)
        mat = k.matrix(pts)
        assert np.allclose(np.diag(mat), 7.5)
        assert np.all(np.isfinite(mat))

    def test_laplace_diagonal_finite(self):
        mat = LaplaceKernel(diagonal_value=0.0).matrix(uniform_cube_points(20, seed=2))
        assert np.all(np.isfinite(mat))

    def test_scaled_kernel(self):
        base = ExponentialKernel(0.2)
        scaled = ScaledKernel(base, 3.0)
        r = np.linspace(0, 1, 10)
        assert np.allclose(scaled.profile(r), 3.0 * base.profile(r))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExponentialKernel(0.0)
        with pytest.raises(ValueError):
            GaussianKernel(-1.0)
        with pytest.raises(ValueError):
            HelmholtzKernel(wavenumber=-1.0)
        with pytest.raises(TypeError):
            ScaledKernel(None)


class TestKernelMatrices:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: type(k).__name__)
    def test_symmetric(self, kernel):
        pts = uniform_cube_points(60, seed=3)
        mat = kernel.matrix(pts)
        assert np.allclose(mat, mat.T, atol=1e-12)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: type(k).__name__)
    def test_finite(self, kernel):
        pts = uniform_cube_points(60, seed=4)
        assert np.all(np.isfinite(kernel.matrix(pts)))

    def test_exponential_is_positive_definite(self):
        pts = uniform_cube_points(80, seed=5)
        mat = ExponentialKernel(0.2).matrix(pts)
        eigs = np.linalg.eigvalsh(mat)
        assert eigs.min() > -1e-10

    def test_covariance_blocks_are_numerically_low_rank(self):
        """Well-separated blocks must be compressible — the premise of the paper."""
        rng = np.random.default_rng(6)
        left = rng.random((80, 3)) * 0.2
        right = rng.random((80, 3)) * 0.2 + np.array([0.8, 0.8, 0.8])
        block = ExponentialKernel(0.2).evaluate(left, right)
        s = np.linalg.svd(block, compute_uv=False)
        numerical_rank = int(np.sum(s > 1e-8 * s[0]))
        assert numerical_rank < 40

    def test_evaluate_rectangular(self):
        k = ExponentialKernel(0.2)
        a = uniform_cube_points(30, seed=7)
        b = uniform_cube_points(45, seed=8)
        assert k.evaluate(a, b).shape == (30, 45)


class TestRebinding:
    """Kernel-parameter rebinding — the sweep primitive of repro.gp."""

    @pytest.mark.parametrize(
        "kernel",
        [ExponentialKernel(0.2), GaussianKernel(0.3), Matern32Kernel(0.25)],
        ids=lambda k: type(k).__name__,
    )
    def test_rebind_length_scale(self, kernel):
        rebound = kernel.rebind(length_scale=0.5)
        assert type(rebound) is type(kernel)
        assert rebound.length_scale == 0.5
        assert kernel.length_scale != 0.5  # original untouched

    def test_rebind_validates(self):
        with pytest.raises(ValueError):
            ExponentialKernel(0.2).rebind(length_scale=-1.0)

    def test_rebind_rejects_unknown_parameter(self):
        with pytest.raises(TypeError):
            ExponentialKernel(0.2).rebind(bandwidth=1.0)

    def test_hyperparameters_lists_scalar_fields(self):
        assert ExponentialKernel(0.2).hyperparameters() == {"length_scale": 0.2}
        assert HelmholtzKernel(3.0, diagonal_value=1.0).hyperparameters() == {
            "wavenumber": 3.0,
            "diagonal_value": 1.0,
        }


class TestComposition:
    """Noise/nugget composition: scaled, sum and white-noise kernels."""

    def test_operator_sugar(self):
        composed = 0.5 * ExponentialKernel(0.2) + WhiteNoiseKernel(1e-2)
        assert isinstance(composed, SumKernel)
        pts = uniform_cube_points(40, seed=9)
        expected = 0.5 * ExponentialKernel(0.2).matrix(pts) + 1e-2 * np.eye(40)
        assert np.allclose(composed.matrix(pts), expected, atol=1e-14)

    def test_white_noise_only_touches_diagonal(self):
        pts = uniform_cube_points(30, seed=10)
        mat = WhiteNoiseKernel(0.7).matrix(pts)
        assert np.allclose(mat, 0.7 * np.eye(30))

    def test_scaled_kernel_rebind_routes_parameters(self):
        scaled = ScaledKernel(ExponentialKernel(0.2), 2.0)
        rebound = scaled.rebind(length_scale=0.4, variance=3.0)
        assert rebound.variance == 3.0
        assert rebound.kernel.length_scale == 0.4
        assert scaled.hyperparameters() == {"length_scale": 0.2, "variance": 2.0}

    def test_sum_kernel_rebind_routes_parameters(self):
        composed = ExponentialKernel(0.2) + WhiteNoiseKernel(1e-2)
        rebound = composed.rebind(length_scale=0.3, variance=1e-1)
        values = rebound.hyperparameters()
        assert values["length_scale"] == 0.3
        assert values["variance"] == 1e-1
        with pytest.raises(TypeError):
            composed.rebind(wavenumber=1.0)

    def test_colliding_names_are_qualified_not_merged(self):
        """Two variances in one model must stay distinct parameters.

        The README model 0.5*K + WhiteNoise has a ScaledKernel amplitude and a
        nugget both called 'variance'; reads and writes must agree on which is
        which, and the bare ambiguous name must be rejected.
        """
        composed = 0.5 * ExponentialKernel(0.2) + WhiteNoiseKernel(1e-2)
        params = composed.hyperparameters()
        assert params["variance.0"] == 0.5
        assert params["variance.1"] == 1e-2
        assert params["length_scale"] == 0.2
        assert "variance" not in params

        rebound = composed.rebind(**{"variance.0": 0.9, "variance.1": 0.3})
        assert rebound.kernels[0].variance == 0.9
        assert rebound.kernels[1].variance == 0.3

        with pytest.raises(TypeError, match="ambiguous"):
            composed.rebind(variance=1.0)
        with pytest.raises(TypeError):
            composed.rebind(**{"length_scale.1": 0.4})  # wrong component

    def test_hyperparameters_round_trip_through_rebind(self):
        """rebind(**hyperparameters()) must reproduce the same model."""
        for kernel in [
            ExponentialKernel(0.2),
            ScaledKernel(ExponentialKernel(0.3), 2.0),
            0.5 * ExponentialKernel(0.2) + WhiteNoiseKernel(1e-2),
            ScaledKernel(WhiteNoiseKernel(0.4), 3.0),  # nested variance collision
        ]:
            params = kernel.hyperparameters()
            rebound = kernel.rebind(**params)
            assert rebound.hyperparameters() == params
            r = np.linspace(0.0, 1.0, 7)
            assert np.allclose(
                rebound.profile_with_diagonal(r), kernel.profile_with_diagonal(r)
            )

    def test_sum_respects_diagonal_values(self):
        composed = HelmholtzKernel(3.0, diagonal_value=2.0) + WhiteNoiseKernel(0.5)
        pts = uniform_cube_points(25, seed=11)
        mat = composed.matrix(pts)
        assert np.allclose(np.diag(mat), 2.5)

    def test_value_at_zero(self):
        assert ExponentialKernel(0.2).value_at_zero() == 1.0
        assert WhiteNoiseKernel(0.3).value_at_zero() == 0.3
        assert (2.0 * ExponentialKernel(0.2)).value_at_zero() == 2.0

    def test_empty_sum_rejected(self):
        with pytest.raises(ValueError):
            SumKernel(())

    def test_composite_works_in_construction(self):
        """A composed kernel runs through the full constructor unchanged."""
        from repro import GeometryContext

        pts = uniform_cube_points(300, dim=2, seed=12)
        kernel = 0.8 * Matern32Kernel(0.3)
        ctx = GeometryContext(pts, leaf_size=32, seed=2)
        result = ctx.construct(kernel, tolerance=1e-7)
        dense = kernel.matrix(ctx.tree.points)
        x = np.random.default_rng(3).standard_normal(300)
        err = np.linalg.norm(result.matrix.matvec(x, permuted=True) - dense @ x)
        assert err / np.linalg.norm(dense @ x) < 1e-5

"""Cross-backend equivalence and property tests of the compiled H2 apply engine.

The batched plan (:mod:`repro.batched.apply_plan`) must be an exact reordering
of the per-node reference loop: every backend, kernel, tree depth and apply
mode (matvec / matmat / rmatvec / rmatmat, permuted and original ordering) has
to agree with ``matvec_loop`` and with the dense reconstruction to near machine
precision, while issuing O(levels) batched launches instead of O(nodes) block
GEMMs.  Property tests pin down linearity, permutation round-trips,
matmat-vs-stacked-matvec consistency and seed reproducibility of the full
construct → compile → solve pipeline.
"""

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    HelmholtzKernel,
    KernelLaunchCounter,
    SerialBackend,
    VectorizedBackend,
    as_linear_operator,
    build_block_partition,
    cg,
    compile_apply_plan,
    get_backend,
    uniform_cube_points,
)

BACKENDS = ["serial", "vectorized"]
#: (kernel name, leaf size) — leaf size 16 doubles the tree depth vs 48.
PROBLEMS = [
    ("covariance", 16),
    ("covariance", 48),
    ("helmholtz", 16),
    ("helmholtz", 48),
]

TOL = 1e-12


def _kernel(name):
    if name == "covariance":
        return ExponentialKernel(length_scale=0.2)
    return HelmholtzKernel(wavenumber=3.0)


@pytest.fixture(scope="module", params=PROBLEMS, ids=lambda p: f"{p[0]}-leaf{p[1]}")
def h2_problem(request):
    """A constructed H2 matrix over 460 2D points plus its dense reconstruction."""
    name, leaf_size = request.param
    points = uniform_cube_points(460, dim=2, seed=13)
    tree = ClusterTree.build(points, leaf_size=leaf_size)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = _kernel(name).matrix(tree.points)
    result = H2Constructor(
        partition,
        DenseOperator(dense),
        DenseEntryExtractor(dense),
        ConstructionConfig(tolerance=1e-8, sample_block_size=16),
        seed=3,
    ).construct()
    h2 = result.matrix
    return {
        "h2": h2,
        "tree": tree,
        "h2_dense": h2.to_dense(permuted=True),
        "depth": tree.depth,
    }


def rel_err(a, b):
    return float(np.linalg.norm(a - b) / max(np.linalg.norm(b), 1e-300))


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matvec_matches_loop_and_dense(self, h2_problem, backend):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(0).standard_normal(h2.num_rows)
        batched = h2.matvec(x, permuted=True, backend=backend)
        assert rel_err(batched, h2.matvec_loop(x, permuted=True)) < TOL
        assert rel_err(batched, h2_problem["h2_dense"] @ x) < TOL

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matmat_matches_loop_and_dense(self, h2_problem, backend):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(1).standard_normal((h2.num_rows, 6))
        batched = h2.matmat(x, permuted=True, backend=backend)
        assert rel_err(batched, h2.matvec_loop(x, permuted=True)) < TOL
        assert rel_err(batched, h2_problem["h2_dense"] @ x) < TOL

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rmatvec_matches_dense_transpose(self, h2_problem, backend):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(2).standard_normal(h2.num_rows)
        batched = h2.rmatvec(x, permuted=True, backend=backend)
        assert rel_err(batched, h2_problem["h2_dense"].T @ x) < TOL

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rmatmat_matches_dense_transpose(self, h2_problem, backend):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(3).standard_normal((h2.num_rows, 4))
        batched = h2.rmatmat(x, permuted=True, backend=backend)
        assert rel_err(batched, h2_problem["h2_dense"].T @ x) < TOL

    def test_original_ordering_matches_loop(self, h2_problem):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(4).standard_normal(h2.num_rows)
        assert rel_err(h2.matvec(x), h2.matvec_loop(x)) < TOL

    def test_backends_agree_with_each_other(self, h2_problem):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(5).standard_normal((h2.num_rows, 3))
        serial = h2.matmat(x, backend="serial")
        vectorized = h2.matmat(x, backend="vectorized")
        assert rel_err(serial, vectorized) < 1e-14

    def test_transpose_adjoint_identity(self, h2_problem):
        """<y, A x> == <A^T y, x> ties forward and transpose plans together."""
        h2 = h2_problem["h2"]
        rng = np.random.default_rng(6)
        x = rng.standard_normal(h2.num_rows)
        y = rng.standard_normal(h2.num_rows)
        left = float(y @ h2.matvec(x, permuted=True))
        right = float(h2.rmatvec(y, permuted=True) @ x)
        assert abs(left - right) / max(abs(left), 1e-300) < TOL


class TestLaunchCounts:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_launches_per_apply_are_o_levels_not_o_nodes(self, h2_problem, backend):
        h2 = h2_problem["h2"]
        plan = h2.apply_plan()
        counter = KernelLaunchCounter()
        be = get_backend(backend, counter=counter)
        x = np.random.default_rng(7).standard_normal(h2.num_rows)
        h2.matvec(x, backend=be)
        calls = counter.total_calls()
        # One dispatch per compiled stage, identically on both backends.
        assert calls == plan.num_stages
        # O(levels): a bounded number of (phase, fan-in) groups per level ...
        levels = h2.tree.num_levels
        assert calls <= 12 * levels
        # ... and far below the per-node block-product count of the loop.
        assert plan.num_block_products > calls
        assert calls < 0.25 * plan.num_block_products

    def test_plan_is_compiled_once_and_cached(self, h2_problem):
        h2 = h2_problem["h2"]
        plan = h2.apply_plan()
        x = np.random.default_rng(8).standard_normal(h2.num_rows)
        h2.matvec(x)
        assert h2.apply_plan() is plan
        assert h2.apply_plan(rebuild=True) is not plan

    def test_stage_phases_cover_all_blocks(self, h2_problem):
        h2 = h2_problem["h2"]
        plan = h2.apply_plan()
        nonzero_coupling = sum(1 for b in h2.coupling.values() if b.size)
        nonzero_dense = sum(1 for d in h2.dense.values() if d.size)
        per_phase = {}
        for stage in plan.stages:
            per_phase[stage.op] = per_phase.get(stage.op, 0) + stage.num_blocks
        assert per_phase.get("apply_coupling", 0) == nonzero_coupling
        assert per_phase.get("apply_dense", 0) == nonzero_dense


class TestPlanProperties:
    def test_linearity(self, h2_problem):
        h2 = h2_problem["h2"]
        rng = np.random.default_rng(9)
        x, y = rng.standard_normal((2, h2.num_rows))
        a, b = 0.37, -2.5
        combined = h2.matvec(a * x + b * y, permuted=True)
        split = a * h2.matvec(x, permuted=True) + b * h2.matvec(y, permuted=True)
        assert rel_err(combined, split) < TOL

    def test_permutation_round_trip(self, h2_problem):
        """matvec in original ordering == permute, apply permuted, un-permute."""
        h2 = h2_problem["h2"]
        tree = h2_problem["tree"]
        x = np.random.default_rng(10).standard_normal(h2.num_rows)
        direct = h2.matvec(x, permuted=False)
        round_trip = h2.matvec(x[tree.perm], permuted=True)[tree.iperm]
        assert rel_err(round_trip, direct) < 1e-15

    def test_matmat_consistent_with_stacked_matvecs(self, h2_problem):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(11).standard_normal((h2.num_rows, 5))
        block = h2.matmat(x, permuted=True)
        columns = np.column_stack(
            [h2.matvec(x[:, j], permuted=True) for j in range(x.shape[1])]
        )
        assert rel_err(block, columns) < TOL

    def test_zero_input_and_wrong_shapes(self, h2_problem):
        h2 = h2_problem["h2"]
        assert np.all(h2.matvec(np.zeros(h2.num_rows)) == 0.0)
        with pytest.raises(ValueError):
            h2.matvec(np.ones(h2.num_rows + 1))
        with pytest.raises(ValueError):
            h2.matmat(np.ones(h2.num_rows))  # 1-D input to the block apply
        with pytest.raises(ValueError):
            h2.rmatmat(np.ones(h2.num_rows))

    def test_single_leaf_matrix(self):
        """A tree without subdivision (dense-only plan) still applies exactly."""
        points = uniform_cube_points(40, dim=2, seed=14)
        tree = ClusterTree.build(points, leaf_size=64)
        assert tree.depth == 0
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = ExponentialKernel(0.3).matrix(tree.points)
        h2 = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-8),
            seed=1,
        ).construct().matrix
        x = np.random.default_rng(0).standard_normal(40)
        assert rel_err(h2.matvec(x, permuted=True), dense @ x) < 1e-12

    def test_seed_reproducibility_of_pipeline(self):
        """construct → compile → solve is bit-stable for a fixed seed."""

        def pipeline():
            points = uniform_cube_points(300, dim=2, seed=21)
            tree = ClusterTree.build(points, leaf_size=24)
            partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
            dense = ExponentialKernel(0.2).matrix(tree.points) + 0.05 * np.eye(300)
            h2 = H2Constructor(
                partition,
                DenseOperator(dense),
                DenseEntryExtractor(dense),
                ConstructionConfig(tolerance=1e-7, sample_block_size=16),
                seed=17,
            ).construct().matrix
            x = np.random.default_rng(2).standard_normal(300)
            apply_out = h2.matvec(x)
            solve = cg(h2, x, tol=1e-8, maxiter=2000)
            return apply_out, solve

        first_apply, first_solve = pipeline()
        second_apply, second_solve = pipeline()
        assert np.array_equal(first_apply, second_apply)
        assert first_solve.iterations == second_solve.iterations
        assert np.array_equal(first_solve.x, second_solve.x)
        assert np.array_equal(
            first_solve.residual_norms, second_solve.residual_norms
        )


class TestCompileApplyPlanApi:
    def test_compile_standalone_matches_cached(self, h2_problem):
        h2 = h2_problem["h2"]
        plan = compile_apply_plan(h2)
        x = np.random.default_rng(12).standard_normal((h2.num_rows, 2))
        xp = np.ascontiguousarray(x)
        out = plan.execute(xp, backend="vectorized")
        assert rel_err(out, h2.matmat(x, permuted=True)) < 1e-14

    def test_fan_padding_is_exact(self, h2_problem):
        """Wider fan buckets only add zero blocks — results are unchanged."""
        h2 = h2_problem["h2"]
        x = np.random.default_rng(13).standard_normal(h2.num_rows)
        reference = h2.matvec_loop(x, permuted=True)
        for fan_pad in (1, 3, 8):
            plan = compile_apply_plan(h2, fan_pad=fan_pad)
            out = plan.execute(x[:, None], backend="vectorized")[:, 0]
            assert rel_err(out, reference) < TOL

    def test_rank_bucketing_is_exact(self, h2_problem):
        h2 = h2_problem["h2"]
        x = np.random.default_rng(14).standard_normal(h2.num_rows)
        reference = h2.matvec_loop(x, permuted=True)
        plan = compile_apply_plan(h2, pad_to=16)
        out = plan.execute(x[:, None], backend="serial")[:, 0]
        assert rel_err(out, reference) < TOL

    def test_execute_rejects_bad_shapes(self, h2_problem):
        plan = h2_problem["h2"].apply_plan()
        with pytest.raises(ValueError):
            plan.execute(np.ones(plan.n), backend="vectorized")  # 1-D
        with pytest.raises(ValueError):
            plan.execute(np.ones((plan.n + 2, 1)), backend="vectorized")

    def test_describe_and_stats(self, h2_problem):
        plan = h2_problem["h2"].apply_plan()
        text = plan.describe()
        assert "stages" in text and "block_products" in text
        assert plan.flops(2) == 2 * plan.flops(1)
        assert plan.memory_bytes() > 0
        assert sum(plan.stage_counts().values()) == plan.num_stages


class TestLinearOperatorRouting:
    def test_block_rhs_routed_through_matmat(self):
        """as_linear_operator must not fall back to column-at-a-time matvec."""

        class BlockOnly:
            shape = (6, 6)

            def matvec(self, x):
                assert np.asarray(x).ndim == 1, "block RHS must use matmat"
                return 2.0 * x

            def matmat(self, x):
                assert np.asarray(x).ndim == 2
                return 2.0 * x

        op = as_linear_operator(BlockOnly())
        block = np.random.default_rng(0).standard_normal((6, 3))
        assert np.allclose(op.matvec(block), 2.0 * block)
        assert np.allclose(op.matmat(block), 2.0 * block)
        assert np.allclose(op.matvec(block[:, 0]), 2.0 * block[:, 0])

    def test_h2_operator_block_apply_matches_matmat(self, h2_problem):
        h2 = h2_problem["h2"]
        op = as_linear_operator(h2)
        assert op.source is h2
        block = np.random.default_rng(1).standard_normal((h2.num_rows, 4))
        assert np.array_equal(op.matvec(block), h2.matmat(block))
        assert rel_err(op.rmatmat(block), h2.rmatmat(block)) == 0.0


@pytest.mark.slow
class TestAcceptance:
    """ISSUE acceptance: ≥ 3× matvec speedup at N = 8192 with 1e-12 agreement."""

    def test_batched_matvec_speedup_8192(self):
        import os
        import time

        n = 8192
        points = uniform_cube_points(n, dim=2, seed=1)
        tree = ClusterTree.build(points, leaf_size=32)
        partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
        dense = ExponentialKernel(0.2).matrix(tree.points)
        h2 = H2Constructor(
            partition,
            DenseOperator(dense),
            DenseEntryExtractor(dense),
            ConstructionConfig(tolerance=1e-6),
            seed=7,
        ).construct().matrix
        x = np.random.default_rng(1).standard_normal(n)

        batched = h2.matvec(x, permuted=True, backend="vectorized")
        loop = h2.matvec_loop(x, permuted=True)
        assert rel_err(batched, loop) < 1e-12

        def best_of(f, repeats):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                f()
                times.append(time.perf_counter() - start)
            return min(times)

        h2.matvec(x, backend="vectorized")  # ensure plan + buffers warm
        loop_s = best_of(lambda: h2.matvec_loop(x, permuted=True), repeats=5)
        batched_s = best_of(
            lambda: h2.matvec(x, permuted=True, backend="vectorized"), repeats=10
        )
        speedup = loop_s / batched_s
        # 3x is the acceptance bar on a quiet machine; contended CI runners can
        # override it (the throughput benchmark carries the full claim there).
        bar = float(os.environ.get("REPRO_APPLY_SPEEDUP_MIN", "3.0"))
        assert speedup >= bar, (
            f"batched matvec speedup {speedup:.2f}x below the {bar:.1f}x bar "
            f"(loop {loop_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} ms)"
        )

"""Tests for the numerical-health & resource telemetry layer (PR 8).

Covers the memory ledger and per-span peak attribution, the stochastic
compression-error probe (including the acceptance case: an artificially
degraded operator is flagged), solver convergence triage, the OpenMetrics
exposition and JSONL flusher, histogram percentile edge cases, and the
policy/facade/solver wiring that threads everything through.
"""

from __future__ import annotations

import gc
import json
import logging
import math
import re
import sys

import numpy as np
import pytest

import repro
from repro import (
    ExecutionPolicy,
    ExponentialKernel,
    Session,
    SpanTracer,
    uniform_cube_points,
)
from repro.diagnostics import PhaseBreakdown
from repro.observe import (
    CATEGORIES,
    Histogram,
    HealthEvent,
    HealthThresholds,
    MemoryLedger,
    MemorySampler,
    MetricsJSONLFlusher,
    MetricsRegistry,
    NOOP_TRACER,
    StructuredLogAdapter,
    categorize_operator_bytes,
    check_operator_health,
    diagnose_convergence,
    estimate_compression_error,
    from_jsonl,
    memory_ledger,
    phase_peak_bytes,
    record_solver_health,
    render_openmetrics,
    reset_memory_ledger,
    reset_metrics,
    rss_bytes,
    sanitize_metric_name,
    save_openmetrics,
    to_jsonl,
)
from repro.solvers.krylov import KrylovResult, cg

N = 256


def fresh_tracer(**kwargs):
    return SpanTracer(metrics=MetricsRegistry(), **kwargs)


# -------------------------------------------------- histogram edge cases (b)
class TestHistogramEdgeCases:
    def test_empty_reservoir_percentile_is_nan(self):
        hist = Histogram("lat")
        assert math.isnan(hist.percentile(50.0))
        assert math.isnan(hist.p50)
        assert math.isnan(hist.p95)
        assert math.isnan(hist.p99)

    def test_empty_summary_is_json_safe(self):
        hist = Histogram("lat")
        json.dumps(hist.summary())
        assert hist.summary()["count"] == 0

    def test_single_sample_is_every_percentile(self):
        hist = Histogram("lat")
        hist.observe(3.5)
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert hist.percentile(q) == 3.5
        assert hist.p50 == hist.p95 == hist.p99 == 3.5

    def test_out_of_range_quantiles_clamp(self):
        hist = Histogram("lat")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.percentile(-10.0) == hist.percentile(0.0) == 1.0
        assert hist.percentile(250.0) == hist.percentile(100.0) == 3.0


# --------------------------------------------------- registry isolation (a)
class TestMetricsReset:
    def test_reset_metrics_clears_global_registry(self):
        repro.observe.metrics().counter("isolation.probe").inc(7)
        assert repro.observe.metrics().counter("isolation.probe").value == 7
        reset_metrics()
        assert repro.observe.metrics().counter("isolation.probe").value == 0

    def test_autouse_fixture_runs_first_half(self):
        # Paired with ..._second_half: whichever order pytest runs them in,
        # the autouse conftest fixture must have cleared the other's counts.
        registry = repro.observe.metrics()
        assert registry.counter("isolation.pair").value == 0
        registry.counter("isolation.pair").inc()

    def test_autouse_fixture_runs_second_half(self):
        registry = repro.observe.metrics()
        assert registry.counter("isolation.pair").value == 0
        registry.counter("isolation.pair").inc()

    def test_reset_memory_ledger_clears_entries(self):
        memory_ledger().account("probe", {"dense": 128})
        assert memory_ledger().total_bytes() == 128
        reset_memory_ledger()
        assert memory_ledger().total_bytes() == 0


# ------------------------------------------------------------ memory ledger
class TestMemoryLedger:
    def test_account_release_and_totals(self):
        ledger = MemoryLedger(metrics=MetricsRegistry())
        ledger.account("op-a", {"basis": 100, "coupling": 50})
        ledger.account("op-b", {"dense": 30})
        totals = ledger.by_category()
        assert set(totals) == set(CATEGORIES)
        assert totals["basis"] == 100
        assert totals["dense"] == 30
        assert ledger.total_bytes() == 180
        ledger.account("op-a", {"basis": 10})  # replace, not accumulate
        assert ledger.total_bytes() == 40
        ledger.release("op-b")
        ledger.release("op-b")  # idempotent
        assert ledger.total_bytes() == 10
        assert ledger.by_owner() == {"op-a": {"basis": 10}}

    def test_unknown_category_raises(self):
        ledger = MemoryLedger(metrics=MetricsRegistry())
        with pytest.raises(ValueError, match="unknown memory category"):
            ledger.account("op", {"gpu": 1})

    def test_track_releases_on_garbage_collection(self):
        ledger = MemoryLedger(metrics=MetricsRegistry())

        class _Owner:
            pass

        owner = _Owner()
        ledger.track(owner, {"workspace": 64})
        assert ledger.total_bytes() == 64
        del owner
        gc.collect()
        assert ledger.total_bytes() == 0

    def test_publishes_category_gauges(self):
        registry = MetricsRegistry()
        ledger = MemoryLedger(metrics=registry)
        ledger.account("op", {"cache": 2048})
        assert registry.gauge("memory.cache.bytes").value == 2048.0
        assert registry.gauge("memory.basis.bytes").value == 0.0

    def test_snapshot_is_json_safe(self):
        ledger = MemoryLedger(metrics=MetricsRegistry())
        ledger.account("op", {"basis": 1})
        snap = ledger.snapshot()
        json.dumps(snap)
        assert snap["total_bytes"] == 1

    def test_categorize_operator_bytes_drops_derived_keys(self):
        # Format-specific components present: total and low_rank are derived.
        components = {"total": 180, "low_rank": 150, "basis": 100,
                      "coupling": 50, "dense": 30}
        assert categorize_operator_bytes(components) == {
            "basis": 100, "coupling": 50, "dense": 30,
        }
        # Only the generic split available: low_rank counts as coupling.
        assert categorize_operator_bytes({"total": 80, "low_rank": 50,
                                          "dense": 30}) == {
            "coupling": 50, "dense": 30,
        }

    def test_rss_bytes_positive_on_linux(self):
        assert rss_bytes() > 0


# ----------------------------------------------------- per-span peak memory
class TestMemorySampler:
    def test_nested_spans_attribute_peaks(self):
        sampler = MemorySampler(sample_rss=False)
        try:
            tracer = fresh_tracer(memory=sampler)
            with tracer.span("outer") as outer:
                keep = np.ones(200_000)  # survives to span exit
                with tracer.span("inner") as inner:
                    transient = np.ones(400_000)  # peak only
                    del transient
            assert inner.attributes["mem_peak_bytes"] >= 400_000 * 8
            # The child's peak happened inside the parent too.
            assert (outer.attributes["mem_peak_bytes"]
                    >= inner.attributes["mem_peak_bytes"])
            assert outer.attributes["mem_current_bytes"] >= 200_000 * 8
            assert "mem_rss_bytes" not in inner.attributes
            del keep
        finally:
            sampler.close()

    def test_rss_sampling_and_close(self):
        sampler = MemorySampler()
        try:
            tracer = fresh_tracer(memory=sampler)
            with tracer.span("work") as span:
                pass
            assert span.attributes["mem_rss_bytes"] > 0
        finally:
            sampler.close()
        sampler.close()  # idempotent

    def test_tracer_without_sampler_adds_no_attributes(self):
        tracer = fresh_tracer()
        with tracer.span("work") as span:
            np.ones(1000)
        assert "mem_peak_bytes" not in span.attributes

    def test_phase_peak_bytes_view_keeps_max_per_phase(self):
        sampler = MemorySampler(sample_rss=False)
        try:
            tracer = fresh_tracer(memory=sampler)
            with tracer.span("construct", category="construct"):
                with tracer.span("p", category="construct.phase", phase="id"):
                    a = np.ones(100_000)
                    del a
                with tracer.span("p", category="construct.phase", phase="id"):
                    pass
            peaks = phase_peak_bytes(tracer)
            assert set(peaks) == {"id"}
            assert peaks["id"] >= 100_000 * 8
        finally:
            sampler.close()

    def test_memory_attributes_survive_jsonl_round_trip(self):
        # Satellite (c): exporter fidelity of the new span attributes.
        sampler = MemorySampler()
        try:
            tracer = fresh_tracer(memory=sampler)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    np.ones(50_000)
        finally:
            sampler.close()
        (root,) = from_jsonl(to_jsonl(tracer))
        for original, restored in zip(tracer.roots[0].walk(), root.walk()):
            assert restored.attributes == original.attributes
            assert "mem_peak_bytes" in restored.attributes
            assert "mem_rss_bytes" in restored.attributes

    def test_phase_breakdown_carries_peaks(self):
        sampler = MemorySampler(sample_rss=False)
        try:
            tracer = fresh_tracer(memory=sampler)
            with tracer.span("construct", category="construct"):
                with tracer.span("p", category="construct.phase",
                                 phase="sampling"):
                    a = np.ones(50_000)
                    del a
        finally:
            sampler.close()
        breakdown = PhaseBreakdown.from_span(tracer)
        assert breakdown.peak_bytes["sampling"] >= 50_000 * 8
        ordered = breakdown.ordered_peak_bytes()
        assert list(ordered)[:2] == ["sampling", "entry_generation"]
        assert ordered["entry_generation"] == 0


# ----------------------------------------------------------- policy wiring
class TestPolicyKnobs:
    def test_defaults_are_off(self):
        policy = ExecutionPolicy()
        assert policy.health is None
        assert policy.memory_profile is False
        assert policy.tracer.memory is None

    def test_memory_profile_attaches_sampler(self):
        tracer = fresh_tracer()
        policy = ExecutionPolicy(tracer=tracer, memory_profile=True)
        assert isinstance(policy.tracer.memory, MemorySampler)
        policy.tracer.memory.close()

    def test_memory_profile_ignored_without_tracer(self):
        policy = ExecutionPolicy(memory_profile=True)
        assert policy.tracer is NOOP_TRACER
        assert policy.tracer.memory is None

    def test_existing_sampler_not_replaced(self):
        sampler = MemorySampler(sample_rss=False)
        try:
            tracer = fresh_tracer(memory=sampler)
            policy = ExecutionPolicy(tracer=tracer, memory_profile=True)
            assert policy.tracer.memory is sampler
        finally:
            sampler.close()


# ------------------------------------------------------- compression probe
@pytest.fixture()
def probe_setup(cov_h2, exp_kernel):
    """A rich-structure constructed operator (admissible blocks, nested basis)."""
    return cov_h2, exp_kernel


class _DegradedOperator:
    """Proxy injecting a relative error into every apply (the regression)."""

    def __init__(self, operator, magnitude: float):
        self._operator = operator
        self._magnitude = magnitude
        self.tree = operator.tree
        self.shape = operator.shape

    def matmat(self, x, permuted: bool = False):
        y = self._operator.matmat(x, permuted=permuted)
        noise = np.random.default_rng(99).standard_normal(y.shape)
        return y + self._magnitude * np.linalg.norm(y) * noise / np.linalg.norm(noise)

    def memory_bytes(self):
        return self._operator.memory_bytes()


class TestCompressionProbe:
    def test_healthy_operator_error_near_tolerance(self, probe_setup):
        matrix, kernel = probe_setup
        est = estimate_compression_error(matrix, kernel, rows=64, vectors=8)
        assert est < 50.0 * 1e-6

    def test_probe_is_deterministic(self, probe_setup):
        matrix, kernel = probe_setup
        a = estimate_compression_error(matrix, kernel, seed=4)
        b = estimate_compression_error(matrix, kernel, seed=4)
        assert a == b

    def test_operator_without_tree_raises(self):
        with pytest.raises(TypeError, match="cluster tree"):
            estimate_compression_error(object(), ExponentialKernel(0.2))

    def test_healthy_report_not_flagged(self, probe_setup):
        matrix, kernel = probe_setup
        registry = MetricsRegistry()
        tracer = SpanTracer(metrics=registry)
        report = check_operator_health(
            matrix, kernel, tol=1e-6, tracer=tracer, source="constructed"
        )
        assert not report.flagged
        assert report.source == "constructed"
        assert report.compression_ratio > 1.0
        assert report.rank_levels  # nested-basis operator has level ranks
        assert registry.histogram("health.compression_error").count == 1
        assert registry.gauge("health.compression_ratio").value > 1.0
        assert registry.counter("health.warnings").value == 0
        json.dumps(report.to_dict())

    def test_injected_regression_is_flagged(self, probe_setup, caplog):
        """Acceptance: an artificial compression-error regression (an operator
        whose applies are 1% off) trips the probe, warns through the
        structured-log adapter, and increments ``health.warnings``."""
        matrix, kernel = probe_setup
        degraded = _DegradedOperator(matrix, magnitude=1e-2)
        registry = MetricsRegistry()
        tracer = SpanTracer(metrics=registry)
        adapter = StructuredLogAdapter(metrics=registry)
        with caplog.at_level(logging.WARNING, logger="repro.observe.health"):
            report = check_operator_health(
                degraded, kernel, tol=1e-6, tracer=tracer,
                source="loaded", adapter=adapter,
            )
        assert report.flagged
        assert report.est_relative_error > 50.0 * 1e-6
        assert registry.counter("health.warnings").value == 1
        assert any(
            "event=compression_error" in record.message
            and "source=loaded" in record.message
            for record in caplog.records
        )
        # The tracer carries the probe event for the trace timeline.
        assert any(
            event.name == "health.operator_probe"
            and event.attributes["flagged"]
            for event in tracer.orphan_events
        )

    def test_session_records_health_report(self):
        points = uniform_cube_points(N, dim=3, seed=5)
        kernel = ExponentialKernel(0.25)
        policy = ExecutionPolicy(tracer=fresh_tracer(),
                                 health=HealthThresholds())
        sess = Session(points, leaf_size=32, seed=1, policy=policy)
        sess.compress(kernel, tol=1e-6)
        report = sess.result.health
        assert report is not None
        assert report.source == "constructed"
        assert not report.flagged

    def test_health_off_by_default(self):
        points = uniform_cube_points(N, dim=2, seed=5)
        sess = Session(points, leaf_size=32, seed=1)
        sess.compress(ExponentialKernel(0.25), tol=1e-6)
        assert sess.result.health is None


# ----------------------------------------------------- convergence triage
class TestConvergenceDiagnosis:
    def test_clean_history_has_no_events(self):
        history = np.array([1.0, 1e-3, 1e-6, 1e-9])
        assert diagnose_convergence(history, converged=True) == []

    def test_short_history_has_no_events(self):
        assert diagnose_convergence(np.array([1.0]), converged=False) == []

    def test_divergence(self):
        history = np.array([1.0, 0.1, 5.0])
        (event,) = diagnose_convergence(history, converged=False, method="cg")
        assert event.kind == "divergence"
        assert event.attributes["best_residual"] == pytest.approx(0.1)
        assert "cg" in event.message

    def test_stagnation(self):
        history = np.array([1.0] + [0.5] * 15)
        (event,) = diagnose_convergence(history, converged=False)
        assert event.kind == "stagnation"
        assert event.attributes["improvement"] == pytest.approx(0.0)

    def test_stagnation_suppressed_after_divergence(self):
        history = np.array([1.0, 1e-4] + [0.5] * 15)
        events = diagnose_convergence(history, converged=False)
        assert [event.kind for event in events] == ["divergence"]

    def test_converged_solve_never_stagnates(self):
        history = np.array([1.0] + [0.5] * 15)
        assert diagnose_convergence(history, converged=True) == []

    def test_preconditioner_ineffective(self):
        history = np.array([1.0 * 0.9 ** i for i in range(60)])
        events = diagnose_convergence(
            history, converged=False, n=100, precond_applications=59
        )
        kinds = [event.kind for event in events]
        assert kinds == ["preconditioner_ineffective"]
        assert events[0].attributes["n"] == 100

    def test_unpreconditioned_slow_solve_not_blamed(self):
        history = np.array([1.0 * 0.9 ** i for i in range(60)])
        assert diagnose_convergence(
            history, converged=False, n=100, precond_applications=0
        ) == []

    def test_event_to_dict_round_trips(self):
        event = HealthEvent("divergence", "msg", {"iterations": 3})
        assert event.to_dict() == {
            "kind": "divergence", "message": "msg", "iterations": 3,
        }


def _fake_result(history, converged=False, precond=0):
    history = np.asarray(history, dtype=np.float64)
    return KrylovResult(
        x=np.zeros(8), converged=converged, iterations=history.size - 1,
        residual_norms=history, method="cg", matvecs=history.size - 1,
        preconditioner_applications=precond, elapsed_seconds=0.0,
    )


class TestRecordSolverHealth:
    def test_none_thresholds_disable(self):
        result = _fake_result([1.0, 0.1, 5.0])
        assert record_solver_health(result, None) == []
        assert "health_events" not in result.extra

    def test_events_stored_traced_and_warned(self, caplog):
        result = _fake_result([1.0, 0.1, 5.0])
        registry = MetricsRegistry()
        tracer = SpanTracer(metrics=registry)
        adapter = StructuredLogAdapter(metrics=registry)
        with caplog.at_level(logging.WARNING, logger="repro.observe.health"):
            events = record_solver_health(
                result, HealthThresholds(), tracer=tracer, adapter=adapter
            )
        assert [event.kind for event in events] == ["divergence"]
        assert result.extra["health_events"][0]["kind"] == "divergence"
        assert registry.counter("health.warnings").value == 1
        assert any(e.name == "health.divergence" for e in tracer.orphan_events)
        assert any("event=divergence" in r.message for r in caplog.records)

    def test_healthy_result_stays_clean(self):
        result = _fake_result([1.0, 1e-9], converged=True)
        assert record_solver_health(result, HealthThresholds()) == []
        assert "health_events" not in result.extra

    def test_cg_threads_health_through(self):
        # A forced-unconverged CG run with a permissive stagnation threshold
        # exercises the solver-layer wiring end to end.
        rng = np.random.default_rng(0)
        a = rng.standard_normal((32, 32))
        spd = a @ a.T + 32 * np.eye(32)
        thresholds = HealthThresholds(
            stagnation_window=5, stagnation_improvement=1.0,
            divergence_factor=1e12,
        )
        result = cg(spd, np.ones(32), tol=1e-300, maxiter=8,
                    health=thresholds)
        assert not result.converged
        kinds = [e["kind"] for e in result.extra["health_events"]]
        assert "stagnation" in kinds

    def test_session_solve_records_events(self):
        points = uniform_cube_points(N, dim=2, seed=6)
        thresholds = HealthThresholds(
            stagnation_window=3, stagnation_improvement=1.0,
            divergence_factor=1e12,
        )
        policy = ExecutionPolicy(tracer=fresh_tracer(), health=thresholds)
        sess = Session(points, leaf_size=32, seed=1, policy=policy)
        sess.compress(ExponentialKernel(0.25), tol=1e-6)
        solve = sess.solve(np.ones(N), tol=1e-300, maxiter=5)
        assert not solve.converged
        assert solve.extra["health_events"]


# ------------------------------------------------------------- openmetrics
#: One OpenMetrics text line: comment, sample (with optional labels), or EOF.
_LINE_PATTERNS = (
    re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$"),
    re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r" (NaN|[+-]Inf|[-+]?[0-9.eE+-]+)$"
    ),
    re.compile(r"^# EOF$"),
)


class TestOpenMetrics:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("persist.cache.hits") == \
            "repro_persist_cache_hits"
        assert sanitize_metric_name("span.solve/cg.seconds") == \
            "repro_span_solve_cg_seconds"
        assert sanitize_metric_name("") == "repro_"

    def test_every_line_matches_the_exposition_grammar(self):
        # Satellite (c): strict line-format fidelity.
        registry = MetricsRegistry()
        registry.counter("persist.cache.hits").inc(3)
        registry.gauge("memory.basis.bytes").set(1024.5)
        registry.gauge("health.compression_ratio").set(float("inf"))
        registry.histogram("span.solve/cg.seconds").observe(0.25)
        registry.histogram("empty.histogram")  # NaN quantiles
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        for line in lines:
            assert any(p.match(line) for p in _LINE_PATTERNS), line

    def test_counter_gauge_histogram_families(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("depth").set(3.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("lat").observe(value)
        text = render_openmetrics(registry)
        assert "# TYPE repro_runs counter" in text
        assert "repro_runs_total 2" in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 3" in text
        assert "# TYPE repro_lat summary" in text
        assert 'repro_lat{quantile="0.5"}' in text
        assert 'repro_lat{quantile="0.99"}' in text
        assert "repro_lat_count 4" in text
        assert "repro_lat_sum 10" in text

    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        text = render_openmetrics(registry)
        assert 'repro_empty{quantile="0.5"} NaN' in text
        assert "repro_empty_count 0" in text

    def test_save_openmetrics(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        path = save_openmetrics(str(tmp_path / "metrics.txt"), registry)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == render_openmetrics(registry)

    def test_default_registry_is_the_global_one(self):
        repro.observe.metrics().counter("global.probe").inc()
        assert "repro_global_probe_total 1" in render_openmetrics()


class TestMetricsJSONLFlusher:
    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsJSONLFlusher(str(tmp_path / "m.jsonl"), interval_seconds=0)

    def test_flush_appends_loadable_lines(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        path = str(tmp_path / "m.jsonl")
        flusher = MetricsJSONLFlusher(path, interval_seconds=1e-6,
                                      registry=registry)
        assert flusher.maybe_flush() is True  # first call always flushes
        registry.counter("runs").inc()
        flusher.flush()
        assert flusher.flush_count == 2
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["metrics"]["counters"]["runs"] == 1
        assert lines[1]["metrics"]["counters"]["runs"] == 2
        assert lines[1]["elapsed_seconds"] >= lines[0]["elapsed_seconds"]

    def test_maybe_flush_respects_interval(self, tmp_path):
        flusher = MetricsJSONLFlusher(str(tmp_path / "m.jsonl"),
                                      interval_seconds=3600.0,
                                      registry=MetricsRegistry())
        assert flusher.maybe_flush() is True
        assert flusher.maybe_flush() is False
        assert flusher.flush_count == 1


# ------------------------------------------------------- ledger integration
class TestLedgerIntegration:
    def test_construction_tracks_operator_and_workspace(self):
        points = uniform_cube_points(512, dim=3, seed=7)
        sess = Session(points, leaf_size=32, seed=1)
        sess.compress(ExponentialKernel(0.25), tol=1e-6)
        matrix = sess.result.matrix
        totals = memory_ledger().by_category()
        components = matrix.memory_bytes()
        assert totals["basis"] >= components["basis"] > 0
        assert totals["coupling"] >= components["coupling"] > 0
        assert totals["dense"] >= components["dense"] > 0
        # The live session retains its construction workspace (plans/engine).
        assert totals["workspace"] > 0
        # Dropping the session auto-releases the weakref-tracked entries.
        del sess, matrix
        gc.collect()
        assert memory_ledger().by_category()["workspace"] == 0

    def test_apply_plan_tracks_workspace(self, cov_h2):
        before = memory_ledger().by_category()["workspace"]
        plan = cov_h2.apply_plan(rebuild=True)
        after = memory_ledger().by_category()["workspace"]
        assert after - before >= plan.memory_bytes()

    def test_artifact_cache_accounts_bytes(self, tmp_path, cov_h2):
        cache = repro.ArtifactCache(tmp_path / "cache")
        cache.put("k" * 64, cov_h2)
        totals = memory_ledger().by_category()
        assert totals["cache"] == cache.size_bytes() > 0
        loaded = cache.get("k" * 64)
        assert loaded is not None
        owners = memory_ledger().by_owner()
        assert any(owner.startswith(type(loaded).__name__) for owner in owners)
        cache.clear()
        assert memory_ledger().by_category()["cache"] == 0

    def test_ledger_feeds_openmetrics(self):
        memory_ledger().account("op", {"basis": 4096})
        text = render_openmetrics()
        assert "repro_memory_basis_bytes 4096" in text


# -------------------------------------------------- perf-trajectory report
@pytest.fixture()
def report_module(monkeypatch):
    benchmarks = str(
        __import__("pathlib").Path(__file__).resolve().parent.parent
        / "benchmarks"
    )
    monkeypatch.syspath_prepend(benchmarks)
    for name in ("report", "compare_bench"):
        sys.modules.pop(name, None)
    import report

    yield report
    for name in ("report", "compare_bench"):
        sys.modules.pop(name, None)


def _history(tmp_path, snapshots):
    directory = tmp_path / "history"
    directory.mkdir()
    for label, headlines in snapshots:
        (directory / f"{label}.json").write_text(json.dumps({
            "label": label, "config": {"n": 64}, "headlines": headlines,
        }))
    return str(directory)


class TestPerfTrajectoryReport:
    def test_trend_rows_statuses(self, report_module, tmp_path):
        history = _history(tmp_path, [
            ("pr1", {"solve_seconds": 1.0, "matvec_gflops": 2.0,
                     "solve_iterations": 10}),
            ("pr2", {"solve_seconds": 2.0, "matvec_gflops": 1.0,
                     "solve_iterations": 11, "new_seconds": 0.5}),
        ])
        snapshots = report_module.load_history(history)
        assert [s["label"] for s in snapshots] == ["pr1", "pr2"]
        rows = {key: (ratio, status) for key, _, ratio, status
                in report_module.trend_rows(snapshots)}
        assert rows["solve_seconds"] == (2.0, "WORSE")
        assert rows["matvec_gflops"] == (0.5, "WORSE")
        assert rows["solve_iterations"][1] == "changed"
        assert rows["new_seconds"][1] == "ok"  # single data point

    def test_improvements_marked_better(self, report_module, tmp_path):
        history = _history(tmp_path, [
            ("pr1", {"solve_seconds": 2.0}),
            ("pr2", {"solve_seconds": 1.0}),
        ])
        rows = report_module.trend_rows(
            report_module.load_history(history))
        assert rows[0][3] == "better"

    def test_console_and_html_render(self, report_module, tmp_path):
        history = _history(tmp_path, [
            ("pr1", {"solve_seconds": 1.0}),
            ("pr2", {"solve_seconds": 1.05}),
        ])
        snapshots = report_module.load_history(history)
        rows = report_module.trend_rows(snapshots)
        console = report_module.render_console(snapshots, rows)
        assert "pr1 -> pr2" in console
        assert "solve_seconds" in console
        html_text = report_module.render_html(snapshots, rows)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "solve_seconds" in html_text

    def test_main_writes_artifacts(self, report_module, tmp_path, capsys):
        history = _history(tmp_path, [
            ("pr1", {"solve_seconds": 1.0}),
            ("pr2", {"solve_seconds": 1.5}),
        ])
        out = tmp_path / "report.txt"
        html_out = tmp_path / "report.html"
        assert report_module.main([
            "--history", history, "--out", str(out), "--html", str(html_out),
        ]) == 0
        assert "WORSE" in out.read_text()
        assert "<table>" in html_out.read_text()
        assert "perf trajectory" in capsys.readouterr().out

    def test_main_empty_history_is_graceful(self, report_module, tmp_path):
        empty = tmp_path / "none"
        empty.mkdir()
        assert report_module.main(["--history", str(empty)]) == 0

"""Tests of the Gaussian-process subsystem (repro.gp).

The GP layer composes every subsystem — construction through a
:class:`~repro.core.context.GeometryContext`, HODLR factorization for the
log-determinant, preconditioned CG over the compiled batched apply plan for
the solves — so these tests pin its statistical outputs against the dense
``numpy.linalg`` reference: marginal log-likelihood, posterior mean/variance,
hyperparameter selection and seeded sampling reproducibility across execution
backends.
"""

import numpy as np
import pytest

from repro import (
    ExponentialKernel,
    GaussianProcess,
    GeometryContext,
    Matern32Kernel,
    gp_sweep_table,
    hyperparameter_grid,
    nelder_mead,
    uniform_cube_points,
)

N = 800
NOISE = 5e-2
LENGTH_SCALE = 0.25
TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def gp_problem():
    """Training data drawn from the exact GP prior, plus the dense reference."""
    points = uniform_cube_points(N, dim=2, seed=31)
    kernel = ExponentialKernel(length_scale=LENGTH_SCALE)
    dense = kernel.matrix(points)
    shifted = dense + NOISE * np.eye(N)
    chol = np.linalg.cholesky(shifted + 1e-12 * np.eye(N))
    y = chol @ np.random.default_rng(5).standard_normal(N)
    sign, logdet = np.linalg.slogdet(shifted)
    alpha = np.linalg.solve(shifted, y)
    mll = -0.5 * (y @ alpha + logdet + N * np.log(2.0 * np.pi))
    return {
        "points": points,
        "kernel": kernel,
        "y": y,
        "dense": dense,
        "shifted": shifted,
        "alpha": alpha,
        "mll": mll,
    }


@pytest.fixture(scope="module")
def fitted_gp(gp_problem):
    gp = GaussianProcess(
        gp_problem["points"],
        gp_problem["kernel"],
        noise=NOISE,
        tolerance=TOLERANCE,
        seed=2,
    )
    return gp.fit(gp_problem["y"])


class TestLogLikelihood:
    def test_matches_dense_reference(self, fitted_gp, gp_problem):
        """Acceptance: mll matches numpy slogdet/solve to <= 1e-6 relative."""
        mll = fitted_gp.log_marginal_likelihood_
        rel = abs(mll - gp_problem["mll"]) / abs(gp_problem["mll"])
        assert rel <= 1e-6

    def test_alpha_matches_dense_solve(self, fitted_gp, gp_problem):
        err = np.linalg.norm(fitted_gp.alpha_ - gp_problem["alpha"])
        assert err / np.linalg.norm(gp_problem["alpha"]) < 1e-5

    def test_reevaluation_at_other_noise(self, fitted_gp, gp_problem):
        """log_marginal_likelihood(noise=...) recomputes against the new shift."""
        other = 0.2
        shifted = gp_problem["dense"] + other * np.eye(N)
        sign, logdet = np.linalg.slogdet(shifted)
        alpha = np.linalg.solve(shifted, gp_problem["y"])
        expected = -0.5 * (
            gp_problem["y"] @ alpha + logdet + N * np.log(2.0 * np.pi)
        )
        value = fitted_gp.log_marginal_likelihood(noise=other)
        assert abs(value - expected) / abs(expected) <= 1e-6

    def test_fit_report_recorded(self, fitted_gp):
        assert len(fitted_gp.fit_reports_) == 1
        report = fitted_gp.fit_reports_[0]
        assert report.n == N
        assert report.cg_converged
        assert report.construction_samples > 0
        assert report.construction_launches > 0
        assert np.isfinite(report.log_determinant)
        assert report.total_seconds > 0

    def test_requires_fit_before_prediction(self, gp_problem):
        gp = GaussianProcess(gp_problem["points"], gp_problem["kernel"], noise=NOISE)
        with pytest.raises(RuntimeError):
            gp.predict(gp_problem["points"][:4])
        with pytest.raises(RuntimeError):
            _ = gp.log_marginal_likelihood_

    def test_rejects_wrong_target_length(self, gp_problem):
        gp = GaussianProcess(gp_problem["points"], gp_problem["kernel"], noise=NOISE)
        with pytest.raises(ValueError):
            gp.fit(np.ones(N + 1))

    def test_rejects_context_over_different_points(self, gp_problem):
        """A shared context must cover the same coordinates, not just the count."""
        other = uniform_cube_points(N, dim=2, seed=99)
        context = GeometryContext(other, leaf_size=32, seed=1)
        with pytest.raises(ValueError, match="different point coordinates"):
            GaussianProcess(
                gp_problem["points"], gp_problem["kernel"], context=context
            )

    def test_configuration_errors_propagate_from_fit(self, gp_problem):
        """Only non-PD points are skipped; setup errors must surface."""
        from repro import GeneralAdmissibility

        context = GeometryContext(
            gp_problem["points"],
            leaf_size=32,
            admissibility=GeneralAdmissibility(eta=0.7),
            seed=1,
        )
        gp = GaussianProcess(
            gp_problem["points"], gp_problem["kernel"], noise=NOISE, context=context
        )
        with pytest.raises(ValueError, match="weak-admissibility"):
            gp.fit(gp_problem["y"])

    def test_best_sweep_point_survives_later_evaluations(self, gp_problem):
        """The selected state must stay valid when it is not the last one
        evaluated (plan refreshes of later points must not poison it)."""
        gp = GaussianProcess(
            gp_problem["points"],
            gp_problem["kernel"],
            noise=NOISE,
            tolerance=1e-7,
            seed=13,
        )
        # Best (true) noise first, then a worse point with identical structure
        # that triggers the result-cache/plan-reuse path afterwards.
        gp.fit(gp_problem["y"], noises=[NOISE, 0.8])
        assert gp.noise == NOISE
        mean = gp.predict(gp_problem["points"][:32])
        k_cross = gp_problem["kernel"].evaluate(
            gp_problem["points"][:32], gp_problem["points"]
        )
        expected = k_cross @ np.linalg.solve(gp_problem["shifted"], gp_problem["y"])
        assert np.linalg.norm(mean - expected) / np.linalg.norm(expected) < 1e-4


class TestPrediction:
    @pytest.fixture(scope="class")
    def test_points(self):
        return uniform_cube_points(64, dim=2, seed=77)

    def test_posterior_mean_matches_dense(self, fitted_gp, gp_problem, test_points):
        mean = fitted_gp.predict(test_points)
        k_cross = gp_problem["kernel"].evaluate(test_points, gp_problem["points"])
        expected = k_cross @ gp_problem["alpha"]
        assert np.linalg.norm(mean - expected) / np.linalg.norm(expected) < 1e-6

    def test_posterior_std_matches_dense(self, fitted_gp, gp_problem, test_points):
        _, std = fitted_gp.predict(test_points, return_std=True)
        k_cross = gp_problem["kernel"].evaluate(test_points, gp_problem["points"])
        solve = np.linalg.solve(gp_problem["shifted"], k_cross.T)
        var = 1.0 - np.einsum("ij,ji->i", k_cross, solve)
        expected = np.sqrt(np.maximum(var, 0.0))
        assert np.max(np.abs(std - expected)) < 1e-6

    def test_noisy_predictive_adds_nugget(self, fitted_gp, test_points):
        _, latent = fitted_gp.predict(test_points, return_std=True)
        _, noisy = fitted_gp.predict(test_points, return_std=True, include_noise=True)
        assert np.allclose(noisy**2 - latent**2, NOISE, atol=1e-8)

    def test_interpolates_training_targets_at_small_noise(self, gp_problem):
        """With a tiny nugget the posterior mean passes near the targets."""
        gp = GaussianProcess(
            gp_problem["points"],
            gp_problem["kernel"],
            noise=1e-8,
            tolerance=1e-10,
            seed=4,
        ).fit(gp_problem["y"])
        mean = gp.predict(gp_problem["points"])
        err = np.linalg.norm(mean - gp_problem["y"]) / np.linalg.norm(gp_problem["y"])
        assert err < 1e-4


class TestModelSelection:
    def test_grid_prefers_generating_length_scale(self, gp_problem):
        gp = GaussianProcess(
            gp_problem["points"],
            ExponentialKernel(length_scale=0.9),  # deliberately wrong start
            noise=NOISE,
            tolerance=1e-7,
            seed=6,
        )
        gp.fit(gp_problem["y"], length_scales=[0.05, LENGTH_SCALE, 1.5])
        assert gp.kernel.length_scale == LENGTH_SCALE
        assert len(gp.fit_reports_) == 3
        best = max(r.log_marginal_likelihood for r in gp.fit_reports_)
        assert gp.log_marginal_likelihood_ == best

    def test_noise_grid_sweeps_nugget(self, gp_problem):
        gp = GaussianProcess(
            gp_problem["points"],
            gp_problem["kernel"],
            noise=1.0,
            tolerance=1e-7,
            seed=6,
        )
        gp.fit(gp_problem["y"], noises=[NOISE, 1.0])
        assert gp.noise == NOISE
        # A noise-only sweep keeps the construction structure identical, so the
        # second point must have re-used the compiled apply plan skeleton.
        assert gp.fit_reports_[1].plan_reused

    def test_optimizer_refines_grid_winner(self, gp_problem):
        gp = GaussianProcess(
            gp_problem["points"],
            ExponentialKernel(length_scale=0.9),
            noise=0.3,
            tolerance=1e-7,
            seed=8,
        )
        gp.fit(gp_problem["y"], length_scales=[0.1, 0.5], optimize=True,
               max_optimizer_evals=10)
        grid_best = max(
            r.log_marginal_likelihood for r in gp.fit_reports_[:2]
        )
        assert gp.log_marginal_likelihood_ >= grid_best
        assert len(gp.fit_reports_) > 2  # optimizer evaluated extra points

    def test_sweep_table_renders(self, gp_problem):
        gp = GaussianProcess(
            gp_problem["points"], gp_problem["kernel"], noise=NOISE, tolerance=1e-7
        )
        gp.fit(gp_problem["y"], length_scales=[0.2, 0.4])
        table = gp_sweep_table(gp.fit_reports_)
        assert "length_scale" in table
        assert "log-lik" in table
        assert table.count("\n") >= 3

    def test_hyperparameter_grid_shapes(self):
        kernel = ExponentialKernel(0.2)
        points = list(hyperparameter_grid(kernel, 0.1, [0.1, 0.2], [1e-2, 1e-1]))
        assert len(points) == 4
        assert {k.length_scale for k, _ in points} == {0.1, 0.2}
        assert {nz for _, nz in points} == {1e-2, 1e-1}
        degenerate = list(hyperparameter_grid(kernel, 0.1))
        assert degenerate == [(kernel, 0.1)]

    def test_grid_rejects_kernel_without_length_scale(self):
        from repro import WhiteNoiseKernel

        with pytest.raises(TypeError):
            list(hyperparameter_grid(WhiteNoiseKernel(0.1), 0.1, [0.1]))


class TestNelderMead:
    def test_minimises_quadratic(self):
        x, fx = nelder_mead(
            lambda x: float(np.sum((x - 1.5) ** 2)),
            np.zeros(2),
            initial_step=0.5,
            max_evals=200,
            xtol=1e-8,
        )
        assert np.allclose(x, 1.5, atol=1e-3)
        assert fx < 1e-5

    def test_respects_eval_budget(self):
        calls = []

        def f(x):
            calls.append(1)
            return float(np.sum(x**2))

        nelder_mead(f, np.ones(3), max_evals=12)
        # The budget bounds the search; the final simplex iteration may add at
        # most one evaluation per dimension before the optimizer notices.
        assert len(calls) <= 12 + 3 + 2

    def test_survives_infeasible_regions(self):
        def f(x):
            if x[0] < 0:
                return np.inf
            return float((x[0] - 0.5) ** 2)

        x, fx = nelder_mead(f, np.array([2.0]), initial_step=0.5, max_evals=100)
        assert abs(x[0] - 0.5) < 0.05


class TestSampling:
    @pytest.fixture(scope="class")
    def sample_points(self):
        return uniform_cube_points(40, dim=2, seed=55)

    def _gp(self, gp_problem, backend):
        return GaussianProcess(
            gp_problem["points"],
            gp_problem["kernel"],
            noise=NOISE,
            tolerance=TOLERANCE,
            backend=backend,
            seed=9,
        )

    def test_prior_seed_reproducibility_across_backends(self, gp_problem, sample_points):
        draws = {
            backend: self._gp(gp_problem, backend).sample_prior(
                sample_points, num_samples=5, seed=123
            )
            for backend in ("serial", "vectorized")
        }
        assert draws["serial"].shape == (40, 5)
        # Prior sampling never touches the execution backend: bitwise equal.
        assert np.array_equal(draws["serial"], draws["vectorized"])

    def test_prior_seed_determinism(self, fitted_gp, sample_points):
        a = fitted_gp.sample_prior(sample_points, num_samples=3, seed=11)
        b = fitted_gp.sample_prior(sample_points, num_samples=3, seed=11)
        c = fitted_gp.sample_prior(sample_points, num_samples=3, seed=12)
        assert np.array_equal(a, b)
        assert not np.allclose(a, c)

    def test_prior_covariance_statistics(self, fitted_gp, sample_points):
        draws = fitted_gp.sample_prior(sample_points, num_samples=4000, seed=17)
        sample_cov = draws @ draws.T / draws.shape[1]
        exact = fitted_gp.kernel.evaluate(sample_points, sample_points)
        assert np.linalg.norm(sample_cov - exact) / np.linalg.norm(exact) < 0.15

    def test_posterior_seed_reproducibility_across_backends(
        self, gp_problem, sample_points
    ):
        draws = {}
        for backend in ("serial", "vectorized"):
            gp = self._gp(gp_problem, backend).fit(gp_problem["y"])
            draws[backend] = gp.sample_posterior(sample_points, num_samples=5, seed=42)
        assert draws["serial"].shape == (40, 5)
        # The posterior runs through backend-executed solves; same seed must
        # agree to solver tolerance even though the backends schedule
        # different launches.
        assert np.allclose(draws["serial"], draws["vectorized"], atol=1e-6)

    def test_posterior_concentrates_at_training_points(self, fitted_gp, gp_problem):
        at_train = gp_problem["points"][:25]
        draws = fitted_gp.sample_posterior(at_train, num_samples=600, seed=3)
        mean, std = fitted_gp.predict(at_train, return_std=True)
        # Empirical mean within a few standard errors of the posterior mean.
        scatter = np.abs(draws.mean(axis=1) - mean)
        tolerance = 4.0 * (std + 1e-3) / np.sqrt(600)
        assert np.all(scatter <= tolerance + 1e-6)


@pytest.mark.slow
class TestAcceptance:
    def test_likelihood_accuracy_at_2048(self):
        """Acceptance: <= 1e-6 relative mll error at N = 2048 (3D points)."""
        n = 2048
        points = uniform_cube_points(n, dim=3, seed=71)
        kernel = Matern32Kernel(length_scale=0.3)
        noise = 5e-2
        dense = kernel.matrix(points) + noise * np.eye(n)
        y = np.linalg.cholesky(dense + 1e-12 * np.eye(n)) @ np.random.default_rng(
            1
        ).standard_normal(n)
        sign, logdet = np.linalg.slogdet(dense)
        mll_dense = -0.5 * (
            y @ np.linalg.solve(dense, y) + logdet + n * np.log(2.0 * np.pi)
        )
        gp = GaussianProcess(points, kernel, noise=noise, tolerance=1e-9, seed=2)
        gp.fit(y)
        rel = abs(gp.log_marginal_likelihood_ - mll_dense) / abs(mll_dense)
        assert rel <= 1e-6

"""Tests for repro.resilience — guarded execution, recovery, fault injection.

Covers the tentpole of the resilience PR:

* :class:`repro.resilience.RecoveryPolicy` modes, the typed
  :class:`~repro.resilience.ResilienceError` hierarchy, and the
  ``REPRO_RESILIENCE`` / ``REPRO_FAULTS`` environment opt-ins;
* the deterministic seedable :class:`~repro.resilience.FaultInjector` and its
  spec grammar;
* the full fault matrix — every fault kind under ``strict`` (typed error),
  ``warn`` (structured warning + recovery) and ``recover`` (silent recovery)
  — with *bitwise* equality against an uninjected reference wherever a
  recovery claims to reproduce the clean run;
* the solver escalation ladder (CG → preconditioned CG → GMRES(m) → HODLR
  direct) standalone, through :meth:`repro.Session.solve`, and through
  :class:`repro.GaussianProcess`;
* construction guards: NaN screening, rank-saturation escalation,
  packed → loop fallback;
* the acceptance criteria: the ladder solves an ill-conditioned system CG
  alone cannot, and disabled resilience stays within 2% of the unguarded
  path (slow, ``REPRO_RESILIENCE_OVERHEAD_MAX``).
"""

from __future__ import annotations

import logging
import os
import time

import numpy as np
import pytest

import repro
from repro import (
    ExecutionPolicy,
    ExponentialKernel,
    GaussianKernel,
    Session,
    uniform_cube_points,
)
from repro.observe import metrics
from repro.resilience import (
    FAULT_KINDS,
    ArtifactIntegrityError,
    ConstructionFaultError,
    EscalationExhaustedError,
    FaultInjector,
    FaultSpec,
    MemoryBudgetError,
    RankSaturationError,
    RecoveryPolicy,
    ResilienceError,
    SampleCorruptionError,
    SolveDidNotConvergeError,
)
from repro.solvers import escalation_ladder

# 2048 points are needed for a real packed level sweep: at N=512/leaf=64 the
# strong-admissibility partition has no admissible blocks, so packed-path
# faults (fail-nth-launch, memory budget) would never fire.
N_PACKED = 2048


@pytest.fixture(scope="module")
def packed_points() -> np.ndarray:
    return uniform_cube_points(N_PACKED, dim=2, seed=3)


@pytest.fixture()
def resilience_log() -> list:
    """Capture messages emitted through the ``repro.resilience`` logger."""
    records: list = []
    handler = logging.Handler()
    handler.emit = lambda record: records.append(record.getMessage())
    logger = logging.getLogger("repro.resilience")
    logger.addHandler(handler)
    yield records
    logger.removeHandler(handler)


def compress_policy(points, policy, **kwargs):
    kwargs.setdefault("tol", 1e-6)
    kwargs.setdefault("seed", 7)
    return repro.compress(
        points, ExponentialKernel(0.4), policy=policy,
        full_result=True, **kwargs
    )


def counter_value(name: str) -> int:
    return metrics().counter(name).value


# ------------------------------------------------------------------- policy
class TestRecoveryPolicy:
    def test_modes_and_constructors(self):
        assert RecoveryPolicy().mode == "recover"
        assert RecoveryPolicy.strict().mode == "strict"
        assert RecoveryPolicy.warn().mode == "warn"
        assert RecoveryPolicy.recover().mode == "recover"
        assert RecoveryPolicy.strict().with_mode("warn").mode == "warn"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(mode="optimistic")

    def test_policy_string_coerced(self):
        policy = ExecutionPolicy(recovery="strict")
        assert isinstance(policy.recovery, RecoveryPolicy)
        assert policy.recovery.mode == "strict"

    def test_faults_string_coerced_and_default_recovery(self):
        policy = ExecutionPolicy(faults="fail-nth-launch:nth=1")
        assert isinstance(policy.faults, FaultInjector)
        # Faults without an explicit recovery imply chaos mode: recover.
        assert policy.recovery is not None
        assert policy.recovery.mode == "recover"

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESILIENCE", "warn")
        policy = ExecutionPolicy()
        assert policy.recovery is not None and policy.recovery.mode == "warn"
        monkeypatch.setenv("REPRO_RESILIENCE", "off")
        assert ExecutionPolicy().recovery is None

    def test_env_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "stall-convergence:iters=2")
        policy = ExecutionPolicy()
        assert policy.faults is not None
        assert policy.faults.installed("stall-convergence")
        assert policy.recovery is not None  # chaos mode

    def test_resolve_backend_installs_resilience(self):
        policy = ExecutionPolicy(
            backend="serial", recovery="warn", faults="fail-nth-launch"
        )
        backend = policy.resolve_backend()
        assert backend.recovery is policy.recovery
        assert backend.faults is policy.faults

    def test_error_hierarchy(self):
        for cls in (
            ConstructionFaultError, SampleCorruptionError,
            RankSaturationError, MemoryBudgetError,
            SolveDidNotConvergeError, ArtifactIntegrityError,
        ):
            assert issubclass(cls, ResilienceError)
        assert issubclass(EscalationExhaustedError, SolveDidNotConvergeError)
        err = RankSaturationError("x", stage="construct.adapt", context={"n": 1})
        assert err.stage == "construct.adapt"
        assert err.context["n"] == 1


# ------------------------------------------------------------------- faults
class TestFaultInjector:
    def test_spec_grammar(self):
        inj = FaultInjector.from_spec(
            "nan-in-gemm-output:nth=2,times=3,count=5;stall-convergence:iters=4"
        )
        assert inj.installed("nan-in-gemm-output")
        assert inj.installed("stall-convergence")
        assert not inj.installed("fail-nth-launch")
        spec = inj.specs["nan-in-gemm-output"]
        assert (spec.nth, spec.times, spec.count) == (2, 3, 5)
        assert inj.specs["stall-convergence"].iters == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector.from_spec("cosmic-ray")

    def test_every_kind_parses(self):
        for kind in FAULT_KINDS:
            assert FaultInjector.from_spec(kind).installed(kind)

    def test_nth_and_times_counting(self):
        inj = FaultInjector.from_spec("fail-nth-launch:nth=2,times=1")
        inj.fail_launch("site")  # first event: below nth
        with pytest.raises(Exception):
            inj.fail_launch("site")  # second event: fires
        inj.fail_launch("site")  # budget exhausted: no longer fires
        assert inj.fired("fail-nth-launch") == 1

    def test_gemm_corruption_is_deterministic(self):
        y = np.ones((64, 8))
        a = FaultInjector.from_spec("nan-in-gemm-output", seed=5)
        b = FaultInjector.from_spec("nan-in-gemm-output", seed=5)
        ya, yb = a.corrupt_gemm_output(y), b.corrupt_gemm_output(y)
        assert np.isnan(ya).any()
        assert np.array_equal(np.isnan(ya), np.isnan(yb))
        # The input is never mutated in place.
        assert np.all(np.isfinite(y))

    def test_stall_caps_maxiter(self):
        inj = FaultInjector.from_spec("stall-convergence:iters=3,times=2")
        assert inj.stall_maxiter(500) == 3
        assert inj.stall_maxiter(None) == 3
        # Fault budget spent: the real maxiter passes through untouched.
        assert inj.stall_maxiter(500) == 500

    def test_counter_increments(self):
        before = counter_value("resilience.faults_injected")
        inj = FaultInjector.from_spec("memory-budget-exceeded")
        with pytest.raises(Exception):
            inj.memory_budget("construct.packed")
        assert counter_value("resilience.faults_injected") == before + 1


# ------------------------------------------------- construction fault matrix
class TestConstructionFaultMatrix:
    """Every construction fault × {strict, warn, recover}.

    The recovery guarantee is *bitwise*: a recovered construction restores
    the RNG and sample-bank state before retrying, so its matrix acts
    identically to the uninjected reference at the same seed.
    """

    @pytest.fixture(scope="class")
    def reference(self, packed_points):
        result = compress_policy(packed_points, ExecutionPolicy())
        x = np.random.default_rng(0).standard_normal(N_PACKED)
        return result, x, result.matrix.matvec(x)

    def _recovered_matches(self, packed_points, reference, faults, **extra):
        _, x, want = reference
        policy = ExecutionPolicy(recovery="recover", faults=faults, **extra)
        result = compress_policy(packed_points, policy)
        assert np.array_equal(result.matrix.matvec(x), want)
        return result

    # --- fail-nth-launch -------------------------------------------------
    def test_fail_launch_strict_raises(self, packed_points):
        policy = ExecutionPolicy(recovery="strict", faults="fail-nth-launch")
        with pytest.raises(ConstructionFaultError) as excinfo:
            compress_policy(packed_points, policy)
        assert excinfo.value.stage == "construct.packed"

    def test_fail_launch_recover_bitwise(self, packed_points, reference):
        before = counter_value("resilience.retries")
        self._recovered_matches(packed_points, reference, "fail-nth-launch")
        assert counter_value("resilience.retries") > before

    def test_fail_launch_warn_warns(
        self, packed_points, reference, resilience_log
    ):
        _, x, want = reference
        policy = ExecutionPolicy(recovery="warn", faults="fail-nth-launch")
        result = compress_policy(packed_points, policy)
        assert np.array_equal(result.matrix.matvec(x), want)
        assert any("packed-retry" in m for m in resilience_log)
        assert counter_value("resilience.warnings") > 0

    def test_persistent_fail_launch_falls_back_to_loop(
        self, packed_points, reference
    ):
        # times=-1 keeps failing every packed attempt: the retry budget runs
        # out and construction recovers onto the per-node loop path.
        loop_ref = compress_policy(
            packed_points, ExecutionPolicy(construction_path="loop")
        )
        _, x, _ = reference
        policy = ExecutionPolicy(
            recovery="recover", faults="fail-nth-launch:times=-1"
        )
        result = compress_policy(packed_points, policy)
        assert result.construction_path == "recovered-loop"
        assert np.array_equal(
            result.matrix.matvec(x), loop_ref.matrix.matvec(x)
        )
        assert counter_value("resilience.recoveries") > 0

    # --- nan-in-gemm-output ----------------------------------------------
    def test_nan_gemm_strict_raises(self, packed_points):
        policy = ExecutionPolicy(
            recovery="strict", faults="nan-in-gemm-output"
        )
        with pytest.raises(SampleCorruptionError):
            compress_policy(packed_points, policy)

    def test_nan_gemm_recover_bitwise(self, packed_points, reference):
        # Recovery relaunches the *same* multiply (same omega); once the
        # fault budget is spent the clean product comes back, so the run is
        # bitwise identical to the uninjected reference.
        before = counter_value("resilience.recoveries")
        self._recovered_matches(packed_points, reference, "nan-in-gemm-output")
        assert counter_value("resilience.recoveries") > before

    def test_nan_gemm_warn_warns(
        self, packed_points, reference, resilience_log
    ):
        _, x, want = reference
        policy = ExecutionPolicy(recovery="warn", faults="nan-in-gemm-output")
        result = compress_policy(packed_points, policy)
        assert np.array_equal(result.matrix.matvec(x), want)
        assert any("sample-relaunch" in m for m in resilience_log)

    def test_nan_gemm_exhausted_raises_in_every_mode(self, packed_points):
        # times=-1 corrupts every relaunch: recovery must give up with the
        # typed error rather than return a poisoned matrix.
        for mode in ("recover", "warn"):
            policy = ExecutionPolicy(
                recovery=mode, faults="nan-in-gemm-output:times=-1"
            )
            with pytest.raises(SampleCorruptionError):
                compress_policy(packed_points, policy)

    # --- memory-budget-exceeded ------------------------------------------
    def test_memory_budget_strict_raises(self, packed_points):
        policy = ExecutionPolicy(
            recovery="strict", faults="memory-budget-exceeded"
        )
        with pytest.raises(MemoryBudgetError) as excinfo:
            compress_policy(packed_points, policy)
        assert excinfo.value.stage == "construct.packed"

    def test_memory_budget_recovers_to_loop(self, packed_points):
        loop_ref = compress_policy(
            packed_points, ExecutionPolicy(construction_path="loop")
        )
        x = np.random.default_rng(1).standard_normal(N_PACKED)
        policy = ExecutionPolicy(
            recovery="recover", faults="memory-budget-exceeded"
        )
        result = compress_policy(packed_points, policy)
        assert result.construction_path == "recovered-loop"
        assert np.array_equal(
            result.matrix.matvec(x), loop_ref.matrix.matvec(x)
        )

    def test_real_memory_budget_without_faults(self, packed_points):
        # A tiny configured budget trips the estimator with no injector.
        policy = ExecutionPolicy(
            recovery=RecoveryPolicy(mode="strict", memory_budget_bytes=1024)
        )
        with pytest.raises(MemoryBudgetError):
            compress_policy(packed_points, policy)

    # --- chaos mode -------------------------------------------------------
    def test_env_faults_alone_still_pass(
        self, packed_points, reference, monkeypatch
    ):
        # REPRO_FAULTS with no recovery spec = chaos mode: the implied
        # recover policy absorbs the fault and the answer is still bitwise
        # correct.
        _, x, want = reference
        monkeypatch.setenv("REPRO_FAULTS", "fail-nth-launch:nth=1")
        result = compress_policy(packed_points, ExecutionPolicy())
        assert np.array_equal(result.matrix.matvec(x), want)


# ------------------------------------------------------------ rank saturation
class TestRankSaturation:
    # This configuration reliably fails to reach tol=1e-10 within
    # max_samples=16 on the exponential kernel (slowly decaying far-field
    # spectrum), which is exactly the saturation the guard escalates out of.
    CONFIG = dict(
        tol=1e-10, max_samples=16, initial_samples=8, sample_block_size=8,
        seed=7,
    )

    def _compress(self, points, policy):
        return repro.compress(
            points, ExponentialKernel(0.5), policy=policy,
            full_result=True, **self.CONFIG
        )

    def test_baseline_saturates(self, packed_points):
        result = self._compress(packed_points, ExecutionPolicy())
        assert not result.converged

    def test_strict_raises(self, packed_points):
        with pytest.raises(RankSaturationError):
            self._compress(packed_points, ExecutionPolicy(recovery="strict"))

    def test_recover_escalates_to_convergence(self, packed_points):
        result = self._compress(packed_points, ExecutionPolicy(recovery="recover"))
        assert result.converged
        # The escalated budget exceeded the original 16-sample cap.
        assert result.total_samples > 16

    def test_warn_escalates_and_warns(self, packed_points, resilience_log):
        result = self._compress(packed_points, ExecutionPolicy(recovery="warn"))
        assert result.converged
        assert any("rank-saturation" in m for m in resilience_log)


# ------------------------------------------------------------------- ladder
class TestEscalationLadder:
    """cg stagnates at rung_maxiter=20 on the exponential kernel; pcg
    (HODLR-preconditioned) converges in O(1) iterations."""

    @pytest.fixture(scope="class")
    def hss_system(self):
        points = uniform_cube_points(1024, dim=2, seed=9)
        op = repro.compress(
            points, ExponentialKernel(1.0), tol=1e-10, format="hss", seed=2
        )
        b = np.random.default_rng(4).standard_normal(1024)
        return op, b

    def test_cg_fails_pcg_converges(self, hss_system):
        op, b = hss_system
        recovery = RecoveryPolicy(rung_maxiter=20)
        result = escalation_ladder(
            op, b, tol=1e-8, shift=1e-6, recovery=recovery
        )
        assert result.converged
        ladder = result.extra["escalation"]
        rungs = {r["rung"]: r for r in ladder["rungs"]}
        assert not rungs["cg"]["converged"]
        assert ladder["converged_rung"] in ("pcg", "gmres", "direct")
        assert ladder["escalations"] >= 1
        # The answer is a real solve: check the residual directly.
        r = op.matvec(result.x) + 1e-6 * result.x - b
        assert np.linalg.norm(r) <= 1e-8 * np.linalg.norm(b) * 10

    def test_escalation_counter_and_spans(self, hss_system):
        op, b = hss_system
        tracer = repro.SpanTracer()
        before = counter_value("resilience.escalations")
        escalation_ladder(
            op, b, tol=1e-8, shift=1e-6,
            recovery=RecoveryPolicy(rung_maxiter=20), tracer=tracer,
        )
        assert counter_value("resilience.escalations") > before
        from repro.observe import find_spans

        spans = find_spans(tracer, category="resilience")
        assert any(s.name.startswith("resilience/ladder:") for s in spans)

    def test_exhaustion_raises_with_result(self, hss_system):
        op, b = hss_system
        recovery = RecoveryPolicy(rung_maxiter=3, ladder=("cg",))
        with pytest.raises(EscalationExhaustedError) as excinfo:
            escalation_ladder(op, b, tol=1e-12, shift=1e-6, recovery=recovery)
        # The best partial result rides on the error for inspection.
        assert excinfo.value.result is not None
        assert not excinfo.value.result.converged

    def test_exhaustion_warn_returns_flagged(self, hss_system, resilience_log):
        op, b = hss_system
        recovery = RecoveryPolicy(
            mode="warn", rung_maxiter=3, ladder=("cg",)
        )
        result = escalation_ladder(
            op, b, tol=1e-12, shift=1e-6, recovery=recovery
        )
        assert not result.converged
        assert any("escalation-exhausted" in m for m in resilience_log)

    def test_stall_fault_drives_escalation(self, hss_system):
        op, b = hss_system
        faults = FaultInjector.from_spec("stall-convergence:iters=2")
        result = escalation_ladder(
            op, b, tol=1e-8, shift=1e-6,
            recovery=RecoveryPolicy(), faults=faults,
        )
        assert result.converged
        assert result.extra["escalation"]["escalations"] >= 1

    def test_dense_operator_skips_factorized_rungs(self):
        # No hierarchical structure: pcg/direct are skipped, gmres still runs.
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64))
        a = a @ a.T + 64 * np.eye(64)
        b = rng.standard_normal(64)
        result = escalation_ladder(a, b, tol=1e-10, recovery=RecoveryPolicy())
        assert result.converged
        skipped = [
            r for r in result.extra["escalation"]["rungs"] if r.get("skipped")
        ]
        assert all(r["rung"] in ("pcg", "direct") for r in skipped)


# ------------------------------------------------------- session integration
class TestSessionResilience:
    @pytest.fixture(scope="class")
    def session_setup(self):
        points = uniform_cube_points(1024, dim=2, seed=9)
        b = np.random.default_rng(4).standard_normal(1024)
        return points, b

    def _session(self, points, recovery, **policy_kwargs):
        sess = Session(
            points, policy=ExecutionPolicy(recovery=recovery, **policy_kwargs),
            seed=2,
        )
        sess.compress(ExponentialKernel(1.0), 1e-10, format="hss")
        return sess

    def test_strict_raises_on_stagnation(self, session_setup):
        points, b = session_setup
        sess = self._session(points, "strict")
        with pytest.raises(SolveDidNotConvergeError) as excinfo:
            sess.solve(b, tol=1e-10, maxiter=2)
        assert excinfo.value.result is not None

    def test_warn_returns_flagged(self, session_setup, resilience_log):
        points, b = session_setup
        sess = self._session(points, "warn")
        result = sess.solve(b, tol=1e-10, maxiter=2)
        assert not result.converged
        assert any("solve-not-converged" in m for m in resilience_log)

    def test_recover_escalates(self, session_setup):
        points, b = session_setup
        sess = self._session(points, "recover")
        result = sess.solve(b, tol=1e-8, maxiter=2)
        assert result.converged
        assert result.extra["escalated_from"] == "cg"

    def test_no_recovery_returns_unconverged(self, session_setup):
        # Without a recovery policy the pre-PR behavior is unchanged: the
        # caller gets the flagged result back.
        points, b = session_setup
        sess = Session(points, seed=2)
        sess.compress(ExponentialKernel(1.0), 1e-10, format="hss")
        result = sess.solve(b, tol=1e-10, maxiter=2)
        assert not result.converged

    def test_ladder_method(self, session_setup):
        points, b = session_setup
        sess = self._session(
            points, RecoveryPolicy(rung_maxiter=20)
        )
        result = sess.solve(b, tol=1e-8, method="ladder")
        assert result.converged
        assert "escalation" in result.extra

    def test_stall_fault_through_session(self, session_setup):
        points, b = session_setup
        sess = self._session(
            points, "recover", faults="stall-convergence:iters=2"
        )
        result = sess.solve(b, tol=1e-8)
        assert result.converged


# ------------------------------------------------------------ gp integration
class TestGaussianProcessResilience:
    # max_cg_iterations=1 at solve_tol=1e-12 cannot converge; noise=1e-4
    # keeps the system positive definite for the direct rungs.
    GP_KWARGS = dict(noise=1e-4, max_cg_iterations=1, solve_tol=1e-12)

    @pytest.fixture(scope="class")
    def gp_data(self):
        points = uniform_cube_points(512, dim=2, seed=13)
        y = np.sin(points[:, 0] * 3.0) + points[:, 1]
        return points, y

    def _gp(self, points, recovery, **policy_kwargs):
        from repro.gp import GaussianProcess

        policy = ExecutionPolicy(recovery=recovery, **policy_kwargs)
        return GaussianProcess(
            points, GaussianKernel(length_scale=0.5), policy=policy,
            **self.GP_KWARGS
        )

    def test_strict_raises(self, gp_data):
        points, y = gp_data
        with pytest.raises(SolveDidNotConvergeError):
            self._gp(points, "strict").fit(y)

    def test_warn_warns(self, gp_data, resilience_log):
        points, y = gp_data
        self._gp(points, "warn").fit(y)
        assert any("gp-solve-not-converged" in m for m in resilience_log)

    def test_recover_escalates_and_predicts(self, gp_data):
        points, y = gp_data
        gp = self._gp(points, "recover").fit(y)
        mean = gp.predict(points[:32])
        assert np.all(np.isfinite(mean))
        # Training targets are reproduced to solver accuracy.
        assert np.allclose(gp.predict(points), y, atol=1e-2)

    def test_stall_fault_recovers(self, gp_data):
        points, y = gp_data
        from repro.gp import GaussianProcess

        policy = ExecutionPolicy(
            recovery="recover", faults="stall-convergence:iters=1"
        )
        gp = GaussianProcess(
            points, GaussianKernel(length_scale=0.5), noise=1e-4,
            policy=policy, solve_tol=1e-10,
        ).fit(y)
        assert np.all(np.isfinite(gp.predict(points[:16])))


# ---------------------------------------------------------------- acceptance
@pytest.mark.slow
class TestAcceptance:
    def test_ladder_solves_ill_conditioned_system(self):
        """Acceptance: N=4096 exponential-kernel system where plain CG
        stagnates; the ladder must deliver a 1e-8 relative residual."""
        n = 4096
        points = uniform_cube_points(n, dim=2, seed=21)
        op = repro.compress(
            points, ExponentialKernel(1.0), tol=1e-10, format="hss", seed=2
        )
        b = np.random.default_rng(8).standard_normal(n)
        shift = 1e-7
        recovery = RecoveryPolicy(rung_maxiter=30)
        result = escalation_ladder(
            op, b, tol=1e-8, shift=shift, recovery=recovery
        )
        assert result.converged
        ladder = result.extra["escalation"]
        assert ladder["escalations"] >= 1  # cg alone was not enough
        r = op.matvec(result.x) + shift * result.x - b
        assert np.linalg.norm(r) / np.linalg.norm(b) <= 1e-7

    def test_disabled_resilience_overhead_below_bound(self):
        """Acceptance: with resilience disabled (no recovery, no faults) the
        guarded ``construct()`` entry point stays within 2% of the raw packed
        sweep at N=8192 (knob: REPRO_RESILIENCE_OVERHEAD_MAX).

        Mirrors the tracing-overhead acceptance in test_observe: the guarded
        public dispatch vs the private unguarded path, so the measured delta
        is exactly what this PR added to the no-resilience hot path."""
        from repro.api.facade import _resolve_evaluators, _resolve_geometry
        from repro.core.builder import H2Constructor
        from repro.core.config import ConstructionConfig

        n = 8192
        points = uniform_cube_points(n, dim=2, seed=5)
        kernel = ExponentialKernel(0.2)
        tree, partition = _resolve_geometry(points, "h2", 64, 0.7, None, None, None)
        operator, extractor = _resolve_evaluators(kernel, tree, None, None)

        def build(guarded):
            constructor = H2Constructor(
                partition, operator, extractor,
                ConstructionConfig(tolerance=1e-5), seed=1,
            )
            assert constructor.recovery is None and constructor.faults is None
            return (
                constructor.construct() if guarded
                else constructor.construct_packed()
            )

        def best_of(fn, repeats=3):
            best = np.inf
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        build(True)  # warm caches on both paths
        build(False)
        baseline = best_of(lambda: build(False))
        guarded = best_of(lambda: build(True))
        bound = float(os.environ.get("REPRO_RESILIENCE_OVERHEAD_MAX", "1.02"))
        assert guarded <= baseline * bound, (
            f"disabled-resilience overhead {guarded / baseline:.4f}x "
            f"exceeds bound {bound}x"
        )

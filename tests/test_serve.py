"""Tests for ``repro.serve``: registry, micro-batcher, server, HTTP adapter.

The numerical heart of the serving layer is the claim that a coalesced
micro-batch launch returns *exactly* the answer each caller would have
gotten alone — the property tests below drive random interleavings of
concurrent mixed-shape requests against unbatched references, including a
poisoned batchmate that must fail in isolation.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

import repro
from repro import ExecutionPolicy, ExponentialKernel, uniform_cube_points
from repro.observe import SpanTracer, metrics
from repro.serve import (
    HealthRequest,
    InferenceServer,
    LogdetRequest,
    MatvecRequest,
    MetricsRequest,
    MicroBatcher,
    ModelNotFoundError,
    ModelRegistry,
    PredictRequest,
    RequestValidationError,
    ServeError,
    SolveRequest,
    request_from_wire,
    response_to_wire,
    serve_http,
)

N = 192
NOISE = 1e-2
TOL = 1e-9


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serve_points():
    return uniform_cube_points(N, dim=2, seed=11)


@pytest.fixture(scope="module")
def serve_kernel():
    return ExponentialKernel(0.3)


@pytest.fixture(scope="module")
def serve_operator(serve_points, serve_kernel):
    return repro.compress(
        serve_points, serve_kernel, format="hss", tol=TOL, leaf_size=32, seed=5
    )


@pytest.fixture(scope="module")
def dense_matrix(serve_points, serve_kernel):
    return serve_kernel.evaluate(serve_points, serve_points)


def make_server(serve_operator, **server_kwargs) -> InferenceServer:
    server = InferenceServer(**server_kwargs)
    server.registry.register("m", serve_operator, noise=NOISE)
    return server


# --------------------------------------------------------------------- registry
class TestModelRegistry:
    def test_register_and_get(self, serve_operator):
        registry = ModelRegistry()
        model = registry.register("a", serve_operator, noise=NOISE)
        assert "a" in registry
        assert registry.get("a") is model
        assert registry.get("a").requests == 2
        assert registry.names() == ["a"]

    def test_get_unknown_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.get("nope")

    def test_exactly_one_source_required(self, serve_operator, serve_points,
                                         serve_kernel):
        registry = ModelRegistry()
        with pytest.raises(ServeError):
            registry.register("a")
        with pytest.raises(ServeError):
            registry.register(
                "a", serve_operator, points=serve_points, kernel=serve_kernel
            )

    def test_register_from_artifact_path(self, serve_operator, tmp_path):
        path = tmp_path / "m.repro"
        repro.save_operator(serve_operator, path)
        registry = ModelRegistry()
        model = registry.register("a", path=path, noise=NOISE)
        x = np.ones(N)
        np.testing.assert_allclose(
            model.operator.matvec(x), serve_operator.matvec(x), atol=1e-12
        )

    def test_register_from_cache_key(self, serve_operator, tmp_path,
                                     serve_points, serve_kernel):
        cache = repro.ArtifactCache(tmp_path)
        key = cache.key(serve_points, serve_kernel, tol=TOL, format="hss",
                        leaf_size=32, seed=5)
        cache.put(key, serve_operator)
        registry = ModelRegistry(cache=cache)
        model = registry.register("a", key=key)
        assert model.n == N
        with pytest.raises(ModelNotFoundError):
            registry.register("b", key="0" * 64)
        with pytest.raises(ServeError):
            ModelRegistry().register("c", key=key)  # no cache configured

    def test_register_from_points_uses_cache(self, serve_points, serve_kernel,
                                             tmp_path):
        cache = repro.ArtifactCache(tmp_path)
        registry = ModelRegistry(cache=cache)
        registry.register("a", points=serve_points, kernel=serve_kernel,
                          tol=TOL, leaf_size=32, seed=5)
        assert cache.misses == 1
        registry.register("b", points=serve_points, kernel=serve_kernel,
                          tol=TOL, leaf_size=32, seed=5)
        assert cache.hits == 1

    def test_ttl_eviction(self, serve_operator):
        registry = ModelRegistry(ttl_seconds=60.0)
        model = registry.register("a", serve_operator)
        model.last_used -= 120.0  # idle past the TTL
        with pytest.raises(ModelNotFoundError):
            registry.get("a")
        assert registry.evictions == 1
        assert metrics().counter("serve.models.evicted").value == 1

    def test_lru_max_models_eviction(self, serve_operator):
        registry = ModelRegistry(max_models=2)
        registry.register("a", serve_operator)
        registry.register("b", serve_operator)
        registry.get("a")  # refresh: "b" becomes the LRU entry
        registry.register("c", serve_operator)
        assert registry.names() == ["a", "c"]

    def test_byte_budget_eviction_keeps_most_recent(self, serve_operator):
        per_model = serve_operator.memory_bytes()["total"]
        registry = ModelRegistry(max_bytes=int(per_model * 1.5))
        registry.register("a", serve_operator)
        registry.register("b", serve_operator)
        # Over budget: the LRU entry goes, but never the last survivor.
        assert registry.names() == ["b"]

    def test_memory_ledger_accounting(self, serve_operator):
        from repro.observe import memory_ledger

        registry = ModelRegistry()
        registry.register("a", serve_operator)
        owners = memory_ledger().by_owner()
        assert "serve.model:a" in owners
        assert metrics().gauge("serve.models.loaded").value == 1
        registry.evict("a")
        assert "serve.model:a" not in memory_ledger().by_owner()
        assert metrics().gauge("serve.models.loaded").value == 0

    def test_lazy_factorization_and_logdet(self, serve_operator, dense_matrix):
        registry = ModelRegistry()
        model = registry.register("a", serve_operator, noise=NOISE)
        assert not model.factored
        sign, logabs = model.slogdet()
        assert model.factored
        ref_sign, ref_logabs = np.linalg.slogdet(
            dense_matrix + NOISE * np.eye(N)
        )
        assert sign == ref_sign
        assert logabs == pytest.approx(ref_logabs, rel=1e-5)
        # the factorization bytes join the model's footprint
        assert model.memory_bytes() > serve_operator.memory_bytes()["total"]

    def test_health_probe_on_load(self, serve_points, serve_kernel):
        from repro import HealthThresholds

        policy = ExecutionPolicy(health=HealthThresholds())
        registry = ModelRegistry(policy=policy)
        model = registry.register(
            "a", points=serve_points, kernel=serve_kernel, tol=TOL,
            leaf_size=32, seed=5,
        )
        assert model.health is not None
        assert model.health.source == "loaded"
        assert not model.health.flagged
        stats = registry.statistics()
        assert "health" in stats["models"]["a"]


# ------------------------------------------------------------------ micro-batch
class TestMicroBatcher:
    def test_coalesces_concurrent_requests_into_one_launch(self, serve_operator):
        registry = ModelRegistry()
        model = registry.register("m", serve_operator, noise=NOISE)
        batcher = MicroBatcher(max_batch=64, max_wait_ms=20.0)
        rng = np.random.default_rng(0)
        payloads = [rng.standard_normal(N) for _ in range(12)]

        async def main():
            return await asyncio.gather(
                *[batcher.submit(model, "matvec", p) for p in payloads]
            )

        results = run(main())
        assert batcher.launches == 1
        for (y, batch_size), p in zip(results, payloads):
            assert batch_size == 12
            np.testing.assert_allclose(
                y, serve_operator.matvec(p), atol=1e-11
            )
        summary = metrics().histogram("serve.batch.requests").summary()
        assert summary["count"] == 1 and summary["max"] == 12
        batcher.close()

    def test_max_batch_flushes_without_waiting(self, serve_operator):
        registry = ModelRegistry()
        model = registry.register("m", serve_operator, noise=NOISE)
        batcher = MicroBatcher(max_batch=4, max_wait_ms=10_000.0)
        rng = np.random.default_rng(1)

        async def main():
            return await asyncio.wait_for(
                asyncio.gather(
                    *[batcher.submit(model, "matvec", rng.standard_normal(N))
                      for _ in range(8)]
                ),
                timeout=5.0,
            )

        results = run(main())
        assert len(results) == 8
        assert batcher.launches == 2  # two full windows, no timer needed
        batcher.close()

    def test_disabled_batching_runs_requests_alone(self, serve_operator):
        registry = ModelRegistry()
        model = registry.register("m", serve_operator, noise=NOISE)
        batcher = MicroBatcher(enabled=False)
        rng = np.random.default_rng(2)
        payloads = [rng.standard_normal(N) for _ in range(6)]

        async def main():
            return await asyncio.gather(
                *[batcher.submit(model, "solve", p) for p in payloads]
            )

        results = run(main())
        assert batcher.launches == 6
        for (x, batch_size), p in zip(results, payloads):
            assert batch_size == 1
            np.testing.assert_allclose(
                x, model.factorization().solve(p), atol=1e-10
            )
        batcher.close()

    def test_shape_validation_fails_fast(self, serve_operator):
        registry = ModelRegistry()
        model = registry.register("m", serve_operator)
        batcher = MicroBatcher()

        async def main():
            with pytest.raises(RequestValidationError):
                await batcher.submit(model, "matvec", np.ones(N + 1))
            with pytest.raises(RequestValidationError):
                await batcher.submit(model, "matvec", np.ones(N) + 1j)
            with pytest.raises(RequestValidationError):
                await batcher.submit(model, "matvec", np.ones((N, 0)))

        run(main())
        batcher.close()

    @pytest.mark.parametrize("kind", ["matvec", "solve", "predict"])
    def test_interleaving_property_each_caller_gets_its_own_columns(
        self, serve_operator, kind
    ):
        """Any interleaving of k mixed-shape requests returns each caller its
        own column(s), bit-for-bit consistent with its position in the batch.
        """
        registry = ModelRegistry()
        model = registry.register("m", serve_operator, noise=NOISE)
        model.factorization()  # build once outside the timed windows
        rng = np.random.default_rng(42)

        def reference(payload):
            if kind == "matvec":
                return model.operator.matmat(np.atleast_2d(payload.T).T)
            solved = model.factorization().solve(
                payload if payload.ndim == 2 else payload[:, None]
            )
            if kind == "predict":
                return model.operator.matmat(solved)
            return solved

        for round_index in range(3):
            k = int(rng.integers(5, 14))
            payloads = []
            for _ in range(k):
                width = int(rng.integers(0, 3))  # 0 → vector, else (N, width)
                if width == 0:
                    payloads.append(rng.standard_normal(N))
                else:
                    payloads.append(rng.standard_normal((N, width)))
            delays = rng.uniform(0.0, 0.004, size=k)
            batcher = MicroBatcher(max_batch=64, max_wait_ms=8.0)

            async def client(payload, delay):
                await asyncio.sleep(delay)
                return await batcher.submit(model, kind, payload)

            async def main():
                return await asyncio.gather(
                    *[client(p, d) for p, d in zip(payloads, delays)]
                )

            results = run(main())
            for (value, _batch_size), payload in zip(results, payloads):
                expected = reference(payload)
                if payload.ndim == 1:
                    expected = expected[:, 0]
                assert value.shape == payload.shape
                np.testing.assert_allclose(value, expected, atol=1e-9)
            batcher.close()

    def test_error_isolation_nonfinite_member_fails_alone(self, serve_operator):
        registry = ModelRegistry()
        model = registry.register("m", serve_operator, noise=NOISE)
        batcher = MicroBatcher(max_batch=64, max_wait_ms=20.0)
        rng = np.random.default_rng(7)
        good = [rng.standard_normal(N) for _ in range(5)]
        poisoned = rng.standard_normal(N)
        poisoned[3] = np.nan

        async def main():
            return await asyncio.gather(
                *[batcher.submit(model, "solve", p) for p in good],
                batcher.submit(model, "solve", poisoned),
                return_exceptions=True,
            )

        results = run(main())
        *good_results, bad = results
        assert isinstance(bad, RequestValidationError)
        for (x, batch_size), p in zip(good_results, good):
            assert batch_size == 5  # the poisoned member never joined
            np.testing.assert_allclose(
                x, model.factorization().solve(p), atol=1e-10
            )
        batcher.close()

    def test_error_isolation_failing_launch_retries_individually(
        self, serve_operator, monkeypatch
    ):
        """A launch-level failure falls back to per-request execution, so the
        batchmates of a poisoned request still get their answers."""
        registry = ModelRegistry()
        model = registry.register("m", serve_operator, noise=NOISE)
        batcher = MicroBatcher(max_batch=64, max_wait_ms=20.0)
        rng = np.random.default_rng(8)
        payloads = [rng.standard_normal(N) for _ in range(4)]
        real_matmat = type(serve_operator).matmat

        def flaky_matmat(self, block, *args, **kwargs):
            if block.ndim == 2 and block.shape[1] > 1:
                raise RuntimeError("injected batch-level fault")
            return real_matmat(self, block, *args, **kwargs)

        monkeypatch.setattr(type(serve_operator), "matmat", flaky_matmat)

        async def main():
            return await asyncio.gather(
                *[batcher.submit(model, "matvec", p) for p in payloads]
            )

        results = run(main())
        assert metrics().counter("serve.batch.fallbacks").value == 1
        monkeypatch.undo()
        for (y, batch_size), p in zip(results, payloads):
            assert batch_size == 1  # answered by the individual retry
            np.testing.assert_allclose(y, serve_operator.matvec(p), atol=1e-11)
        batcher.close()


# --------------------------------------------------------------------- server
class TestInferenceServer:
    def test_solve_direct_matches_factorization(self, serve_operator):
        server = make_server(serve_operator)
        b = np.linspace(-1.0, 1.0, N)
        response = run(server.handle(SolveRequest(model="m", b=b)))
        model = server.registry.get("m")
        np.testing.assert_allclose(
            response.x, model.factorization().solve(b), atol=1e-12
        )
        assert response.converged and response.method == "direct"
        assert response.latency_ms > 0.0
        assert response.model == "m" and response.request_id
        run(server.aclose())

    def test_solve_cg_matches_direct(self, serve_operator):
        server = make_server(serve_operator)
        b = np.sin(np.arange(N) / 7.0)
        direct = run(server.handle(SolveRequest(model="m", b=b)))
        cg = run(server.handle(SolveRequest(model="m", b=b, method="cg",
                                            tol=1e-12)))
        assert cg.converged and cg.iterations >= 1
        np.testing.assert_allclose(cg.x, direct.x, atol=1e-8)
        run(server.aclose())

    def test_predict_is_posterior_mean(self, serve_operator, dense_matrix):
        server = make_server(serve_operator)
        y = np.cos(np.arange(N) / 5.0)
        response = run(server.handle(PredictRequest(model="m", y=y)))
        expected = dense_matrix @ np.linalg.solve(
            dense_matrix + NOISE * np.eye(N), y
        )
        np.testing.assert_allclose(response.mean, expected, atol=1e-5)
        run(server.aclose())

    def test_logdet_matches_numpy(self, serve_operator, dense_matrix):
        server = make_server(serve_operator)
        response = run(server.handle(LogdetRequest(model="m")))
        _, ref = np.linalg.slogdet(dense_matrix + NOISE * np.eye(N))
        assert response.sign == 1.0
        assert response.logdet == pytest.approx(ref, rel=1e-5)
        run(server.aclose())

    def test_unknown_model_counts_an_error(self, serve_operator):
        server = make_server(serve_operator)

        async def main():
            with pytest.raises(ModelNotFoundError):
                await server.handle(SolveRequest(model="ghost", b=np.ones(N)))

        run(main())
        assert metrics().counter("serve.errors").value == 1
        assert metrics().counter("serve.errors.solve").value == 1
        run(server.aclose())

    def test_concurrent_solves_batch_and_match_unbatched(self, serve_operator):
        batched = make_server(serve_operator, max_batch=64, max_wait_ms=10.0)
        unbatched = make_server(serve_operator, batching=False)
        rng = np.random.default_rng(3)
        payloads = [rng.standard_normal(N) for _ in range(16)]

        async def fire(server):
            return await asyncio.gather(
                *[server.handle(SolveRequest(model="m", b=b)) for b in payloads]
            )

        batched_responses = run(fire(batched))
        unbatched_responses = run(fire(unbatched))
        assert any(r.batched for r in batched_responses)
        assert max(r.batch_size for r in batched_responses) > 1
        assert all(r.batch_size == 1 for r in unbatched_responses)
        for rb, ru in zip(batched_responses, unbatched_responses):
            np.testing.assert_allclose(rb.x, ru.x, atol=1e-9)
        run(batched.aclose())
        run(unbatched.aclose())

    def test_health_endpoint(self, serve_operator):
        server = make_server(serve_operator)
        response = run(server.health())
        assert response.status == "ok"
        assert response.uptime_seconds >= 0.0
        assert "m" in response.models
        assert response.models["m"]["n"] == N

        async def missing():
            with pytest.raises(ModelNotFoundError):
                await server.health(HealthRequest(model="ghost"))

        run(missing())
        run(server.aclose())

    def test_metrics_endpoint_scrapes_serving_telemetry(self, serve_operator):
        server = make_server(serve_operator)

        async def main():
            await server.handle(SolveRequest(model="m", b=np.ones(N)))
            return await server.metrics()

        response = run(main())
        text = response.text
        assert text.rstrip().endswith("# EOF")
        assert "repro_serve_solve_latency_ms" in text
        assert 'quantile="0.99"' in text
        assert "repro_serve_requests_total" in text
        assert "openmetrics" in response.content_type
        run(server.aclose())

    def test_request_spans_are_recorded(self, serve_operator):
        tracer = SpanTracer()
        policy = ExecutionPolicy(tracer=tracer)
        server = InferenceServer(policy=policy, max_wait_ms=5.0)
        server.registry.register("m", serve_operator, noise=NOISE,
                                 policy=policy)

        async def main():
            await asyncio.gather(
                *[server.handle(SolveRequest(model="m",
                                             b=np.full(N, float(i + 1))))
                  for i in range(4)]
            )

        run(main())
        names = set()

        def walk(span):
            names.add(span.name)
            for child in span.children:
                walk(child)

        for root in tracer.roots:
            walk(root)
        assert "serve.request" in names
        assert "serve.batch" in names
        run(server.aclose())

    def test_strict_recovery_raises_on_unconverged_cg(self, serve_operator):
        from repro import SolveDidNotConvergeError

        server = make_server(
            serve_operator, policy=ExecutionPolicy(recovery="strict")
        )

        async def main():
            with pytest.raises(SolveDidNotConvergeError):
                await server.handle(SolveRequest(
                    model="m", b=np.ones(N), method="cg", tol=1e-14, maxiter=0,
                ))

        run(main())
        run(server.aclose())

    def test_recover_mode_escalates_unconverged_cg(self, serve_operator):
        server = make_server(
            serve_operator, policy=ExecutionPolicy(recovery="recover")
        )
        b = np.ones(N)
        response = run(server.handle(SolveRequest(
            model="m", b=b, method="cg", tol=1e-10, maxiter=0,
        )))
        assert response.converged
        model = server.registry.get("m")
        np.testing.assert_allclose(
            response.x, model.factorization().solve(b), atol=1e-8
        )
        run(server.aclose())

    def test_statistics(self, serve_operator):
        server = make_server(serve_operator)
        run(server.handle(MatvecRequest(model="m", x=np.ones(N))))
        stats = server.statistics()
        assert stats["batching"]["launches"] == 1
        assert stats["registry"]["count"] == 1
        run(server.aclose())


# ------------------------------------------------------------------ wire codec
class TestWireCodec:
    def test_round_trip_solve(self):
        request = request_from_wire(
            "solve", {"model": "m", "b": [1.0, 2.0], "method": "cg",
                      "tol": 1e-8, "request_id": "abc"}
        )
        assert request.model == "m" and request.method == "cg"
        assert request.tol == 1e-8 and request.request_id == "abc"
        np.testing.assert_array_equal(request.b, [1.0, 2.0])

    def test_validation_errors(self):
        with pytest.raises(RequestValidationError):
            request_from_wire("nope", {})
        with pytest.raises(RequestValidationError):
            request_from_wire("solve", {"model": "m"})  # missing b
        with pytest.raises(RequestValidationError):
            request_from_wire("solve", {"model": "m", "b": "strings"})
        with pytest.raises(RequestValidationError):
            request_from_wire("solve", {"model": "m", "b": [1.0],
                                        "method": "magic"})
        with pytest.raises(RequestValidationError):
            request_from_wire("matvec", {"model": 3, "x": [1.0]})

    def test_response_to_wire_serializes_arrays(self):
        from repro.serve import SolveResponse

        wire = response_to_wire(SolveResponse(
            model="m", request_id="r", x=np.array([1.0, 2.0]), iterations=3,
        ))
        assert wire["x"] == [1.0, 2.0]
        assert wire["iterations"] == 3
        assert wire["endpoint"] == "solve"


# ----------------------------------------------------------------------- http
class TestHttpAdapter:
    @staticmethod
    async def _request(port, method, path, payload=None):
        import json

        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        header, _, content = raw.partition(b"\r\n\r\n")
        status = int(header.split(None, 2)[1])
        return status, content

    def test_solve_round_trip(self, serve_operator):
        import json

        server = make_server(serve_operator)

        async def main():
            http = await serve_http(server)
            b = np.linspace(0.0, 1.0, N)
            status, content = await self._request(
                http.port, "POST", "/v1/solve", {"model": "m", "b": b.tolist()}
            )
            await http.aclose()
            await server.aclose()
            return status, json.loads(content), b

        status, data, b = run(main())
        assert status == 200
        model = server.registry.get("m")
        np.testing.assert_allclose(
            np.asarray(data["x"]), model.factorization().solve(b), atol=1e-10
        )

    def test_health_metrics_and_errors(self, serve_operator):
        import json

        server = make_server(serve_operator)

        async def main():
            http = await serve_http(server)
            port = http.port
            results = {}
            results["health"] = await self._request(port, "GET", "/v1/health")
            results["metrics"] = await self._request(port, "GET", "/metrics")
            results["missing_model"] = await self._request(
                port, "POST", "/v1/solve", {"model": "ghost", "b": [1.0]}
            )
            results["bad_shape"] = await self._request(
                port, "POST", "/v1/solve", {"model": "m", "b": [1.0, 2.0]}
            )
            results["no_route"] = await self._request(port, "GET", "/nope")
            results["wrong_method"] = await self._request(
                port, "GET", "/v1/solve"
            )
            await http.aclose()
            await server.aclose()
            return results

        results = run(main())
        status, content = results["health"]
        assert status == 200
        assert json.loads(content)["status"] == "ok"
        status, content = results["metrics"]
        assert status == 200
        assert content.decode().rstrip().endswith("# EOF")
        assert results["missing_model"][0] == 404
        assert results["bad_shape"][0] == 400
        assert results["no_route"][0] == 404
        assert results["wrong_method"][0] == 405


# ----------------------------------------------------- end-to-end speed sanity
@pytest.mark.slow
def test_micro_batched_throughput_beats_unbatched(serve_operator):
    """Scaled-down version of the acceptance benchmark: batched serving must
    beat the batching-disabled baseline on concurrent solve rounds (the full
    >=3x claim at N=4096 / 64 clients lives in bench_serve_latency.py)."""
    rng = np.random.default_rng(0)
    payloads = [rng.standard_normal(N) for _ in range(32)]

    def round_trip(batching: bool) -> float:
        server = make_server(serve_operator, batching=batching,
                             max_batch=64, max_wait_ms=2.0)
        server.registry.get("m").factorization()  # pay it outside the timing

        async def fire():
            await asyncio.gather(
                *[server.handle(SolveRequest(model="m", b=b))
                  for b in payloads]
            )

        start = time.perf_counter()
        for _ in range(3):
            run(fire())
        elapsed = time.perf_counter() - start
        run(server.aclose())
        return elapsed

    unbatched = round_trip(False)
    batched = round_trip(True)
    assert batched < unbatched

"""Tests for the batched execution engine (variable batches, backends, BSR, counters)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BlockSparseRowMatrix,
    KernelLaunchCounter,
    SerialBackend,
    VariableBatch,
    VectorizedBackend,
    get_backend,
)


def random_batch(shapes, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for shape in shapes]


class TestVariableBatch:
    def test_from_shapes_zero_initialised(self):
        batch = VariableBatch.from_shapes([(2, 3), (4, 1)])
        assert len(batch) == 2
        assert batch.total_elements == 10
        assert np.all(batch.data == 0.0)

    def test_from_matrices_roundtrip(self):
        mats = random_batch([(3, 2), (1, 5), (4, 4)], seed=1)
        batch = VariableBatch.from_matrices(mats)
        for original, stored in zip(mats, batch):
            assert np.allclose(original, stored)

    def test_views_share_flat_buffer(self):
        batch = VariableBatch.from_shapes([(2, 2), (3, 1)])
        batch[0][...] = 7.0
        assert np.all(batch.data[:4] == 7.0)
        assert np.all(batch.data[4:] == 0.0)

    def test_setitem(self):
        batch = VariableBatch.from_shapes([(2, 2)])
        batch[0] = np.arange(4).reshape(2, 2)
        assert np.array_equal(batch[0], [[0, 1], [2, 3]])

    def test_empty_blocks_allowed(self):
        batch = VariableBatch.from_shapes([(0, 5), (3, 0), (2, 2)])
        assert batch.shape(0) == (0, 5)
        assert batch[0].shape == (0, 5)
        assert batch.total_elements == 4

    def test_memory_bytes(self):
        batch = VariableBatch.from_shapes([(10, 10)])
        assert batch.memory_bytes() == 100 * 8

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            VariableBatch([2, 2], [2])
        with pytest.raises(ValueError):
            VariableBatch([2], [2], data=np.zeros(3))
        with pytest.raises(ValueError):
            VariableBatch([-1], [2])

    def test_to_list_copies(self):
        batch = VariableBatch.from_matrices([np.ones((2, 2))])
        copies = batch.to_list()
        copies[0][...] = 5.0
        assert np.all(batch[0] == 1.0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=10
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_layout_consistent(self, shapes):
        batch = VariableBatch.from_shapes(shapes)
        assert batch.total_elements == sum(r * c for r, c in shapes)
        for i, (r, c) in enumerate(shapes):
            assert batch[i].shape == (r, c)


class TestCounters:
    def test_record_and_totals(self):
        counter = KernelLaunchCounter()
        counter.record("gemm", 3)
        counter.record("gemm", 2)
        counter.record("qr")
        assert counter.total() == 6
        assert counter.total_calls() == 3
        assert counter.by_operation()["gemm"] == 5
        assert counter.calls_by_operation()["gemm"] == 2

    def test_reset_and_merge(self):
        a, b = KernelLaunchCounter(), KernelLaunchCounter()
        a.record("x", 2)
        b.record("x", 1)
        b.record("y", 4)
        a.merge(b)
        assert a.by_operation() == {"x": 3, "y": 4}
        a.reset()
        assert a.total() == 0 and a.total_calls() == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            KernelLaunchCounter().record("x", -1)


class TestBackendFactory:
    def test_names(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("cpu"), SerialBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)
        assert isinstance(get_backend("gpu"), VectorizedBackend)

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_backend("tpu")

    def test_counter_attached(self):
        counter = KernelLaunchCounter()
        backend = get_backend("serial", counter=counter)
        assert backend.counter is counter


@pytest.mark.parametrize("backend_name", ["serial", "vectorized"])
class TestBackendPrimitives:
    def test_batched_gemm(self, backend_name):
        backend = get_backend(backend_name)
        a = random_batch([(3, 4), (5, 2), (3, 4)], seed=1)
        b = random_batch([(4, 6), (2, 3), (4, 6)], seed=2)
        out = backend.batched_gemm(a, b)
        for ai, bi, oi in zip(a, b, out):
            assert np.allclose(oi, ai @ bi)

    def test_batched_gemm_transposes(self, backend_name):
        backend = get_backend(backend_name)
        a = random_batch([(4, 3), (4, 3)], seed=3)
        b = random_batch([(4, 5), (4, 5)], seed=4)
        out = backend.batched_gemm(a, b, transpose_a=True)
        for ai, bi, oi in zip(a, b, out):
            assert np.allclose(oi, ai.T @ bi)
        c = random_batch([(3, 5), (3, 5)], seed=5)
        d = random_batch([(6, 5), (6, 5)], seed=6)
        out = backend.batched_gemm(c, d, transpose_b=True)
        for ci, di, oi in zip(c, d, out):
            assert np.allclose(oi, ci @ di.T)

    def test_batched_gemm_accumulate(self, backend_name):
        backend = get_backend(backend_name)
        a = random_batch([(3, 2), (4, 4)], seed=5)
        b = random_batch([(2, 6), (4, 6)], seed=6)
        c = [np.ones((3, 6)), np.ones((4, 6))]
        expected = [ci - 2.0 * (ai @ bi) for ci, ai, bi in zip(c, a, b)]
        backend.batched_gemm_accumulate(c, a, b, alpha=-2.0)
        for ci, ei in zip(c, expected):
            assert np.allclose(ci, ei)

    def test_batched_transpose(self, backend_name):
        backend = get_backend(backend_name)
        a = random_batch([(3, 5), (2, 2), (3, 5)], seed=7)
        out = backend.batched_transpose(a)
        for ai, oi in zip(a, out):
            assert np.allclose(oi, ai.T)
            assert oi.flags["C_CONTIGUOUS"]

    def test_batched_min_r_diag(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(8)
        full = rng.standard_normal((20, 6))
        deficient = rng.standard_normal((20, 2)) @ rng.standard_normal((2, 6))
        wide = rng.standard_normal((3, 6))
        mins = backend.batched_min_r_diag([full, deficient, wide])
        assert mins[0] > 1e-3
        assert mins[1] < 1e-8
        assert mins[2] == 0.0

    def test_batched_row_id(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(9)
        mats = [
            rng.standard_normal((15, 3)) @ rng.standard_normal((3, 8)),
            rng.standard_normal((10, 2)) @ rng.standard_normal((2, 8)),
        ]
        decs = backend.batched_row_id(mats, rel_tol=1e-10)
        assert decs[0].rank == 3 and decs[1].rank == 2
        for mat, dec in zip(mats, decs):
            assert np.allclose(dec.reconstruct(mat[dec.skeleton]), mat, atol=1e-8)

    def test_batched_row_id_per_item_abs_tol(self, backend_name):
        backend = get_backend(backend_name)
        mat = np.diag([10.0, 1.0, 1e-6])
        decs = backend.batched_row_id([mat, mat], abs_tols=[1e-3, 1e-9])
        assert decs[0].rank == 2
        assert decs[1].rank == 3

    def test_batched_random_normal(self, backend_name):
        backend = get_backend(backend_name)
        batch = backend.batched_random_normal([(100, 3), (50, 2)], seed=11)
        assert batch[0].shape == (100, 3)
        assert abs(float(batch.data.mean())) < 0.2

    def test_batched_rows(self, backend_name):
        backend = get_backend(backend_name)
        a = random_batch([(6, 3), (5, 2)], seed=12)
        rows = [np.array([0, 2, 4]), np.array([1])]
        out = backend.batched_rows(a, rows)
        assert np.allclose(out[0], a[0][[0, 2, 4]])
        assert np.allclose(out[1], a[1][[1]])

    def test_counter_incremented(self, backend_name):
        backend = get_backend(backend_name)
        a = random_batch([(3, 3)] * 4, seed=13)
        backend.batched_gemm(a, a)
        backend.batched_min_r_diag(a)
        assert backend.counter.total_calls() >= 2
        assert backend.counter.total() >= 2


class TestBackendEquivalence:
    """Serial and vectorized backends must produce identical numerical results."""

    @given(seed=st.integers(0, 200), count=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_gemm_equivalence(self, seed, count):
        rng = np.random.default_rng(seed)
        shapes = [(rng.integers(1, 6), rng.integers(1, 6)) for _ in range(count)]
        a = [rng.standard_normal((m, k)) for m, k in shapes]
        b = [rng.standard_normal((k, rng.integers(1, 6))) for _, k in shapes]
        out_serial = SerialBackend().batched_gemm(a, b)
        out_vector = VectorizedBackend().batched_gemm(a, b)
        for x, y in zip(out_serial, out_vector):
            assert np.allclose(x, y, atol=1e-12)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_min_r_diag_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        mats = [rng.standard_normal((rng.integers(4, 12), 4)) for _ in range(5)]
        serial = SerialBackend().batched_min_r_diag(mats)
        vector = VectorizedBackend().batched_min_r_diag(mats)
        assert np.allclose(serial, vector, atol=1e-10)

    def test_vectorized_fewer_launches_for_uniform_shapes(self):
        mats = random_batch([(8, 8)] * 16, seed=1)
        serial = SerialBackend()
        vector = VectorizedBackend()
        serial.batched_gemm(mats, mats)
        vector.batched_gemm(mats, mats)
        # uniform shapes -> a single stacked launch on the vectorized backend
        assert vector.counter.by_operation()["batched_gemm"] == 1
        assert serial.counter.by_operation()["batched_gemm"] == 1

    def test_vectorized_groups_by_shape(self):
        mats = random_batch([(4, 4)] * 3 + [(6, 6)] * 2, seed=2)
        vector = VectorizedBackend()
        vector.batched_gemm(mats, mats)
        assert vector.counter.by_operation()["batched_gemm"] == 2


class TestBlockSparseRow:
    def _build(self, seed=0):
        rng = np.random.default_rng(seed)
        sizes_rows = [3, 4, 2]
        sizes_cols = [3, 4, 2]
        bsr = BlockSparseRowMatrix(num_block_rows=3)
        dense = np.zeros((sum(sizes_rows), sum(sizes_cols)))
        row_off = np.concatenate([[0], np.cumsum(sizes_rows)])
        col_off = np.concatenate([[0], np.cumsum(sizes_cols)])
        blocks = [(0, 0), (0, 2), (1, 1), (2, 0), (2, 1), (2, 2)]
        for r, c in blocks:
            mat = rng.standard_normal((sizes_rows[r], sizes_cols[c]))
            bsr.add_block(r, c, mat)
            dense[row_off[r] : row_off[r + 1], col_off[c] : col_off[c + 1]] = mat
        return bsr, dense, sizes_rows, sizes_cols, row_off, col_off

    @pytest.mark.parametrize("backend_name", ["serial", "vectorized"])
    def test_multiply_accumulate_matches_dense(self, backend_name):
        bsr, dense, sizes_rows, sizes_cols, row_off, col_off = self._build()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((dense.shape[1], 5))
        inputs = [x[col_off[i] : col_off[i + 1]] for i in range(3)]
        outputs = [np.zeros((s, 5)) for s in sizes_rows]
        bsr.multiply_accumulate(outputs, inputs, get_backend(backend_name), alpha=-1.0)
        expected = -dense @ x
        stacked = np.vstack(outputs)
        assert np.allclose(stacked, expected, atol=1e-12)

    def test_max_blocks_per_row(self):
        bsr, *_ = self._build()
        assert bsr.max_blocks_per_row() == 3
        assert bsr.num_blocks() == 6

    def test_to_dense(self):
        bsr, dense, _, _, row_off, col_off = self._build()
        assert np.allclose(bsr.to_dense(row_off[:-1], col_off[:-1], dense.shape), dense)

    def test_block_shapes_histogram(self):
        bsr, *_ = self._build()
        hist = bsr.block_shapes()
        assert sum(hist.values()) == 6

    def test_empty_rows_allowed(self):
        bsr = BlockSparseRowMatrix(num_block_rows=2)
        bsr.add_block(0, 0, np.ones((2, 2)))
        outputs = [np.zeros((2, 3)), np.zeros((4, 3))]
        bsr.multiply_accumulate(outputs, [np.ones((2, 3))], get_backend("serial"))
        assert np.allclose(outputs[0], 2.0)
        assert np.allclose(outputs[1], 0.0)

    def test_invalid_row_raises(self):
        bsr = BlockSparseRowMatrix(num_block_rows=1)
        with pytest.raises(IndexError):
            bsr.add_block(3, 0, np.ones((1, 1)))

    def test_output_count_mismatch_raises(self):
        bsr = BlockSparseRowMatrix(num_block_rows=2)
        with pytest.raises(ValueError):
            bsr.multiply_accumulate([np.zeros((1, 1))], [], get_backend("serial"))

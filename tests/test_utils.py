"""Tests for repro.utils: prefix sums, timers, validation and RNG helpers."""

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    PhaseTimer,
    Timer,
    as_generator,
    check_positive,
    check_square,
    exclusive_prefix_sum,
    offsets_from_sizes,
    require,
    spawn_generator,
    total_from_sizes,
)
from repro.utils.validation import as_index_array


class TestPrefixSum:
    def test_basic(self):
        assert exclusive_prefix_sum([2, 3, 1]).tolist() == [0, 2, 5]

    def test_empty(self):
        assert exclusive_prefix_sum([]).shape == (0,)
        assert total_from_sizes([]) == 0

    def test_single(self):
        offsets, total = offsets_from_sizes([7])
        assert offsets.tolist() == [0]
        assert total == 7

    def test_offsets_and_total(self):
        offsets, total = offsets_from_sizes([4, 0, 2])
        assert offsets.tolist() == [0, 4, 4]
        assert total == 6

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            exclusive_prefix_sum([[1, 2]])

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30))
    def test_matches_numpy_cumsum(self, sizes):
        offsets, total = offsets_from_sizes(sizes)
        expected = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        assert np.array_equal(offsets, expected)
        assert total == sum(sizes)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30))
    def test_offsets_monotone(self, sizes):
        offsets, total = offsets_from_sizes(sizes)
        assert np.all(np.diff(offsets) >= 0)
        assert total >= int(offsets[-1])


class TestTimers:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure():
            time.sleep(0.01)
        first = timer.elapsed
        with timer.measure():
            time.sleep(0.01)
        assert timer.elapsed > first >= 0.005

    def test_timer_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_phase_timer_accumulates_and_percentages(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.005)
        with timer.phase("b"):
            time.sleep(0.005)
        with timer.phase("a"):
            time.sleep(0.005)
        assert set(timer.phases) == {"a", "b"}
        assert timer.phases["a"] > timer.phases["b"]
        pct = timer.percentages()
        assert abs(sum(pct.values()) - 100.0) < 1e-9

    def test_phase_timer_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.phases == {"x": 3.0, "y": 3.0}
        assert a.total() == 6.0

    def test_empty_phase_timer(self):
        timer = PhaseTimer()
        assert timer.total() == 0.0
        assert timer.percentages() == {}


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        check_positive(1, "x")
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(ValueError):
            check_positive(-3.0, "x")

    def test_check_square(self):
        check_square(np.eye(3))
        with pytest.raises(ValueError):
            check_square(np.zeros((2, 3)))

    def test_as_index_array(self):
        out = as_index_array([1, 2, 3])
        assert out.dtype == np.int64
        with pytest.raises(ValueError):
            as_index_array([[1, 2]])


class TestRng:
    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(3)
        assert as_generator(rng) is rng

    def test_as_generator_seeded_reproducible(self):
        a = as_generator(42).standard_normal(5)
        b = as_generator(42).standard_normal(5)
        assert np.array_equal(a, b)

    def test_spawn_generator_independent_streams(self):
        rng = np.random.default_rng(0)
        a = spawn_generator(rng, 0).standard_normal(8)
        rng = np.random.default_rng(0)
        b = spawn_generator(rng, 1).standard_normal(8)
        assert not np.array_equal(a, b)

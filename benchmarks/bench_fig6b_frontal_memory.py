"""Fig. 6(b): memory of compressing multifrontal frontal matrices.

The paper compresses frontal matrices extracted from the multifrontal
factorization of a 3D Poisson problem with the proposed H2 algorithm and
compares its memory against STRUMPACK's weak-admissibility formats (HSS,
HODLR, HODBF).  The reproduction extracts exact root-separator Schur
complements from n^3 grids, compresses them with (i) the bottom-up H2
constructor on the strong-admissibility partition, (ii) the same constructor
with weak admissibility (= HSS) and (iii) an ACA-built HODLR matrix, and
prints memory per front size.  HODBF (butterfly) is out of scope — see
DESIGN.md.
"""

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    build_hodlr,
    compress,
)
from repro.diagnostics import format_series
from repro.multifrontal import root_frontal_matrix

from common import DEFAULT_TOLERANCE, bench_grids


def compress_front(grid: int, tolerance: float = DEFAULT_TOLERANCE):
    front = root_frontal_matrix((grid, grid, grid))
    tree = ClusterTree.build(front.points, leaf_size=32)
    dense = front.matrix[np.ix_(tree.perm, tree.perm)]
    operator = DenseOperator(dense)
    extractor = DenseEntryExtractor(dense)

    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    h2 = H2Constructor(
        partition,
        operator,
        extractor,
        ConstructionConfig(tolerance=tolerance, sample_block_size=32),
        seed=1,
    ).construct()
    hss = compress(
        format="hss",
        tree=tree,
        operator=DenseOperator(dense),
        extractor=extractor,
        tol=tolerance,
        sample_block_size=32,
        seed=2,
        full_result=True,
    )
    hodlr = build_hodlr(tree, extractor.extract, tol=tolerance)
    return {
        "front_size": front.size,
        "dense_mb": dense.nbytes / 2**20,
        "h2_mb": h2.memory_mb(),
        "hss_mb": hss.memory_mb(),
        "hodlr_mb": hodlr.memory_bytes()["total"] / 2**20,
    }


def run_frontal_sweep():
    series = {"H2 (ours) [MB]": {}, "HSS [MB]": {}, "HODLR [MB]": {}, "dense [MB]": {}}
    for grid in bench_grids():
        data = compress_front(grid)
        size = data["front_size"]
        series["H2 (ours) [MB]"][size] = data["h2_mb"]
        series["HSS [MB]"][size] = data["hss_mb"]
        series["HODLR [MB]"][size] = data["hodlr_mb"]
        series["dense [MB]"][size] = data["dense_mb"]
    print()
    print(
        format_series(
            "front size",
            series,
            title="Fig. 6(b): frontal-matrix compression memory (3D Poisson root separator)",
        )
    )
    return series


@pytest.mark.benchmark(group="fig6b-frontal")
def test_fig6b_frontal_memory(benchmark):
    series = benchmark.pedantic(run_frontal_sweep, rounds=1, iterations=1)
    sizes = sorted(series["dense [MB]"])
    largest = sizes[-1]
    # every hierarchical format compresses the largest front below dense storage
    for name in ("H2 (ours) [MB]", "HSS [MB]", "HODLR [MB]"):
        assert series[name][largest] < series["dense [MB]"][largest]
    # the H2 memory grows more slowly than the weak-admissibility formats
    if len(sizes) >= 2:
        smallest = sizes[0]
        h2_growth = series["H2 (ours) [MB]"][largest] / series["H2 (ours) [MB]"][smallest]
        hss_growth = series["HSS [MB]"][largest] / series["HSS [MB]"][smallest]
        assert h2_growth <= 1.5 * hss_growth

"""Ablation: ID truncation threshold mode and compression tolerance.

Two design choices of the constructor are swept on a fixed covariance problem:

* the interpolative-decomposition truncation mode — per-node *relative*
  threshold vs an *absolute* threshold derived from the estimated global
  matrix norm (Section III-B);
* the compression tolerance itself, demonstrating the accuracy/memory
  trade-off (rank growth is roughly logarithmic in 1/eps).
"""

import pytest

from repro import ConstructionConfig, DenseEntryExtractor, DenseOperator, H2Constructor
from repro.diagnostics import construction_error, format_table

from common import bench_sizes, cached_problem

TOLERANCES = (1e-3, 1e-6, 1e-9)


def run_truncation_ablation():
    n = min(max(bench_sizes()), 4096)
    problem = cached_problem("covariance", n)
    rows = []
    records = []
    for mode in ("relative", "absolute"):
        for tol in TOLERANCES:
            result = H2Constructor(
                problem.partition,
                DenseOperator(problem.dense),
                DenseEntryExtractor(problem.dense),
                ConstructionConfig(
                    tolerance=tol, sample_block_size=64, id_tolerance_mode=mode
                ),
                seed=9,
            ).construct()
            error = construction_error(
                result.matrix, problem.fresh_operator(), num_iterations=8, seed=3
            )
            lo, hi = result.rank_range
            records.append(
                {"mode": mode, "tol": tol, "error": error, "memory": result.memory_mb(),
                 "rank_max": hi, "samples": result.total_samples}
            )
            rows.append(
                [mode, f"{tol:g}", f"{lo}-{hi}", f"{result.memory_mb():.1f}",
                 result.total_samples, f"{error:.2e}"]
            )
    print()
    print(
        format_table(
            ["ID threshold", "tolerance", "rank range", "memory [MB]", "samples", "rel. error"],
            rows,
            title=f"Ablation: ID truncation mode and tolerance (covariance, N={n})",
        )
    )
    return records


@pytest.mark.benchmark(group="ablation-truncation")
def test_ablation_truncation(benchmark):
    records = benchmark.pedantic(run_truncation_ablation, rounds=1, iterations=1)
    for mode in ("relative", "absolute"):
        subset = sorted(
            (r for r in records if r["mode"] == mode), key=lambda r: r["tol"], reverse=True
        )
        errors = [r["error"] for r in subset]
        ranks = [r["rank_max"] for r in subset]
        # tighter tolerance -> smaller error and larger (or equal) ranks
        assert errors[-1] <= errors[0]
        assert ranks[-1] >= ranks[0]
        # every run meets its own tolerance within a modest factor
        assert all(r["error"] < 1000 * r["tol"] for r in subset)

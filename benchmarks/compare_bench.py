"""Diff the two most recent perf snapshots and flag >20% regressions.

Reads the JSON files ``snapshot.py`` commits to ``benchmarks/history/``,
orders them by the trailing number in their label (``pr4`` < ``pr6`` <
``pr10``), and compares the latest snapshot against its predecessor:

* ``*_seconds`` headlines regress when they grow by more than the threshold;
* ``*_gflops`` headlines regress when they shrink by more than the threshold;
* ``*_launches`` / ``*_iterations`` / ``*_samples`` headlines regress when
  they grow by more than the threshold (they are deterministic, so any change
  at all is also reported).

The exit code is 0 unless ``--strict`` is given and a regression was found —
CI runs it non-blocking (a soft gate): timings on shared runners are noisy,
so the report is a signal for a human, not an automatic verdict.

Usage::

    python benchmarks/compare_bench.py
    python benchmarks/compare_bench.py --strict --threshold 0.2
    python benchmarks/compare_bench.py old.json new.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

DEFAULT_THRESHOLD = 0.20

#: Headline suffix -> direction in which the metric regresses.
HIGHER_IS_WORSE = ("_seconds", "_launches", "_iterations", "_samples")
LOWER_IS_WORSE = ("_gflops",)


def _order_key(path: str) -> tuple:
    """Sort key ordering snapshots by the trailing integer of their label."""
    stem = os.path.splitext(os.path.basename(path))[0]
    match = re.search(r"(\d+)$", stem)
    return (0, int(match.group(1)), stem) if match else (1, 0, stem)


def load_snapshot(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def latest_pair(history_dir: str) -> tuple[str, str] | None:
    files = sorted(
        (
            os.path.join(history_dir, name)
            for name in os.listdir(history_dir)
            if name.endswith(".json")
        ),
        key=_order_key,
    )
    if len(files) < 2:
        return None
    return files[-2], files[-1]


def compare(baseline: dict, latest: dict, threshold: float = DEFAULT_THRESHOLD):
    """Per-headline comparison rows: (key, old, new, ratio, status)."""
    rows = []
    base = baseline.get("headlines", {})
    head = latest.get("headlines", {})
    for key in sorted(set(base) | set(head)):
        old, new = base.get(key), head.get(key)
        if old is None or new is None:
            rows.append((key, old, new, None, "added" if old is None else "removed"))
            continue
        ratio = new / old if old else float("inf") if new else 1.0
        status = "ok"
        if key.endswith(HIGHER_IS_WORSE) and new > old * (1.0 + threshold):
            status = "REGRESSION"
        elif key.endswith(LOWER_IS_WORSE) and new < old * (1.0 - threshold):
            status = "REGRESSION"
        elif key.endswith(("_launches", "_iterations", "_samples")) and new != old:
            status = "changed"
        rows.append((key, old, new, ratio, status))
    return rows


def render(rows, baseline_label: str, latest_label: str) -> str:
    lines = [
        f"perf snapshot comparison: {baseline_label} -> {latest_label}",
        f"{'headline':<34} {'old':>12} {'new':>12} {'ratio':>8}  status",
    ]
    for key, old, new, ratio, status in rows:
        old_s = "-" if old is None else f"{old:.5g}"
        new_s = "-" if new is None else f"{new:.5g}"
        ratio_s = "-" if ratio is None else f"{ratio:7.3f}x"
        lines.append(f"{key:<34} {old_s:>12} {new_s:>12} {ratio_s:>8}  {status}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline snapshot JSON (default: second-latest in history)")
    parser.add_argument("latest", nargs="?", default=None,
                        help="latest snapshot JSON (default: latest in history)")
    parser.add_argument("--history",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)), "history"),
                        help="snapshot directory (default benchmarks/history)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative regression threshold (default 0.20)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a regression is flagged")
    args = parser.parse_args(argv)

    if (args.baseline is None) != (args.latest is None):
        parser.error("pass either both snapshot paths or neither")
    if args.baseline is None:
        pair = latest_pair(args.history)
        if pair is None:
            print(f"fewer than two snapshots in {args.history}; nothing to compare")
            return 0
        args.baseline, args.latest = pair

    baseline = load_snapshot(args.baseline)
    latest = load_snapshot(args.latest)
    if baseline.get("config") != latest.get("config"):
        print("warning: snapshot configs differ (problem sizes/seeds changed) "
              "— ratios are not comparable\n"
              f"  baseline: {baseline.get('config')}\n"
              f"  latest:   {latest.get('config')}")
    rows = compare(baseline, latest, threshold=args.threshold)
    print(render(rows, baseline.get("label", args.baseline),
                 latest.get("label", args.latest)))

    regressions = [row for row in rows if row[4] == "REGRESSION"]
    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.threshold:.0%} — needs a human look")
        return 1 if args.strict else 0
    print("\nno regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: admissibility parameter eta (strong vs weak separation).

DESIGN.md lists the admissibility parameter as a design choice worth ablating:
smaller eta (stronger separation requirement) refines the partition, increases
the sparsity constant and the amount of dense storage, but reduces the ranks
of the admissible blocks; larger eta admits bigger blocks with larger ranks.
This benchmark sweeps eta for a fixed covariance problem and reports Csp,
ranks, memory, construction time and measured error.
"""

import pytest

from repro import (
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
)
from repro.diagnostics import construction_error, format_table

from common import DEFAULT_TOLERANCE, bench_sizes, cached_problem

ETAS = (0.5, 0.7, 1.0, 1.5)


def run_eta_ablation():
    n = min(max(bench_sizes()), 8192)
    problem = cached_problem("covariance", n)
    rows = []
    records = {}
    for eta in ETAS:
        partition = build_block_partition(problem.tree, GeneralAdmissibility(eta=eta))
        result = H2Constructor(
            partition,
            DenseOperator(problem.dense),
            DenseEntryExtractor(problem.dense),
            ConstructionConfig(tolerance=DEFAULT_TOLERANCE, sample_block_size=64),
            seed=7,
        ).construct()
        error = construction_error(result.matrix, problem.fresh_operator(), num_iterations=8, seed=3)
        lo, hi = result.rank_range
        records[eta] = {
            "csp": partition.sparsity_constant(),
            "admissible": partition.num_admissible_blocks(),
            "memory": result.memory_mb(),
            "time": result.elapsed_seconds,
            "error": error,
            "rank_max": hi,
        }
        rows.append(
            [
                eta,
                partition.sparsity_constant(),
                partition.num_admissible_blocks(),
                f"{lo}-{hi}",
                f"{result.memory_mb():.1f}",
                f"{result.elapsed_seconds:.3f}",
                f"{error:.2e}",
            ]
        )
    print()
    print(
        format_table(
            ["eta", "Csp", "admissible blocks", "rank range", "memory [MB]", "time [s]", "rel. error"],
            rows,
            title=f"Ablation: admissibility parameter eta (covariance, N={n})",
        )
    )
    return records


@pytest.mark.benchmark(group="ablation-eta")
def test_ablation_eta(benchmark):
    records = benchmark.pedantic(run_eta_ablation, rounds=1, iterations=1)
    # accuracy holds across the eta range
    assert all(r["error"] < 100 * DEFAULT_TOLERANCE for r in records.values())
    # weaker admissibility admits more blocks and larger maximum ranks
    assert records[1.5]["admissible"] >= records[0.5]["admissible"]
    assert records[1.5]["rank_max"] >= records[0.5]["rank_max"]

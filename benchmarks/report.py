"""Render the perf trajectory across committed snapshots as a trend table.

Where ``compare_bench.py`` diffs the two most recent snapshots, this report
reads *every* JSON file in ``benchmarks/history/`` (ordered ``pr4`` < ``pr6``
< ``pr10`` by the trailing label number), and renders one trend row per
headline metric: the value at every snapshot, the net change from the first
to the latest snapshot, and a trend marker using the same direction
conventions as the comparison gate (``*_seconds`` up is worse, ``*_gflops``
down is worse, counter-like headlines flag any change).

Two output formats:

* a fixed-width console table (always printed), and
* optionally a self-contained HTML page (``--html out.html``) with the same
  data, colour-coded, suitable for a CI artifact.

The report is descriptive — it never exits non-zero; ``compare_bench.py
--strict`` remains the gate.

Usage::

    python benchmarks/report.py
    python benchmarks/report.py --html report.html
    python benchmarks/report.py --history benchmarks/history --threshold 0.2
"""

from __future__ import annotations

import argparse
import html
import os
import sys

from compare_bench import (
    DEFAULT_THRESHOLD,
    HIGHER_IS_WORSE,
    LOWER_IS_WORSE,
    _order_key,
    load_snapshot,
)


def load_history(history_dir: str) -> list[dict]:
    """All snapshots in ``history_dir``, oldest label first."""
    paths = sorted(
        (
            os.path.join(history_dir, name)
            for name in os.listdir(history_dir)
            if name.endswith(".json")
        ),
        key=_order_key,
    )
    snapshots = []
    for path in paths:
        snapshot = load_snapshot(path)
        snapshot.setdefault(
            "label", os.path.splitext(os.path.basename(path))[0]
        )
        snapshots.append(snapshot)
    return snapshots


def trend_rows(snapshots: list[dict], threshold: float = DEFAULT_THRESHOLD):
    """Per-headline trend rows: (key, values, ratio, status).

    ``values`` has one entry per snapshot (``None`` where the headline is
    absent).  ``ratio`` is latest/first over the snapshots that have the
    metric; ``status`` applies the ``compare_bench`` direction conventions to
    that first-to-latest ratio.
    """
    keys = sorted({key for s in snapshots for key in s.get("headlines", {})})
    rows = []
    for key in keys:
        values = [s.get("headlines", {}).get(key) for s in snapshots]
        present = [v for v in values if v is not None]
        first, last = present[0], present[-1]
        ratio = last / first if first else float("inf") if last else 1.0
        status = "ok"
        if key.endswith(HIGHER_IS_WORSE) and last > first * (1.0 + threshold):
            status = "WORSE"
        elif key.endswith(LOWER_IS_WORSE) and last < first * (1.0 - threshold):
            status = "WORSE"
        elif key.endswith(HIGHER_IS_WORSE) and last < first * (1.0 - threshold):
            status = "better"
        elif key.endswith(LOWER_IS_WORSE) and last > first * (1.0 + threshold):
            status = "better"
        elif key.endswith(("_launches", "_iterations", "_samples")) and last != first:
            status = "changed"
        rows.append((key, values, ratio, status))
    return rows


def _fmt(value) -> str:
    return "-" if value is None else f"{value:.5g}"


def render_console(snapshots: list[dict], rows) -> str:
    labels = [s["label"] for s in snapshots]
    width = max(10, *(len(label) + 2 for label in labels))
    header = f"{'headline':<34}" + "".join(
        f"{label:>{width}}" for label in labels
    ) + f" {'trend':>9}  status"
    lines = [
        f"perf trajectory over {len(snapshots)} snapshot(s): "
        + " -> ".join(labels),
        header,
    ]
    for key, values, ratio, status in rows:
        cells = "".join(f"{_fmt(v):>{width}}" for v in values)
        lines.append(f"{key:<34}{cells} {ratio:8.3f}x  {status}")
    configs = {str(s.get("config")) for s in snapshots}
    if len(configs) > 1:
        lines.append(
            "warning: snapshot configs differ across history — "
            "trends are not strictly comparable"
        )
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2em; }
table { border-collapse: collapse; }
th, td { padding: 0.3em 0.8em; border: 1px solid #ccc; text-align: right; }
th:first-child, td:first-child { text-align: left; font-family: monospace; }
tr.worse td { background: #fdd; }
tr.better td { background: #dfd; }
tr.changed td { background: #ffd; }
caption { caption-side: top; text-align: left; font-weight: bold;
          padding-bottom: 0.5em; }
"""


def render_html(snapshots: list[dict], rows) -> str:
    labels = [s["label"] for s in snapshots]
    head = "".join(f"<th>{html.escape(label)}</th>" for label in labels)
    body = []
    for key, values, ratio, status in rows:
        cells = "".join(f"<td>{html.escape(_fmt(v))}</td>" for v in values)
        css = {"WORSE": "worse", "better": "better", "changed": "changed"}.get(
            status, ""
        )
        body.append(
            f'<tr class="{css}"><td>{html.escape(key)}</td>{cells}'
            f"<td>{ratio:.3f}x</td><td>{html.escape(status)}</td></tr>"
        )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>perf trajectory</title><style>{_HTML_STYLE}</style></head>\n"
        "<body><table><caption>Perf trajectory: "
        + html.escape(" → ".join(labels))
        + "</caption>\n<tr><th>headline</th>"
        + head
        + "<th>trend</th><th>status</th></tr>\n"
        + "\n".join(body)
        + "\n</table></body></html>\n"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)), "history"),
                        help="snapshot directory (default benchmarks/history)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative trend threshold (default 0.20)")
    parser.add_argument("--html", default=None, metavar="PATH",
                        help="also write a self-contained HTML report")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the console table to a text file")
    args = parser.parse_args(argv)

    snapshots = load_history(args.history)
    if not snapshots:
        print(f"no snapshots in {args.history}; nothing to report")
        return 0
    rows = trend_rows(snapshots, threshold=args.threshold)
    table = render_console(snapshots, rows)
    print(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(table + "\n")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(snapshots, rows))
        print(f"\nhtml report written to {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 6(a): memory consumption of the constructed H2 matrices vs N.

The paper shows (close to) linear memory growth for the covariance and IE
matrices.  The reproduction prints the memory of the constructed matrices for
both kernels, plus the dense-matrix memory for reference, and checks that the
H2 memory grows sub-quadratically (the asymptotic O(N) regime needs larger N
than the reproduction default, but the curve must already bend away from the
dense N^2 growth).
"""

import pytest

from repro.diagnostics import format_series

from common import bench_sizes, cached_problem, construct_h2


def run_memory_sweep():
    memory = {"covariance H2 [MB]": {}, "IE H2 [MB]": {}, "dense [MB]": {}}
    for n in bench_sizes():
        cov = cached_problem("covariance", n)
        ie = cached_problem("ie", n)
        cov_result = construct_h2(cov, backend="vectorized")
        ie_result = construct_h2(ie, backend="vectorized")
        memory["covariance H2 [MB]"][n] = cov_result.memory_mb()
        memory["IE H2 [MB]"][n] = ie_result.memory_mb()
        memory["dense [MB]"][n] = cov.dense.nbytes / 2**20
    print()
    print(format_series("N", memory, title="Fig. 6(a): memory consumption vs N"))
    return memory


@pytest.mark.benchmark(group="fig6a-memory")
def test_fig6a_memory(benchmark):
    memory = benchmark.pedantic(run_memory_sweep, rounds=1, iterations=1)
    sizes = sorted(memory["dense [MB]"])
    if len(sizes) >= 2:
        n_small, n_large = sizes[0], sizes[-1]
        ratio_n = n_large / n_small
        for series in ("covariance H2 [MB]", "IE H2 [MB]"):
            growth = memory[series][n_large] / memory[series][n_small]
            dense_growth = memory["dense [MB]"][n_large] / memory["dense [MB]"][n_small]
            # H2 memory must grow strictly slower than the dense N^2 footprint.
            assert growth < dense_growth
            # ... and stay below dense memory at the largest size.
            assert memory[series][n_large] < memory["dense [MB]"][n_large]
        assert dense_growth == pytest.approx(ratio_n**2, rel=0.1)

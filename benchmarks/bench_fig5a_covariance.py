"""Fig. 5(a): construction time vs N for the 3D covariance matrix.

The paper plots construction time against problem size for (i) the proposed
algorithm on GPU, (ii) the proposed algorithm on CPU, (iii) H2Opus' top-down
GPU construction and (iv) ButterflyPACK's sketched H construction, annotating
the baselines with their total sample counts.  The reproduction maps (i)/(ii)
to the vectorized/serial batched backends and (iii)/(iv) to the
:mod:`repro.baselines` comparators, which are only run up to
``REPRO_BENCH_BASELINE_MAX_N`` (they become impractical quickly — the same
reason the paper's baselines stop early).
"""

import pytest

from repro.baselines import HMatrixSketchingConstructor, TopDownPeelingConstructor
from repro.diagnostics import format_series

from common import (
    DEFAULT_TOLERANCE,
    baseline_max_n,
    bench_sizes,
    cached_problem,
    construct_h2,
    measured_error,
)


def run_covariance_sweep():
    times = {"ours (vectorized)": {}, "ours (serial)": {}, "top-down peeling": {}, "H sketch": {}}
    samples = {"ours (vectorized)": {}, "top-down peeling": {}, "H sketch": {}}
    errors = {}
    eligible = [n for n in bench_sizes() if n <= baseline_max_n()]
    baseline_n = max(eligible) if eligible else None
    for n in bench_sizes():
        problem = cached_problem("covariance", n)
        vec = construct_h2(problem, backend="vectorized")
        ser = construct_h2(problem, backend="serial")
        times["ours (vectorized)"][n] = vec.elapsed_seconds
        times["ours (serial)"][n] = ser.elapsed_seconds
        samples["ours (vectorized)"][n] = vec.total_samples
        errors[n] = measured_error(vec, problem)
        if n == baseline_n:
            peel = TopDownPeelingConstructor(
                problem.tree,
                problem.fresh_operator(),
                problem.extractor,
                tolerance=DEFAULT_TOLERANCE,
                sample_block_size=64,
                max_rank=512,
                seed=3,
            ).construct()
            times["top-down peeling"][n] = peel.elapsed_seconds
            samples["top-down peeling"][n] = peel.total_samples
            sketch = HMatrixSketchingConstructor(
                problem.partition,
                problem.fresh_operator(),
                problem.extractor,
                tolerance=DEFAULT_TOLERANCE,
                sample_block_size=64,
                seed=4,
            ).construct()
            times["H sketch"][n] = sketch.elapsed_seconds
            samples["H sketch"][n] = sketch.total_samples
    print()
    print(
        format_series(
            "N", times, title="Fig. 5(a): covariance construction time [s] vs N"
        )
    )
    print()
    print(format_series("N", samples, title="Fig. 5(a): total samples vs N"))
    print()
    print(
        format_series(
            "N", {"relative error": errors}, title="Measured relative error (ours, vectorized)"
        )
    )
    return times, samples, errors


@pytest.mark.benchmark(group="fig5a-covariance")
def test_fig5a_covariance(benchmark):
    times, samples, errors = benchmark.pedantic(run_covariance_sweep, rounds=1, iterations=1)
    sizes = bench_sizes()
    # accuracy: every constructed matrix meets the tolerance up to a modest factor
    assert all(err < 100 * DEFAULT_TOLERANCE for err in errors.values())
    # the paper's headline: at the comparison size the baselines need far more
    # samples than ours and are slower
    compare_n = max(samples["top-down peeling"])
    assert samples["top-down peeling"][compare_n] > samples["ours (vectorized)"][compare_n]
    assert samples["H sketch"][compare_n] > samples["ours (vectorized)"][compare_n]
    assert times["ours (vectorized)"][compare_n] < times["top-down peeling"][compare_n]
    assert times["ours (vectorized)"][compare_n] < times["H sketch"][compare_n]
    assert len(sizes) == len(times["ours (vectorized)"])

"""Fig. 4(a)-(b): block partitioning of a 3D problem for different admissibility eta.

The paper shows the block partition of an N = 2^15 3D point set for
eta = 0.5 and eta = 0.7 and notes that smaller eta refines the off-diagonal
partition and increases the sparsity constant Csp.  This benchmark rebuilds
the partitions (at reproduction scale) and prints, per eta, the number of
admissible/inadmissible blocks and the per-level and global sparsity
constants.
"""

import pytest

from repro import ClusterTree, GeneralAdmissibility, build_block_partition, uniform_cube_points
from repro.diagnostics import format_table

from common import bench_sizes

ETAS = (0.5, 0.7, 1.0)


def run_partitioning(n: int, leaf_size: int = 64):
    points = uniform_cube_points(n, dim=3, seed=1)
    tree = ClusterTree.build(points, leaf_size=leaf_size)
    rows = []
    results = {}
    for eta in ETAS:
        partition = build_block_partition(tree, GeneralAdmissibility(eta=eta))
        stats = partition.statistics()
        results[eta] = stats
        rows.append(
            [
                eta,
                stats["num_admissible_blocks"],
                stats["num_inadmissible_blocks"],
                stats["sparsity_constant"],
            ]
        )
    print()
    print(
        format_table(
            ["eta", "admissible blocks", "dense blocks", "Csp"],
            rows,
            title=f"Fig. 4: block partitioning statistics (N={n}, 3D, leaf={leaf_size})",
        )
    )
    return results


@pytest.mark.benchmark(group="fig4-partitioning")
def test_fig4_partitioning(benchmark):
    n = max(bench_sizes())
    results = benchmark.pedantic(run_partitioning, args=(n,), rounds=1, iterations=1)
    # Smaller eta must refine the partition: more dense blocks, larger (or equal) Csp.
    assert (
        results[0.5]["num_inadmissible_blocks"]
        >= results[0.7]["num_inadmissible_blocks"]
        >= results[1.0]["num_inadmissible_blocks"]
    )
    assert results[0.5]["sparsity_constant"] >= results[1.0]["sparsity_constant"]

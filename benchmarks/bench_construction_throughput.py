"""Compiled construction throughput: points/second and launch counts vs N.

The compiled construction engine (:mod:`repro.batched.construction_plan`)
claims the same two things for Algorithm 1 that the apply plan claimed for
matvec:

* the sweep schedule costs O(levels) batched launches per convergence round —
  independent of the number of tree nodes — on both backends, and
* the vectorized backend turns the construction hot path (the inner loop of
  every GP hyperparameter sweep) into a handful of stacked GEMMs/gathers,
  beating the per-node reference loop (the ISSUE acceptance bar is ≥ 3× at
  N = 8192 on a quiet machine, enforced by
  ``tests/test_construction_plan.py::TestAcceptance``).

For every N this benchmark builds the 2D covariance problem, bootstraps a
compressed matrix once so the timed constructions sample through the fast H2
apply (the paper's black-box regime, the same as ``recompress_h2``), then
times the per-node reference loop and the packed path on both backends,
reporting points/second, sweep/generation launch counts and the phase split.
Results are printed as a table and emitted as the standard ``BENCH_JSON``
line.  Sizes follow ``REPRO_BENCH_SIZES``.
"""

import time

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    ConstructionPlan,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import construction_report, format_table
from repro.sketching.operators import H2Operator

from common import bench_sizes, emit_bench_json

LEAF_SIZE = 8
TOLERANCE = 1e-8
SAMPLE_BLOCK = 8
REPEATS = 2


def _setup(n: int):
    points = uniform_cube_points(n, dim=2, seed=1)
    tree = ClusterTree.build(points, leaf_size=LEAF_SIZE)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = ExponentialKernel(0.2).matrix(tree.points)
    bootstrap = H2Constructor(
        partition,
        DenseOperator(dense),
        DenseEntryExtractor(dense),
        ConstructionConfig(tolerance=TOLERANCE, norm_estimate=8.0),
        seed=3,
    ).construct()
    bootstrap.matrix.matvec(np.zeros(n))  # compile the sampler's apply plan
    return partition, dense, bootstrap.matrix


def _construct(partition, dense, sampler, path, backend, plan):
    config = ConstructionConfig(
        tolerance=TOLERANCE,
        sample_block_size=SAMPLE_BLOCK,
        norm_estimate=8.0,
        backend=backend,
    )
    constructor = H2Constructor(
        partition,
        H2Operator(sampler),
        DenseEntryExtractor(dense),
        config,
        seed=7,
        plan=plan if path == "packed" else None,
    )
    start = time.perf_counter()
    result = (
        constructor.construct_packed()
        if path == "packed"
        else constructor.construct_loop()
    )
    return result, time.perf_counter() - start


def bench_size(n: int):
    partition, dense, sampler = _setup(n)
    plan = ConstructionPlan(partition)
    variants = [("loop", "vectorized"), ("packed", "serial"), ("packed", "vectorized")]

    measured = {}
    for path, backend in variants:
        best, result = np.inf, None
        for _ in range(REPEATS):
            result, seconds = _construct(partition, dense, sampler, path, backend, plan)
            best = min(best, seconds)
        measured[(path, backend)] = (result, best)

    loop_result, loop_s = measured[("loop", "vectorized")]
    record = {
        "n": n,
        "levels": partition.tree.num_levels,
        "num_nodes": sum(level.num_nodes for level in loop_result.levels),
        "loop_seconds": loop_s,
        "loop_report": construction_report(loop_result).as_dict(),
        "variants": {},
    }
    for (path, backend), (result, seconds) in measured.items():
        if path == "loop":
            continue
        report = construction_report(result)
        record["variants"][backend] = {
            "seconds": seconds,
            "points_per_second": n / seconds,
            "speedup_vs_loop": loop_s / seconds,
            "sweep_launches": report.sweep_launches,
            "generation_launches": report.generation_launches,
            "sweep_launches_per_round": report.sweep_launches_per_round,
            "sampling_rounds": report.sampling_rounds,
            "total_samples": report.total_samples,
        }
    return record


def run_construction_throughput():
    records = [bench_size(n) for n in bench_sizes()]
    rows = []
    for r in records:
        loop_sweep = r["loop_report"]["sweep_launches"]
        for backend, v in r["variants"].items():
            rows.append(
                [
                    r["n"],
                    backend,
                    r["levels"],
                    r["num_nodes"],
                    f"{r['loop_seconds']:.2f}",
                    f"{v['seconds']:.2f}",
                    f"{v['speedup_vs_loop']:.2f}",
                    f"{v['points_per_second'] / 1e3:.1f}",
                    f"{v['sweep_launches']} (loop {loop_sweep})",
                    f"{v['sweep_launches_per_round']:.0f}",
                ]
            )
    print()
    print(
        format_table(
            [
                "N",
                "backend",
                "levels",
                "nodes",
                "loop [s]",
                "packed [s]",
                "speedup",
                "kpts/s",
                "sweep launches",
                "launches/round",
            ],
            rows,
            title=(
                "Compiled construction throughput "
                f"(2D covariance, H2 fast-sampler, tol {TOLERANCE:g})"
            ),
        )
    )
    emit_bench_json("construction_throughput", records)
    return records


@pytest.mark.benchmark(group="construction-throughput")
def test_construction_throughput(benchmark):
    records = benchmark.pedantic(run_construction_throughput, rounds=1, iterations=1)
    largest = max(r["n"] for r in records)
    for r in records:
        levels = r["levels"]
        for v in r["variants"].values():
            # O(levels) sweep launches per round, far below the node count.
            rounds = max(v["sampling_rounds"], 1)
            assert v["sweep_launches"] <= 10 * levels * rounds
            assert v["sweep_launches"] < r["loop_report"]["sweep_launches"] / 2
        # The full ≥3x acceptance bar lives in the slow test-suite
        # (tests/test_construction_plan.py); here we pin that the compiled
        # path wins at the largest size even on contended runners.
        if r["n"] == largest and largest >= 8192:
            assert r["variants"]["vectorized"]["speedup_vs_loop"] >= 1.5


if __name__ == "__main__":
    run_construction_throughput()

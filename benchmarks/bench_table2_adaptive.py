"""Table II: effect of leaf size and sample block size, fixed vs adaptive sampling.

The paper fixes a 3D problem (N = 2^18 there; reproduction scale here) and
varies the leaf size (128/256) and the sampling block size (equal to the leaf
size for the fixed-sample variant, 32 for the adaptive variant), reporting
construction time, rank range, memory, total samples and the measured relative
error for both the covariance and IE kernels.
"""

import pytest

from repro.diagnostics import format_table

from common import bench_sizes, cached_problem, construct_h2, measured_error

LEAF_SIZES = (64, 128)
ADAPTIVE_BLOCK = 32
#: Oversampling added to the leaf size for the fixed-sample runs.  The paper
#: uses leaf-size sample blocks with leaf sizes of 128/256, comfortably above
#: the observed ranks; at reproduction scale (leaf 64/128) a small oversampling
#: keeps the fixed-sample variant's rank detection reliable.
FIXED_OVERSAMPLING = 64
TOLERANCE = 1e-6


def run_table2(n: int | None = None):
    n = n if n is not None else max(bench_sizes())
    rows = []
    records = []
    for kind in ("covariance", "ie"):
        for leaf in LEAF_SIZES:
            problem = cached_problem(kind, n, leaf_size=leaf)
            for mode in ("fixed sample", "adaptive"):
                if mode == "fixed sample":
                    fixed_samples = leaf + FIXED_OVERSAMPLING
                    result = construct_h2(
                        problem,
                        backend="vectorized",
                        tolerance=TOLERANCE,
                        adaptive=False,
                        initial_samples=fixed_samples,
                        sample_block_size=fixed_samples,
                    )
                    block = fixed_samples
                else:
                    result = construct_h2(
                        problem,
                        backend="vectorized",
                        tolerance=TOLERANCE,
                        adaptive=True,
                        sample_block_size=ADAPTIVE_BLOCK,
                        initial_samples=ADAPTIVE_BLOCK,
                    )
                    block = ADAPTIVE_BLOCK
                error = measured_error(result, problem)
                lo, hi = result.rank_range
                records.append(
                    {
                        "kind": kind,
                        "mode": mode,
                        "leaf": leaf,
                        "samples": result.total_samples,
                        "error": error,
                        "memory": result.memory_mb(),
                        "time": result.elapsed_seconds,
                    }
                )
                rows.append(
                    [
                        kind,
                        mode,
                        f"{result.elapsed_seconds:.3f}",
                        f"{lo}-{hi}",
                        f"{result.memory_mb():.2f}",
                        result.total_samples,
                        block,
                        leaf,
                        f"{error:.3e}",
                    ]
                )
    print()
    print(
        format_table(
            [
                "kernel",
                "variant",
                "time [s]",
                "rank range",
                "memory [MB]",
                "total samples",
                "sample block",
                "leaf size",
                "rel. error",
            ],
            rows,
            title=f"Table II: leaf size / sample block study (N={n}, tol={TOLERANCE:g})",
        )
    )
    return records


@pytest.mark.benchmark(group="table2-adaptive")
def test_table2_adaptive(benchmark):
    records = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    # every variant meets the tolerance within a modest factor
    assert all(r["error"] < 1e-3 for r in records)
    # adaptive sampling uses fewer (or equal) samples than the fixed-sample runs
    for kind in ("covariance", "ie"):
        for leaf in LEAF_SIZES:
            fixed = next(
                r for r in records if r["kind"] == kind and r["leaf"] == leaf and r["mode"] == "fixed sample"
            )
            adaptive = next(
                r for r in records if r["kind"] == kind and r["leaf"] == leaf and r["mode"] == "adaptive"
            )
            assert adaptive["samples"] <= fixed["samples"]

"""Headline speedup summary (abstract / Section V-B claims).

The paper reports up to 13x speedup of the GPU implementation over its own CPU
implementation, up to ~1000x over H2Opus' top-down GPU construction and ~660x
over ButterflyPACK's sketched H construction.  The reproduction compares the
vectorized (batched) backend against the serial backend and against the two
comparator algorithms at a single problem size and prints the resulting
speedup factors.  Absolute factors differ from the paper (no GPU, pure-Python
baselines); the *ordering* must hold: ours(batched) is fastest, the
sketching comparators are slowest.
"""

import pytest

from repro.baselines import HMatrixSketchingConstructor, TopDownPeelingConstructor
from repro.diagnostics import format_table

from common import DEFAULT_TOLERANCE, baseline_max_n, bench_sizes, cached_problem, construct_h2


def run_speedup_summary():
    n = min(max(bench_sizes()), baseline_max_n())
    problem = cached_problem("covariance", n)
    timings = {}
    samples = {}

    vec = construct_h2(problem, backend="vectorized")
    timings["ours (vectorized batched)"] = vec.elapsed_seconds
    samples["ours (vectorized batched)"] = vec.total_samples

    ser = construct_h2(problem, backend="serial")
    timings["ours (serial)"] = ser.elapsed_seconds
    samples["ours (serial)"] = ser.total_samples

    peel = TopDownPeelingConstructor(
        problem.tree,
        problem.fresh_operator(),
        problem.extractor,
        tolerance=DEFAULT_TOLERANCE,
        sample_block_size=64,
        max_rank=512,
        seed=3,
    ).construct()
    timings["top-down peeling (H2Opus-like)"] = peel.elapsed_seconds
    samples["top-down peeling (H2Opus-like)"] = peel.total_samples

    sketch = HMatrixSketchingConstructor(
        problem.partition,
        problem.fresh_operator(),
        problem.extractor,
        tolerance=DEFAULT_TOLERANCE,
        sample_block_size=64,
        seed=4,
    ).construct()
    timings["H sketch (ButterflyPACK-like)"] = sketch.elapsed_seconds
    samples["H sketch (ButterflyPACK-like)"] = sketch.total_samples

    fastest = timings["ours (vectorized batched)"]
    rows = [
        [name, f"{seconds:.3f}", f"{seconds / fastest:.1f}x", samples[name]]
        for name, seconds in timings.items()
    ]
    print()
    print(
        format_table(
            ["method", "time [s]", "slowdown vs ours", "total samples"],
            rows,
            title=f"Speedup summary (3D covariance, N={n}, tol={DEFAULT_TOLERANCE:g})",
        )
    )
    return timings, samples


@pytest.mark.benchmark(group="speedup-summary")
def test_speedup_summary(benchmark):
    timings, samples = benchmark.pedantic(run_speedup_summary, rounds=1, iterations=1)
    ours = timings["ours (vectorized batched)"]
    # the proposed construction is faster than both comparators (paper: 660x-1000x)
    assert timings["top-down peeling (H2Opus-like)"] > ours
    assert timings["H sketch (ButterflyPACK-like)"] > ours
    # and needs fewer samples than either comparator
    assert samples["ours (vectorized batched)"] < samples["top-down peeling (H2Opus-like)"]
    assert samples["ours (vectorized batched)"] < samples["H sketch (ButterflyPACK-like)"]

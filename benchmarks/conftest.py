"""Benchmark-suite configuration.

All benchmarks run a single round (``pedantic(rounds=1)``): every benchmark is
a full construction sweep whose interesting output is the printed paper-style
table, not a micro-benchmark statistic.
"""

import sys
from pathlib import Path

# Make the sibling `common` helper importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).resolve().parent))

"""Section IV-B claim: the batched algorithm needs only O(log N) batched calls.

On a GPU every batched primitive dispatch is a kernel launch with fixed
overhead; the paper argues that the construction needs only a small constant
number of batched operations per level, i.e. O(log N) launches in total, so
launch overhead is negligible.  The reproduction counts batched-primitive
invocations (``kernel_calls``) and shape-group dispatches (``kernel_launches``)
as N grows and checks that the invocation count grows like the number of tree
levels, not like N.
"""

import numpy as np
import pytest

from repro.diagnostics import format_table

from common import bench_sizes, cached_problem, construct_h2


def run_launch_counts():
    rows = []
    data = {}
    for n in bench_sizes():
        problem = cached_problem("covariance", n)
        result = construct_h2(problem, backend="vectorized")
        depth = problem.tree.depth
        csp = problem.partition.sparsity_constant()
        data[n] = {
            "depth": depth,
            "csp": csp,
            "calls": result.total_kernel_calls,
            "launches": result.total_kernel_launches,
        }
        rows.append(
            [n, depth, csp, result.total_kernel_calls, result.total_kernel_launches,
             f"{result.total_kernel_calls / max(depth, 1):.1f}"]
        )
    print()
    print(
        format_table(
            ["N", "tree depth", "Csp", "batched calls", "shape-group launches", "calls / level"],
            rows,
            title="Batched-call counts vs N (paper: O(Csp log N) kernel launches)",
        )
    )
    return data


@pytest.mark.benchmark(group="launch-counts")
def test_launch_counts(benchmark):
    data = benchmark.pedantic(run_launch_counts, rounds=1, iterations=1)
    for n, record in data.items():
        # Far fewer batched calls than matrix rows: per-node (non-batched) dispatch
        # would need several launches per node, i.e. >> N in total.
        assert 0 < record["calls"] < 0.25 * n
        # The batched schedule issues at most a few calls per level plus at most
        # Csp calls per BSR product per level (Section IV-A) — the paper's
        # O(Csp log N) bound.  (At reproduction scale Csp itself still grows with
        # N, so the bound is stated per level rather than as a growth rate.)
        per_level_bound = 3 * record["csp"] + 16
        assert record["calls"] <= max(record["depth"], 1) * per_level_bound

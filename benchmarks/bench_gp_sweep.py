"""Gaussian-process hyperparameter sweep: geometry reuse vs cold construction.

The headline workload of the GP subsystem (and the acceptance claim of its
ISSUE): a log-likelihood sweep over kernel length scales re-constructs the
compressed covariance at every parameter point, and the
:class:`~repro.core.context.GeometryContext` makes the re-constructions
substantially cheaper than building from scratch by caching the cluster tree,
block partition, pairwise distances, frozen sample pattern and apply-plan
skeleton.

For every N this benchmark

* times ``len(scales)`` *cold* constructions (fresh tree/partition/operator
  per point, the pre-context workflow),
* times the same sweep through one shared ``GeometryContext``,
* runs the full GP model selection (``gp.fit`` over the length-scale grid) and
  reports per-point log-likelihoods, logdet/CG statistics and launch counts.

Results are printed as tables and emitted as the standard ``BENCH_JSON`` line.
Sizes follow ``REPRO_BENCH_SIZES``.
"""

import time

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    ExponentialKernel,
    GaussianProcess,
    GeometryContext,
    H2Constructor,
    WeakAdmissibility,
    build_block_partition,
    gp_sweep_table,
    uniform_cube_points,
)
from repro.diagnostics import format_table
from repro.sketching import KernelEntryExtractor, KernelMatVecOperator

from common import bench_sizes, emit_bench_json

LEAF_SIZE = 64
TOLERANCE = 1e-6
SCALES = [0.15, 0.2, 0.3]
NOISE = 1e-2


def _cold_sweep_seconds(points: np.ndarray) -> float:
    start = time.perf_counter()
    for length_scale in SCALES:
        tree = ClusterTree.build(points, leaf_size=LEAF_SIZE)
        partition = build_block_partition(tree, WeakAdmissibility())
        kernel = ExponentialKernel(length_scale)
        H2Constructor(
            partition,
            KernelMatVecOperator(kernel, tree.points),
            KernelEntryExtractor(kernel, tree.points),
            ConstructionConfig(tolerance=TOLERANCE),
            seed=3,
        ).construct()
    return time.perf_counter() - start


def _construction_path_seconds(context: GeometryContext, path: str) -> float:
    """Time one warm sweep with the construction path pinned.

    Passing an explicit config bypasses the context's result cache, so every
    sweep point re-runs the full construction (packed or per-node loop) over
    the same frozen sample bank and warm-started sample counts.
    """
    start = time.perf_counter()
    for length_scale in SCALES:
        context.construct(
            ExponentialKernel(length_scale),
            config=ConstructionConfig(
                tolerance=TOLERANCE,
                backend=context.backend,
                construction_path=path,
            ),
        )
    return time.perf_counter() - start


def bench_size(n: int):
    points = uniform_cube_points(n, dim=3, seed=1)
    cold_seconds = _cold_sweep_seconds(points)

    start = time.perf_counter()
    context = GeometryContext(points, leaf_size=LEAF_SIZE, seed=3)
    for length_scale in SCALES:
        context.construct(ExponentialKernel(length_scale), tolerance=TOLERANCE)
    sweep_seconds = time.perf_counter() - start

    # Construction-phase speedup of the compiled path: the same warm sweep
    # with the per-node reference loop vs the packed level-wise engine.
    loop_path_seconds = _construction_path_seconds(context, "loop")
    packed_path_seconds = _construction_path_seconds(context, "packed")

    # Full GP model selection over the same grid (reuses the context).
    gp = GaussianProcess(
        points,
        ExponentialKernel(SCALES[0]),
        noise=NOISE,
        tolerance=TOLERANCE,
        seed=3,
        context=context,
    )
    y = np.sin(4.0 * points[:, 0]) * np.cos(3.0 * points[:, 1])
    start = time.perf_counter()
    gp.fit(y, length_scales=SCALES)
    fit_seconds = time.perf_counter() - start
    print()
    print(gp_sweep_table(gp.fit_reports_, title=f"GP sweep points at N = {n}"))

    return {
        "n": n,
        "scales": SCALES,
        "cold_sweep_s": cold_seconds,
        "context_sweep_s": sweep_seconds,
        "speedup": cold_seconds / sweep_seconds,
        "loop_path_sweep_s": loop_path_seconds,
        "packed_path_sweep_s": packed_path_seconds,
        "construction_path_speedup": loop_path_seconds / packed_path_seconds,
        "context": context.statistics.as_dict(),
        "context_memory_mb": context.memory_bytes() / 2**20,
        "gp_fit_s": fit_seconds,
        "best_length_scale": gp.kernel.length_scale,
        "log_likelihood": gp.log_marginal_likelihood_,
        "points": [report.summary() for report in gp.fit_reports_],
    }


def run_gp_sweep():
    records = [bench_size(n) for n in bench_sizes()]
    print()
    print(
        format_table(
            [
                "N",
                "cold sweep [s]",
                "context sweep [s]",
                "speedup",
                "packed vs loop",
                "ctx mem [MB]",
                "GP fit [s]",
                "best l",
                "log-lik",
            ],
            [
                [
                    r["n"],
                    r["cold_sweep_s"],
                    r["context_sweep_s"],
                    f"{r['speedup']:.2f}x",
                    f"{r['construction_path_speedup']:.2f}x",
                    r["context_memory_mb"],
                    r["gp_fit_s"],
                    r["best_length_scale"],
                    r["log_likelihood"],
                ]
                for r in records
            ],
            title=(
                f"GP length-scale sweep over {SCALES} "
                f"(3D exponential covariance, tol {TOLERANCE:g})"
            ),
        )
    )
    emit_bench_json("gp_sweep", records)
    return records


@pytest.mark.benchmark(group="gp-sweep")
def test_gp_sweep(benchmark):
    records = benchmark.pedantic(run_gp_sweep, rounds=1, iterations=1)
    for r in records:
        # Geometry reuse must beat cold construction at every size; the >= 2x
        # acceptance bar at N = 4096 is enforced by the slow test-suite
        # (tests/test_context.py::TestAcceptance).
        assert r["speedup"] > 1.0
        # The compiled construction path must not cost the sweep anything
        # beyond its small per-construction marshaling constant (its ≥3x
        # headline regime is benchmarked by bench_construction_throughput.py;
        # this 3D weak-admissibility sweep is sampling-dominated, so parity
        # minus noise is the floor here).
        assert r["construction_path_speedup"] > 0.7
        # The sweep should select a grid point and produce a finite likelihood.
        assert r["best_length_scale"] in SCALES
        assert np.isfinite(r["log_likelihood"])


if __name__ == "__main__":
    run_gp_sweep()

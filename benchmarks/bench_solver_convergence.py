"""Solver convergence study: Krylov methods on kernel systems, with and
without hierarchical preconditioning.

The paper builds H2/HSS matrices so they can be *used*; this benchmark closes
the loop on the covariance workload (Section V-A, Eq. 8): for each problem
size it solves ``(K + sigma I) x = b`` with

* unpreconditioned CG,
* CG preconditioned by a loose sketched-HSS factorization
  (:class:`repro.solvers.preconditioner.HierarchicalPreconditioner`),
* the near-linear HODLR *direct* solve,

and prints the iteration counts, setup/solve times and residuals, mirroring
the format of the paper-figure benches.  Sizes follow ``REPRO_BENCH_SIZES``.
"""

import numpy as np
import pytest

from repro import (
    ClusterTree,
    HODLRFactorization,
    HierarchicalPreconditioner,
    build_hodlr,
    cg,
)
from repro.diagnostics import format_table

from common import (
    DEFAULT_SAMPLE_BLOCK,
    bench_sizes,
    emit_bench_json,
    make_covariance_problem,
)

NUGGET = 1e-2
SOLVE_TOL = 1e-8
PRECOND_TOL = 1e-3


def solve_problem(n: int):
    problem = make_covariance_problem(n)
    tree: ClusterTree = problem.tree
    system = problem.dense + NUGGET * np.eye(n)
    b = np.random.default_rng(n).standard_normal(n)

    plain = cg(system, b, tol=SOLVE_TOL, maxiter=8 * n)

    preconditioner = HierarchicalPreconditioner.from_operator(
        tree,
        problem.fresh_operator(),
        problem.extractor,
        tolerance=PRECOND_TOL,
        shift=NUGGET,
        sample_block_size=DEFAULT_SAMPLE_BLOCK,
        seed=7,
    )
    # The preconditioner factors K (permuted ordering); the system here is
    # also in the permuted ordering, so apply the factorization directly.
    accelerated = cg(
        system,
        b,
        tol=SOLVE_TOL,
        maxiter=8 * n,
        M=lambda r: preconditioner.factorization.solve(r, permuted=True),
    )

    hodlr = build_hodlr(
        tree,
        lambda rows, cols: system[np.ix_(rows, cols)],
        tol=1e-10,
    )
    factorization = HODLRFactorization(hodlr)
    x_direct = factorization.solve(b, permuted=True)
    direct_residual = float(
        np.linalg.norm(system @ x_direct - b) / np.linalg.norm(b)
    )

    return {
        "n": n,
        "cg_iters": plain.iterations,
        "cg_time_s": plain.elapsed_seconds,
        "pcg_iters": accelerated.iterations,
        "pcg_time_s": accelerated.elapsed_seconds,
        "pcg_setup_s": preconditioner.setup_seconds,
        "speedup_iters": plain.iterations / max(1, accelerated.iterations),
        "direct_resid": direct_residual,
        "direct_mb": factorization.memory_bytes() / 2**20,
        "converged": plain.converged and accelerated.converged,
    }


def run_convergence_sweep():
    rows = [solve_problem(n) for n in bench_sizes()]
    print()
    print(
        format_table(
            [
                "N",
                "CG iters",
                "CG s",
                "PCG iters",
                "PCG s",
                "setup s",
                "iter speedup",
                "direct resid",
                "direct MB",
            ],
            [
                [
                    r["n"],
                    r["cg_iters"],
                    r["cg_time_s"],
                    r["pcg_iters"],
                    r["pcg_time_s"],
                    r["pcg_setup_s"],
                    r["speedup_iters"],
                    r["direct_resid"],
                    r["direct_mb"],
                ]
                for r in rows
            ],
            title="Solver convergence: covariance system (K + 1e-2 I) x = b, tol 1e-8",
        )
    )
    emit_bench_json("solver_convergence", rows)
    return rows


@pytest.mark.benchmark(group="solver-convergence")
def test_solver_convergence(benchmark):
    rows = benchmark.pedantic(run_convergence_sweep, rounds=1, iterations=1)
    for r in rows:
        assert r["converged"]
        # Preconditioning must reduce iterations substantially at every size.
        assert r["pcg_iters"] <= r["cg_iters"] / 2
        # The direct solve is accurate to (roughly) the HODLR tolerance.
        assert r["direct_resid"] < 1e-6


if __name__ == "__main__":
    run_convergence_sweep()

"""Batched H2 apply throughput: matvec/matmat time and launch counts vs N.

The compiled apply engine (:mod:`repro.batched.apply_plan`) claims two things:

* launches per apply are O(levels) — independent of the number of tree nodes
  and blocks — on both backends, and
* the vectorized backend turns the Krylov hot path into a handful of stacked
  GEMMs, beating the per-node reference loop by a solid factor (the ISSUE
  acceptance bar is ≥ 3× at N = 8192 for the single-vector apply).

For every N this benchmark constructs the 2D covariance H2 matrix, then times
the per-node loop baseline, the serial backend and the vectorized backend for
``k = 1`` (matvec) and ``k = 8`` (matmat), reporting per-apply launch counts,
effective GFLOP/s and operand bandwidth.  Results are printed as a table and
emitted as the standard ``BENCH_JSON`` line.  Sizes follow
``REPRO_BENCH_SIZES``.
"""

import time

import numpy as np
import pytest

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import apply_report, format_table

from common import bench_sizes, emit_bench_json

LEAF_SIZE = 32
TOLERANCE = 1e-6
MATMAT_COLUMNS = 8


def _build(n: int):
    points = uniform_cube_points(n, dim=2, seed=1)
    tree = ClusterTree.build(points, leaf_size=LEAF_SIZE)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = ExponentialKernel(0.2).matrix(tree.points)
    result = H2Constructor(
        partition,
        DenseOperator(dense),
        DenseEntryExtractor(dense),
        ConstructionConfig(tolerance=TOLERANCE),
        seed=7,
    ).construct()
    return result.matrix


def _best_of(f, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        f()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_size(n: int):
    h2 = _build(n)
    x = np.random.default_rng(1).standard_normal(n)
    block = np.random.default_rng(2).standard_normal((n, MATMAT_COLUMNS))
    h2.matvec(x)  # compile the plan once up front
    plan = h2.apply_plan()

    loop_s = _best_of(lambda: h2.matvec_loop(x, permuted=True), repeats=5)
    loop_mm_s = _best_of(lambda: h2.matvec_loop(block, permuted=True), repeats=3)

    record = {
        "n": n,
        "levels": h2.tree.num_levels,
        "block_products": plan.num_block_products,
        "launches_per_apply": plan.num_stages,
        "loop_matvec_s": loop_s,
        "loop_matmat_s": loop_mm_s,
        "backends": {},
    }
    reference = h2.matvec_loop(x, permuted=True)
    for backend in ("serial", "vectorized"):
        report = apply_report(h2, backend=backend, k=1, repeats=7)
        report_mm = apply_report(h2, backend=backend, k=MATMAT_COLUMNS, repeats=3)
        batched = h2.matvec(x, permuted=True, backend=backend)
        error = float(
            np.linalg.norm(batched - reference) / np.linalg.norm(reference)
        )
        record["backends"][backend] = {
            "matvec_s": report.seconds_per_apply,
            "matmat_s": report_mm.seconds_per_apply,
            "launches": report.launches_per_apply,
            "gflops": report.gflops,
            "bandwidth_gb_s": report.bandwidth_gb_s,
            "speedup_vs_loop": loop_s / report.seconds_per_apply,
            "matmat_speedup_vs_loop": loop_mm_s / report_mm.seconds_per_apply,
            "rel_error_vs_loop": error,
        }
    return record


def run_matvec_throughput():
    records = [bench_size(n) for n in bench_sizes()]
    rows = []
    for r in records:
        for backend, b in r["backends"].items():
            rows.append(
                [
                    r["n"],
                    backend,
                    r["levels"],
                    r["block_products"],
                    b["launches"],
                    f"{r['loop_matvec_s'] * 1e3:.2f}",
                    f"{b['matvec_s'] * 1e3:.2f}",
                    f"{b['speedup_vs_loop']:.2f}",
                    f"{b['matmat_speedup_vs_loop']:.2f}",
                    f"{b['bandwidth_gb_s']:.2f}",
                ]
            )
    print()
    print(
        format_table(
            [
                "N",
                "backend",
                "levels",
                "block GEMMs",
                "launches",
                "loop [ms]",
                "batched [ms]",
                "matvec speedup",
                f"matmat({MATMAT_COLUMNS}) speedup",
                "GiB/s",
            ],
            rows,
            title="Batched H2 apply throughput (2D covariance, tol 1e-6)",
        )
    )
    emit_bench_json("matvec_throughput", records)
    return records


@pytest.mark.benchmark(group="matvec-throughput")
def test_matvec_throughput(benchmark):
    records = benchmark.pedantic(run_matvec_throughput, rounds=1, iterations=1)
    largest = max(r["n"] for r in records)
    for r in records:
        levels = r["levels"]
        # O(levels) launches, far below the per-node block-product count.
        assert r["launches_per_apply"] <= 12 * levels
        assert r["launches_per_apply"] < 0.25 * r["block_products"]
        for b in r["backends"].values():
            assert b["rel_error_vs_loop"] < 1e-12
        # The acceptance criterion: ≥ 3x over the loop at the largest size.
        if r["n"] == largest and largest >= 8192:
            assert r["backends"]["vectorized"]["speedup_vs_loop"] >= 3.0


if __name__ == "__main__":
    run_matvec_throughput()

"""Per-PR headline performance snapshot (the committed perf trajectory).

Runs a small fixed set of headline measurements — construction (packed and
loop paths), compiled matvec, preconditioned solve, artifact save/load and the
warm cache-aside re-compression (``REPRO_CACHE_DIR`` keeps the artifact
directory across runs; the cold headlines are insulated from it), and a GP
hyperparameter sweep — at fixed problem sizes and seeds, and writes one JSON
file per PR to
``benchmarks/history/``.  Committing the file gives the repository a
performance trajectory that ``compare_bench.py`` diffs in CI (non-blocking):
a >20% regression on any headline flags the PR for a human look.

The whole pipeline runs under one :class:`repro.observe.SpanTracer`; pass
``--trace out.json`` to also export the Chrome ``trace_event`` file (open it
in https://ui.perfetto.dev) and print the console span tree.

Usage::

    PYTHONPATH=src python benchmarks/snapshot.py --label pr6
    PYTHONPATH=src python benchmarks/snapshot.py --label dev --out /tmp/dev.json \
        --trace /tmp/dev-trace.json

Sizes scale down for CI with ``REPRO_SNAPSHOT_N`` / ``REPRO_SNAPSHOT_GP_N``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

import repro
from repro import (
    ExecutionPolicy,
    ExponentialKernel,
    Session,
    SpanTracer,
    uniform_cube_points,
)
from repro.diagnostics import apply_report
from repro.observe import (
    MetricsRegistry,
    console_tree,
    save_chrome_trace,
    save_openmetrics,
)

SEED = 7
NOISE = 1e-2
GP_LENGTH_SCALES = (0.15, 0.2, 0.3)


def snapshot_sizes() -> tuple[int, int]:
    n = int(os.environ.get("REPRO_SNAPSHOT_N", "4096"))
    n_gp = int(os.environ.get("REPRO_SNAPSHOT_GP_N", "1024"))
    return n, n_gp


def take_snapshot(
    label: str,
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> dict:
    n, n_gp = snapshot_sizes()
    # The artifact cache must never warm the *cold* construction headlines:
    # claim the env opt-in for the dedicated persistence section below.
    artifact_dir = os.environ.pop("REPRO_CACHE_DIR", None)
    kernel = ExponentialKernel(0.2)
    tracer = SpanTracer(metrics=MetricsRegistry())
    policy = ExecutionPolicy(tracer=tracer)
    headlines: dict[str, float] = {}

    # Construction, packed path (the compiled level-wise engine).
    points = uniform_cube_points(n, dim=3, seed=1)
    sess = Session(points, policy=policy, seed=SEED)
    sess.compress(kernel, tol=1e-6)
    result = sess.result
    headlines["construction_packed_seconds"] = result.elapsed_seconds
    headlines["construction_total_launches"] = result.total_kernel_launches
    headlines["construction_total_samples"] = result.total_samples

    # Construction, per-node loop reference path.
    loop_policy = ExecutionPolicy(construction_path="loop", tracer=tracer)
    loop_result = repro.compress(
        points, kernel, tol=1e-6, seed=SEED, policy=loop_policy, full_result=True
    )
    headlines["construction_loop_seconds"] = loop_result.elapsed_seconds

    # Compiled batched matvec (dedicated best-of measurement, untraced).
    matvec = apply_report(sess.operator, backend="vectorized", k=1, repeats=5)
    headlines["matvec_seconds"] = matvec.seconds_per_apply
    headlines["matvec_gflops"] = matvec.gflops
    headlines["matvec_launches"] = matvec.launches_per_apply

    # Preconditioned CG solve.
    start = time.perf_counter()
    solve = sess.factor(noise=NOISE).solve(np.ones(n), tol=1e-8)
    headlines["solve_seconds"] = time.perf_counter() - start
    headlines["solve_iterations"] = solve.iterations

    # Artifact persistence: cold save, zero-copy load, and the cache-aside
    # warm path (a fresh Session re-requesting the same compression loads the
    # stored artifact instead of constructing).  REPRO_CACHE_DIR (claimed
    # above) keeps the artifacts across runs; otherwise a temp dir is used.
    persist_dir = artifact_dir or tempfile.mkdtemp(prefix="repro-snapshot-")
    cache = repro.ArtifactCache(persist_dir)
    artifact_path = os.path.join(persist_dir, f"snapshot-h2-n{n}.repro")
    start = time.perf_counter()
    repro.save_operator(sess.operator, artifact_path)
    headlines["persist_save_seconds"] = time.perf_counter() - start
    headlines["persist_artifact_mb"] = os.path.getsize(artifact_path) / 2**20
    start = time.perf_counter()
    repro.load_operator(artifact_path)
    headlines["persist_load_seconds"] = time.perf_counter() - start

    warm_sess = Session(points, policy=policy, seed=SEED, cache=cache)
    cache.put(
        cache.key(
            points, kernel, tol=1e-6, format="h2",
            leaf_size=warm_sess.tree.leaf_size,
            admissibility=warm_sess.partition.admissibility, seed=SEED,
            extra={"sample_block_size": 64},
        ),
        sess.operator,
    )
    start = time.perf_counter()
    warm_sess.compress(kernel, tol=1e-6)
    warm_seconds = time.perf_counter() - start
    assert warm_sess.context.statistics.artifact_cache_hits == 1
    headlines["construction_warm_seconds"] = warm_seconds
    headlines["persist_warm_speedup"] = headlines[
        "construction_packed_seconds"
    ] / max(warm_seconds, 1e-9)

    # Serving: concurrent posterior solves through repro.serve, micro-batched
    # vs the batching-disabled baseline (identical server otherwise).
    import asyncio

    from repro.serve import InferenceServer, SolveRequest

    serve_clients = int(os.environ.get("REPRO_SNAPSHOT_SERVE_CLIENTS", "32"))
    serve_rng = np.random.default_rng(SEED)
    serve_payloads = [serve_rng.standard_normal(n) for _ in range(serve_clients)]

    def serve_mode(batching: bool) -> tuple[float, float]:
        server = InferenceServer(batching=batching, max_batch=serve_clients,
                                 policy=policy)
        server.register("snapshot", sess.operator, noise=NOISE, policy=policy)
        server.registry.get("snapshot").factorization()  # outside the timing
        latencies: list[float] = []

        async def client(b):
            t0 = time.perf_counter()
            await server.handle(SolveRequest(model="snapshot", b=b))
            latencies.append((time.perf_counter() - t0) * 1000.0)

        async def fire():
            await asyncio.gather(*[client(b) for b in serve_payloads])

        start = time.perf_counter()
        asyncio.run(fire())
        rps = serve_clients / (time.perf_counter() - start)
        asyncio.run(server.aclose())
        return rps, float(np.percentile(latencies, 95))

    unbatched_rps, _ = serve_mode(False)
    batched_rps, batched_p95 = serve_mode(True)
    headlines["serve_unbatched_rps"] = unbatched_rps
    headlines["serve_batched_rps"] = batched_rps
    headlines["serve_batching_speedup"] = batched_rps / max(unbatched_rps, 1e-9)
    headlines["serve_batched_p95_ms"] = batched_p95

    # GP hyperparameter sweep (geometry re-use across the grid).
    gp_points = uniform_cube_points(n_gp, dim=3, seed=2)
    gp_sess = Session(gp_points, policy=ExecutionPolicy(tracer=tracer), seed=SEED)
    gp = gp_sess.gp(kernel, noise=NOISE)
    y = np.sin(gp_points[:, 0] * 5.0)
    start = time.perf_counter()
    gp.fit(y, length_scales=list(GP_LENGTH_SCALES))
    sweep_seconds = time.perf_counter() - start
    headlines["gp_sweep_seconds"] = sweep_seconds
    headlines["gp_seconds_per_point"] = sweep_seconds / max(1, len(gp.fit_reports_))

    if trace_path:
        save_chrome_trace(tracer, trace_path)
        print(console_tree(tracer, min_duration=1e-4))
        print(f"chrome trace written to {trace_path}")
    if metrics_path:
        # The tracer carries its own private registry — export that one, not
        # the process-global default.
        save_openmetrics(metrics_path, registry=tracer.metrics)
        print(f"openmetrics snapshot written to {metrics_path}")

    return {
        "schema": 1,
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            "n": n,
            "n_gp": n_gp,
            "serve_clients": serve_clients,
            "seed": SEED,
            "noise": NOISE,
            "length_scales": list(GP_LENGTH_SCALES),
            "kernel": "exponential(0.2)",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "repro": repro.__version__,
        },
        "headlines": headlines,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True,
                        help="snapshot label, e.g. pr6 (also the file name)")
    parser.add_argument("--out", default=None,
                        help="output path (default benchmarks/history/<label>.json)")
    parser.add_argument("--trace", default=None,
                        help="also write a Chrome trace_event JSON of the run")
    parser.add_argument("--metrics", default=None,
                        help="also write an OpenMetrics text exposition of the "
                             "run's metrics registry")
    args = parser.parse_args(argv)

    out = args.out
    if out is None:
        history = os.path.join(os.path.dirname(os.path.abspath(__file__)), "history")
        os.makedirs(history, exist_ok=True)
        out = os.path.join(history, f"{args.label}.json")

    snapshot = take_snapshot(
        args.label, trace_path=args.trace, metrics_path=args.metrics
    )
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"snapshot {args.label!r} -> {out}")
    for key, value in sorted(snapshot["headlines"].items()):
        print(f"  {key:<34} {value:.6g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 5(b): construction time vs N for the 3D Helmholtz volume-IE matrix.

Same sweep as Fig. 5(a) but for the oscillatory IE kernel (Eq. 9, k = 3); the
baselines are run only at the smallest size (they are strictly dominated and
expensive, as in Fig. 5(a)).
"""

import pytest

from repro.baselines import TopDownPeelingConstructor
from repro.diagnostics import format_series

from common import (
    DEFAULT_TOLERANCE,
    baseline_max_n,
    bench_sizes,
    cached_problem,
    construct_h2,
    measured_error,
)


def run_ie_sweep():
    times = {"ours (vectorized)": {}, "ours (serial)": {}, "top-down peeling": {}}
    samples = {"ours (vectorized)": {}, "top-down peeling": {}}
    errors = {}
    for n in bench_sizes():
        problem = cached_problem("ie", n)
        vec = construct_h2(problem, backend="vectorized")
        ser = construct_h2(problem, backend="serial")
        times["ours (vectorized)"][n] = vec.elapsed_seconds
        times["ours (serial)"][n] = ser.elapsed_seconds
        samples["ours (vectorized)"][n] = vec.total_samples
        errors[n] = measured_error(vec, problem)
        if n <= min(baseline_max_n(), min(bench_sizes())):
            peel = TopDownPeelingConstructor(
                problem.tree,
                problem.fresh_operator(),
                problem.extractor,
                tolerance=DEFAULT_TOLERANCE,
                sample_block_size=64,
                max_rank=512,
                seed=5,
            ).construct()
            times["top-down peeling"][n] = peel.elapsed_seconds
            samples["top-down peeling"][n] = peel.total_samples
    print()
    print(format_series("N", times, title="Fig. 5(b): IE construction time [s] vs N"))
    print()
    print(format_series("N", samples, title="Fig. 5(b): total samples vs N"))
    print()
    print(
        format_series(
            "N", {"relative error": errors}, title="Measured relative error (ours, vectorized)"
        )
    )
    return times, samples, errors


@pytest.mark.benchmark(group="fig5b-ie")
def test_fig5b_ie(benchmark):
    times, samples, errors = benchmark.pedantic(run_ie_sweep, rounds=1, iterations=1)
    assert all(err < 100 * DEFAULT_TOLERANCE for err in errors.values())
    for n, count in samples["top-down peeling"].items():
        assert count > samples["ours (vectorized)"][n]
    assert len(times["ours (vectorized)"]) == len(bench_sizes())

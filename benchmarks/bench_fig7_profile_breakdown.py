"""Fig. 7: breakdown of the construction time by phase on the two backends.

The paper profiles the share of the total construction time spent in sampling,
entry generation, BSR multiplication, the convergence test, the interpolative
decompositions and miscellaneous work, for growing problem sizes on CPU and
GPU.  The reproduction prints the same percentage breakdown for the serial
("CPU") and vectorized ("GPU-batched") backends.
"""

import pytest

from repro.diagnostics import format_table, phase_breakdown
from repro.diagnostics.profiling import PHASE_ORDER

from common import bench_sizes, cached_problem, construct_h2


def run_profile_breakdown():
    rows = []
    breakdowns = {}
    for n in bench_sizes():
        problem = cached_problem("covariance", n)
        for backend in ("serial", "vectorized"):
            result = construct_h2(problem, backend=backend)
            pct = phase_breakdown(result).ordered_percentages()
            breakdowns[(backend, n)] = pct
            rows.append(
                [backend, n, f"{result.elapsed_seconds:.3f}"]
                + [f"{pct.get(phase, 0.0):.1f}" for phase in PHASE_ORDER]
            )
    print()
    print(
        format_table(
            ["backend", "N", "total [s]"] + [f"{p} %" for p in PHASE_ORDER],
            rows,
            title="Fig. 7: construction time breakdown by phase",
        )
    )
    return breakdowns


@pytest.mark.benchmark(group="fig7-profile")
def test_fig7_profile_breakdown(benchmark):
    breakdowns = benchmark.pedantic(run_profile_breakdown, rounds=1, iterations=1)
    for pct in breakdowns.values():
        total = sum(pct.values())
        assert abs(total - 100.0) < 1e-6 or total == 0.0
    # sampling + BSR multiplication dominate, as reported in the paper (Section V-C)
    largest = max(bench_sizes())
    pct = breakdowns[("vectorized", largest)]
    heavy = pct["sampling"] + pct["bsr_gemm"] + pct["entry_generation"]
    assert heavy > pct["id"]

"""Fig. 5(c): recompressing an H2 covariance matrix updated with a rank-32 product.

The paper's third application: the black-box sampler is the fast matvec of an
*existing* H2 matrix plus a rank-32 low-rank product, the entry evaluator
extracts entries from both representations, and Algorithm 1 compresses the sum
into a new H2 matrix.  This benchmark builds the input H2 matrix once per N
(with the same constructor), then measures the update/recompression on the
serial and vectorized backends.
"""

import pytest

from repro import ConstructionConfig, random_low_rank, recompress_h2
from repro.diagnostics import construction_error, format_series
from repro.sketching import H2Operator, LowRankOperator, SumOperator

from common import DEFAULT_TOLERANCE, bench_sizes, cached_problem, construct_h2


def run_lowrank_update_sweep(rank: int = 32):
    times = {"recompression (vectorized)": {}, "recompression (serial)": {}}
    samples = {}
    errors = {}
    for n in bench_sizes():
        problem = cached_problem("covariance", n)
        base = construct_h2(problem, backend="vectorized").matrix
        update = random_low_rank(n, rank, seed=11, symmetric=True, scale=0.5)
        for backend in ("vectorized", "serial"):
            config = ConstructionConfig(
                tolerance=DEFAULT_TOLERANCE, sample_block_size=64, backend=backend
            )
            result = recompress_h2(base, update, config=config, seed=13)
            times[f"recompression ({backend})"][n] = result.elapsed_seconds
            if backend == "vectorized":
                samples[n] = result.total_samples
                reference = SumOperator([H2Operator(base), LowRankOperator(update)])
                errors[n] = construction_error(result.matrix, reference, num_iterations=8, seed=3)
    print()
    print(
        format_series(
            "N",
            times,
            title=f"Fig. 5(c): H2 + rank-{rank} update recompression time [s] vs N",
        )
    )
    print()
    print(
        format_series(
            "N",
            {"total samples": samples, "relative error": errors},
            title="Recompression samples and measured error (vectorized)",
        )
    )
    return times, samples, errors


@pytest.mark.benchmark(group="fig5c-lowrank-update")
def test_fig5c_lowrank_update(benchmark):
    times, samples, errors = benchmark.pedantic(
        run_lowrank_update_sweep, rounds=1, iterations=1
    )
    assert all(err < 100 * DEFAULT_TOLERANCE for err in errors.values())
    # O(1) sample behaviour: the sample count must not grow with N.  Sizes whose
    # partition is fully dense (no admissible blocks at reproduction scale) take
    # no samples at all and are excluded from the ratio.
    counts = [samples[n] for n in sorted(samples) if samples[n] > 0]
    if len(counts) >= 2:
        assert max(counts) <= 4 * min(counts)

"""Serving latency/throughput: micro-batched vs batching-disabled baseline.

The acceptance benchmark of the ``repro.serve`` subsystem: one model of
``N`` points served to ``C`` concurrent clients, each issuing sequential
posterior-solve requests.  The only difference between the two measured
configurations is the ``batching=`` switch — identical registry, identical
factorization (pre-built), identical worker pool size — so the reported
speedup isolates what coalescing concurrent single-vector solves into one
block-RHS launch buys.

Acceptance contract (defaults: N=4096, 64 clients):

* micro-batched throughput >= 3x the batching-disabled baseline;
* every batched answer matches the unbatched direct solve within solver
  tolerance (max relative error is printed and emitted).

Scale with environment variables::

    REPRO_SERVE_BENCH_N        problem size (default 4096)
    REPRO_SERVE_BENCH_CLIENTS  concurrent clients (default 64)
    REPRO_SERVE_BENCH_ROUNDS   sequential requests per client (default 6)
    REPRO_SERVE_SPEEDUP_MIN    speedup bar (default 3.0 — the acceptance
                               target at full scale; relax on scaled-down or
                               noisy-shared-runner configurations)

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

import repro
from repro import ExponentialKernel, uniform_cube_points
from repro.serve import InferenceServer, SolveRequest

from common import emit_bench_json

MODEL = "bench"
NOISE = 1e-2
TOL = 1e-6
SEED = 7
SPEEDUP_TARGET = float(os.environ.get("REPRO_SERVE_SPEEDUP_MIN", "3.0"))


def bench_config() -> tuple[int, int, int]:
    n = int(os.environ.get("REPRO_SERVE_BENCH_N", "4096"))
    clients = int(os.environ.get("REPRO_SERVE_BENCH_CLIENTS", "64"))
    rounds = int(os.environ.get("REPRO_SERVE_BENCH_ROUNDS", "6"))
    return n, clients, rounds


def build_server(operator, *, batching: bool, clients: int) -> InferenceServer:
    server = InferenceServer(batching=batching, max_batch=clients,
                             max_wait_ms=2.0)
    server.register(MODEL, operator, noise=NOISE)
    # Pre-build the factorization so neither mode pays it inside the timing.
    server.registry.get(MODEL).factorization()
    return server


def run_mode(server: InferenceServer, payloads, rounds: int) -> dict:
    """Fire ``rounds`` waves of one concurrent request per payload."""
    latencies_ms: list[float] = []
    responses = []

    async def client(b):
        start = time.perf_counter()
        response = await server.handle(SolveRequest(model=MODEL, b=b))
        latencies_ms.append((time.perf_counter() - start) * 1000.0)
        return response

    async def wave():
        return await asyncio.gather(*[client(b) for b in payloads])

    async def main():
        for _ in range(rounds):
            responses.append(await wave())

    start = time.perf_counter()
    asyncio.run(main())
    elapsed = time.perf_counter() - start
    asyncio.run(server.aclose())

    total = rounds * len(payloads)
    lat = np.asarray(latencies_ms)
    return {
        "requests": total,
        "elapsed_seconds": elapsed,
        "throughput_rps": total / elapsed,
        "latency_p50_ms": float(np.percentile(lat, 50)),
        "latency_p95_ms": float(np.percentile(lat, 95)),
        "latency_p99_ms": float(np.percentile(lat, 99)),
        "mean_batch_size": server.batcher.statistics()["mean_batch_size"],
        "responses": responses,
    }


def main() -> int:
    n, clients, rounds = bench_config()
    print(f"serve latency benchmark: N={n}, {clients} clients, "
          f"{rounds} rounds ({clients * rounds} solves per mode)")

    points = uniform_cube_points(n, dim=3, seed=1)
    operator = repro.compress(
        points, ExponentialKernel(0.2), format="hss", tol=TOL, seed=SEED
    )
    rng = np.random.default_rng(SEED)
    payloads = [rng.standard_normal(n) for _ in range(clients)]

    modes = {}
    for name, batching in (("unbatched", False), ("batched", True)):
        server = build_server(operator, batching=batching, clients=clients)
        modes[name] = run_mode(server, payloads, rounds)
        print(f"  {name:10s} {modes[name]['throughput_rps']:8.1f} req/s   "
              f"p50 {modes[name]['latency_p50_ms']:7.2f} ms   "
              f"p95 {modes[name]['latency_p95_ms']:7.2f} ms   "
              f"p99 {modes[name]['latency_p99_ms']:7.2f} ms   "
              f"mean batch {modes[name]['mean_batch_size']:5.1f}")

    # Correctness: every batched answer must match its unbatched twin within
    # solver tolerance (same payload index, same wave index).
    max_rel_err = 0.0
    for wave_batched, wave_unbatched in zip(
        modes["batched"].pop("responses"), modes["unbatched"].pop("responses")
    ):
        for rb, ru in zip(wave_batched, wave_unbatched):
            denom = max(float(np.linalg.norm(ru.x)), 1e-30)
            max_rel_err = max(
                max_rel_err, float(np.linalg.norm(rb.x - ru.x)) / denom
            )

    speedup = (
        modes["batched"]["throughput_rps"]
        / modes["unbatched"]["throughput_rps"]
    )
    passed = speedup >= SPEEDUP_TARGET and max_rel_err < 1e-8
    print(f"  batching speedup: {speedup:.2f}x "
          f"(target >= {SPEEDUP_TARGET:.0f}x), "
          f"max relative error vs unbatched: {max_rel_err:.2e}")
    print(f"  acceptance: {'PASS' if passed else 'FAIL'}")

    emit_bench_json(
        "serve_latency",
        {
            "n": n,
            "clients": clients,
            "rounds": rounds,
            "unbatched": modes["unbatched"],
            "batched": modes["batched"],
            "speedup": speedup,
            "max_relative_error": max_rel_err,
            "speedup_target": SPEEDUP_TARGET,
            "pass": passed,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

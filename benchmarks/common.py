"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at reproduction
scale (pure NumPy substrate instead of an A100), printing the same rows/series
the paper reports.  Problem sizes default to laptop-friendly values and can be
scaled with environment variables:

``REPRO_BENCH_SIZES``
    Comma-separated list of N values for the Fig. 5/6 sweeps
    (default ``2048,4096,8192``).
``REPRO_BENCH_BASELINE_MAX_N``
    Largest N at which the expensive comparator algorithms (top-down peeling,
    colored-probing H sketch) are run (default ``4096``) — mirroring the paper,
    where the baselines run out of memory/time well before the proposed method.
``REPRO_BENCH_GRIDS``
    Comma-separated grid extents for the frontal-matrix study (default
    ``12,16,20,24``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

import repro
from repro import (
    ClusterTree,
    DenseEntryExtractor,
    DenseOperator,
    ExecutionPolicy,
    ExponentialKernel,
    GeneralAdmissibility,
    HelmholtzKernel,
    Session,
    uniform_cube_points,
)

DEFAULT_TOLERANCE = 1e-6
DEFAULT_LEAF_SIZE = 64
DEFAULT_ETA = 0.7
DEFAULT_SAMPLE_BLOCK = 64


def bench_sizes() -> List[int]:
    """Problem sizes for the N sweeps (Fig. 5 and Fig. 6a)."""
    raw = os.environ.get("REPRO_BENCH_SIZES", "2048,4096,8192")
    return [int(x) for x in raw.split(",") if x.strip()]


def baseline_max_n() -> int:
    return int(os.environ.get("REPRO_BENCH_BASELINE_MAX_N", "4096"))


def bench_grids() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_GRIDS", "12,16,20,24")
    return [int(x) for x in raw.split(",") if x.strip()]


@dataclass
class Problem:
    """A dense test problem: geometry session, matrix, operator, extractor."""

    name: str
    n: int
    session: Session
    dense: np.ndarray
    operator: DenseOperator
    extractor: DenseEntryExtractor

    @property
    def tree(self) -> ClusterTree:
        return self.session.tree

    @property
    def partition(self):
        return self.session.partition

    def fresh_operator(self) -> DenseOperator:
        """A new operator instance so per-run sample statistics start from zero."""
        return DenseOperator(self.dense)


def _make_problem(
    name: str, kernel, n: int, leaf_size: int, eta: float, seed: int
) -> Problem:
    """Shared harness setup: geometry via the facade, dense reference matrix."""
    points = uniform_cube_points(n, dim=3, seed=seed)
    session = Session(
        points,
        leaf_size=leaf_size,
        admissibility=GeneralAdmissibility(eta=eta),
        distance_cache="none",
    )
    dense = kernel.matrix(session.tree.points)
    return Problem(
        name=name,
        n=n,
        session=session,
        dense=dense,
        operator=DenseOperator(dense),
        extractor=DenseEntryExtractor(dense),
    )


def make_covariance_problem(
    n: int,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    eta: float = DEFAULT_ETA,
    seed: int = 1,
    length_scale: float = 0.2,
) -> Problem:
    """3D exponential-covariance problem of Section V-A (Eq. 8)."""
    return _make_problem(
        "covariance", ExponentialKernel(length_scale), n, leaf_size, eta, seed
    )


def make_ie_problem(
    n: int,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    eta: float = DEFAULT_ETA,
    seed: int = 2,
    wavenumber: float = 3.0,
) -> Problem:
    """3D Helmholtz volume-IE problem of Section V-A (Eq. 9)."""
    return _make_problem(
        "ie",
        HelmholtzKernel(wavenumber=wavenumber, diagonal_value=0.0),
        n,
        leaf_size,
        eta,
        seed,
    )


def construct_h2(
    problem: Problem,
    backend: str = "vectorized",
    tolerance: float = DEFAULT_TOLERANCE,
    sample_block_size: int = DEFAULT_SAMPLE_BLOCK,
    adaptive: bool = True,
    initial_samples: int | None = None,
    seed: int = 7,
):
    """Run the bottom-up constructor on a benchmark problem (facade path)."""
    return repro.compress(
        partition=problem.partition,
        operator=problem.fresh_operator(),
        extractor=problem.extractor,
        tol=tolerance,
        sample_block_size=sample_block_size,
        adaptive=adaptive,
        initial_samples=initial_samples,
        seed=seed,
        policy=ExecutionPolicy(backend=backend),
        full_result=True,
    )


def measured_error(result, problem: Problem) -> float:
    """Relative spectral-norm error against the dense reference (power method)."""
    from repro.diagnostics import construction_error

    return construction_error(result.matrix, problem.fresh_operator(), num_iterations=8, seed=3)


def speedup_table(times: Dict[str, float]) -> Dict[str, float]:
    """Speedups of every entry relative to the slowest entry."""
    worst = max(times.values())
    return {name: worst / value if value > 0 else float("inf") for name, value in times.items()}


def emit_bench_json(name: str, records: object) -> None:
    """Print one machine-readable ``BENCH_JSON`` line for a benchmark's results.

    The standard benchmark interchange format of this repository: a single
    line ``BENCH_JSON {"bench": <name>, "records": <records>}`` that harness
    scripts can grep out of the human-readable table output.
    """
    print("BENCH_JSON " + json.dumps({"bench": name, "records": records}, default=float))


_PROBLEM_CACHE: Dict[tuple, Problem] = {}


def cached_problem(kind: str, n: int, **kwargs) -> Problem:
    """Memoise dense problem construction across benchmarks within one session."""
    key = (kind, n, tuple(sorted(kwargs.items())))
    if key not in _PROBLEM_CACHE:
        factory = make_covariance_problem if kind == "covariance" else make_ie_problem
        _PROBLEM_CACHE[key] = factory(n, **kwargs)
    return _PROBLEM_CACHE[key]

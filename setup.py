"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` works in fully offline environments where
the ``wheel`` package (needed by the PEP 517 editable path) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()

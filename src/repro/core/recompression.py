"""Recompression of an existing H2 matrix, optionally with a low-rank update.

The third application in the paper updates an existing H2 representation of a
covariance matrix with an additional rank-32 low-rank product and compresses
the sum into a new H2 matrix — the operation at the heart of hierarchical LU
factorization and multifrontal Schur-complement updates.  The black-box
sampler is the fast H2 matvec plus the low-rank matvec; the entry evaluator
extracts entries from the H2 and low-rank representations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hmatrix.h2matrix import H2Matrix
from ..linalg.low_rank import LowRankMatrix
from ..sketching.entry_extractor import (
    H2EntryExtractor,
    LowRankEntryExtractor,
    SumEntryExtractor,
)
from ..sketching.operators import H2Operator, LowRankOperator, SumOperator
from ..tree.block_partition import BlockPartition
from ..utils.rng import SeedLike
from .builder import ConstructionResult, H2Constructor
from .config import ConstructionConfig


def recompress_h2(
    h2: H2Matrix,
    low_rank_update: Optional[LowRankMatrix] = None,
    config: ConstructionConfig | None = None,
    partition: BlockPartition | None = None,
    seed: SeedLike = None,
) -> ConstructionResult:
    """Compress ``h2 (+ low_rank_update)`` into a fresh H2 matrix via Algorithm 1.

    Parameters
    ----------
    h2:
        The existing H2 matrix (acts as the fast black-box sampler and as part
        of the entry evaluator).
    low_rank_update:
        Optional explicit low-rank update ``U V^T`` (given in the cluster-tree
        permuted ordering) added to ``h2`` before recompression.  The paper's
        experiments use a random rank-32 update.
    config:
        Construction configuration; defaults to :class:`ConstructionConfig`.
    partition:
        Block partition of the output matrix.  Defaults to the partition of
        the input matrix (the common case for low-rank updates, where the
        geometry does not change).
    seed:
        Seed or generator for the sketching vectors.

    Returns
    -------
    ConstructionResult
        The construction result whose ``matrix`` approximates
        ``h2 + low_rank_update``.
    """
    target_partition = partition if partition is not None else h2.partition
    if target_partition.tree.num_points != h2.num_rows:
        raise ValueError("partition dimension does not match the input H2 matrix")

    operators = [H2Operator(h2)]
    extractors = [H2EntryExtractor(h2)]
    if low_rank_update is not None:
        if low_rank_update.shape != (h2.num_rows, h2.num_rows):
            raise ValueError(
                "low-rank update must be square with the same dimension as the H2 matrix"
            )
        operators.append(LowRankOperator(low_rank_update))
        extractors.append(LowRankEntryExtractor(low_rank_update))

    operator = operators[0] if len(operators) == 1 else SumOperator(operators)
    extractor = extractors[0] if len(extractors) == 1 else SumEntryExtractor(extractors)

    constructor = H2Constructor(
        target_partition, operator, extractor, config=config, seed=seed
    )
    return constructor.construct()


def low_rank_update_reference_matvec(
    h2: H2Matrix, low_rank_update: Optional[LowRankMatrix]
):
    """Reference (permuted-ordering) matvec of ``h2 + low_rank_update`` for validation."""

    def matvec(x: np.ndarray) -> np.ndarray:
        y = h2.matvec(x, permuted=True)
        if low_rank_update is not None:
            y = y + low_rank_update.matvec(x)
        return y

    return matvec

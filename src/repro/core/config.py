"""Configuration of the bottom-up sketching construction (Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..batched.backend import BatchedBackend


@dataclass
class ConstructionConfig:
    """Parameters of :class:`repro.core.builder.H2Constructor`.

    Attributes
    ----------
    tolerance:
        Relative compression tolerance ``eps``; both the adaptive convergence
        test and the interpolative-decomposition truncation derive their
        thresholds from it.
    sample_block_size:
        The sample block size ``d``: number of new random vectors drawn per
        adaptive sampling round (Table II studies 32 vs leaf-size blocks).
    initial_samples:
        Number of random vectors of the very first sketch; defaults to
        ``sample_block_size``.  The paper's fixed-sample experiments use 256.
    adaptive:
        When ``True`` (default) nodes are tested for convergence after every
        sampling round and additional sample blocks are drawn until every node
        of the level converges (Section III-B); when ``False`` the
        fixed-sample variant of Section III-A is used with ``initial_samples``
        vectors.
    max_samples:
        Upper bound on the total number of sample vectors (defaults to the
        matrix dimension).  Reaching the bound stops adaptivity and flags the
        result as not fully converged.
    max_rank:
        Optional hard cap on per-node ranks.
    id_tolerance_mode:
        ``"relative"`` truncates each node's ID relative to its own largest
        pivot; ``"absolute"`` uses ``tolerance`` times the estimated matrix
        norm as an absolute pivot threshold (the paper's global-threshold
        variant).
    backend:
        Batched execution backend: a name from the :mod:`repro.backends`
        registry (``"serial"`` — CPU reference; ``"vectorized"`` —
        shape-grouped batched execution, the GPU analogue; plus anything
        registered via :func:`repro.backends.register`) or an existing
        :class:`~repro.batched.backend.BatchedBackend` instance.  The
        default ``"auto"`` follows the ``REPRO_BACKEND`` environment
        variable, falling back to ``"vectorized"`` — use an
        :class:`~repro.api.policy.ExecutionPolicy` to set backend and
        construction path together.
    norm_estimation_iterations:
        Power-method iterations used to estimate the matrix norm that converts
        the relative tolerance into absolute thresholds.
    norm_estimate:
        Optional known estimate of ``||K||_2``.  When given, the power-method
        estimation (several black-box operator applications) is skipped and the
        adaptive convergence / absolute-ID thresholds are derived from this
        value instead — the sweep-reuse path of
        :class:`~repro.core.context.GeometryContext` feeds the previous
        construction's estimate back in when the operator is expensive.
    convergence_safety_factor:
        Multiplies the absolute convergence threshold; values below 1 make the
        adaptive test stricter (more samples, better accuracy).
    construction_path:
        Which construction sweep executes: ``"packed"`` runs the compiled
        level-wise batched engine (:mod:`repro.batched.construction_plan`),
        ``"loop"`` the per-node reference sweep (the analogue of
        ``H2Matrix.matvec_loop`` on the apply side), and ``"auto"`` (default)
        follows the ``REPRO_CONSTRUCT_PATH`` environment variable, falling
        back to ``"packed"``.
    """

    tolerance: float = 1e-6
    sample_block_size: int = 64
    initial_samples: int | None = None
    adaptive: bool = True
    max_samples: int | None = None
    max_rank: int | None = None
    id_tolerance_mode: str = "relative"
    backend: Union[str, BatchedBackend] = "auto"
    norm_estimation_iterations: int = 6
    norm_estimate: float | None = None
    convergence_safety_factor: float = 1.0
    construction_path: str = "auto"

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.sample_block_size <= 0:
            raise ValueError("sample_block_size must be positive")
        if self.initial_samples is not None and self.initial_samples <= 0:
            raise ValueError("initial_samples must be positive when given")
        if self.id_tolerance_mode not in ("relative", "absolute"):
            raise ValueError("id_tolerance_mode must be 'relative' or 'absolute'")
        if self.norm_estimate is not None and self.norm_estimate <= 0:
            raise ValueError("norm_estimate must be positive when given")
        if self.convergence_safety_factor <= 0:
            raise ValueError("convergence_safety_factor must be positive")
        if self.construction_path not in ("auto", "packed", "loop"):
            raise ValueError("construction_path must be 'auto', 'packed' or 'loop'")

    @property
    def effective_initial_samples(self) -> int:
        return self.initial_samples if self.initial_samples is not None else self.sample_block_size

    def fixed_sample(self, num_samples: int) -> "ConstructionConfig":
        """Return a copy configured for the fixed-sample variant with ``num_samples``."""
        from dataclasses import replace

        return replace(self, adaptive=False, initial_samples=num_samples)

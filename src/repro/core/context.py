"""Geometry-reuse construction context for hyperparameter sweeps.

A Gaussian-process log-likelihood optimization (or any kernel hyperparameter
sweep) re-constructs the hierarchical representation of ``K(theta)`` at many
parameter points over the *same* point set.  Almost everything the constructor
touches is independent of ``theta``:

* the cluster tree and block partition (pure geometry),
* the pairwise distances every radial kernel is evaluated on,
* the random sketching vectors ``Omega`` (the sample pattern),
* the number of samples the adaptive construction ends up needing
  (ranks move slowly with the kernel parameters), and
* the compiled apply-plan skeleton (positions, paddings, stage grouping),
  whenever the re-construction reproduces the same per-node ranks.

:class:`GeometryContext` caches all of it once and hands
:meth:`construct` out per parameter point, so re-construction costs little
more than the unavoidable kernel-value work: sweeping three length scales is
close to the cost of one cold construction plus two "evaluate + re-stack"
passes rather than three full cold runs.

Two cache policies are provided.  With the dense distance cache (the default
whenever it fits the byte budget) the permuted distance matrix is stored once
and each parameter point evaluates the kernel profile on it in one vectorised
pass; the sketching operator then runs on the resulting dense array, i.e.
every black-box application is a GEMM.  Beyond the budget the context falls
back to a block-level distance cache covering the (fixed) inadmissible leaf
blocks while the sketching operator evaluates kernel rows on the fly.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..batched.backend import BatchedBackend, get_backend
from ..kernels.base import (
    KernelFunction,
    PairwiseKernel,
    pairwise_distances,
    pairwise_distances_stacked,
)
from ..sketching.entry_extractor import (
    DenseEntryExtractor,
    EntryExtractor,
    KernelEntryExtractor,
)
from ..sketching.operators import DenseOperator, KernelMatVecOperator, SketchingOperator
from ..tree.admissibility import WeakAdmissibility
from ..tree.block_partition import BlockPartition, build_block_partition
from ..tree.cluster_tree import ClusterTree
from ..utils.rng import SeedLike, as_generator
from .builder import ConstructionResult, H2Constructor
from .config import ConstructionConfig


class _OmegaBank:
    """Lazily grown bank of frozen standard-normal sample columns.

    Every construction of a sweep draws its sample blocks as consecutive
    column slices starting from column zero, so two constructions that need
    the same number of samples sketch with *identical* random vectors — the
    sample pattern becomes part of the cached geometry.
    """

    def __init__(self, n: int, rng: np.random.Generator):
        self.n = int(n)
        self._rng = rng
        self._data = np.empty((self.n, 0), dtype=np.float64)

    @property
    def num_columns(self) -> int:
        return int(self._data.shape[1])

    def columns(self, start: int, stop: int) -> np.ndarray:
        if stop > self._data.shape[1]:
            grow_to = max(stop, 2 * self._data.shape[1], 64)
            fresh = self._rng.standard_normal((self.n, grow_to - self._data.shape[1]))
            self._data = np.hstack([self._data, fresh])
        return self._data[:, start:stop]

    def sampler(self) -> "_BankSampler":
        """A draw callable replaying the bank from its first column.

        The returned :class:`_BankSampler` supports ``reset()``, which the
        constructor's recovery guards call before a retry so the relaunched
        construction sketches with exactly the vectors of the first attempt.
        """
        return _BankSampler(self)


class _BankSampler:
    """Resettable cursor over an :class:`_OmegaBank` (callable ``count -> block``)."""

    def __init__(self, bank: _OmegaBank):
        self._bank = bank
        self._cursor = 0

    def __call__(self, count: int) -> np.ndarray:
        block = self._bank.columns(self._cursor, self._cursor + count)
        self._cursor += count
        return block

    def reset(self) -> None:
        """Rewind to the first column (recovery retries replay the bank)."""
        self._cursor = 0


class BlockDistanceCachingExtractor(EntryExtractor):
    """Entry extractor caching distance sub-blocks of contiguous index ranges.

    The dense (inadmissible leaf) blocks requested by the constructor are
    contiguous ``[start, end)`` ranges fixed by the geometry, so their distance
    blocks can be computed once per sweep and only the (cheap) radial profile
    re-evaluated per parameter point.  Non-contiguous requests (coupling
    blocks at parameter-dependent skeleton indices) are evaluated directly.
    """

    def __init__(
        self,
        kernel: PairwiseKernel,
        points: np.ndarray,
        cache: Dict[Tuple[int, int, int, int], np.ndarray],
        cache_limit_bytes: int,
    ):
        super().__init__()
        self.kernel = kernel
        self.points = np.asarray(points, dtype=np.float64)
        self._cache = cache
        self._limit = int(cache_limit_bytes)

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    @staticmethod
    def _is_contiguous(indices: np.ndarray) -> bool:
        """Exactly ``arange(start, stop)`` — gapped or permuted sets must miss.

        Skeleton-index requests carry unsorted pivot orders whose span can
        coincidentally equal their size; keying those as ranges would poison
        the cache with reordered blocks.
        """
        return bool(
            indices.size
            and int(indices[-1]) - int(indices[0]) + 1 == indices.size
            and np.array_equal(
                indices, np.arange(int(indices[0]), int(indices[-1]) + 1)
            )
        )

    @classmethod
    def _range_key(cls, rows: np.ndarray, cols: np.ndarray):
        if cls._is_contiguous(rows) and cls._is_contiguous(cols):
            return (int(rows[0]), int(rows[-1]), int(cols[0]), int(cols[-1]))
        return None

    def _cached_bytes(self) -> int:
        return sum(block.nbytes for block in self._cache.values())

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        key = self._range_key(rows, cols)
        if key is None:
            return self.kernel.evaluate(self.points[rows], self.points[cols])
        r = self._cache.get(key)
        if r is None:
            r = pairwise_distances(self.points[rows], self.points[cols])
            if self._cached_bytes() + r.nbytes <= self._limit:
                self._cache[key] = r
        return self.kernel.profile_with_diagonal(r)

    #: Stacked batches keep the batched entry generation of the compiled
    #: construction sweep: cached distance blocks are gathered, the misses
    #: evaluated with one batched distance pass, and the radial profile runs
    #: once over the whole stack.
    supports_stacked = True

    def _extract_stacked(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        g, p = rows.shape
        q = cols.shape[1]
        r = np.empty((g, p, q), dtype=np.float64)
        missing = []
        for i in range(g):
            key = self._range_key(rows[i], cols[i])
            block = self._cache.get(key) if key is not None else None
            if block is None:
                missing.append(i)
            else:
                r[i] = block
        if missing:
            idx = np.asarray(missing, dtype=np.int64)
            fresh = pairwise_distances_stacked(
                self.points[rows[idx]], self.points[cols[idx]]
            )
            r[idx] = fresh
            for pos, i in enumerate(missing):
                key = self._range_key(rows[i], cols[i])
                if key is not None and (
                    self._cached_bytes() + fresh[pos].nbytes <= self._limit
                ):
                    self._cache[key] = np.ascontiguousarray(fresh[pos])
        return self.kernel.profile_with_diagonal(r)


@dataclass
class ContextStatistics:
    """Reuse counters of a :class:`GeometryContext` (sweep diagnostics)."""

    constructions: int = 0
    plan_compilations: int = 0
    plan_reuses: int = 0
    result_cache_hits: int = 0
    artifact_cache_hits: int = 0
    sample_columns_cached: int = 0
    construction_plan_compilations: int = 0
    setup_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "constructions": self.constructions,
            "plan_compilations": self.plan_compilations,
            "plan_reuses": self.plan_reuses,
            "result_cache_hits": self.result_cache_hits,
            "artifact_cache_hits": self.artifact_cache_hits,
            "sample_columns_cached": self.sample_columns_cached,
            "construction_plan_compilations": self.construction_plan_compilations,
            "setup_seconds": self.setup_seconds,
        }


class GeometryContext:
    """Caches every kernel-parameter-independent ingredient of H2 construction.

    Parameters
    ----------
    points:
        ``(n, dim)`` point coordinates (original ordering).
    leaf_size:
        Cluster-tree leaf size.
    admissibility:
        Block-partition admissibility; defaults to
        :class:`~repro.tree.admissibility.WeakAdmissibility` (the HSS/HODLR
        partition every downstream factorization consumes — pass a
        :class:`~repro.tree.admissibility.GeneralAdmissibility` for general
        H2 sweeps).
    backend:
        Batched backend name (``"serial"``/``"vectorized"``) or instance,
        used for both construction and the compiled apply plans of the
        produced matrices.  Resolved to one instance at context creation, so
        a single :class:`~repro.batched.counters.KernelLaunchCounter` spans
        everything the context executes.
    tracer:
        Optional :class:`repro.observe.SpanTracer`; when given (usually by
        :class:`repro.api.Session` from its policy) it is installed on the
        resolved backend and every construction/apply/solve under this
        context records spans.
    distance_cache:
        ``"dense"`` stores the full permuted distance matrix (fastest),
        ``"blocks"`` caches per-block distances of the inadmissible leaf
        blocks only, ``"none"`` disables distance caching, and ``"auto"``
        (default) picks ``"dense"`` when two ``n x n`` float64 buffers fit in
        ``cache_limit_mb`` and ``"blocks"`` otherwise.
    cache_limit_mb:
        Byte budget of the distance cache.
    seed:
        Seed of the frozen sample bank (and of the norm-estimation probes).
    construction_path:
        Which construction sweep the context's default configs use
        (``"packed"``/``"loop"``/``"auto"``; see
        :class:`~repro.core.config.ConstructionConfig`).  An
        :class:`~repro.api.policy.ExecutionPolicy` threads its path choice
        through here.
    artifact_cache:
        Optional :class:`~repro.persist.cache.ArtifactCache`.  When given,
        :meth:`construct` consults it before constructing (the key covers
        points, kernel identity, tolerance, leaf size, admissibility,
        sample block size and seed) and stores every freshly constructed
        operator.  Requires an integer (or ``None``) ``seed`` — with a live
        ``Generator`` the sample bank is not reproducible, so artifact
        caching is silently disabled.
    """

    def __init__(
        self,
        points: np.ndarray,
        leaf_size: int = 64,
        admissibility: object | None = None,
        backend: str | BatchedBackend = "vectorized",
        distance_cache: str = "auto",
        cache_limit_mb: float = 600.0,
        seed: SeedLike = 0,
        construction_path: str = "auto",
        tracer: object | None = None,
        artifact_cache: object | None = None,
    ):
        start = time.perf_counter()
        # One backend instance (hence one launch counter) for the lifetime of
        # the context: constructions and the compiled applies of every matrix
        # it produces all account to the same place.  Resolving here fixes
        # the historical stray path that created a fresh backend (with a
        # fresh counter) per construction whenever ``backend`` was a name.
        self.backend: BatchedBackend = get_backend(backend)
        if tracer is not None:
            self.tracer = tracer
            if tracer.enabled:
                tracer.bind_counter(self.backend.counter)
                self.backend.tracer = tracer
        else:
            self.tracer = getattr(self.backend, "tracer", None)
        self.construction_path = construction_path
        # Artifact caching needs a reproducible construction: only integer
        # (or None) seeds key deterministically, a live Generator does not.
        seed_is_hashable = seed is None or isinstance(seed, (int, np.integer))
        self.artifact_cache = artifact_cache if seed_is_hashable else None
        self._artifact_seed = int(seed) if isinstance(seed, (int, np.integer)) else None
        self._artifact_points: Optional[np.ndarray] = (
            np.ascontiguousarray(np.atleast_2d(np.asarray(points, dtype=np.float64)))
            if self.artifact_cache is not None
            else None
        )
        rng = as_generator(seed)

        self.tree: ClusterTree = ClusterTree.build(points, leaf_size=leaf_size)
        self.partition: BlockPartition = build_block_partition(
            self.tree, admissibility if admissibility is not None else WeakAdmissibility()
        )
        n = self.tree.num_points

        limit_bytes = int(cache_limit_mb * 2**20)
        if distance_cache == "auto":
            distance_cache = "dense" if 2 * n * n * 8 <= limit_bytes else "blocks"
        if distance_cache not in ("dense", "blocks", "none"):
            raise ValueError(
                "distance_cache must be 'auto', 'dense', 'blocks' or 'none'"
            )
        self.distance_cache = distance_cache
        self._cache_limit_bytes = limit_bytes
        self._distances: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._block_cache: Dict[Tuple[int, int, int, int], np.ndarray] = {}
        if distance_cache == "dense":
            self._distances = pairwise_distances(self.tree.points, self.tree.points)

        self._omega_bank = _OmegaBank(n, rng)
        self._norm_seed = int(rng.integers(0, 2**31 - 1))
        self._warm_samples: Optional[int] = None
        self._last_norm_estimate: Optional[float] = None
        self._plan = None
        #: Static packing of the compiled construction sweep (pure geometry);
        #: compiled lazily on the first construction, shared by all of them.
        self._construction_plan = None
        self._last_kernel: Optional[KernelFunction] = None
        self._last_key: Optional[Tuple[float, int]] = None
        self._last_result: Optional[ConstructionResult] = None
        self.statistics = ContextStatistics(
            setup_seconds=time.perf_counter() - start
        )

    # ----------------------------------------------------------------- binding
    @property
    def num_points(self) -> int:
        return self.tree.num_points

    def bind(self, kernel: KernelFunction) -> Tuple[SketchingOperator, EntryExtractor]:
        """Operator/extractor pair evaluating ``kernel`` over the cached geometry.

        With the dense distance cache the kernel values are materialised once
        per parameter point (one vectorised profile evaluation over the cached
        distances), so every subsequent black-box application is a plain GEMM;
        otherwise kernel rows are generated on the fly with per-block distance
        caching.
        """
        if self._distances is not None:
            if isinstance(kernel, PairwiseKernel):
                values = kernel.profile_with_diagonal(self._distances)
            else:
                values = kernel.evaluate(self.tree.points, self.tree.points)
            # profile/evaluate already allocated a fresh contiguous array;
            # adopt it instead of copying into a persistent buffer.
            self._values = np.ascontiguousarray(
                np.asarray(values, dtype=np.float64)
            )
            return DenseOperator(self._values), DenseEntryExtractor(self._values)
        operator = KernelMatVecOperator(kernel, self.tree.points)
        if self.distance_cache == "blocks" and isinstance(kernel, PairwiseKernel):
            extractor: EntryExtractor = BlockDistanceCachingExtractor(
                kernel, self.tree.points, self._block_cache, self._cache_limit_bytes
            )
        else:
            extractor = KernelEntryExtractor(kernel, self.tree.points)
        return operator, extractor

    # ------------------------------------------------------------ construction
    def construct(
        self,
        kernel: KernelFunction,
        tolerance: float = 1e-6,
        sample_block_size: int = 64,
        config: ConstructionConfig | None = None,
        warm_start: bool = True,
        reuse_norm_estimate: bool = False,
        reuse_plan: bool = True,
    ) -> ConstructionResult:
        """Construct the H2 representation of ``K(kernel)`` over the cached geometry.

        Parameters beyond the kernel mirror
        :class:`~repro.core.config.ConstructionConfig` (or pass ``config``
        directly).  ``warm_start`` seeds the initial sketch with the largest
        sample count any previous construction of this context needed, so the
        adaptive loop typically converges in its first round;
        ``reuse_norm_estimate`` recycles the previous construction's norm
        estimate (skipping the power-method probes — useful when the operator
        has no cached dense values); ``reuse_plan`` re-stacks the previous
        compiled apply plan in place when the new matrix reproduces the same
        structure.

        Repeating the *identical* ``(kernel, tolerance, sample_block_size)``
        point (the inner loop of a noise/nugget sweep, where the compressed
        ``K`` does not change at all) returns the previously constructed
        result without re-running the constructor.
        """
        cacheable = config is None
        if (
            cacheable
            and self._last_result is not None
            and self._last_key == (float(tolerance), int(sample_block_size))
            and type(kernel) is type(self._last_kernel)
            and kernel == self._last_kernel
        ):
            self.statistics.result_cache_hits += 1
            return self._last_result

        artifact_key = None
        if (
            cacheable
            and self.artifact_cache is not None
            and isinstance(kernel, KernelFunction)
        ):
            from ..persist.format import ArtifactError

            try:
                artifact_key = self.artifact_cache.key(
                    self._artifact_points,
                    kernel,
                    tol=tolerance,
                    format="h2",
                    leaf_size=self.tree.leaf_size,
                    admissibility=self.partition.admissibility,
                    seed=self._artifact_seed,
                    extra={"sample_block_size": int(sample_block_size)},
                )
            except ArtifactError:
                # Unhashable request (custom admissibility, ...): construct.
                artifact_key = None
            else:
                from ..api.facade import _cache_integrity_kwargs

                load_start = time.perf_counter()
                matrix = self.artifact_cache.get(
                    artifact_key, tracer=self.tracer,
                    **_cache_integrity_kwargs(
                        getattr(self.backend, "recovery", None)
                    ),
                )
                if matrix is not None:
                    elapsed = time.perf_counter() - load_start
                    matrix.apply_backend = self.backend
                    result = ConstructionResult(
                        matrix=matrix,
                        config=ConstructionConfig(
                            tolerance=tolerance,
                            sample_block_size=sample_block_size,
                            backend=self.backend,
                            construction_path=self.construction_path,
                        ),
                        total_samples=0,
                        operator_applications=0,
                        entries_evaluated=0,
                        elapsed_seconds=elapsed,
                        phase_seconds={"load": elapsed},
                        kernel_launches={},
                        total_kernel_launches=0,
                        kernel_calls={},
                        total_kernel_calls=0,
                        norm_estimate=0.0,
                        converged=True,
                        construction_path="cache",
                    )
                    self.statistics.artifact_cache_hits += 1
                    self._last_kernel = copy.deepcopy(kernel)
                    self._last_key = (float(tolerance), int(sample_block_size))
                    self._last_result = result
                    return result

        if config is None:
            config = ConstructionConfig(
                tolerance=tolerance,
                sample_block_size=sample_block_size,
                backend=self.backend,
                construction_path=self.construction_path,
            )
        if warm_start and self._warm_samples is not None:
            initial = max(config.effective_initial_samples, self._warm_samples)
            config = replace(config, initial_samples=min(initial, self.num_points))
        if reuse_norm_estimate and (
            config.norm_estimate is None and self._last_norm_estimate
        ):
            config = replace(config, norm_estimate=self._last_norm_estimate)

        operator, extractor = self.bind(kernel)
        constructor = H2Constructor(
            self.partition,
            operator,
            extractor,
            config=config,
            seed=self._norm_seed,
            sample_source=self._omega_bank.sampler(),
            plan=self._construction_plan,
            tracer=self.tracer,
        )
        result = constructor.construct()
        if self._construction_plan is None and constructor.plan is not None:
            # The packed sweep compiled the static geometry packing; keep it
            # for every subsequent construction of this sweep.
            self._construction_plan = constructor.plan
            self.statistics.construction_plan_compilations += 1

        self._warm_samples = max(self._warm_samples or 0, result.total_samples)
        if result.norm_estimate:
            self._last_norm_estimate = float(result.norm_estimate)
        self.statistics.constructions += 1
        self.statistics.sample_columns_cached = self._omega_bank.num_columns

        matrix = result.matrix
        matrix.apply_backend = self.backend
        if reuse_plan and self._plan is not None and self._plan.matches(matrix):
            matrix.reuse_plan(self._plan)
            self.statistics.plan_reuses += 1
        else:
            self._plan = matrix.apply_plan()
            self.statistics.plan_compilations += 1
        if cacheable:
            # Snapshot the kernel: a caller mutating a (mutable dataclass)
            # kernel in place must miss the cache, not hit its own reference.
            self._last_kernel = copy.deepcopy(kernel)
            self._last_key = (float(tolerance), int(sample_block_size))
            self._last_result = result
        if artifact_key is not None:
            self.artifact_cache.put(artifact_key, result.matrix)
            faults = getattr(self.backend, "faults", None)
            if faults is not None:
                faults.corrupt_artifact(self.artifact_cache.path_for(artifact_key))
        return result

    # ------------------------------------------------------------- diagnostics
    def memory_bytes(self) -> int:
        """Bytes held by the cached distances/values/sample bank."""
        total = self._omega_bank._data.nbytes
        if self._distances is not None:
            total += self._distances.nbytes
        if self._values is not None:
            total += self._values.nbytes
        total += sum(block.nbytes for block in self._block_cache.values())
        return int(total)

    def describe(self) -> str:
        stats = self.statistics
        return (
            f"GeometryContext(n={self.num_points}, depth={self.tree.depth}, "
            f"cache={self.distance_cache}, constructions={stats.constructions}, "
            f"plan_reuses={stats.plan_reuses}, "
            f"memory_mb={self.memory_bytes() / 2**20:.1f})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return self.describe()

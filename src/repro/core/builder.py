"""Bottom-up adaptive sketching construction of H2 matrices (Algorithm 1).

The constructor takes a block partition (cluster tree + admissibility), a
black-box sketching operator ``Kblk`` and an entry-evaluation function, and
produces an :class:`~repro.hmatrix.h2matrix.H2Matrix`.  Processing proceeds
level by level from the leaves upward; every step over the nodes of a level is
expressed through the batched primitives of :mod:`repro.batched`
(``batchedRand`` / ``batchedGen`` / ``batchedBSRGemm`` / ``batchedQR`` /
``batchedID`` / ``batchedGemm`` / ``batchedShrink`` in the paper's
annotations), so the same code runs on the serial ("CPU") and the vectorized
shape-grouped ("GPU") backend.

Outline (symmetric matrix, permuted ordering):

* draw ``Omega`` and sketch ``Y = Kblk(Omega)``;
* **leaf level** — evaluate the dense neighbour blocks ``D``, subtract their
  contribution from the sketch (non-uniform BSR product), adaptively add
  sample blocks until every leaf's local sketch is numerically rank deficient,
  run a batched row ID to obtain the leaf bases ``U`` and skeleton indices,
  restrict the sketch to the skeleton rows and project the random inputs;
* **inner levels** — merge the children's skeletonised sketches, subtract the
  contribution of the children's coupling blocks, adapt/ID as above to obtain
  the transfer matrices ``E`` and the level's skeletons;
* at every level evaluate the coupling blocks ``B`` at the skeleton indices.

Adaptive sampling follows Section III-B: freshly drawn sample blocks are swept
from the leaves up to the current level by replaying the already-computed
skeletonizations (``updateSamples``).

Two execution paths implement the same sweep:

* the **packed path** (default) compiles the level-wise sweep through
  :mod:`repro.batched.construction_plan` — every level's sample state lives in
  zero-padded contiguous stacks, sketch accumulation and child gathers run as
  a handful of ``batched_gemm_scatter`` / gather launches, and adaptive
  sampling rounds write only the *new* columns into preallocated workspace
  buffers (O(levels) launches per round);
* the **reference loop** (``construct_loop``, selectable via
  ``ConstructionConfig.construction_path`` or ``REPRO_CONSTRUCT_PATH=loop``)
  keeps the original per-node schedule, exactly like ``matvec_loop`` on the
  apply side.

Both paths share every numerical decision (sample schedule, convergence
tests, ID tolerances), so they produce identical skeleton selections at a
fixed seed.  One benign exception: for a node with *no* admissible
interactions anywhere (its sketched samples are pure cancellation), the
packed path's fused block-row GEMM leaves an exactly-zero sample block and
the ID correctly assigns rank 0, while the loop's per-node accumulation
leaves ~1e-13 roundoff that a relative ID tolerance inflates to full rank —
the resulting matrices are identical (no coupling references such a node),
the packed basis is just smaller.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..batched.backend import BatchedBackend, get_backend
from ..batched.bsr import BlockSparseRowMatrix
from ..batched.construction_plan import ConstructionPlan, PackedSweepEngine
from ..batched.counters import KernelLaunchCounter
from ..hmatrix.basis_tree import BasisTree
from ..hmatrix.h2matrix import H2Matrix
from ..sketching.entry_extractor import EntryExtractor
from ..sketching.operators import SketchingOperator
from ..tree.block_partition import BlockPartition
from ..observe.metrics import metrics as _metrics
from ..observe.tracer import NOOP_TRACER
from ..resilience.errors import (
    ConstructionFaultError,
    MemoryBudgetError,
    RankSaturationError,
    ResilienceError,
    SampleCorruptionError,
)
from ..resilience.policy import resilience_adapter
from ..utils.rng import SeedLike, as_generator
from ..utils.timing import PhaseTimer
from .config import ConstructionConfig
from .convergence import ConvergenceTester
from .skeleton_store import NodeSkeleton, SkeletonStore


@dataclass
class LevelReport:
    """Per-level construction statistics."""

    depth: int
    num_nodes: int
    samples_used: int
    sampling_rounds: int
    max_rank: int
    min_rank: int
    converged: bool


@dataclass
class ConstructionResult:
    """Outcome of a construction: the H2 matrix plus performance metadata."""

    matrix: H2Matrix
    config: ConstructionConfig
    total_samples: int
    operator_applications: int
    entries_evaluated: int
    elapsed_seconds: float
    phase_seconds: Dict[str, float]
    kernel_launches: Dict[str, int]
    total_kernel_launches: int
    kernel_calls: Dict[str, int]
    total_kernel_calls: int
    norm_estimate: float
    converged: bool
    levels: List[LevelReport] = field(default_factory=list)
    #: Which sweep produced the matrix: ``"packed"`` (compiled) or ``"loop"``.
    construction_path: str = "packed"
    #: Root :class:`repro.observe.Span` of this construction when it ran under
    #: an enabled tracer (``None`` otherwise).  The per-phase and per-level
    #: child spans carry the same numbers as ``phase_seconds`` /
    #: ``kernel_launches`` — diagnostics accept either.
    trace: Optional[object] = None
    #: :class:`repro.observe.HealthReport` of the stochastic compression-error
    #: probe when the construction ran under ``ExecutionPolicy(health=...)``
    #: (``None`` otherwise — the probe is off by default).
    health: Optional[object] = None

    @property
    def rank_range(self) -> Tuple[int, int]:
        return self.matrix.rank_range()

    def memory_mb(self) -> float:
        return self.matrix.total_memory_mb()

    def summary(self) -> Dict[str, object]:
        lo, hi = self.rank_range
        return {
            "n": self.matrix.num_rows,
            "time_s": self.elapsed_seconds,
            "total_samples": self.total_samples,
            "rank_range": f"{lo}-{hi}",
            "memory_mb": self.memory_mb(),
            "kernel_launches": self.total_kernel_launches,
            "converged": self.converged,
        }


class H2Constructor:
    """Adaptive sketching-based bottom-up H2 constructor (Algorithm 1)."""

    def __init__(
        self,
        partition: BlockPartition,
        operator: SketchingOperator,
        extractor: EntryExtractor,
        config: ConstructionConfig | None = None,
        seed: SeedLike = None,
        sample_source: Callable[[int], np.ndarray] | None = None,
        plan: ConstructionPlan | None = None,
        tracer: object | None = None,
        recovery: object | None = None,
        faults: object | None = None,
    ):
        self.partition = partition
        self.tree = partition.tree
        self.operator = operator
        self.extractor = extractor
        self.config = config if config is not None else ConstructionConfig()
        self.rng = as_generator(seed)
        #: Optional external source of random sample blocks: a callable
        #: ``count -> (n, count)`` replacing the backend's ``batched_rand``.
        #: A :class:`~repro.core.context.GeometryContext` passes a frozen
        #: sample bank here so every construction of a hyperparameter sweep
        #: sketches with the *same* random vectors.
        self.sample_source = sample_source
        #: Optional precompiled :class:`ConstructionPlan` of this partition
        #: (the static packing of the compiled sweep).  A
        #: :class:`~repro.core.context.GeometryContext` compiles it once and
        #: shares it across every construction of a sweep; when absent, the
        #: packed path compiles its own.
        if plan is not None and plan.partition is not partition:
            raise ValueError(
                "the supplied ConstructionPlan was compiled for a different "
                "block partition"
            )
        self.plan = plan

        n = self.tree.num_points
        if operator.n != n or extractor.n != n:
            raise ValueError(
                "operator, extractor and cluster tree must agree on the matrix "
                f"dimension (tree: {n}, operator: {operator.n}, extractor: {extractor.n})"
            )

        # Counter/tracer consolidation: an enabled tracer's counter is handed
        # to the backend factory so one counter spans everything under the
        # owning policy; otherwise each constructor gets a fresh counter (a
        # backend *instance* in the config always keeps its own — per-result
        # launch numbers then come from snapshot deltas, see _construct).
        shared = tracer.counter if (tracer is not None and tracer.enabled) else None
        self.backend: BatchedBackend = get_backend(
            self.config.backend,
            counter=shared if shared is not None else KernelLaunchCounter(),
        )
        self.counter = self.backend.counter
        self.tracer = (
            tracer if tracer is not None
            else getattr(self.backend, "tracer", NOOP_TRACER)
        )
        if self.tracer.enabled:
            self.tracer.bind_counter(self.counter)
        self.timer = PhaseTimer(tracer=self.tracer)

        # Resilience wiring: explicit arguments win; otherwise adopt whatever
        # ExecutionPolicy.resolve_backend installed on the backend instance
        # (mirrors the tracer hand-off above).  Both stay ``None`` on the
        # legacy path so every guard below is a single attribute test.
        self.recovery = (
            recovery if recovery is not None
            else getattr(self.backend, "recovery", None)
        )
        self.faults = (
            faults if faults is not None
            else getattr(self.backend, "faults", None)
        )

        # Construction state (populated by :meth:`construct`).
        self.skeletons = SkeletonStore()
        self.basis = BasisTree(tree=self.tree)
        self.dense_blocks: Dict[Tuple[int, int], np.ndarray] = {}
        self.couplings: Dict[Tuple[int, int], np.ndarray] = {}
        self._sample_draws = 0
        self._total_samples = 0

    # ------------------------------------------------------------------ public
    def construct(self) -> ConstructionResult:
        """Run Algorithm 1 and return the constructed H2 matrix with statistics.

        Dispatches to the compiled packed sweep or the per-node reference loop
        according to ``ConstructionConfig.construction_path`` (``"auto"``
        follows the ``REPRO_CONSTRUCT_PATH`` environment variable and defaults
        to the packed path).

        When a :class:`~repro.resilience.RecoveryPolicy` is installed (via
        ``ExecutionPolicy(recovery=...)`` or the ``recovery=`` argument), the
        run is guarded: packed-engine failures retry and then fall back to the
        reference loop (the result is tagged
        ``construction_path="recovered-loop"``), memory-budget breaches fall
        back immediately, and rank saturation re-constructs with escalated
        sample/tolerance budgets.  Every recovery restores the RNG and sample
        bank to their pre-construction state, so a retry whose fault does not
        re-fire is bit-identical to an uninjected run.
        """
        packed = self._resolve_path() == "packed"
        if self.recovery is None:
            return self._construct(packed=packed)
        return self._construct_guarded(packed=packed)

    def construct_loop(self) -> ConstructionResult:
        """Run the per-node reference sweep (the ``matvec_loop`` analogue)."""
        return self._construct(packed=False)

    def construct_packed(self) -> ConstructionResult:
        """Run the compiled level-wise batched sweep explicitly."""
        return self._construct(packed=True)

    def _resolve_path(self) -> str:
        mode = self.config.construction_path
        if mode == "auto":
            mode = os.environ.get("REPRO_CONSTRUCT_PATH", "packed").lower()
        if mode not in ("packed", "loop"):
            raise ValueError(
                f"unknown construction path {mode!r}; use 'packed' or 'loop'"
            )
        return mode

    # ------------------------------------------------------------------ guards
    def _construct_guarded(self, packed: bool) -> ConstructionResult:
        """Run :meth:`_construct` under the installed recovery policy.

        The recovery ladder, in order of escalation:

        1. *memory budget breach* (estimated packed workspace over
           ``RecoveryPolicy.memory_budget_bytes``, or injected) — fall back
           to the streaming per-node loop immediately (retrying the same
           allocation cannot succeed);
        2. *packed engine failure* (any non-resilience exception out of the
           packed sweep, e.g. an injected launch failure) — retry the packed
           sweep up to ``max_retries`` times, then fall back to the loop;
        3. *rank saturation* (adaptive construction exhausted its sample
           budget without converging) — re-construct with the sample budget
           escalated by ``sample_budget_factor``, then with the ID tolerance
           relaxed by ``tolerance_relax``, up to ``max_sample_retries``
           re-constructions.

        ``strict`` mode raises the typed error at the first detection; in
        ``warn`` mode every recovery is announced through the
        ``repro.resilience`` structured logger.  A result produced by the
        loop fallback is tagged ``construction_path="recovered-loop"``.
        """
        policy = self.recovery
        rng_state = self.rng.bit_generator.state
        original_config = self.config
        engine_retries = 0
        sample_retries = 0
        recovered_to_loop = False
        while True:
            try:
                result = self._construct(packed)
            except MemoryBudgetError as exc:
                if policy.mode == "strict" or not packed:
                    raise
                self._announce_recovery(
                    "memory-budget-fallback",
                    f"packed workspace over budget ({exc}); falling back to "
                    "the per-node loop",
                    stage=exc.stage or "construct.packed",
                )
                packed = False
                recovered_to_loop = True
                self._reset_construction_state(rng_state)
                continue
            except ResilienceError:
                # Already the typed failure surface (e.g. sample corruption
                # that survived its relaunch budget) — nothing to add.
                raise
            except Exception as exc:
                if not packed:
                    raise  # the loop is the fallback; its failures are final
                if policy.mode == "strict":
                    raise ConstructionFaultError(
                        f"packed sweep engine failed: {exc}",
                        stage="construct.packed",
                        context={"error": repr(exc)},
                    ) from exc
                self._reset_construction_state(rng_state)
                if engine_retries < policy.max_retries:
                    engine_retries += 1
                    _metrics().counter("resilience.retries").inc()
                    self._announce_recovery(
                        "packed-retry",
                        f"packed sweep failed ({exc!r}); retry "
                        f"{engine_retries}/{policy.max_retries}",
                        stage="construct.packed",
                    )
                    continue
                self._announce_recovery(
                    "loop-fallback",
                    f"packed sweep failed ({exc!r}) after "
                    f"{engine_retries} retries; falling back to the "
                    "per-node loop",
                    stage="construct.packed",
                )
                packed = False
                recovered_to_loop = True
                continue

            if result.converged or not self.config.adaptive:
                break
            # Rank saturation: the adaptive loop ran out of sample budget.
            if policy.mode == "strict":
                raise RankSaturationError(
                    "adaptive construction exhausted its sample budget "
                    f"({self._total_samples} samples) without converging",
                    stage="construct.adapt",
                    context={"total_samples": self._total_samples},
                )
            if sample_retries >= policy.max_sample_retries:
                self._announce_recovery(
                    "rank-saturation-exhausted",
                    "rank-saturation retries exhausted; returning the "
                    "non-converged result (flagged converged=False)",
                    stage="construct.adapt",
                )
                break
            sample_retries += 1
            _metrics().counter("resilience.retries").inc()
            self.config = self._escalated_config(sample_retries)
            self._announce_recovery(
                "rank-saturation-retry",
                f"re-constructing with escalated budgets (retry "
                f"{sample_retries}/{policy.max_sample_retries}: "
                f"max_samples={self.config.max_samples}, "
                f"tolerance={self.config.tolerance:g})",
                stage="construct.adapt",
            )
            self._reset_construction_state(rng_state)

        if recovered_to_loop:
            result.construction_path = "recovered-loop"
            _metrics().counter("resilience.recoveries").inc()
        elif engine_retries or sample_retries:
            _metrics().counter("resilience.recoveries").inc()
        self.config = original_config
        return result

    def _escalated_config(self, retry: int) -> ConstructionConfig:
        """The construction config of rank-saturation retry number ``retry``.

        The first retry escalates the sample budget (when it is not already
        at the matrix dimension); later retries — or a budget already at the
        cap — additionally relax the ID tolerance.
        """
        from dataclasses import replace as _replace

        policy = self.recovery
        cfg = self.config
        n = self.tree.num_points
        cap = n if cfg.max_samples is None else min(cfg.max_samples, n)
        updates: Dict[str, object] = {}
        if cap < n:
            updates["max_samples"] = min(
                n, max(cap + 1, int(cap * policy.sample_budget_factor))
            )
        if retry > 1 or cap >= n:
            updates["tolerance"] = cfg.tolerance * policy.tolerance_relax
        return _replace(cfg, **updates)

    def _reset_construction_state(self, rng_state: dict) -> None:
        """Return the constructor to its pre-construction state for a retry.

        Restoring the RNG state and rewinding the frozen sample bank (when a
        :class:`~repro.core.context.GeometryContext` supplied one) makes a
        retry sketch with exactly the random vectors of the first attempt —
        so a recovery whose fault does not re-fire reproduces the uninjected
        run bit for bit.
        """
        self.skeletons = SkeletonStore()
        self.basis = BasisTree(tree=self.tree)
        self.dense_blocks = {}
        self.couplings = {}
        self._sample_draws = 0
        self._total_samples = 0
        self.timer = PhaseTimer(tracer=self.tracer)
        self.rng.bit_generator.state = rng_state
        reset = getattr(self.sample_source, "reset", None)
        if callable(reset):
            reset()

    def _announce_recovery(self, event: str, message: str, stage: str) -> None:
        """Tracer span + (in warn mode) structured-log warning for a recovery."""
        if self.tracer.enabled:
            with self.tracer.span(
                f"resilience/{event}", category="resilience", stage=stage
            ):
                pass
        if self.recovery is not None and self.recovery.mode == "warn":
            resilience_adapter().warn(event, stage=stage, detail=message)

    def _construct(self, packed: bool) -> ConstructionResult:
        tracer = self.tracer
        if not tracer.enabled:
            return self._construct_impl(packed)
        with tracer.span(
            "construct",
            category="construct",
            n=self.tree.num_points,
            backend=self.backend.name,
            path="packed" if packed else "loop",
        ) as span:
            result = self._construct_impl(packed)
        result.trace = span
        return result

    def _construct_impl(self, packed: bool) -> ConstructionResult:
        start = time.perf_counter()
        launches_at_start = self.counter.snapshot()
        self.operator.reset_statistics()
        self.extractor.entries_evaluated = 0

        tree = self.tree
        n = tree.num_points
        leaf_depth = tree.depth

        with self.timer.phase("misc"):
            min_depth = self._min_admissible_depth()
            tester = self._build_convergence_tester()

        engine: Optional[PackedSweepEngine] = None
        if packed:
            if self.faults is not None or self.recovery is not None:
                self._check_memory_budget(n)
            with self.timer.phase("misc"):
                if self.plan is None:
                    self.plan = ConstructionPlan(self.partition)
                engine = PackedSweepEngine(self.plan, self.backend, self.timer)

        # Dense (inadmissible leaf) blocks are always required.
        if engine is not None:
            self._extract_dense_blocks_packed(engine)
        else:
            self._extract_dense_blocks()

        levels: List[LevelReport] = []
        all_converged = True

        if min_depth is not None and engine is not None:
            all_converged = self._run_packed_levels(engine, tester, min_depth, levels)
        elif min_depth is not None:
            d0 = min(self.config.effective_initial_samples, n)
            omega, y = self._draw_samples(d0)

            y_next: Dict[int, np.ndarray] = {}
            omega_next: Dict[int, np.ndarray] = {}

            for depth in range(leaf_depth, min_depth - 1, -1):
                with self.tracer.span(
                    f"level={depth}", category="construct.level", depth=depth
                ):
                    if depth == leaf_depth:
                        report, y_next, omega_next = self._process_leaf_level(
                            omega, y, tester
                        )
                    else:
                        report, y_next, omega_next = self._process_inner_level(
                            depth, y_next, omega_next, tester
                        )
                    levels.append(report)
                    all_converged = all_converged and report.converged
                    self._extract_couplings(depth)

        matrix = H2Matrix(
            tree=tree,
            partition=self.partition,
            basis=self.basis,
            coupling=self.couplings,
            dense=self.dense_blocks,
        )
        # Memory telemetry: the constructed operator and (on the packed path)
        # the sweep engine's workspace report into the process-wide ledger;
        # the entries auto-release when the objects are garbage-collected.
        from ..observe.memory import categorize_operator_bytes, memory_ledger

        ledger = memory_ledger()
        ledger.track(matrix, categorize_operator_bytes(matrix.memory_bytes()))
        if engine is not None:
            ledger.track(engine, {"workspace": engine.memory_bytes()})
        elapsed = time.perf_counter() - start
        # Per-construction launch numbers even on a shared (policy/tracer)
        # counter: report the growth since this construction started.
        launch_delta = self.counter.since(launches_at_start)
        return ConstructionResult(
            matrix=matrix,
            config=self.config,
            total_samples=self._total_samples,
            operator_applications=self.operator.applications,
            entries_evaluated=self.extractor.entries_evaluated,
            elapsed_seconds=elapsed,
            phase_seconds=self.timer.as_dict(),
            kernel_launches=launch_delta.counts,
            total_kernel_launches=launch_delta.total(),
            kernel_calls=launch_delta.calls,
            total_kernel_calls=launch_delta.total_calls(),
            norm_estimate=self._norm_estimate,
            converged=all_converged,
            levels=levels,
            construction_path="packed" if packed else "loop",
        )

    # --------------------------------------------------------------- internals
    def _check_memory_budget(self, n: int) -> None:
        """Packed-workspace budget guard at the engine allocation boundary.

        Raises :class:`~repro.resilience.errors.MemoryBudgetError` when the
        installed fault injector fires ``memory-budget-exceeded`` or the
        estimated level-buffer footprint (omega + sketch stacks at the leaf
        level) exceeds ``RecoveryPolicy.memory_budget_bytes``; the guarded
        driver then falls back to the streaming per-node loop.
        """
        if self.faults is not None:
            self.faults.memory_budget("construct.packed")
        policy = self.recovery
        if policy is None or policy.memory_budget_bytes is None:
            return
        cfg = self.config
        d0 = min(cfg.effective_initial_samples, n)
        headroom = cfg.sample_block_size if cfg.adaptive else 0
        estimate = 2 * n * (d0 + headroom) * 8  # omega + y level stacks, f64
        if estimate > policy.memory_budget_bytes:
            raise MemoryBudgetError(
                f"estimated packed workspace {estimate} B exceeds the "
                f"budget {policy.memory_budget_bytes} B",
                stage="construct.packed",
                context={
                    "estimate_bytes": estimate,
                    "budget_bytes": policy.memory_budget_bytes,
                },
            )

    def _min_admissible_depth(self) -> Optional[int]:
        """Shallowest tree depth carrying admissible blocks (None if fully dense)."""
        for depth in range(self.tree.num_levels):
            if self.partition.num_admissible_blocks_at_level(depth) > 0:
                return depth
        return None

    def _build_convergence_tester(self) -> ConvergenceTester:
        cfg = self.config
        need_norm = cfg.adaptive or cfg.id_tolerance_mode == "absolute"
        if need_norm and cfg.norm_estimate is not None:
            self._norm_estimate = float(cfg.norm_estimate)
            tester = ConvergenceTester(
                absolute_threshold=cfg.convergence_safety_factor
                * cfg.tolerance
                * self._norm_estimate
            )
        elif need_norm:
            tester = ConvergenceTester.from_operator(
                self.operator,
                cfg.tolerance,
                num_iterations=cfg.norm_estimation_iterations,
                safety_factor=cfg.convergence_safety_factor,
                seed=self.rng,
            )
            self._norm_estimate = tester.absolute_threshold / (
                cfg.tolerance * cfg.convergence_safety_factor
            )
        else:
            tester = ConvergenceTester(absolute_threshold=0.0)
            self._norm_estimate = 0.0
        return tester

    def _id_tolerances(self, count: int) -> Tuple[Optional[float], Optional[Sequence[float]]]:
        """Relative/absolute tolerances handed to the batched row ID."""
        cfg = self.config
        if cfg.id_tolerance_mode == "absolute":
            return None, [cfg.tolerance * self._norm_estimate] * count
        return cfg.tolerance, None

    def _draw_samples(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` fresh random vectors and sketch them through the operator."""
        n = self.tree.num_points
        with self.timer.phase("sampling"):
            if self.sample_source is not None:
                omega = np.ascontiguousarray(
                    self.sample_source(count), dtype=np.float64
                )
                if omega.shape != (n, count):
                    raise ValueError(
                        f"sample_source returned shape {omega.shape}, "
                        f"expected {(n, count)}"
                    )
                self.counter.record("batched_rand", 1)
            else:
                batch = self.backend.batched_random_normal([(n, count)], seed=self.rng)
                omega = batch[0]
            y = self.operator.multiply(omega)
        if self.faults is not None and self.faults.installed("nan-in-gemm-output"):
            y = self.faults.corrupt_gemm_output(y)
        if self.recovery is not None:
            y = self._screen_samples(omega, y)
        self._sample_draws += 1
        self._total_samples += count
        return omega, y

    def _screen_samples(self, omega: np.ndarray, y: np.ndarray) -> np.ndarray:
        """NaN/Inf screen of a sketched sample block at the launch boundary.

        A corrupted block models a transient failure of the sketching GEMM,
        so recovery *relaunches the same multiply* (same ``omega``) up to
        ``RecoveryPolicy.max_retries`` times — a relaunch whose fault does
        not re-fire is bitwise identical to the uninjected sketch.  Strict
        mode raises immediately; a block still corrupted after the relaunch
        budget raises in every mode (never a silent wrong answer).
        """
        if np.all(np.isfinite(y)):
            return y
        policy = self.recovery
        bad = int(y.size - np.count_nonzero(np.isfinite(y)))
        if policy.mode == "strict":
            raise SampleCorruptionError(
                f"sketched sample block contains {bad} non-finite entries",
                stage="construct.sample",
                context={"bad_entries": bad, "shape": tuple(y.shape)},
            )
        self._announce_recovery(
            "sample-relaunch",
            f"sketched sample block has {bad} non-finite entries; "
            "relaunching the sketch",
            stage="construct.sample",
        )
        for _ in range(policy.max_retries):
            _metrics().counter("resilience.retries").inc()
            with self.timer.phase("sampling"):
                y = self.operator.multiply(omega)
            if self.faults is not None:
                y = self.faults.corrupt_gemm_output(y)
            if np.all(np.isfinite(y)):
                _metrics().counter("resilience.recoveries").inc()
                return y
        bad = int(y.size - np.count_nonzero(np.isfinite(y)))
        raise SampleCorruptionError(
            f"sketched sample block still contains {bad} non-finite entries "
            f"after {policy.max_retries} relaunches",
            stage="construct.sample",
            context={"bad_entries": bad, "retries": policy.max_retries},
        )

    def _samples_exhausted(self) -> bool:
        cap = self.config.max_samples
        limit = self.tree.num_points if cap is None else min(cap, self.tree.num_points)
        return self._total_samples >= limit

    # ------------------------------------------------------------ entry blocks
    def _extract_dense_blocks(self) -> None:
        """Evaluate every inadmissible leaf block (``batchedGen`` at the leaf level)."""
        tree = self.tree
        requests = []
        keys = []
        for tau in tree.leaves():
            rows = tree.index_set(tau)
            for b in self.partition.near(tau):
                requests.append((rows, tree.index_set(b)))
                keys.append((tau, b))
        if not requests:
            return
        with self.timer.phase("entry_generation"):
            blocks = self.extractor.extract_blocks(requests, counter=self.counter)
        for key, block in zip(keys, blocks):
            self.dense_blocks[key] = block

    def _extract_couplings(self, depth: int) -> None:
        """Evaluate the coupling blocks ``B_{tau,b}`` of all nodes at ``depth``."""
        requests = []
        keys = []
        for tau in self.tree.nodes_at_level(depth):
            far = self.partition.far(tau)
            if not far or tau not in self.skeletons:
                continue
            rows = self.skeletons.skeleton_global(tau)
            for b in far:
                if b not in self.skeletons:
                    continue
                requests.append((rows, self.skeletons.skeleton_global(b)))
                keys.append((tau, b))
        if not requests:
            return
        with self.timer.phase("entry_generation"):
            blocks = self.extractor.extract_blocks(requests, counter=self.counter)
        for key, block in zip(keys, blocks):
            self.couplings[key] = block

    # ------------------------------------------------------------- leaf level
    def _process_leaf_level(
        self,
        omega: np.ndarray,
        y: np.ndarray,
        tester: ConvergenceTester,
    ) -> Tuple[LevelReport, Dict[int, np.ndarray], Dict[int, np.ndarray]]:
        tree = self.tree
        nodes = list(tree.leaves())
        node_pos = {node: i for i, node in enumerate(nodes)}

        # Marshal the per-node slices of the global sketch.
        with self.timer.phase("shrink_upsweep"):
            omega_loc = [
                np.ascontiguousarray(omega[tree.starts[t] : tree.ends[t]]) for t in nodes
            ]
            y_loc = [y[tree.starts[t] : tree.ends[t]].copy() for t in nodes]

        # Subtract the dense-neighbour contribution (batched BSR product).
        bsr = self._leaf_bsr(nodes, node_pos)
        with self.timer.phase("bsr_gemm"):
            bsr.multiply_accumulate(y_loc, omega_loc, self.backend, alpha=-1.0)

        rounds = 1
        converged = True
        if self.config.adaptive:
            converged, rounds = self._adapt_level(
                depth=tree.depth,
                nodes=nodes,
                node_pos=node_pos,
                y_loc=y_loc,
                omega_loc=omega_loc,
                coupling_bsr=bsr,
                tester=tester,
            )

        # Batched row ID -> leaf bases U_tau and skeleton indices.
        rel_tol, abs_tols = self._id_tolerances(len(nodes))
        with self.timer.phase("id"):
            decompositions = self.backend.batched_row_id(
                y_loc, rel_tol=rel_tol, abs_tols=abs_tols, max_rank=self.config.max_rank
            )

        y_next: Dict[int, np.ndarray] = {}
        omega_next: Dict[int, np.ndarray] = {}
        with self.timer.phase("shrink_upsweep"):
            interp = [dec.interpolation for dec in decompositions]
            upswept = self.backend.batched_gemm(interp, omega_loc, transpose_a=True)
            for i, (tau, dec) in enumerate(zip(nodes, decompositions)):
                self._record_node_skeleton(tau, dec, is_leaf=True)
                y_next[tau] = y_loc[i][dec.skeleton]
                omega_next[tau] = upswept[i]

        ranks = [self.skeletons.rank(tau) for tau in nodes]
        report = LevelReport(
            depth=tree.depth,
            num_nodes=len(nodes),
            samples_used=self._total_samples,
            sampling_rounds=rounds,
            max_rank=max(ranks) if ranks else 0,
            min_rank=min(ranks) if ranks else 0,
            converged=converged,
        )
        return report, y_next, omega_next

    def _leaf_bsr(
        self, nodes: List[int], node_pos: Dict[int, int]
    ) -> BlockSparseRowMatrix:
        bsr = BlockSparseRowMatrix(num_block_rows=len(nodes))
        for i, tau in enumerate(nodes):
            for b in self.partition.near(tau):
                bsr.add_block(i, node_pos[b], self.dense_blocks[(tau, b)])
        return bsr

    def _record_node_skeleton(self, tau: int, dec, is_leaf: bool) -> NodeSkeleton:
        """Skeleton/basis bookkeeping of one skeletonised node.

        The single source of truth for both execution paths: the per-node loop
        and the packed sweep record bit-identical :class:`NodeSkeleton`,
        leaf-basis and transfer state through this helper, which is what the
        loop↔packed skeleton-parity guarantee rests on.
        """
        if is_leaf:
            skeleton_global = self.tree.index_set(tau)[dec.skeleton]
            self.basis.set_leaf_basis(tau, dec.interpolation)
        else:
            nu1, nu2 = self.tree.children(tau)
            rank1 = self.skeletons.rank(nu1)
            merged = np.concatenate(
                [
                    self.skeletons.skeleton_global(nu1),
                    self.skeletons.skeleton_global(nu2),
                ]
            )
            skeleton_global = merged[dec.skeleton]
            self.basis.set_rank(tau, dec.rank)
            self.basis.set_transfer(nu1, dec.interpolation[:rank1])
            self.basis.set_transfer(nu2, dec.interpolation[rank1:])
        record = NodeSkeleton(
            node=tau,
            skeleton_local=dec.skeleton,
            skeleton_global=skeleton_global,
            interpolation=dec.interpolation,
            is_leaf=is_leaf,
        )
        self.skeletons.add(record)
        return record

    # ------------------------------------------------------------ inner levels
    def _process_inner_level(
        self,
        depth: int,
        child_y_next: Dict[int, np.ndarray],
        child_omega_next: Dict[int, np.ndarray],
        tester: ConvergenceTester,
    ) -> Tuple[LevelReport, Dict[int, np.ndarray], Dict[int, np.ndarray]]:
        tree = self.tree
        nodes = list(tree.nodes_at_level(depth))
        child_nodes = list(tree.nodes_at_level(depth + 1))
        child_pos = {node: i for i, node in enumerate(child_nodes)}

        # Subtract the children's coupling contribution from their skeletonised
        # sketches (batched BSR product over the children level), then merge
        # sibling pairs into the parent's sample block.
        with self.timer.phase("shrink_upsweep"):
            child_loc = [child_y_next[nu].copy() for nu in child_nodes]
            child_inputs = [child_omega_next[nu] for nu in child_nodes]
        coupling_bsr = self._coupling_bsr(child_nodes, child_pos)
        with self.timer.phase("bsr_gemm"):
            coupling_bsr.multiply_accumulate(
                child_loc, child_inputs, self.backend, alpha=-1.0
            )

        with self.timer.phase("shrink_upsweep"):
            y_loc: List[np.ndarray] = []
            omega_loc: List[np.ndarray] = []
            for tau in nodes:
                nu1, nu2 = tree.children(tau)
                y_loc.append(
                    np.vstack([child_loc[child_pos[nu1]], child_loc[child_pos[nu2]]])
                )
                omega_loc.append(
                    np.vstack(
                        [child_omega_next[nu1], child_omega_next[nu2]]
                    )
                )

        rounds = 1
        converged = True
        if self.config.adaptive:
            converged, rounds = self._adapt_level(
                depth=depth,
                nodes=nodes,
                node_pos={node: i for i, node in enumerate(nodes)},
                y_loc=y_loc,
                omega_loc=omega_loc,
                coupling_bsr=None,
                tester=tester,
            )

        rel_tol, abs_tols = self._id_tolerances(len(nodes))
        with self.timer.phase("id"):
            decompositions = self.backend.batched_row_id(
                y_loc, rel_tol=rel_tol, abs_tols=abs_tols, max_rank=self.config.max_rank
            )

        y_next: Dict[int, np.ndarray] = {}
        omega_next: Dict[int, np.ndarray] = {}
        with self.timer.phase("shrink_upsweep"):
            interp = [dec.interpolation for dec in decompositions]
            upswept = self.backend.batched_gemm(interp, omega_loc, transpose_a=True)
            for i, (tau, dec) in enumerate(zip(nodes, decompositions)):
                self._record_node_skeleton(tau, dec, is_leaf=False)
                y_next[tau] = y_loc[i][dec.skeleton]
                omega_next[tau] = upswept[i]

        ranks = [self.skeletons.rank(tau) for tau in nodes]
        report = LevelReport(
            depth=depth,
            num_nodes=len(nodes),
            samples_used=self._total_samples,
            sampling_rounds=rounds,
            max_rank=max(ranks) if ranks else 0,
            min_rank=min(ranks) if ranks else 0,
            converged=converged,
        )
        return report, y_next, omega_next

    def _coupling_bsr(
        self, child_nodes: List[int], child_pos: Dict[int, int]
    ) -> BlockSparseRowMatrix:
        """Block-sparse matrix of the children's coupling blocks ``B_{nu,b}``."""
        bsr = BlockSparseRowMatrix(num_block_rows=len(child_nodes))
        for i, nu in enumerate(child_nodes):
            for b in self.partition.far(nu):
                block = self.couplings.get((nu, b))
                if block is not None and block.size:
                    bsr.add_block(i, child_pos[b], block)
        return bsr

    # -------------------------------------------------------- adaptive sampling
    def _adapt_level(
        self,
        depth: int,
        nodes: List[int],
        node_pos: Dict[int, int],
        y_loc: List[np.ndarray],
        omega_loc: List[np.ndarray],
        coupling_bsr: Optional[BlockSparseRowMatrix],
        tester: ConvergenceTester,
    ) -> Tuple[bool, int]:
        """Add sample blocks until every node of the level converges.

        ``coupling_bsr`` is the leaf level's dense-block BSR (reused to subtract
        the dense contribution from freshly drawn samples); inner levels pass
        ``None`` because the sweep handles the subtraction internally.

        Returns ``(converged, sampling_rounds)``.
        """
        rounds = 1
        while True:
            with self.timer.phase("convergence"):
                mask = tester.converged_mask(y_loc, self.backend)
            if bool(np.all(mask)):
                return True, rounds
            if self._samples_exhausted():
                return False, rounds

            block = min(
                self.config.sample_block_size,
                max(self.tree.num_points - self._total_samples, 0),
            )
            if block <= 0:
                return False, rounds
            new_omega, new_y = self._draw_samples(block)
            new_omega_map, new_y_map = self._sweep_new_samples(new_omega, new_y, depth)
            with self.timer.phase("shrink_upsweep"):
                for i, tau in enumerate(nodes):
                    y_loc[i] = np.hstack([y_loc[i], new_y_map[tau]])
                    omega_loc[i] = np.hstack([omega_loc[i], new_omega_map[tau]])
            rounds += 1

    def _sweep_new_samples(
        self, new_omega: np.ndarray, new_y: np.ndarray, to_depth: int
    ) -> Tuple[Dict[int, np.ndarray], Dict[int, np.ndarray]]:
        """``updateSamples``: push freshly drawn samples up to ``to_depth``.

        Returns per-node pairs ``(omega, y_loc)`` for the nodes at ``to_depth``,
        where ``y_loc`` already has the dense/coupling contributions of the
        levels below subtracted (i.e. it is ready to be appended to the level's
        working sample blocks).
        """
        tree = self.tree
        leaf_depth = tree.depth

        # Leaf level of the sweep.
        leaves = list(tree.leaves())
        leaf_pos = {node: i for i, node in enumerate(leaves)}
        with self.timer.phase("shrink_upsweep"):
            omega_cur = [
                np.ascontiguousarray(new_omega[tree.starts[t] : tree.ends[t]])
                for t in leaves
            ]
            y_cur = [new_y[tree.starts[t] : tree.ends[t]].copy() for t in leaves]
        dense_bsr = self._leaf_bsr(leaves, leaf_pos)
        with self.timer.phase("bsr_gemm"):
            dense_bsr.multiply_accumulate(y_cur, omega_cur, self.backend, alpha=-1.0)
        if to_depth == leaf_depth:
            return (
                {tau: omega_cur[i] for i, tau in enumerate(leaves)},
                {tau: y_cur[i] for i, tau in enumerate(leaves)},
            )

        # Apply the leaf skeletons, then walk up level by level.
        with self.timer.phase("shrink_upsweep"):
            omega_next = {}
            y_next = {}
            for i, tau in enumerate(leaves):
                record = self.skeletons.get(tau)
                omega_next[tau] = record.upsweep_inputs(omega_cur[i])
                y_next[tau] = record.shrink_samples(y_cur[i])

        for depth in range(leaf_depth - 1, to_depth - 1, -1):
            child_nodes = list(tree.nodes_at_level(depth + 1))
            child_pos = {node: i for i, node in enumerate(child_nodes)}
            with self.timer.phase("shrink_upsweep"):
                child_loc = [y_next[nu].copy() for nu in child_nodes]
                child_inputs = [omega_next[nu] for nu in child_nodes]
            coupling_bsr = self._coupling_bsr(child_nodes, child_pos)
            with self.timer.phase("bsr_gemm"):
                coupling_bsr.multiply_accumulate(
                    child_loc, child_inputs, self.backend, alpha=-1.0
                )
            with self.timer.phase("shrink_upsweep"):
                omega_stacked = {}
                y_stacked = {}
                for tau in tree.nodes_at_level(depth):
                    nu1, nu2 = tree.children(tau)
                    omega_stacked[tau] = np.vstack([omega_next[nu1], omega_next[nu2]])
                    y_stacked[tau] = np.vstack(
                        [child_loc[child_pos[nu1]], child_loc[child_pos[nu2]]]
                    )
            if depth == to_depth:
                return omega_stacked, y_stacked
            with self.timer.phase("shrink_upsweep"):
                omega_next = {}
                y_next = {}
                for tau in tree.nodes_at_level(depth):
                    record = self.skeletons.get(tau)
                    omega_next[tau] = record.upsweep_inputs(omega_stacked[tau])
                    y_next[tau] = record.shrink_samples(y_stacked[tau])

        raise RuntimeError(
            f"sample sweep did not reach depth {to_depth}; this indicates an internal error"
        )

    # ------------------------------------------------------ packed (compiled)
    def _extract_dense_blocks_packed(self, engine: PackedSweepEngine) -> None:
        """Batched dense-block generation + stacking of the BSR GEMM operands.

        One padded ``batchedGen`` launch evaluates every inadmissible leaf
        block; the exact-shape blocks are sliced out for the H2 storage dict
        and the padded stack feeds the fan-grouped ``batched_gemm_scatter``
        operands directly.
        """
        plan = engine.plan
        tree = self.tree
        if not plan.dense_pairs:
            return
        requests = [
            (tree.index_set(tau), tree.index_set(b)) for tau, b in plan.dense_pairs
        ]
        with self.timer.phase("entry_generation"):
            padded = self.extractor.extract_blocks_padded(
                requests, plan.m_pad, plan.m_pad, counter=self.counter
            )
        for i, (tau, b) in enumerate(plan.dense_pairs):
            rows = tree.cluster_size(tau)
            cols = tree.cluster_size(b)
            # Views into the padded stack (padding is exact zeros); copying
            # thousands of leaf blocks would double the marshaling traffic.
            self.dense_blocks[(tau, b)] = padded[i, :rows, :cols]
        engine.build_dense_operands(padded)

    def _extract_couplings_packed(self, depth: int, engine: PackedSweepEngine, record) -> None:
        """Batched coupling-block generation at ``depth`` (+ replay operands).

        ``record`` is the level's replay record when the sweep continues above
        this level (its ``r_pad`` fixes the padded block shape and the padded
        stack becomes the coupling-subtract operands); at the topmost
        admissible level only the storage dict is filled.
        """
        plan = engine.plan
        pairs = plan.coupling_pairs.get(depth, [])
        if not pairs:
            return
        nodes = plan.level_nodes[depth]
        if record is not None:
            r_pad = record.r_pad
        else:
            r_pad = max((self.skeletons.rank(node) for node in nodes), default=0)
        requests = [
            (self.skeletons.skeleton_global(s), self.skeletons.skeleton_global(t))
            for s, t in pairs
        ]
        with self.timer.phase("entry_generation"):
            padded = self.extractor.extract_blocks_padded(
                requests, r_pad, r_pad, counter=self.counter
            )
        for i, (s, t) in enumerate(pairs):
            # Copy the exact-shape slice: ranks vary within a level, so views
            # into the (g, r_pad, r_pad) stack would pin the whole padded
            # extraction in memory for the lifetime of the H2 matrix.
            self.couplings[(s, t)] = padded[
                i, : self.skeletons.rank(s), : self.skeletons.rank(t)
            ].copy()
        if record is not None:
            engine.set_coupling_operands(depth, padded)

    def _run_packed_levels(
        self,
        engine: PackedSweepEngine,
        tester: ConvergenceTester,
        min_depth: int,
        levels: List[LevelReport],
    ) -> bool:
        """Drive the compiled sweep from the leaves up to ``min_depth``."""
        tree = self.tree
        cfg = self.config
        n = tree.num_points
        d0 = min(cfg.effective_initial_samples, n)
        headroom = cfg.sample_block_size if cfg.adaptive else 0

        omega, y = self._draw_samples(d0)
        state = engine.init_leaf(omega, y, capacity_hint=d0 + headroom)
        all_converged = True

        for depth in range(tree.depth, min_depth - 1, -1):
            if self.faults is not None:
                self.faults.fail_launch(f"construct.packed.level={depth}")
            with self.tracer.span(
                f"level={depth}", category="construct.level", depth=depth
            ):
                rounds = 1
                converged = True
                if cfg.adaptive:
                    converged, rounds = self._adapt_level_packed(engine, state, tester)

                rel_tol, abs_tols = self._id_tolerances(state.count)
                with self.timer.phase("id"):
                    decompositions = self.backend.batched_row_id(
                        [state.node_block(i) for i in range(state.count)],
                        rel_tol=rel_tol,
                        abs_tols=abs_tols,
                        max_rank=cfg.max_rank,
                    )

                self._record_level_skeletons(depth, state, decompositions)

                ranks = [dec.rank for dec in decompositions]
                levels.append(
                    LevelReport(
                        depth=depth,
                        num_nodes=state.count,
                        samples_used=self._total_samples,
                        sampling_rounds=rounds,
                        max_rank=max(ranks) if ranks else 0,
                        min_rank=min(ranks) if ranks else 0,
                        converged=converged,
                    )
                )
                all_converged = all_converged and converged

                if depth > min_depth:
                    y_next, omega_next, record = engine.finish_level(
                        state, decompositions
                    )
                    self._extract_couplings_packed(depth, engine, record)
                    state = engine.merge_to_parent(
                        record, y_next, omega_next,
                        capacity_hint=state.cols + headroom,
                    )
                else:
                    self._extract_couplings_packed(depth, engine, None)
        return all_converged

    def _record_level_skeletons(
        self, depth: int, state, decompositions: Sequence
    ) -> None:
        """Skeleton/basis bookkeeping of one packed level (shared with the loop)."""
        is_leaf = depth == self.tree.depth
        with self.timer.phase("shrink_upsweep"):
            for tau, dec in zip(state.nodes, decompositions):
                self._record_node_skeleton(tau, dec, is_leaf=is_leaf)

    def _adapt_level_packed(
        self, engine: PackedSweepEngine, state, tester: ConvergenceTester
    ) -> Tuple[bool, int]:
        """Adaptive sampling over the packed state (same schedule as the loop).

        Fresh sample blocks are swept up through the replay records in
        O(levels) launches and appended as new *columns* of the preallocated
        level buffers — no per-node re-copying.
        """
        rounds = 1
        while True:
            with self.timer.phase("convergence"):
                mask = tester.converged_mask(state.y_active, self.backend)
            if bool(np.all(mask)):
                return True, rounds
            if self._samples_exhausted():
                return False, rounds

            block = min(
                self.config.sample_block_size,
                max(self.tree.num_points - self._total_samples, 0),
            )
            if block <= 0:
                return False, rounds
            new_omega, new_y = self._draw_samples(block)
            omega_slab, y_slab = engine.sweep_slab(new_omega, new_y, state.depth)
            with self.timer.phase("shrink_upsweep"):
                state.append(omega_slab, y_slab)
            rounds += 1

"""The paper's primary contribution: bottom-up sketching-based H2 construction.

:class:`~repro.core.builder.H2Constructor` implements Algorithm 1 in both its
fixed-sample and adaptive-sampling variants, phrased entirely in terms of the
batched primitives of :mod:`repro.batched`;
:mod:`repro.core.recompression` applies it to the H2 + low-rank update
application of the paper.
"""

from .builder import ConstructionResult, H2Constructor
from .context import BlockDistanceCachingExtractor, ContextStatistics, GeometryContext
from .config import ConstructionConfig
from .convergence import ConvergenceTester
from .recompression import recompress_h2
from .skeleton_store import NodeSkeleton, SkeletonStore

__all__ = [
    "H2Constructor",
    "GeometryContext",
    "ContextStatistics",
    "BlockDistanceCachingExtractor",
    "ConstructionConfig",
    "ConstructionResult",
    "ConvergenceTester",
    "NodeSkeleton",
    "SkeletonStore",
    "recompress_h2",
]

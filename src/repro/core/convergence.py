"""Adaptive-sampling convergence test (Section III-B).

A node has received enough sample vectors when the QR factorization of its
local sample block ``Y_loc_tau`` is numerically rank deficient: the smallest
absolute diagonal entry of ``R`` falls below an absolute threshold
``eps_abs``.  To honour a *relative* compression tolerance ``eps`` the
threshold is ``eps * |K|`` where ``|K|`` is a sketched estimate of the matrix
norm provided by the black-box operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..batched.backend import BatchedBackend
from ..linalg.norm_estimation import estimate_spectral_norm
from ..sketching.operators import SketchingOperator


@dataclass
class ConvergenceTester:
    """Evaluates the per-node convergence criterion of the adaptive construction."""

    absolute_threshold: float

    @classmethod
    def from_operator(
        cls,
        operator: SketchingOperator,
        tolerance: float,
        num_iterations: int = 6,
        safety_factor: float = 1.0,
        seed=None,
    ) -> "ConvergenceTester":
        """Build a tester whose threshold is ``safety * tolerance * ||K||_2``.

        The norm is estimated with a few power iterations through the
        black-box operator, as suggested in the paper.
        """
        norm = estimate_spectral_norm(
            operator.matvec, operator.n, num_iterations=num_iterations, seed=seed
        )
        return cls(absolute_threshold=float(safety_factor * tolerance * max(norm, 0.0)))

    def converged_mask(
        self, sample_blocks: Sequence[np.ndarray], backend: BatchedBackend
    ) -> np.ndarray:
        """Boolean mask of which sample blocks satisfy the convergence criterion."""
        if not len(sample_blocks):
            return np.zeros(0, dtype=bool)
        min_diags = backend.batched_min_r_diag(sample_blocks)
        return min_diags <= self.absolute_threshold

    def all_converged(
        self, sample_blocks: Sequence[np.ndarray], backend: BatchedBackend
    ) -> bool:
        mask = self.converged_mask(sample_blocks, backend)
        return bool(np.all(mask))

"""Per-node skeletonization records.

Every processed cluster stores the outcome of its interpolative decomposition:
its rank, the local/global skeleton indices and the interpolation matrix
(which is the leaf basis ``U_tau`` at the leaf level or the stacked transfer
matrix ``[E_nu1; E_nu2]`` at inner levels).  The adaptive-sampling sweep
(``updateSamples`` in Algorithm 1) replays these records to push freshly drawn
sample vectors from the leaves up to the level currently being processed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class NodeSkeleton:
    """Skeletonization result of one cluster."""

    node: int
    #: Local row indices selected by the row ID (indices into the node's sample block).
    skeleton_local: np.ndarray
    #: Global (permuted-ordering) matrix indices of the selected skeleton rows.
    skeleton_global: np.ndarray
    #: Interpolation matrix ``X`` with ``X[skeleton_local, :] = I`` — equals the
    #: leaf basis ``U_tau`` at the leaf level and ``[E_nu1; E_nu2]`` at inner levels.
    interpolation: np.ndarray
    #: Whether this record belongs to a leaf cluster.
    is_leaf: bool

    @property
    def rank(self) -> int:
        return int(self.interpolation.shape[1])

    def shrink_samples(self, samples: np.ndarray) -> np.ndarray:
        """Restrict a sample block to the skeleton rows (``Y^{l+1} = Y_loc(J, :)``)."""
        return samples[self.skeleton_local]

    def upsweep_inputs(self, inputs: np.ndarray) -> np.ndarray:
        """Transform the random inputs to the next level (``Omega^{l+1} = X^T Omega^l``)."""
        return self.interpolation.T @ inputs


class SkeletonStore:
    """Dictionary of :class:`NodeSkeleton` records keyed by cluster id."""

    def __init__(self) -> None:
        self._records: Dict[int, NodeSkeleton] = {}

    def add(self, record: NodeSkeleton) -> None:
        self._records[record.node] = record

    def get(self, node: int) -> NodeSkeleton:
        return self._records[node]

    def __contains__(self, node: int) -> bool:
        return node in self._records

    def __len__(self) -> int:
        return len(self._records)

    def rank(self, node: int) -> int:
        return self._records[node].rank if node in self._records else 0

    def skeleton_global(self, node: int) -> np.ndarray:
        return self._records[node].skeleton_global

    def nodes(self):
        return self._records.keys()

"""Kernel-launch counting instrumentation.

On a GPU, every batched primitive dispatch corresponds to a kernel launch with
a fixed overhead; the paper argues its algorithm needs only O(log N) launches
because all per-node work of a level is fused into a constant number of
batched calls.  :class:`KernelLaunchCounter` records one "launch" for every
batched dispatch issued by a backend (per shape group for the vectorized
backend), letting the benchmark harness verify the O(log N) behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Mapping


def _delta(after: Mapping[str, int], before: Mapping[str, int]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for op, value in after.items():
        diff = value - before.get(op, 0)
        if diff:
            out[op] = diff
    return out


@dataclass(frozen=True)
class CounterSnapshot:
    """Point-in-time copy of a :class:`KernelLaunchCounter`'s tallies."""

    counts: Dict[str, int] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)

    def total(self) -> int:
        return int(sum(self.counts.values()))

    def total_calls(self) -> int:
        return int(sum(self.calls.values()))


@dataclass
class KernelLaunchCounter:
    """Counts batched-primitive dispatches, grouped by operation name.

    Two granularities are tracked:

    * ``counts`` — *launches*: one per shape group dispatched by the backend
      (what a GPU would see as kernel launches);
    * ``calls`` — *batched-primitive invocations*: one per call into the
      backend regardless of how many shape groups it splits into.  This is the
      quantity the paper's O(log N) launch argument refers to (a constant
      number of batched operations per level).
    """

    counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    calls: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, operation: str, launches: int = 1) -> None:
        """Record one batched-primitive call dispatching ``launches`` launches."""
        if launches < 0:
            raise ValueError("launches must be non-negative")
        self.counts[operation] += int(launches)
        self.calls[operation] += 1

    def total(self) -> int:
        """Total number of recorded launches across all operations."""
        return int(sum(self.counts.values()))

    def total_calls(self) -> int:
        """Total number of batched-primitive invocations."""
        return int(sum(self.calls.values()))

    def by_operation(self) -> Dict[str, int]:
        return dict(self.counts)

    def calls_by_operation(self) -> Dict[str, int]:
        return dict(self.calls)

    def snapshot(self) -> "CounterSnapshot":
        """A frozen copy of the current per-operation tallies.

        Pair with :meth:`since` to report the launches of one region of work
        (a single construction, a single apply) even when the counter is
        shared across many regions — the consolidation contract of
        :class:`repro.api.ExecutionPolicy` and :class:`repro.observe.SpanTracer`.
        """
        return CounterSnapshot(counts=dict(self.counts), calls=dict(self.calls))

    def since(self, snapshot: "CounterSnapshot") -> "CounterSnapshot":
        """Per-operation growth since ``snapshot`` (zero entries dropped)."""
        return CounterSnapshot(
            counts=_delta(self.counts, snapshot.counts),
            calls=_delta(self.calls, snapshot.calls),
        )

    def reset(self) -> None:
        self.counts.clear()
        self.calls.clear()

    def merge(self, other: "KernelLaunchCounter") -> None:
        for op, n in other.counts.items():
            self.counts[op] += n
        for op, n in other.calls.items():
            self.calls[op] += n

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        parts = ", ".join(f"{op}={n}" for op, n in sorted(self.counts.items()))
        return f"KernelLaunchCounter(total={self.total()}, {parts})"

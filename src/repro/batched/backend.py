"""Backends executing batched variable-size linear-algebra primitives.

The construction algorithm (Algorithm 1) is phrased entirely in terms of a
small set of batched operations over all nodes of a tree level:

====================  =====================================================
``batched_rand``      generate the random sketching block ``Omega``
``batched_gemm``      products such as ``Omega^{l+1} = E^T Omega^l``
``batched_gemm_accumulate``  the per-launch work of the non-uniform BSR product
``batched_gemm_scatter``  block GEMMs gathered from / scattered into the flat
                      buffer of a :class:`VariableBatch` (the per-stage launch
                      of the compiled H2 apply engine, :mod:`repro.batched.apply_plan`)
``batched_transpose`` re-layout of sample blocks before the pivoted QR
``batched_min_r_diag``  the adaptive convergence test (QR of every ``Y_loc``)
``batched_row_id``    the interpolative decompositions
``batched_rows``      gather of row subsets (marshaled ``Y(I_tau, :)``)
====================  =====================================================

Two backends are provided.  :class:`SerialBackend` executes one NumPy call per
matrix in the batch — this is the reference "CPU" implementation, analogous to
the paper's OpenMP-loop-around-BLAS variant.  :class:`VectorizedBackend`
groups the matrices of a batch by shape and executes each group with a single
stacked NumPy call (``np.matmul`` / ``np.linalg.qr`` on 3-D arrays), which is
the NumPy analogue of launching one batched GPU kernel per shape group; it
also records one "kernel launch" per group in the attached
:class:`~repro.batched.counters.KernelLaunchCounter`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..linalg.interpolative import InterpolativeDecomposition, row_id
from ..linalg.qr import smallest_r_diagonal
from ..utils.env import env_choice, normalize_choice
from ..utils.rng import SeedLike, as_generator
from .counters import KernelLaunchCounter
from .variable_batch import VariableBatch

Matrices = Sequence[np.ndarray]


class BatchedBackend(ABC):
    """Common interface of the batched execution backends."""

    #: Human readable backend name (used in benchmark output).
    name: str = "abstract"

    def __init__(self, counter: KernelLaunchCounter | None = None):
        from ..observe.tracer import NOOP_TRACER

        self.counter = counter if counter is not None else KernelLaunchCounter()
        #: The tracer downstream layers (apply plans, solvers, GP) consult.
        #: :meth:`repro.api.ExecutionPolicy.resolve_backend` replaces it when
        #: the policy carries an enabled tracer; the default no-op costs one
        #: attribute load per instrumented call site.
        self.tracer = NOOP_TRACER
        #: Resilience wiring, installed by ``ExecutionPolicy.resolve_backend``
        #: the same way as the tracer: a ``FaultInjector`` (or ``None``) and a
        #: ``RecoveryPolicy`` (or ``None``).  Guarded call sites read these
        #: via ``getattr``-style access, so the ``None`` defaults keep the
        #: no-resilience path at zero overhead.
        self.faults = None
        self.recovery = None

    # -------------------------------------------------------------- recording
    def _record(self, operation: str, launches: int) -> None:
        self.counter.record(operation, launches)

    # ------------------------------------------------------------- primitives
    @abstractmethod
    def batched_gemm(
        self,
        a: Matrices,
        b: Matrices,
        transpose_a: bool = False,
        transpose_b: bool = False,
    ) -> List[np.ndarray]:
        """Per-item products ``op(a_i) @ op(b_i)``."""

    @abstractmethod
    def batched_gemm_accumulate(
        self,
        c: Matrices,
        a: Matrices,
        b: Matrices,
        alpha: float = 1.0,
    ) -> None:
        """In-place ``c_i += alpha * a_i @ b_i`` (the BSR-product inner launch)."""

    @abstractmethod
    def batched_transpose(self, a: Matrices) -> List[np.ndarray]:
        """Per-item transposes (contiguous copies)."""

    @abstractmethod
    def batched_min_r_diag(self, a: Matrices) -> np.ndarray:
        """Smallest absolute R-diagonal of a QR of every item (convergence test).

        ``a`` may be a list of 2-D matrices or a uniform ``(count, m, d)`` 3-D
        stack (the compiled construction sweep passes its packed per-level
        sample buffers directly; zero-padded rows do not change the result).
        """

    def batched_gemm_scatter(
        self,
        dest: VariableBatch | np.ndarray,
        dest_pos: np.ndarray,
        a: Matrices,
        src: VariableBatch | np.ndarray,
        src_pos: np.ndarray,
        alpha: float = 1.0,
        operation: str = "batched_scatter_gemm",
    ) -> None:
        """Gathered block-row GEMMs ``dest[dest_pos[i]] += alpha * a_i @ vstack(src[src_pos[i*c : (i+1)*c]])``.

        The per-stage primitive of the compiled H2 apply engine
        (:mod:`repro.batched.apply_plan`) and of the compiled construction
        sweep (:mod:`repro.batched.construction_plan`), phrased as the paper's
        non-uniform BSR row product: each batch item is one *block row* whose
        static operand ``a_i`` of shape ``(p, c*q)`` concatenates the ``c``
        blocks of the row, and whose dynamic operand is the vertical
        concatenation of ``c`` source blocks gathered from the flat buffer of
        a :class:`VariableBatch` — or from a uniform ``(count, q, k)`` 3-D
        stack, which is how the construction engine passes (possibly strided)
        column windows of its preallocated sweep workspace.  The fan-in ``c``
        is implied by ``len(src_pos) == c * len(dest_pos)``.  Because a whole
        block row is one GEMM, destinations within a call are unique and the
        scatter is a plain indexed accumulate — callers fuse all blocks
        sharing a destination into one row.

        This reference implementation executes one GEMM per block row — the
        per-node "CPU" schedule.  :class:`VectorizedBackend` overrides it with
        a single gather / stacked-GEMM / scatter sequence per launch.
        """
        self._record(operation, 1)
        rows = len(dest_pos)
        if rows == 0:
            return
        fan_in = len(src_pos) // rows
        for i in range(rows):
            parts = [src[int(j)] for j in src_pos[i * fan_in : (i + 1) * fan_in]]
            rhs = parts[0] if fan_in == 1 else np.vstack(parts)
            block = dest[int(dest_pos[i])]
            block += alpha * (a[i] @ rhs)

    def batched_row_id(
        self,
        a: Matrices,
        rel_tol: float | None = None,
        abs_tols: Sequence[float] | None = None,
        max_rank: int | None = None,
    ) -> List[InterpolativeDecomposition]:
        """Row interpolative decomposition of every item.

        There is no stacked LAPACK pivoted QR, so both backends perform this
        as a loop; on the GPU the paper uses KBLAS' batched column-pivoted QR.
        The serial batch counts as a single launch; :class:`VectorizedBackend`
        groups the batch by shape and records one launch per group, mirroring
        how a batched QR kernel would be dispatched.
        """
        self._record("batched_id", 1)
        results = []
        for i, mat in enumerate(a):
            abs_tol = None if abs_tols is None else float(abs_tols[i])
            results.append(
                row_id(mat, rel_tol=rel_tol, abs_tol=abs_tol, max_rank=max_rank)
            )
        return results

    def batched_random_normal(
        self, shapes: Sequence[Tuple[int, int]], seed: SeedLike = None
    ) -> VariableBatch:
        """Generate a batch of standard-normal matrices in one flat allocation."""
        rng = as_generator(seed)
        batch = VariableBatch.from_shapes(shapes)
        batch.data[...] = rng.standard_normal(batch.total_elements)
        self._record("batched_rand", 1)
        return batch

    def batched_rows(self, a: Matrices, row_sets: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Gather row subsets ``a_i[rows_i, :]`` (marshaling helper)."""
        self._record("batched_gather", 1)
        return [np.ascontiguousarray(mat[rows]) for mat, rows in zip(a, row_sets)]

    # -------------------------------------------------------------- reporting
    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}(launches={self.counter.total()})"


class SerialBackend(BatchedBackend):
    """Reference backend: one NumPy/BLAS call per matrix in the batch.

    Mirrors the paper's CPU implementation where every node of a level is
    processed by an independent (OpenMP-parallel) loop iteration calling
    single-threaded BLAS/LAPACK.
    """

    name = "serial"

    def batched_gemm(
        self,
        a: Matrices,
        b: Matrices,
        transpose_a: bool = False,
        transpose_b: bool = False,
    ) -> List[np.ndarray]:
        self._record("batched_gemm", 1)
        out: List[np.ndarray] = []
        for ai, bi in zip(a, b):
            left = ai.T if transpose_a else ai
            right = bi.T if transpose_b else bi
            out.append(left @ right)
        return out

    def batched_gemm_accumulate(
        self,
        c: Matrices,
        a: Matrices,
        b: Matrices,
        alpha: float = 1.0,
    ) -> None:
        self._record("batched_bsr_gemm", 1)
        for ci, ai, bi in zip(c, a, b):
            ci += alpha * (ai @ bi)

    def batched_transpose(self, a: Matrices) -> List[np.ndarray]:
        self._record("batched_transpose", 1)
        return [np.ascontiguousarray(mat.T) for mat in a]

    def batched_min_r_diag(self, a: Matrices) -> np.ndarray:
        self._record("batched_qr", 1)
        return np.array([smallest_r_diagonal(mat) for mat in a], dtype=np.float64)


class VectorizedBackend(BatchedBackend):
    """Shape-grouped backend: one stacked NumPy call per shape group.

    This is the GPU-simulation backend.  All matrices of a batch sharing the
    same shape are stacked into a 3-D array and processed with a single
    vectorised call (``np.matmul`` broadcasting over the leading axis,
    stacked ``np.linalg.qr``), so the number of library dispatches per level is
    the number of distinct shapes rather than the number of nodes — exactly
    the launch-reduction the paper's batched kernels achieve.
    """

    name = "vectorized"

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _group_by_shape(*mats: Matrices) -> Dict[tuple, List[int]]:
        groups: Dict[tuple, List[int]] = defaultdict(list)
        count = len(mats[0])
        for i in range(count):
            key = tuple(m[i].shape for m in mats)
            groups[key].append(i)
        return groups

    def batched_gemm(
        self,
        a: Matrices,
        b: Matrices,
        transpose_a: bool = False,
        transpose_b: bool = False,
    ) -> List[np.ndarray]:
        if len(a) != len(b):
            raise ValueError("batched_gemm requires equal batch sizes")
        out: List[np.ndarray | None] = [None] * len(a)
        groups = self._group_by_shape(a, b)
        self._record("batched_gemm", len(groups))
        for indices in groups.values():
            stack_a = np.stack([a[i] for i in indices])
            stack_b = np.stack([b[i] for i in indices])
            if transpose_a:
                stack_a = stack_a.transpose(0, 2, 1)
            if transpose_b:
                stack_b = stack_b.transpose(0, 2, 1)
            prod = np.matmul(stack_a, stack_b)
            for pos, i in enumerate(indices):
                out[i] = prod[pos]
        return out  # type: ignore[return-value]

    def batched_gemm_accumulate(
        self,
        c: Matrices,
        a: Matrices,
        b: Matrices,
        alpha: float = 1.0,
    ) -> None:
        if not (len(a) == len(b) == len(c)):
            raise ValueError("batched_gemm_accumulate requires equal batch sizes")
        groups = self._group_by_shape(a, b)
        self._record("batched_bsr_gemm", len(groups))
        for indices in groups.values():
            stack_a = np.stack([a[i] for i in indices])
            stack_b = np.stack([b[i] for i in indices])
            prod = np.matmul(stack_a, stack_b)
            for pos, i in enumerate(indices):
                c[i] += alpha * prod[pos]

    def batched_transpose(self, a: Matrices) -> List[np.ndarray]:
        groups = self._group_by_shape(a)
        self._record("batched_transpose", len(groups))
        out: List[np.ndarray | None] = [None] * len(a)
        for indices in groups.values():
            stack = np.stack([a[i] for i in indices]).transpose(0, 2, 1).copy()
            for pos, i in enumerate(indices):
                out[i] = stack[pos]
        return out  # type: ignore[return-value]

    @staticmethod
    def _as_uniform_stack(buffer: VariableBatch | np.ndarray) -> np.ndarray | None:
        """``(count, rows, cols)`` view of a uniform batch, or ``None``.

        Accepts either a :class:`VariableBatch` (uniform-shape check) or an
        already-stacked 3-D array — the latter is how the compiled construction
        engine passes column windows of its preallocated sweep buffers, which
        may be strided views.
        """
        if isinstance(buffer, np.ndarray):
            return buffer if buffer.ndim == 3 else None
        return buffer.uniform_stack()

    def batched_gemm_scatter(
        self,
        dest: VariableBatch | np.ndarray,
        dest_pos: np.ndarray,
        a: Matrices,
        src: VariableBatch | np.ndarray,
        src_pos: np.ndarray,
        alpha: float = 1.0,
        operation: str = "batched_scatter_gemm",
    ) -> None:
        """One gather / stacked-GEMM / scatter per launch.

        The compiled-plan case — a pre-stacked 3-D ``a`` over *uniform* source
        and destination batches — runs with **no** Python-level per-block work:
        the ``c`` source blocks of every block row are marshaled with a single
        first-axis fancy gather (then viewed as the ``(g, c*q, k)`` stacked
        right-hand side), multiplied with one ``np.matmul`` over the stack, and
        accumulated with one fancy indexed add (destinations are unique by the
        block-row contract).  Non-uniform batches or list-of-blocks operands
        fall back to the reference loop.
        """
        rows = len(dest_pos)
        if rows == 0:
            self._record(operation, 0)
            return
        src_stack = self._as_uniform_stack(src)
        dest_stack = self._as_uniform_stack(dest)
        if (
            src_stack is None
            or dest_stack is None
            or not (isinstance(a, np.ndarray) and a.ndim == 3)
        ):
            super().batched_gemm_scatter(
                dest, dest_pos, a, src, src_pos, alpha=alpha, operation=operation
            )
            return
        self._record(operation, 1)
        g, p, cq = a.shape
        k = src_stack.shape[2]
        if p == 0 or cq == 0 or k == 0:
            return
        rhs = src_stack[src_pos].reshape(g, cq, k)
        prod = np.matmul(a, rhs)
        if alpha != 1.0:
            prod *= alpha
        dest_stack[dest_pos] += prod

    def batched_row_id(
        self,
        a: Matrices,
        rel_tol: float | None = None,
        abs_tols: Sequence[float] | None = None,
        max_rank: int | None = None,
    ) -> List[InterpolativeDecomposition]:
        """Rank-grouped row IDs: one recorded launch per distinct block shape.

        The decompositions themselves are the same per-matrix pivoted QRs as
        the serial path (bit-identical skeleton selections); grouping the
        batch by shape mirrors how a batched column-pivoted QR kernel (KBLAS)
        would be dispatched and is what the launch counters report.
        """
        groups = self._group_by_shape(a)
        self._record("batched_id", len(groups))
        results: List[InterpolativeDecomposition | None] = [None] * len(a)
        for indices in groups.values():
            for i in indices:
                abs_tol = None if abs_tols is None else float(abs_tols[i])
                results[i] = row_id(
                    a[i], rel_tol=rel_tol, abs_tol=abs_tol, max_rank=max_rank
                )
        return results  # type: ignore[return-value]

    def batched_min_r_diag(self, a: Matrices) -> np.ndarray:
        if isinstance(a, np.ndarray) and a.ndim == 3:
            # Pre-stacked uniform batch: a single stacked QR, no marshaling.
            self._record("batched_qr", 1)
            count, rows, cols = a.shape
            if rows == 0 or cols == 0 or rows < cols:
                return np.zeros(count, dtype=np.float64)
            r = np.linalg.qr(a, mode="r")
            diags = np.abs(np.diagonal(r, axis1=-2, axis2=-1))
            return diags.min(axis=-1) if diags.size else np.zeros(count)
        out = np.zeros(len(a), dtype=np.float64)
        groups = self._group_by_shape(a)
        self._record("batched_qr", len(groups))
        for indices in groups.values():
            sample = a[indices[0]]
            rows, cols = sample.shape
            if rows == 0 or cols == 0 or rows < cols:
                # Rank-deficient by construction: converged (see smallest_r_diagonal).
                for i in indices:
                    out[i] = 0.0
                continue
            stack = np.stack([a[i] for i in indices])
            r = np.linalg.qr(stack, mode="r")
            diags = np.abs(np.diagonal(r, axis1=-2, axis2=-1))
            mins = diags.min(axis=-1) if diags.size else np.zeros(len(indices))
            for pos, i in enumerate(indices):
                out[i] = mins[pos]
        return out


#: Named backend registry.  Maps a lower-case name to a factory accepting a
#: ``counter=`` keyword (usually the backend class itself).  Extend it through
#: :func:`register_backend` / :func:`repro.backends.register`.
_BACKENDS: Dict[str, type] = {}


def register_backend(
    name: str,
    factory: type | "Callable[..., BatchedBackend]",
    aliases: Sequence[str] = (),
    overwrite: bool = False,
) -> None:
    """Register a named batched backend.

    ``factory`` is a :class:`BatchedBackend` subclass (or any callable
    accepting a ``counter=`` keyword and returning a backend instance); after
    registration the name resolves everywhere a backend name is accepted —
    :func:`get_backend`, :class:`~repro.api.policy.ExecutionPolicy`,
    ``ConstructionConfig(backend=...)``, ``H2Matrix.matvec(backend=...)``.

    Names are case-insensitive.  Re-registering an existing name raises
    :class:`ValueError` unless ``overwrite=True`` (the built-in names can be
    shadowed deliberately, e.g. to route ``"vectorized"`` through an
    instrumented backend in a test).
    """
    keys = [normalize_choice(key) for key in (name, *aliases)]
    if not overwrite:
        # Validate every key before mutating so a conflicting alias does not
        # leave a half-registered backend behind.
        for key in keys:
            if key in _BACKENDS:
                raise ValueError(
                    f"backend {key!r} is already registered; pass "
                    "overwrite=True to replace it"
                )
    for key in keys:
        _BACKENDS[key] = factory  # type: ignore[assignment]


def available_backends() -> Tuple[str, ...]:
    """Sorted names currently registered (including aliases)."""
    return tuple(sorted(_BACKENDS))


register_backend("serial", SerialBackend, aliases=("cpu",))
register_backend("vectorized", VectorizedBackend, aliases=("batched", "gpu"))


def get_backend(
    name: str | BatchedBackend | None = "auto",
    counter: KernelLaunchCounter | None = None,
) -> BatchedBackend:
    """Return a backend instance from a registered name.

    Built-in names: ``serial``/``cpu`` and ``vectorized``/``batched``/``gpu``;
    :func:`register_backend` adds more.  ``"auto"`` (or ``None``) follows the
    ``REPRO_BACKEND`` environment variable and falls back to ``vectorized`` —
    the single env-override point the execution policies consolidate on.

    Passing an existing backend returns it unchanged so functions can accept
    either a name or an instance.
    """
    if isinstance(name, BatchedBackend):
        return name
    if name is None or normalize_choice(name) == "auto":
        name = env_choice("REPRO_BACKEND", "vectorized")
    key = normalize_choice(name)
    if key not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available: {sorted(set(_BACKENDS))}"
        )
    return _BACKENDS[key](counter=counter)

"""A batch of variable-size matrices backed by one flat allocation.

The GPU implementation avoids per-block allocations: the total workspace for a
level is computed with a prefix sum over the block dimensions and allocated in
a single call, and every block is a view into that flat buffer.
:class:`VariableBatch` reproduces this layout in NumPy; indexing returns a
reshaped *view*, so writing through a block mutates the shared buffer exactly
as a GPU kernel writing through a marshaled pointer array would.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from ..utils.prefix_sum import offsets_from_sizes


class VariableBatch:
    """A sequence of 2-D matrices with possibly different shapes in one buffer."""

    def __init__(self, rows: Sequence[int], cols: Sequence[int], data: np.ndarray | None = None):
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        if self.rows.shape != self.cols.shape or self.rows.ndim != 1:
            raise ValueError("rows and cols must be 1-D arrays of equal length")
        if np.any(self.rows < 0) or np.any(self.cols < 0):
            raise ValueError("matrix dimensions must be non-negative")
        sizes = self.rows * self.cols
        self.offsets, total = offsets_from_sizes(sizes) if len(sizes) else (np.zeros(0, np.int64), 0)
        if data is None:
            self.data = np.zeros(total, dtype=np.float64)
        else:
            data = np.asarray(data, dtype=np.float64).reshape(-1)
            if data.shape[0] != total:
                raise ValueError(
                    f"flat buffer has {data.shape[0]} elements, layout requires {total}"
                )
            self.data = data

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_shapes(cls, shapes: Iterable[tuple[int, int]]) -> "VariableBatch":
        """Allocate a zero-initialised batch for the given ``(rows, cols)`` shapes."""
        shapes = list(shapes)
        rows = [s[0] for s in shapes]
        cols = [s[1] for s in shapes]
        return cls(rows, cols)

    @classmethod
    def from_matrices(cls, matrices: Sequence[np.ndarray]) -> "VariableBatch":
        """Copy a list of matrices into a freshly allocated flat batch."""
        mats = [np.atleast_2d(np.asarray(m, dtype=np.float64)) for m in matrices]
        batch = cls.from_shapes([m.shape for m in mats])
        for i, m in enumerate(mats):
            batch[i][...] = m
        return batch

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def count(self) -> int:
        return len(self)

    @property
    def total_elements(self) -> int:
        return int(self.data.shape[0])

    def shape(self, i: int) -> tuple[int, int]:
        return (int(self.rows[i]), int(self.cols[i]))

    def __getitem__(self, i: int) -> np.ndarray:
        r, c = int(self.rows[i]), int(self.cols[i])
        off = int(self.offsets[i])
        return self.data[off : off + r * c].reshape(r, c)

    def __setitem__(self, i: int, value: np.ndarray) -> None:
        block = self[i]
        block[...] = np.asarray(value, dtype=np.float64).reshape(block.shape)

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self[i]

    def to_list(self) -> List[np.ndarray]:
        """Copy every block out into an independent list of arrays."""
        return [self[i].copy() for i in range(len(self))]

    def uniform_stack(self) -> np.ndarray | None:
        """The batch as a ``(count, rows, cols)`` view when all blocks share one shape.

        Uniform batches (e.g. the level-padded hat vectors of the compiled H2
        apply engine) admit first-axis fancy indexing of whole blocks, which is
        far cheaper than per-block flat-offset gathers; returns ``None`` when
        the shapes differ and the prefix-sum offsets must be used instead.
        """
        if len(self) == 0:
            return None
        r, c = int(self.rows[0]), int(self.cols[0])
        if np.all(self.rows == r) and np.all(self.cols == c):
            return self.data.reshape(len(self), r, c)
        return None

    def memory_bytes(self) -> int:
        """Bytes occupied by the flat buffer (excluding the small offset arrays)."""
        return int(self.data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"VariableBatch(count={len(self)}, total_elements={self.total_elements})"
        )

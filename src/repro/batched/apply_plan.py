"""Compiled batched apply engine for H2 matrices.

PR 1 turned every constructed format into a linear-system workload, which makes
``H2Matrix.matvec`` the Krylov hot path — and the reference implementation is a
per-node Python loop over dicts.  The paper's central point (Section IV) is
that all per-node work of a tree level should execute as a *handful of batched
launches*; this module applies the same treatment to the H2 apply that
:mod:`repro.core.builder` already applies to construction.

:func:`compile_apply_plan` flattens an ``H2Matrix`` once into an
:class:`H2ApplyPlan`: a short sequence of per-level *stages*.  Each stage is a
uniform batch of block-row GEMMs in the paper's non-uniform-BSR formulation —
all static blocks sharing a destination (the coupling blocks of a block row,
the dense blocks of a leaf row, the two child transfers of a parent) are
fused side by side into one ``(p, c*q)`` operand, pre-stacked into a
contiguous 3-D array at compile time.  The dynamic per-node vectors (``x̂`` /
``ŷ`` of every level, and the leaf-blocked input/output) live in flat
:class:`~repro.batched.variable_batch.VariableBatch` buffers laid out by the
prefix sums of :mod:`repro.utils.prefix_sum`.  Executing the plan walks the
stages through a pluggable :class:`~repro.batched.backend.BatchedBackend`
(``batched_gemm_scatter``), so a matvec costs O(levels) batched dispatches
instead of one small GEMM per tree node, and every dispatch is recorded in the
backend's :class:`~repro.batched.counters.KernelLaunchCounter`.

The phases mirror the reference loop exactly:

========================  ====================================================
``apply_leaf``            upward pass at the leaves, ``x̂_tau = U_tau^T x_tau``
``apply_upsweep``         transfer accumulation, ``x̂_p += [E_c1^T E_c2^T] x̂``
``apply_coupling``        coupling rows, ``ŷ_s += [B_{s,t1} … B_{s,tc}] x̂``
``apply_downsweep``       downward pass, ``ŷ_c += E_c ŷ_p``
``apply_expand``          leaf expansion, ``y_tau += U_tau ŷ_tau``
``apply_dense``           dense leaf rows, ``y_s += [D_{s,t1} … D_{s,tc}] x``
========================  ====================================================

The transpose apply (``rmatvec``/``rmatmat``) shares the basis/transfer stages
(the format is symmetric in its bases, ``V = U``) and rebuilds the coupling
and dense rows column-wise with transposed blocks, compiled lazily on first
use.  Multi-RHS applies (``matmat``) reuse the same plan — only the number of
columns ``k`` of the hat buffers changes at execution time.

Zero-padding
------------
Batched GPU kernels want uniform batches; the compiler manufactures them the
same way the paper's marshaling does, with exact zero-padding:

* node ranks are padded to the bucketed maximum rank of their level
  (``pad_to`` rounding), so every hat buffer is a uniform stack;
* leaf blocks of the input/output vectors are padded to the maximum leaf size;
* the fan-in ``c`` of coupling/dense block rows is padded to a multiple of
  ``fan_pad`` by appending zero blocks that read a sentinel zero source block.

Padded rows and columns of ``U``/``E``/``B``/``D`` are zero, so the padded hat
entries stay exactly zero through every phase — the compiled apply is
bit-for-bit a reordering of the reference loop's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from .backend import BatchedBackend, get_backend
from .variable_batch import VariableBatch


def fan_bucket(fan: int, fan_pad: int) -> int:
    """Bucketed row fan-in: exact below ``fan_pad``, multiples of it above.

    Shared by the apply and construction engines so both group block rows
    under the same policy: small fans (the sweeps' 1-2 blocks per row) stay
    exact — padding them would multiply the operand bytes — while wide
    coupling/dense rows collapse into a handful of fan groups.
    """
    if fan <= fan_pad:
        return fan
    return ((fan + fan_pad - 1) // fan_pad) * fan_pad

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hmatrix.h2matrix import H2Matrix

#: Buffer keys: ``("x",)`` / ``("y",)`` are the leaf-blocked (padded)
#: input/output vectors, ``("hat", level)`` / ``("ghat", level)`` the
#: upward/downward per-level hat vectors.
BufferKey = Tuple

#: One block row awaiting compilation: destination position and the
#: ``(static_block, source_position, block_key)`` triples fused into the row.
#: ``block_key`` names the matrix block the operand came from — ``("U", node,
#: transposed)``, ``("E", child, transposed)``, ``("B", s, t, transposed)`` or
#: ``("D", s, t, transposed)`` — so :meth:`H2ApplyPlan.refresh` can re-stack
#: new coefficients into the compiled layout.
_Row = Tuple[int, List[Tuple[np.ndarray, int, Tuple]]]


@dataclass(frozen=True, eq=False)
class ApplyStage:
    """One batched launch of block-row GEMMs.

    ``a`` is the contiguous ``(g, p, c*q)`` stack of row operands;
    ``dest_pos`` holds the ``g`` (unique) destination block positions and
    ``src_pos`` the ``g*c`` gathered source block positions in the
    :class:`VariableBatch` buffers named by ``dest``/``src``.
    """

    op: str
    level: int
    dest: BufferKey
    src: BufferKey
    a: np.ndarray
    dest_pos: np.ndarray
    src_pos: np.ndarray
    fan_in: int
    #: Number of real (un-padded) block products fused into this stage.
    num_blocks: int
    #: ``(row, slot, block_key)`` fill recipe of the real blocks inside ``a``
    #: (used by :meth:`H2ApplyPlan.refresh` to re-stack new coefficients).
    recipe: Tuple[Tuple[int, int, Tuple], ...] = ()

    @property
    def batch_size(self) -> int:
        return int(self.a.shape[0])

    def flops(self, k: int) -> int:
        """Multiply-add flops of this stage for a ``k``-column apply (padding included)."""
        g, p, cq = self.a.shape
        return int(2 * g * p * cq * k)


class H2ApplyPlan:
    """Per-level batched execution plan of an :class:`~repro.hmatrix.h2matrix.H2Matrix`.

    Build with :func:`compile_apply_plan` (or ``H2Matrix.apply_plan()``, which
    caches the compiled plan on the matrix).  The plan holds padded *copies* of
    the matrix blocks — mutating the matrix after compilation requires
    recompiling.
    """

    def __init__(self, matrix: "H2Matrix", pad_to: int = 1, fan_pad: int = 4):
        tree = matrix.tree
        basis = matrix.basis
        if pad_to < 1 or fan_pad < 1:
            raise ValueError("pad_to and fan_pad must be positive integers")
        self.n = tree.num_points
        self.num_levels = tree.num_levels
        self.depth = tree.depth
        self.pad_to = int(pad_to)
        self.fan_pad = int(fan_pad)

        # Leaf-block layout of the (padded) input/output vectors.  The last
        # block of every buffer is the sentinel zero block read by fan-in
        # padding; its position is ``count``.
        self._leaf_nodes = list(tree.leaves())
        self._leaf_pos = {node: i for i, node in enumerate(self._leaf_nodes)}
        self._leaf_sizes = np.array(
            [tree.cluster_size(node) for node in self._leaf_nodes], dtype=np.int64
        )
        self.leaf_pad = int(self._leaf_sizes.max()) if len(self._leaf_nodes) else 0

        # Per-level hat-vector layout: nodes carrying a (nonzero-rank) basis,
        # all padded to the bucketed maximum rank of their level so each hat
        # buffer is one uniform stack.
        self._level_pos: Dict[int, Dict[int, int]] = {}
        self._level_rank: Dict[int, int] = {}
        for level in range(tree.depth, -1, -1):
            nodes = [
                node
                for node in tree.nodes_at_level(level)
                if basis.has_basis(node) and basis.rank(node) > 0
            ]
            if not nodes:
                continue
            self._level_pos[level] = {node: i for i, node in enumerate(nodes)}
            self._level_rank[level] = self._bucket(
                max(basis.rank(node) for node in nodes)
            )

        self._forward_stages = self._assemble(matrix, transpose=False)
        self._transpose_stages: List[ApplyStage] | None = None
        self._matrix = matrix  # needed for lazy transpose compilation
        self._signature = self._structure(matrix)

    # ------------------------------------------------------------ compilation
    def _bucket(self, rank: int) -> int:
        """Round ``rank`` up to the plan's bucket size."""
        pad = self.pad_to
        return ((int(rank) + pad - 1) // pad) * pad

    def _fan_bucket(self, fan: int) -> int:
        return fan_bucket(fan, self.fan_pad)

    @staticmethod
    def _padded(a: np.ndarray, rows: int, cols: int) -> np.ndarray:
        """Zero-pad a 2-D block to ``(rows, cols)``."""
        if a.shape == (rows, cols):
            return a
        out = np.zeros((rows, cols), dtype=np.float64)
        out[: a.shape[0], : a.shape[1]] = a
        return out

    def _rows_to_stages(
        self,
        op: str,
        level: int,
        dest: BufferKey,
        src: BufferKey,
        rows: Sequence[_Row],
        sentinel: int,
    ) -> List[ApplyStage]:
        """Pad block-row fan-ins to multiples of ``fan_pad``, group and stack.

        Every row's blocks already share the padded shape ``(p, q)``; rows are
        grouped by padded fan-in so each group is one uniform batched launch.
        """
        if not rows:
            return []
        p, q = rows[0][1][0][0].shape
        by_fan: Dict[int, List[_Row]] = {}
        for row in rows:
            by_fan.setdefault(self._fan_bucket(len(row[1])), []).append(row)
        stages = []
        for fan in sorted(by_fan):
            group = by_fan[fan]
            a = np.zeros((len(group), p, fan * q), dtype=np.float64)
            dest_pos = np.empty(len(group), dtype=np.int64)
            src_pos = np.full(len(group) * fan, sentinel, dtype=np.int64)
            num_blocks = 0
            recipe: List[Tuple[int, int, Tuple]] = []
            for i, (dpos, blocks) in enumerate(group):
                dest_pos[i] = dpos
                num_blocks += len(blocks)
                for j, (block, spos, key) in enumerate(blocks):
                    a[i, :, j * q : (j + 1) * q] = block
                    src_pos[i * fan + j] = spos
                    recipe.append((i, j, key))
            stages.append(
                ApplyStage(
                    op=op,
                    level=level,
                    dest=dest,
                    src=src,
                    a=a,
                    dest_pos=dest_pos,
                    src_pos=src_pos,
                    fan_in=fan,
                    num_blocks=num_blocks,
                    recipe=tuple(recipe),
                )
            )
        return stages

    def _sweep_rows(self, matrix: "H2Matrix"):
        """Leaf, upsweep, downsweep and expansion stages (shared with transpose)."""
        tree = matrix.tree
        basis = matrix.basis
        depth = tree.depth
        leaf_level = self._level_pos.get(depth, {})
        r_leaf = self._level_rank.get(depth, 0)
        m = self.leaf_pad
        x_sentinel = len(self._leaf_nodes)

        leaf_up: List[_Row] = []
        leaf_down: List[_Row] = []
        for node, pos in leaf_level.items():
            u = basis.leaf_bases.get(node)
            if u is None or u.size == 0:
                continue
            lpos = self._leaf_pos[node]
            leaf_up.append(
                (pos, [(self._padded(u.T, r_leaf, m), lpos, ("U", node, True))])
            )
            leaf_down.append(
                (lpos, [(self._padded(u, m, r_leaf), pos, ("U", node, False))])
            )

        up: List[ApplyStage] = []
        down: List[ApplyStage] = []
        for level in range(depth, 1, -1):
            child_pos = self._level_pos.get(level)
            parent_pos = self._level_pos.get(level - 1)
            if not child_pos or not parent_pos:
                continue
            rc, rp = self._level_rank[level], self._level_rank[level - 1]
            up_rows: Dict[int, _Row] = {}
            down_rows: List[_Row] = []
            for child, cpos in child_pos.items():
                e = basis.transfers.get(child)
                parent = tree.parent(child)
                if e is None or e.size == 0 or parent not in parent_pos:
                    continue
                ppos = parent_pos[parent]
                row = up_rows.setdefault(ppos, (ppos, []))
                row[1].append((self._padded(e.T, rp, rc), cpos, ("E", child, True)))
                down_rows.append(
                    (cpos, [(self._padded(e, rc, rp), ppos, ("E", child, False))])
                )
            up.extend(
                self._rows_to_stages(
                    "apply_upsweep",
                    level,
                    ("hat", level - 1),
                    ("hat", level),
                    list(up_rows.values()),
                    sentinel=len(child_pos),
                )
            )
            down.extend(
                self._rows_to_stages(
                    "apply_downsweep",
                    level,
                    ("ghat", level),
                    ("ghat", level - 1),
                    down_rows,
                    sentinel=len(parent_pos),
                )
            )
        down.reverse()  # downsweep pushes root-ward hats before leaf-ward ones

        leaf_stages = self._rows_to_stages(
            "apply_leaf", depth, ("hat", depth), ("x",), leaf_up, sentinel=x_sentinel
        )
        expand_stages = self._rows_to_stages(
            "apply_expand",
            depth,
            ("y",),
            ("ghat", depth),
            leaf_down,
            sentinel=len(leaf_level),
        )
        return leaf_stages, up, down, expand_stages

    def _coupling_stages(
        self, matrix: "H2Matrix", transpose: bool
    ) -> List[ApplyStage]:
        per_level: Dict[int, Dict[int, _Row]] = {}
        for (s, t) in sorted(matrix.coupling):
            b = matrix.coupling[(s, t)]
            if b.size == 0:
                continue
            level = matrix.tree.level_of(s)
            pos = self._level_pos.get(level)
            if pos is None or s not in pos or t not in pos:
                continue
            r = self._level_rank[level]
            if transpose:
                block, dpos, spos = self._padded(b.T, r, r), pos[t], pos[s]
            else:
                block, dpos, spos = self._padded(b, r, r), pos[s], pos[t]
            row = per_level.setdefault(level, {}).setdefault(dpos, (dpos, []))
            row[1].append((block, spos, ("B", s, t, transpose)))
        stages = []
        for level in sorted(per_level):
            stages.extend(
                self._rows_to_stages(
                    "apply_coupling",
                    level,
                    ("ghat", level),
                    ("hat", level),
                    list(per_level[level].values()),
                    sentinel=len(self._level_pos[level]),
                )
            )
        return stages

    def _dense_stages(self, matrix: "H2Matrix", transpose: bool) -> List[ApplyStage]:
        m = self.leaf_pad
        rows: Dict[int, _Row] = {}
        for (s, t) in sorted(matrix.dense):
            d = matrix.dense[(s, t)]
            if d.size == 0:
                continue
            if transpose:
                block, dpos, spos = self._padded(d.T, m, m), self._leaf_pos[t], self._leaf_pos[s]
            else:
                block, dpos, spos = self._padded(d, m, m), self._leaf_pos[s], self._leaf_pos[t]
            row = rows.setdefault(dpos, (dpos, []))
            row[1].append((block, spos, ("D", s, t, transpose)))
        return self._rows_to_stages(
            "apply_dense",
            self.depth,
            ("y",),
            ("x",),
            list(rows.values()),
            sentinel=len(self._leaf_nodes),
        )

    def _assemble(self, matrix: "H2Matrix", transpose: bool) -> List[ApplyStage]:
        if transpose:
            leaf_stages, up, down, expand_stages = self._sweeps
        else:
            self._sweeps = self._sweep_rows(matrix)
            leaf_stages, up, down, expand_stages = self._sweeps
        stages: List[ApplyStage] = []
        stages.extend(leaf_stages)
        stages.extend(up)
        stages.extend(self._coupling_stages(matrix, transpose))
        stages.extend(down)
        stages.extend(expand_stages)
        stages.extend(self._dense_stages(matrix, transpose))
        return stages

    def _ensure_transpose(self) -> List[ApplyStage]:
        if self._transpose_stages is None:
            self._transpose_stages = self._assemble(self._matrix, transpose=True)
        return self._transpose_stages

    # ----------------------------------------------------- coefficient refresh
    @staticmethod
    def _structure(matrix: "H2Matrix") -> Tuple:
        """Structural fingerprint: everything the compiled layout depends on.

        Two matrices with equal structures (tree sizes, per-node ranks, block
        key sets and therefore all block shapes) compile to identical plans up
        to the *values* inside the stacked operands — exactly the situation of
        a hyperparameter sweep re-constructing the same geometry with new
        kernel coefficients.
        """
        tree, basis = matrix.tree, matrix.basis
        ranks = tuple(
            (node, basis.rank(node))
            for node in range(tree.num_nodes)
            if basis.has_basis(node) and basis.rank(node) > 0
        )
        leaf_sizes = tuple(int(tree.cluster_size(node)) for node in tree.leaves())
        coupling = tuple(
            sorted((s, t) for (s, t), b in matrix.coupling.items() if b.size)
        )
        dense = tuple(sorted((s, t) for (s, t), d in matrix.dense.items() if d.size))
        bases = tuple(
            sorted(
                (node, u.shape)
                for node, u in basis.leaf_bases.items()
                if u is not None and u.size
            )
        )
        transfers = tuple(
            sorted(
                (node, e.shape)
                for node, e in basis.transfers.items()
                if e is not None and e.size
            )
        )
        return (tree.num_points, ranks, leaf_sizes, coupling, dense, bases, transfers)

    @staticmethod
    def _lookup_block(matrix: "H2Matrix", key: Tuple) -> np.ndarray:
        kind = key[0]
        if kind == "U":
            block = matrix.basis.leaf_bases[key[1]]
        elif kind == "E":
            block = matrix.basis.transfers[key[1]]
        elif kind == "B":
            block = matrix.coupling[(key[1], key[2])]
        else:
            block = matrix.dense[(key[1], key[2])]
        return block.T if key[-1] else block

    def matches(self, matrix: "H2Matrix") -> bool:
        """Whether ``matrix`` has the structure this plan was compiled for."""
        return self._structure(matrix) == self._signature

    def refresh(self, matrix: "H2Matrix") -> "H2ApplyPlan":
        """Re-stack the plan's operands with the blocks of ``matrix`` in place.

        The sweep-reuse fast path: when a re-construction over the same
        geometry reproduces the structure of the originally compiled matrix
        (same tree, per-node ranks and block key sets — see :meth:`matches`),
        the compiled layout (positions, paddings, stage grouping) is still
        valid and only the numerical coefficients need re-stacking.  Raises
        :class:`ValueError` on a structural mismatch; compile a fresh plan in
        that case.

        Ownership moves to ``matrix``: the plan's operand arrays are mutated,
        so the previously attached matrix (if it still points at this plan)
        is detached and will lazily compile a fresh plan of its own on next
        use — earlier sweep results stay correct at the cost of a recompile
        if they are applied again.
        """
        if not self.matches(matrix):
            raise ValueError(
                "matrix structure does not match the compiled plan; "
                "use compile_apply_plan to build a fresh plan"
            )
        previous = self._matrix
        if (
            previous is not None
            and previous is not matrix
            and getattr(previous, "_plan", None) is self
        ):
            previous._plan = None
        stages = list(self._forward_stages)
        if self._transpose_stages is not None:
            stages.extend(self._transpose_stages)
        seen: set = set()
        for stage in stages:
            if id(stage.a) in seen:
                continue  # sweep stages are shared between forward and transpose
            seen.add(id(stage.a))
            stage.a[...] = 0.0
            q = stage.a.shape[2] // stage.fan_in
            for i, j, key in stage.recipe:
                block = self._lookup_block(matrix, key)
                stage.a[i, : block.shape[0], j * q : j * q + block.shape[1]] = block
        self._matrix = matrix
        return self

    # -------------------------------------------------------------- execution
    def _leaf_buffer(self, values: np.ndarray | None, k: int) -> VariableBatch:
        """A padded leaf-blocked buffer (+ sentinel), optionally filled from ``values``."""
        count = len(self._leaf_nodes)
        rows = np.full(count + 1, self.leaf_pad, dtype=np.int64)
        cols = np.full(count + 1, k, dtype=np.int64)
        buffer = VariableBatch(rows, cols)
        if values is not None and count:
            stack = buffer.data.reshape(count + 1, self.leaf_pad, k)
            if int(self._leaf_sizes.min()) == self.leaf_pad:
                stack[:count] = values.reshape(count, self.leaf_pad, k)
            else:
                offset = 0
                for i, size in enumerate(self._leaf_sizes):
                    stack[i, :size] = values[offset : offset + size]
                    offset += int(size)
        return buffer

    def _read_leaf_buffer(self, buffer: VariableBatch, out: np.ndarray) -> np.ndarray:
        count = len(self._leaf_nodes)
        k = out.shape[1]
        stack = buffer.data.reshape(count + 1, self.leaf_pad, k)
        if count and int(self._leaf_sizes.min()) == self.leaf_pad:
            out[...] = stack[:count].reshape(out.shape)
        else:
            offset = 0
            for i, size in enumerate(self._leaf_sizes):
                out[offset : offset + size] = stack[i, :size]
                offset += int(size)
        return out

    def execute(
        self,
        x: np.ndarray,
        backend: BatchedBackend | str = "vectorized",
        transpose: bool = False,
    ) -> np.ndarray:
        """Apply the compiled plan to ``x`` of shape ``(n, k)`` (permuted ordering).

        When the backend carries an enabled tracer (installed by
        :meth:`repro.api.ExecutionPolicy.resolve_backend`), the apply runs
        inside an ``apply`` span attributed with the plan's launch deltas,
        flop count and operand bytes; otherwise the only instrumentation cost
        is this ``enabled`` check.
        """
        be = get_backend(backend)
        tracer = getattr(be, "tracer", None)
        if tracer is None or not tracer.enabled:
            return self._execute(x, be, transpose)
        with tracer.span(
            "apply", category="apply", n=self.n, transpose=transpose,
            backend=be.name, levels=self.num_levels,
            block_products=self.num_block_products,
        ) as span:
            out = self._execute(x, be, transpose)
            k = out.shape[1]
            operand_bytes = int(sum(s.a.nbytes for s in self._forward_stages))
            span.set(k=k, operand_bytes=operand_bytes)
            span.add_flops(self.flops(k))
            span.add_bytes(operand_bytes + 2 * self.n * k * 8)
        return out

    def _execute(
        self,
        x: np.ndarray,
        be: BatchedBackend,
        transpose: bool = False,
    ) -> np.ndarray:
        """The untraced apply body (also the overhead-test baseline)."""
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self.n:
            raise ValueError(
                f"plan expects a ({self.n}, k) array in the permuted ordering, "
                f"got shape {x.shape}"
            )
        k = x.shape[1]
        buffers: Dict[BufferKey, VariableBatch] = {
            ("x",): self._leaf_buffer(x, k),
            ("y",): self._leaf_buffer(None, k),
        }
        for level, pos in self._level_pos.items():
            rows = np.full(len(pos) + 1, self._level_rank[level], dtype=np.int64)
            cols = np.full(len(pos) + 1, k, dtype=np.int64)
            buffers[("hat", level)] = VariableBatch(rows, cols)
            buffers[("ghat", level)] = VariableBatch(rows, cols)

        stages = self._ensure_transpose() if transpose else self._forward_stages
        for stage in stages:
            be.batched_gemm_scatter(
                buffers[stage.dest],
                stage.dest_pos,
                stage.a,
                buffers[stage.src],
                stage.src_pos,
                operation=stage.op,
            )
        return self._read_leaf_buffer(buffers[("y",)], np.zeros_like(x))

    # ------------------------------------------------------------- statistics
    @property
    def stages(self) -> List[ApplyStage]:
        return list(self._forward_stages)

    @property
    def num_stages(self) -> int:
        """Batched dispatches (= launches) per forward apply."""
        return len(self._forward_stages)

    @property
    def num_block_products(self) -> int:
        """Real per-node block GEMMs fused into the stages (the per-node loop's count)."""
        return sum(stage.num_blocks for stage in self._forward_stages)

    def flops(self, k: int = 1) -> int:
        """Multiply-add flops of one ``k``-column forward apply (padding included)."""
        return sum(stage.flops(k) for stage in self._forward_stages)

    def memory_bytes(self) -> int:
        """Bytes held by the pre-stacked static operand arrays."""
        total = sum(stage.a.nbytes for stage in self._forward_stages)
        if self._transpose_stages is not None:
            shared = {id(stage.a) for stage in self._forward_stages}
            total += sum(
                stage.a.nbytes
                for stage in self._transpose_stages
                if id(stage.a) not in shared
            )
        return int(total)

    def stage_counts(self) -> Dict[str, int]:
        """Number of batched dispatches per phase, e.g. ``{"apply_coupling": 7, ...}``."""
        counts: Dict[str, int] = {}
        for stage in self._forward_stages:
            counts[stage.op] = counts.get(stage.op, 0) + 1
        return counts

    def describe(self) -> str:
        counts = self.stage_counts()
        phases = ", ".join(f"{op}={n}" for op, n in sorted(counts.items()))
        return (
            f"H2ApplyPlan(n={self.n}, levels={self.num_levels}, "
            f"stages={self.num_stages} [{phases}], "
            f"block_products={self.num_block_products})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return self.describe()


def compile_apply_plan(
    matrix: "H2Matrix", pad_to: int = 1, fan_pad: int = 4
) -> H2ApplyPlan:
    """Flatten ``matrix`` into a batched per-level :class:`H2ApplyPlan`.

    The compilation walks every basis, transfer, coupling and dense block
    exactly once, fuses the blocks of each block row side by side (the
    non-uniform BSR row formulation), zero-pads ranks, leaf sizes and row
    fan-ins to uniform bucketed shapes, and stacks every (level, phase,
    fan-in) group into one contiguous 3-D operand array; the returned plan
    applies the matrix (and its transpose) to any number of right-hand-side
    columns through a pluggable batched backend in O(levels) launches.
    """
    plan = H2ApplyPlan(matrix, pad_to=pad_to, fan_pad=fan_pad)
    # Compile-time workspace accounting (never touches the per-apply path).
    from ..observe.memory import memory_ledger

    memory_ledger().track(plan, {"workspace": plan.memory_bytes()})
    return plan

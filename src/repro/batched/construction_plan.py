"""Compiled batched execution engine for the construction sweep.

PR 2 compiled the H2 *apply* into O(levels) batched launches
(:mod:`repro.batched.apply_plan`); this module applies the same treatment to
the *construction* upward sweep of :mod:`repro.core.builder`, which had
remained a per-node Python loop (per-node ``omega[start:end]`` slices,
dict-of-ragged-arrays sweep state, per-node ``hstack`` re-copies on every
adaptive sampling round) and had become the dominant cost of every
hyperparameter sweep.

Two pieces cooperate:

:class:`ConstructionPlan`
    The *static* (kernel-independent) packing of one ``(tree, partition)``
    pair: the leaf gather map turning the global sketch ``(n, d)`` into a
    zero-padded uniform ``(leaves, m_pad, d)`` stack, the fan-grouped block-row
    structure of the dense (inadmissible leaf) BSR product, and the per-level
    fan-grouped block-row structure of the coupling BSR products.  A
    :class:`~repro.core.context.GeometryContext` compiles this once and reuses
    it for every construction of a sweep.

:class:`PackedSweepEngine`
    The per-construction executor.  It owns the :class:`_LevelState` sample
    buffers — preallocated ``(count + 1, m_pad, capacity)`` stacks (the last
    block is the sentinel zero block read by fan-in padding) into which
    adaptive sampling rounds write only the *new* columns instead of
    re-copying every node's sample block — and the per-level *replay records*
    (padded interpolation stacks, skeleton gather maps, coupling GEMM
    operands, child-to-parent merge maps) that push freshly drawn samples up
    the tree (``updateSamples``) in O(levels) batched launches per round.

All heavy steps execute through the pluggable
:class:`~repro.batched.backend.BatchedBackend` (``batched_gemm_scatter`` for
sketch accumulation, ``batched_min_r_diag`` on the packed stacks for the
convergence test, the rank-grouped ``batched_row_id`` for the IDs), so the
serial and vectorized backends run the identical schedule.  Zero-padding is
exact everywhere — padded operand rows/columns are zero, padded sample rows
stay zero through every launch — so the packed sweep reproduces the reference
loop's skeleton selections at fixed seed (launch fusion only reorders
floating-point accumulations at the ~1e-15 level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .apply_plan import fan_bucket
from .backend import BatchedBackend
from .counters import KernelLaunchCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tree.block_partition import BlockPartition
    from ..utils.timing import PhaseTimer


@dataclass(frozen=True)
class _RowGroup:
    """A fan-in group of block rows of one level's BSR product.

    ``dest_pos[i]`` is the destination block of row ``i`` and
    ``src_pos[i * fan + j]`` the source block of its ``j``-th slot (the
    sentinel block for padded slots).  ``block_req[i * fan + j]`` indexes the
    level's block-request list (``-1`` for padding) and drives the stacking of
    the extracted blocks into the ``(g, p, fan * q)`` GEMM operand.
    """

    fan: int
    dest_pos: np.ndarray
    src_pos: np.ndarray
    block_req: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(self.dest_pos.shape[0])


def _build_row_groups(
    rows: Sequence[Tuple[int, List[Tuple[int, int]]]],
    sentinel: int,
    fan_pad: int,
) -> List[_RowGroup]:
    """Group block rows ``(dest, [(src, request), ...])`` by bucketed fan-in."""
    by_fan: Dict[int, List[Tuple[int, List[Tuple[int, int]]]]] = {}
    for dest, blocks in rows:
        if not blocks:
            continue
        by_fan.setdefault(fan_bucket(len(blocks), fan_pad), []).append(
            (dest, blocks)
        )
    groups = []
    for fan in sorted(by_fan):
        members = by_fan[fan]
        g = len(members)
        dest_pos = np.empty(g, dtype=np.int64)
        src_pos = np.full(g * fan, sentinel, dtype=np.int64)
        block_req = np.full(g * fan, -1, dtype=np.int64)
        for i, (dest, blocks) in enumerate(members):
            dest_pos[i] = dest
            for j, (src, req) in enumerate(blocks):
                src_pos[i * fan + j] = src
                block_req[i * fan + j] = req
        groups.append(
            _RowGroup(fan=fan, dest_pos=dest_pos, src_pos=src_pos, block_req=block_req)
        )
    return groups


def _stack_operands(
    groups: Sequence[_RowGroup], padded_blocks: np.ndarray
) -> List[np.ndarray]:
    """Assemble each group's ``(g, p, fan * q)`` operand from a padded block stack.

    ``padded_blocks`` is the ``(num_requests, p, q)`` output of
    :meth:`~repro.sketching.entry_extractor.EntryExtractor.extract_blocks_padded`;
    every real slot is filled with one vectorised scatter, padded slots stay
    exactly zero.
    """
    p, q = int(padded_blocks.shape[1]), int(padded_blocks.shape[2])
    operands = []
    for group in groups:
        g, fan = group.num_rows, group.fan
        a = np.zeros((g, p, fan * q), dtype=np.float64)
        real = group.block_req >= 0
        if np.any(real):
            # Scatter straight into the fused row layout: viewing ``a`` as
            # ``(g, fan, p, q)`` (slot-major) lets one fancy assignment place
            # every real block without an intermediate copy.
            slot_view = a.reshape(g, p, fan, q).transpose(0, 2, 1, 3)
            flat_rows, flat_slots = np.divmod(np.nonzero(real)[0], fan)
            slot_view[flat_rows, flat_slots] = padded_blocks[group.block_req[real]]
        operands.append(a)
    return operands


class ConstructionPlan:
    """Static packing of the construction sweep for one ``(tree, partition)``.

    Everything here depends only on the geometry — node orderings, leaf index
    ranges, near/far block structure — so a single plan serves every kernel
    parameter point of a hyperparameter sweep (the dynamic, rank-dependent
    state lives in :class:`PackedSweepEngine`).
    """

    def __init__(self, partition: "BlockPartition", fan_pad: int = 4):
        if fan_pad < 1:
            raise ValueError("fan_pad must be a positive integer")
        self.partition = partition
        self.tree = partition.tree
        self.fan_pad = int(fan_pad)
        tree = self.tree

        # ---------------------------------------------------- leaf gather map
        self.leaf_nodes: List[int] = list(tree.leaves())
        count = len(self.leaf_nodes)
        self.leaf_sizes = np.array(
            [tree.cluster_size(t) for t in self.leaf_nodes], dtype=np.int64
        )
        self.m_pad = int(self.leaf_sizes.max()) if count else 0
        self.leaf_gather = np.zeros((count, self.m_pad), dtype=np.int64)
        self.leaf_mask = np.zeros((count, self.m_pad), dtype=np.float64)
        for i, t in enumerate(self.leaf_nodes):
            size = int(self.leaf_sizes[i])
            self.leaf_gather[i, :size] = np.arange(
                tree.starts[t], tree.ends[t], dtype=np.int64
            )
            self.leaf_mask[i, :size] = 1.0

        # ----------------------------------------- dense (leaf) BSR structure
        leaf_pos = {node: i for i, node in enumerate(self.leaf_nodes)}
        self.dense_pairs: List[Tuple[int, int]] = []
        dense_rows: List[Tuple[int, List[Tuple[int, int]]]] = []
        for i, tau in enumerate(self.leaf_nodes):
            blocks = []
            for b in partition.near(tau):
                blocks.append((leaf_pos[b], len(self.dense_pairs)))
                self.dense_pairs.append((tau, b))
            dense_rows.append((i, blocks))
        self.dense_groups = _build_row_groups(
            dense_rows, sentinel=count, fan_pad=self.fan_pad
        )

        # ------------------------------------- per-level coupling structure
        #: ``coupling_pairs[depth]`` lists the level's far pairs in the
        #: reference loop's order; ``coupling_groups[depth]`` the fan-grouped
        #: block-row structure over the level's node positions.
        self.coupling_pairs: Dict[int, List[Tuple[int, int]]] = {}
        self.coupling_groups: Dict[int, List[_RowGroup]] = {}
        self.level_nodes: Dict[int, List[int]] = {}
        for depth in range(tree.depth, -1, -1):
            nodes = list(tree.nodes_at_level(depth))
            self.level_nodes[depth] = nodes
            node_pos = {node: i for i, node in enumerate(nodes)}
            pairs: List[Tuple[int, int]] = []
            rows: List[Tuple[int, List[Tuple[int, int]]]] = []
            for i, tau in enumerate(nodes):
                blocks = []
                for b in partition.far(tau):
                    blocks.append((node_pos[b], len(pairs)))
                    pairs.append((tau, b))
                rows.append((i, blocks))
            self.coupling_pairs[depth] = pairs
            self.coupling_groups[depth] = _build_row_groups(
                rows, sentinel=len(nodes), fan_pad=self.fan_pad
            )

        # Compile-time workspace accounting (auto-released with the plan).
        from ..observe.memory import memory_ledger

        memory_ledger().track(self, {"workspace": self.memory_bytes()})

    @property
    def num_leaves(self) -> int:
        return len(self.leaf_nodes)

    def memory_bytes(self) -> int:
        """Bytes held by the static gather/grouping arrays."""
        total = self.leaf_gather.nbytes + self.leaf_mask.nbytes
        for groups in [self.dense_groups, *self.coupling_groups.values()]:
            for g in groups:
                total += g.dest_pos.nbytes + g.src_pos.nbytes + g.block_req.nbytes
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ConstructionPlan(n={self.tree.num_points}, leaves={self.num_leaves}, "
            f"dense_blocks={len(self.dense_pairs)}, "
            f"coupling_blocks={sum(len(p) for p in self.coupling_pairs.values())})"
        )


class _LevelState:
    """Packed sample-sweep state of one tree level.

    ``y``/``omega`` are ``(count + 1, m_pad, capacity)`` stacks — block ``i``
    holds node ``i``'s sample block in its first ``heights[i]`` rows and first
    ``cols`` columns, everything else is exactly zero, and block ``count`` is
    the sentinel zero block addressed by fan-in padding.  Appending a sampling
    round's new columns writes into the preallocated capacity (amortised
    doubling) instead of re-copying every node's block.
    """

    def __init__(
        self,
        depth: int,
        nodes: Sequence[int],
        heights: np.ndarray,
        m_pad: int,
        cols: int,
        capacity: int,
    ):
        self.depth = int(depth)
        self.nodes = list(nodes)
        self.count = len(self.nodes)
        self.heights = np.asarray(heights, dtype=np.int64)
        self.m_pad = int(m_pad)
        self.cols = int(cols)
        capacity = max(int(capacity), self.cols)
        self.y = np.zeros((self.count + 1, self.m_pad, capacity), dtype=np.float64)
        self.omega = np.zeros_like(self.y)

    @property
    def capacity(self) -> int:
        return int(self.y.shape[2])

    # Active column windows (sentinel included for gemm-scatter addressing).
    @property
    def y_view(self) -> np.ndarray:
        return self.y[:, :, : self.cols]

    @property
    def omega_view(self) -> np.ndarray:
        return self.omega[:, :, : self.cols]

    @property
    def y_active(self) -> np.ndarray:
        """The real nodes' sample blocks (sentinel excluded), for convergence."""
        return self.y[: self.count, :, : self.cols]

    def node_block(self, i: int, padded: bool = False) -> np.ndarray:
        """Node ``i``'s sample block ``Y_loc`` (exact height unless ``padded``)."""
        rows = self.m_pad if padded else int(self.heights[i])
        return self.y[i, :rows, : self.cols]

    def _grow(self, needed: int) -> None:
        capacity = max(2 * self.capacity, needed)
        for name in ("y", "omega"):
            old = getattr(self, name)
            fresh = np.zeros(
                (self.count + 1, self.m_pad, capacity), dtype=np.float64
            )
            fresh[:, :, : self.cols] = old[:, :, : self.cols]
            setattr(self, name, fresh)

    def append(self, omega_slab: np.ndarray, y_slab: np.ndarray) -> None:
        """Append one sampling round's columns (``(count + 1, m_pad, b)`` slabs)."""
        b = int(y_slab.shape[2])
        if self.cols + b > self.capacity:
            self._grow(self.cols + b)
        self.y[:, :, self.cols : self.cols + b] = y_slab
        self.omega[:, :, self.cols : self.cols + b] = omega_slab
        self.cols += b


@dataclass
class _ReplayRecord:
    """Everything needed to replay one skeletonised level on fresh samples."""

    depth: int
    count: int
    m_pad: int
    r_pad: int
    ranks: np.ndarray
    #: ``(count, r_pad, m_pad)`` stack of the transposed padded interpolations.
    interp_t: np.ndarray
    #: Skeleton-row gather of the level's sample stack: ``(count, r_pad)``
    #: node/row indices plus the 0/1 mask zeroing padded slots.
    shrink_node: np.ndarray
    shrink_row: np.ndarray
    shrink_mask: np.ndarray
    #: Child-to-parent merge gather (into the *next* level's packed stack):
    #: ``(parents, parent_m_pad)`` indices into this level's shrunk stacks
    #: (the sentinel block for padded slots, which is exactly zero).
    parent_nodes: List[int] = field(default_factory=list)
    parent_heights: np.ndarray | None = None
    parent_m_pad: int = 0
    merge_node: np.ndarray | None = None
    merge_row: np.ndarray | None = None
    #: Fan-grouped coupling-subtract launches ``(operand, dest_pos, src_pos)``,
    #: attached once the level's coupling blocks have been extracted.
    coupling_ops: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )


class PackedSweepEngine:
    """Per-construction executor of the packed level-wise construction sweep.

    Owns the dynamic (kernel- and rank-dependent) state: the stacked dense
    GEMM operands, the per-level :class:`_LevelState` sample buffers and the
    :class:`_ReplayRecord` chain used by ``updateSamples``.  The driving
    :class:`~repro.core.builder.H2Constructor` keeps all numerical decisions
    (convergence, tolerances, IDs, skeleton bookkeeping); the engine only
    marshals packed buffers and issues batched launches.
    """

    def __init__(
        self,
        plan: ConstructionPlan,
        backend: BatchedBackend,
        timer: "PhaseTimer",
    ):
        self.plan = plan
        self.backend = backend
        self.counter: KernelLaunchCounter = backend.counter
        self.timer = timer
        self.records: Dict[int, _ReplayRecord] = {}
        self._dense_ops: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    # ------------------------------------------------------------- marshaling
    def _gather(self, launches: int = 1) -> None:
        self.counter.record("batched_gather", launches)

    def build_dense_operands(self, padded_blocks: np.ndarray) -> None:
        """Stack the extracted dense leaf blocks into fan-grouped GEMM operands."""
        with self.timer.phase("misc"):
            operands = _stack_operands(self.plan.dense_groups, padded_blocks)
            self._dense_ops = [
                (a, group.dest_pos, group.src_pos)
                for a, group in zip(operands, self.plan.dense_groups)
            ]

    def set_coupling_operands(self, depth: int, padded_blocks: np.ndarray) -> None:
        """Attach a level's coupling-subtract launches to its replay record."""
        record = self.records.get(depth)
        if record is None:
            return
        with self.timer.phase("misc"):
            groups = self.plan.coupling_groups[depth]
            operands = _stack_operands(groups, padded_blocks)
            record.coupling_ops = [
                (a, group.dest_pos, group.src_pos)
                for a, group in zip(operands, groups)
            ]

    def _dense_subtract(self, y_stack: np.ndarray, omega_stack: np.ndarray) -> None:
        """``y -= D @ omega`` over the packed leaf stacks (one launch per fan group)."""
        with self.timer.phase("bsr_gemm"):
            for a, dest_pos, src_pos in self._dense_ops:
                self.backend.batched_gemm_scatter(
                    y_stack,
                    dest_pos,
                    a,
                    omega_stack,
                    src_pos,
                    alpha=-1.0,
                    operation="construct_dense",
                )

    def _leaf_slabs(
        self, omega: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather global ``(n, b)`` sketches into padded ``(leaves + 1, m_pad, b)`` stacks."""
        plan = self.plan
        count = plan.num_leaves
        b = int(omega.shape[1])
        with self.timer.phase("shrink_upsweep"):
            mask = plan.leaf_mask[:, :, None]
            omega_stack = np.zeros((count + 1, plan.m_pad, b), dtype=np.float64)
            y_stack = np.zeros_like(omega_stack)
            omega_stack[:count] = omega[plan.leaf_gather] * mask
            y_stack[:count] = y[plan.leaf_gather] * mask
            self._gather()
        self._dense_subtract(y_stack, omega_stack)
        return omega_stack, y_stack

    # ---------------------------------------------------------- level lifecycle
    def init_leaf(
        self, omega: np.ndarray, y: np.ndarray, capacity_hint: int = 0
    ) -> _LevelState:
        """Load the initial global sketch into the leaf level's packed state."""
        plan = self.plan
        omega_stack, y_stack = self._leaf_slabs(omega, y)
        state = _LevelState(
            depth=plan.tree.depth,
            nodes=plan.leaf_nodes,
            heights=plan.leaf_sizes,
            m_pad=plan.m_pad,
            cols=int(omega.shape[1]),
            capacity=max(capacity_hint, int(omega.shape[1])),
        )
        with self.timer.phase("shrink_upsweep"):
            state.y[:, :, : state.cols] = y_stack
            state.omega[:, :, : state.cols] = omega_stack
        return state

    def finish_level(
        self, state: _LevelState, decompositions: Sequence
    ) -> Tuple[np.ndarray, np.ndarray, _ReplayRecord]:
        """Skeletonise a level: build its replay record, shrink & upsweep.

        Returns the shrunk samples and upswept inputs as
        ``(count + 1, r_pad, cols)`` stacks (sentinel zero block last) plus the
        stored :class:`_ReplayRecord`.
        """
        count, m_pad, d = state.count, state.m_pad, state.cols
        ranks = np.array([dec.rank for dec in decompositions], dtype=np.int64)
        r_pad = int(ranks.max()) if count else 0

        with self.timer.phase("shrink_upsweep"):
            interp_t = np.zeros((count, r_pad, m_pad), dtype=np.float64)
            shrink_node = np.zeros((count, r_pad), dtype=np.int64)
            shrink_row = np.zeros((count, r_pad), dtype=np.int64)
            shrink_mask = np.zeros((count, r_pad, 1), dtype=np.float64)
            for i, dec in enumerate(decompositions):
                r = int(ranks[i])
                interp_t[i, :r, : dec.interpolation.shape[0]] = dec.interpolation.T
                shrink_node[i, :r] = i
                shrink_row[i, :r] = dec.skeleton
                shrink_mask[i, :r, 0] = 1.0

            # Upsweep the random inputs: Omega^{l+1} = X^T Omega^l, one launch.
            omega_next = np.zeros((count + 1, r_pad, d), dtype=np.float64)
        self.backend.batched_gemm_scatter(
            omega_next,
            np.arange(count, dtype=np.int64),
            interp_t,
            state.omega_view,
            np.arange(count, dtype=np.int64),
            operation="construct_upsweep",
        )

        with self.timer.phase("shrink_upsweep"):
            # Shrink the samples to the skeleton rows: Y^{l+1} = Y_loc(J, :).
            y_next = np.zeros((count + 1, r_pad, d), dtype=np.float64)
            y_next[:count] = state.y[shrink_node, shrink_row, :d] * shrink_mask
            self._gather()

            record = _ReplayRecord(
                depth=state.depth,
                count=count,
                m_pad=m_pad,
                r_pad=r_pad,
                ranks=ranks,
                interp_t=interp_t,
                shrink_node=shrink_node,
                shrink_row=shrink_row,
                shrink_mask=shrink_mask,
            )
            if state.depth > 0:
                self._build_merge_maps(record, state)
            self.records[state.depth] = record
        return y_next, omega_next, record

    def _build_merge_maps(self, record: _ReplayRecord, state: _LevelState) -> None:
        """Child-to-parent gather: parent rows = children's stacked skeleton rows."""
        tree = self.plan.tree
        parents = self.plan.level_nodes[state.depth - 1]
        child_pos = {node: i for i, node in enumerate(state.nodes)}
        num_parents = len(parents)
        heights = np.zeros(num_parents, dtype=np.int64)
        pair_ranks = []
        for i, tau in enumerate(parents):
            nu1, nu2 = tree.children(tau)
            r1, r2 = int(record.ranks[child_pos[nu1]]), int(record.ranks[child_pos[nu2]])
            heights[i] = r1 + r2
            pair_ranks.append((child_pos[nu1], r1, child_pos[nu2], r2))
        m_pad = int(heights.max()) if num_parents else 0
        # Padded slots address the sentinel zero block — no mask required.
        merge_node = np.full((num_parents, m_pad), record.count, dtype=np.int64)
        merge_row = np.zeros((num_parents, m_pad), dtype=np.int64)
        for i, (p1, r1, p2, r2) in enumerate(pair_ranks):
            merge_node[i, :r1] = p1
            merge_row[i, :r1] = np.arange(r1)
            merge_node[i, r1 : r1 + r2] = p2
            merge_row[i, r1 : r1 + r2] = np.arange(r2)
        record.parent_nodes = list(parents)
        record.parent_heights = heights
        record.parent_m_pad = m_pad
        record.merge_node = merge_node
        record.merge_row = merge_row

    def _subtract_couplings(
        self, record: _ReplayRecord, y_next: np.ndarray, omega_next: np.ndarray
    ) -> None:
        """``Y^{l+1} -= B @ Omega^{l+1}`` over the shrunk stacks (per fan group)."""
        with self.timer.phase("bsr_gemm"):
            for a, dest_pos, src_pos in record.coupling_ops:
                self.backend.batched_gemm_scatter(
                    y_next,
                    dest_pos,
                    a,
                    omega_next,
                    src_pos,
                    alpha=-1.0,
                    operation="construct_coupling",
                )

    def _merge(
        self, record: _ReplayRecord, y_next: np.ndarray, omega_next: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stack sibling pairs into ``(parents + 1, parent_m_pad, b)`` slabs."""
        with self.timer.phase("shrink_upsweep"):
            num_parents = len(record.parent_nodes)
            b = int(y_next.shape[2])
            y_merged = np.zeros(
                (num_parents + 1, record.parent_m_pad, b), dtype=np.float64
            )
            omega_merged = np.zeros_like(y_merged)
            y_merged[:num_parents] = y_next[record.merge_node, record.merge_row]
            omega_merged[:num_parents] = omega_next[record.merge_node, record.merge_row]
            self._gather()
        return omega_merged, y_merged

    def merge_to_parent(
        self,
        record: _ReplayRecord,
        y_next: np.ndarray,
        omega_next: np.ndarray,
        capacity_hint: int = 0,
    ) -> _LevelState:
        """Build the parent level's packed state from a skeletonised level.

        Mirrors the reference loop's inner-level prologue: subtract the
        children's coupling contribution from their shrunk samples, then merge
        sibling pairs into the parent sample blocks.
        """
        self._subtract_couplings(record, y_next, omega_next)
        omega_merged, y_merged = self._merge(record, y_next, omega_next)
        d = int(y_merged.shape[2])
        state = _LevelState(
            depth=record.depth - 1,
            nodes=record.parent_nodes,
            heights=record.parent_heights,
            m_pad=record.parent_m_pad,
            cols=d,
            capacity=max(capacity_hint, d),
        )
        with self.timer.phase("shrink_upsweep"):
            state.y[:, :, :d] = y_merged
            state.omega[:, :, :d] = omega_merged
        return state

    # --------------------------------------------------------------- replay
    def sweep_slab(
        self, new_omega: np.ndarray, new_y: np.ndarray, to_depth: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``updateSamples``: push fresh sample columns up to ``to_depth``.

        Replays the already-skeletonised levels on the ``(n, b)`` slab —
        leaf gather, dense subtract, then per level one upsweep launch, one
        skeleton gather, the coupling subtracts and one merge gather — and
        returns ``(omega, y)`` slabs ready to append to the packed state at
        ``to_depth``.  O(levels) launches total, no per-node Python state.
        """
        leaf_depth = self.plan.tree.depth
        omega_stack, y_stack = self._leaf_slabs(new_omega, new_y)
        for depth in range(leaf_depth, to_depth, -1):
            record = self.records[depth]
            count, r_pad = record.count, record.r_pad
            b = int(omega_stack.shape[2])
            with self.timer.phase("shrink_upsweep"):
                omega_next = np.zeros((count + 1, r_pad, b), dtype=np.float64)
            self.backend.batched_gemm_scatter(
                omega_next,
                np.arange(count, dtype=np.int64),
                record.interp_t,
                omega_stack,
                np.arange(count, dtype=np.int64),
                operation="construct_upsweep",
            )
            with self.timer.phase("shrink_upsweep"):
                y_next = np.zeros((count + 1, r_pad, b), dtype=np.float64)
                y_next[:count] = (
                    y_stack[record.shrink_node, record.shrink_row]
                    * record.shrink_mask
                )
                self._gather()
            self._subtract_couplings(record, y_next, omega_next)
            omega_stack, y_stack = self._merge(record, y_next, omega_next)
        return omega_stack, y_stack

    # ------------------------------------------------------------- statistics
    def memory_bytes(self) -> int:
        """Bytes held by the stacked operands and replay records."""
        total = sum(a.nbytes for a, _, _ in self._dense_ops)
        for record in self.records.values():
            total += record.interp_t.nbytes
            total += sum(a.nbytes for a, _, _ in record.coupling_ops)
        return int(total)

"""Batched execution engine over variable-size matrix batches.

This package is the reproduction's stand-in for the paper's GPU layer
(Thrust marshaling + KBLAS/MAGMA batched kernels).  Operations on all nodes
of a tree level are expressed as *batched primitives* over variable-size
matrices; two backends execute them:

* :class:`SerialBackend` — one plain NumPy call per matrix, the analogue of
  the paper's CPU implementation (OpenMP loop around single-threaded BLAS);
* :class:`VectorizedBackend` — matrices are grouped by shape and each group is
  executed with a single stacked (batched) NumPy/BLAS call, the analogue of a
  single GPU kernel launch per shape group.

Kernel-launch counting (:class:`KernelLaunchCounter`) exposes how many batched
dispatches a construction needed, reproducing the paper's O(log N) launch-count
argument (Section IV-B).

The same machinery also *applies* constructed H2 matrices:
:mod:`repro.batched.apply_plan` compiles an ``H2Matrix`` into per-level
:class:`VariableBatch` execution plans (:class:`H2ApplyPlan`) so that matvec,
matmat and the transpose applies run as O(levels) batched launches on either
backend instead of a per-node Python loop.
"""

from .apply_plan import ApplyStage, H2ApplyPlan, compile_apply_plan
from .backend import (
    BatchedBackend,
    SerialBackend,
    VectorizedBackend,
    get_backend,
)
from .bsr import BlockSparseRowMatrix
from .construction_plan import ConstructionPlan, PackedSweepEngine
from .counters import KernelLaunchCounter
from .variable_batch import VariableBatch

__all__ = [
    "ApplyStage",
    "BatchedBackend",
    "ConstructionPlan",
    "H2ApplyPlan",
    "PackedSweepEngine",
    "SerialBackend",
    "VectorizedBackend",
    "compile_apply_plan",
    "get_backend",
    "BlockSparseRowMatrix",
    "KernelLaunchCounter",
    "VariableBatch",
]

"""Non-uniform block-sparse-row (BSR) matrix product.

Lines 9 and 27 of Algorithm 1 subtract, for every node ``tau`` of a level, the
contribution of its dense neighbours (leaf level) or previously-computed
coupling blocks (inner levels) from the sample block:

    Y_loc_tau = Y_tau - sum_{b in N_tau (or F_children)} A_{tau,b} Omega_b

Viewed over the whole level this is the product of a block-sparse matrix with
*non-uniform* block sizes and a segmented block of vectors.  No GPU library
offers this primitive, so the paper splits the product into at most ``Csp``
batched GEMM launches: in launch ``j`` every block row contributes its ``j``-th
block only, so each output segment is touched by at most one product per
launch and no atomics are needed.  :meth:`BlockSparseRowMatrix.multiply_accumulate`
reproduces exactly this schedule on top of a
:class:`~repro.batched.backend.BatchedBackend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .backend import BatchedBackend


@dataclass
class BlockSparseRowMatrix:
    """A level's block-sparse matrix with variable-size blocks.

    Attributes
    ----------
    num_block_rows:
        Number of block rows (= number of nodes at the level).
    blocks:
        ``blocks[i]`` is the list of ``(block_column, matrix)`` pairs of row ``i``.
    """

    num_block_rows: int
    blocks: List[List[tuple[int, np.ndarray]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.blocks:
            self.blocks = [[] for _ in range(self.num_block_rows)]
        if len(self.blocks) != self.num_block_rows:
            raise ValueError("blocks must have one entry per block row")

    # ------------------------------------------------------------------ build
    def add_block(self, block_row: int, block_col: int, matrix: np.ndarray) -> None:
        """Register ``matrix`` as the block at ``(block_row, block_col)``."""
        if not 0 <= block_row < self.num_block_rows:
            raise IndexError(f"block row {block_row} out of range")
        self.blocks[block_row].append((int(block_col), np.asarray(matrix, dtype=np.float64)))

    @classmethod
    def from_block_lists(
        cls, block_lists: Sequence[Sequence[tuple[int, np.ndarray]]]
    ) -> "BlockSparseRowMatrix":
        bsr = cls(num_block_rows=len(block_lists))
        for row, entries in enumerate(block_lists):
            for col, mat in entries:
                bsr.add_block(row, col, mat)
        return bsr

    # ------------------------------------------------------------- statistics
    def max_blocks_per_row(self) -> int:
        """The level's sparsity constant (number of launches needed)."""
        return max((len(row) for row in self.blocks), default=0)

    def num_blocks(self) -> int:
        return sum(len(row) for row in self.blocks)

    def block_shapes(self) -> Dict[tuple[int, int], int]:
        """Histogram of block shapes (useful to reason about launch grouping)."""
        hist: Dict[tuple[int, int], int] = {}
        for row in self.blocks:
            for _, mat in row:
                hist[mat.shape] = hist.get(mat.shape, 0) + 1
        return hist

    # ---------------------------------------------------------------- product
    def multiply_accumulate(
        self,
        outputs: Sequence[np.ndarray],
        inputs: Sequence[np.ndarray],
        backend: BatchedBackend,
        alpha: float = 1.0,
    ) -> None:
        """Accumulate ``outputs[i] += alpha * sum_j block(i, c_j) @ inputs[c_j]``.

        Parameters
        ----------
        outputs:
            One output segment per block row (mutated in place); segment ``i``
            must have ``block(i, *).shape[0]`` rows.
        inputs:
            One input segment per block *column* index used by the blocks.
        backend:
            The batched backend executing the per-launch batched GEMMs.
        alpha:
            Scalar multiplier (the construction uses ``alpha = -1`` to subtract).

        The schedule performs ``max_blocks_per_row()`` launches; launch ``j``
        gathers the ``j``-th block of every block row that still has one, so a
        given output segment appears at most once per launch (no atomics).
        """
        if len(outputs) != self.num_block_rows:
            raise ValueError("one output segment per block row is required")
        launches = self.max_blocks_per_row()
        for j in range(launches):
            c_list: List[np.ndarray] = []
            a_list: List[np.ndarray] = []
            b_list: List[np.ndarray] = []
            for row in range(self.num_block_rows):
                entries = self.blocks[row]
                if j >= len(entries):
                    continue
                col, mat = entries[j]
                c_list.append(outputs[row])
                a_list.append(mat)
                b_list.append(np.asarray(inputs[col], dtype=np.float64))
            if c_list:
                backend.batched_gemm_accumulate(c_list, a_list, b_list, alpha=alpha)

    def to_dense(
        self, row_offsets: Sequence[int], col_offsets: Sequence[int], shape: tuple[int, int]
    ) -> np.ndarray:
        """Assemble the dense matrix (tests only)."""
        dense = np.zeros(shape, dtype=np.float64)
        for row, entries in enumerate(self.blocks):
            r0 = int(row_offsets[row])
            for col, mat in entries:
                c0 = int(col_offsets[col])
                dense[r0 : r0 + mat.shape[0], c0 : c0 + mat.shape[1]] += mat
        return dense

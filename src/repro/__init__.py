"""repro — Adaptive sketching-based bottom-up construction of H2 matrices.

A pure-Python/NumPy reproduction of

    W. H. Boukaram, Y. Liu, P. Ghysels, X. S. Li,
    "Adaptive Sketching Based Construction of H2 Matrices on GPUs",
    IPDPS 2025 (arXiv:2506.16759),

including the cluster-tree / block-partition substrate, kernel matrices, a
batched (GPU-style) execution engine, the bottom-up sketching construction
algorithm (fixed-sample and adaptive), H2 arithmetic (matvec, entry
extraction, memory accounting), low-rank update recompression, the top-down
peeling and sketched H-matrix baselines, and a multifrontal frontal-matrix
substrate for the weak-admissibility comparisons.

Quickstart
----------
>>> import numpy as np
>>> from repro import (ClusterTree, GeneralAdmissibility, build_block_partition,
...                    ExponentialKernel, KernelMatVecOperator, KernelEntryExtractor,
...                    H2Constructor, ConstructionConfig, uniform_cube_points)
>>> points = uniform_cube_points(2048, seed=0)
>>> tree = ClusterTree.build(points, leaf_size=64)
>>> partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
>>> kernel = ExponentialKernel(length_scale=0.2)
>>> operator = KernelMatVecOperator(kernel, tree.points)
>>> extractor = KernelEntryExtractor(kernel, tree.points)
>>> result = H2Constructor(partition, operator, extractor,
...                        ConstructionConfig(tolerance=1e-6)).construct()
>>> h2 = result.matrix          # H2 matrix: h2.matvec(x), h2.memory_bytes(), ...

Solving linear systems with constructed matrices (see the top-level README.md
for the full walk-through)
--------------------------------------------------------------------------
>>> from repro import HierarchicalPreconditioner, cg
>>> M = HierarchicalPreconditioner.from_operator(tree, operator, extractor,
...                                              tolerance=1e-2)
>>> b = np.ones(tree.num_points)
>>> solve = cg(h2, b, tol=1e-8, M=M)   # solve.x, solve.iterations, ...

Gaussian-process regression with geometry-reuse hyperparameter sweeps
---------------------------------------------------------------------
>>> from repro import GaussianProcess
>>> y = np.sin(points[:, 0] * 6.0)
>>> gp = GaussianProcess(points, ExponentialKernel(0.2), noise=1e-2)
>>> gp.fit(y, length_scales=[0.1, 0.2, 0.4])   # sweep re-uses the geometry
>>> mean, std = gp.predict(points[:16], return_std=True)
>>> gp.log_marginal_likelihood_                # doctest: +SKIP
"""

from .batched import (
    BatchedBackend,
    BlockSparseRowMatrix,
    ConstructionPlan,
    H2ApplyPlan,
    KernelLaunchCounter,
    SerialBackend,
    VariableBatch,
    VectorizedBackend,
    compile_apply_plan,
    get_backend,
)
from .core import (
    ConstructionConfig,
    ConstructionResult,
    GeometryContext,
    H2Constructor,
    recompress_h2,
)
from .diagnostics import (
    GPFitReport,
    apply_report,
    construction_error,
    convergence_table,
    format_table,
    gp_sweep_table,
    memory_report,
    phase_breakdown,
    residual_series,
)
from .gp import (
    GaussianProcess,
    NotPositiveDefiniteError,
    hyperparameter_grid,
    nelder_mead,
)
from .geometry import (
    BoundingBox,
    grid_points,
    plane_points,
    random_sphere_points,
    uniform_cube_points,
)
from .hmatrix import (
    BasisTree,
    H2Matrix,
    HMatrix,
    HODLRMatrix,
    LinearOperator,
    ShiftedLinearOperator,
    as_linear_operator,
    build_hodlr,
    build_hss,
    hodlr_from_h2,
)
from .kernels import (
    ExponentialKernel,
    GaussianKernel,
    HelmholtzKernel,
    KernelFunction,
    LaplaceKernel,
    Matern32Kernel,
    Matern52Kernel,
    PairwiseKernel,
    ScaledKernel,
    SumKernel,
    WhiteNoiseKernel,
)
from .linalg import (
    LowRankMatrix,
    estimate_relative_error,
    estimate_spectral_norm,
    random_low_rank,
    row_id,
)
from .sketching import (
    DenseEntryExtractor,
    DenseOperator,
    EntryExtractor,
    H2EntryExtractor,
    H2Operator,
    KernelEntryExtractor,
    KernelMatVecOperator,
    LowRankEntryExtractor,
    LowRankOperator,
    SketchingOperator,
    SumEntryExtractor,
    SumOperator,
)
from .solvers import (
    FrontReport,
    HierarchicalPreconditioner,
    HODLRFactorization,
    KrylovResult,
    MultifrontalSolver,
    bicgstab,
    cg,
    gmres,
)
from .tree import (
    BlockPartition,
    ClusterTree,
    GeneralAdmissibility,
    WeakAdmissibility,
    build_block_partition,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # tree / geometry
    "ClusterTree",
    "GeneralAdmissibility",
    "WeakAdmissibility",
    "BlockPartition",
    "build_block_partition",
    "BoundingBox",
    "uniform_cube_points",
    "grid_points",
    "plane_points",
    "random_sphere_points",
    # kernels
    "KernelFunction",
    "PairwiseKernel",
    "ExponentialKernel",
    "GaussianKernel",
    "Matern32Kernel",
    "Matern52Kernel",
    "HelmholtzKernel",
    "LaplaceKernel",
    "ScaledKernel",
    "SumKernel",
    "WhiteNoiseKernel",
    # linalg
    "LowRankMatrix",
    "random_low_rank",
    "row_id",
    "estimate_spectral_norm",
    "estimate_relative_error",
    # batched engine
    "BatchedBackend",
    "SerialBackend",
    "VectorizedBackend",
    "get_backend",
    "VariableBatch",
    "BlockSparseRowMatrix",
    "KernelLaunchCounter",
    "H2ApplyPlan",
    "compile_apply_plan",
    "ConstructionPlan",
    # sketching interfaces
    "SketchingOperator",
    "DenseOperator",
    "KernelMatVecOperator",
    "H2Operator",
    "LowRankOperator",
    "SumOperator",
    "EntryExtractor",
    "DenseEntryExtractor",
    "KernelEntryExtractor",
    "H2EntryExtractor",
    "LowRankEntryExtractor",
    "SumEntryExtractor",
    # hierarchical formats
    "BasisTree",
    "H2Matrix",
    "HMatrix",
    "HODLRMatrix",
    "build_hodlr",
    "hodlr_from_h2",
    "build_hss",
    "LinearOperator",
    "ShiftedLinearOperator",
    "as_linear_operator",
    # solvers
    "cg",
    "gmres",
    "bicgstab",
    "KrylovResult",
    "HODLRFactorization",
    "HierarchicalPreconditioner",
    "MultifrontalSolver",
    "FrontReport",
    # core algorithm
    "H2Constructor",
    "ConstructionConfig",
    "ConstructionResult",
    "GeometryContext",
    "recompress_h2",
    # Gaussian processes
    "GaussianProcess",
    "NotPositiveDefiniteError",
    "hyperparameter_grid",
    "nelder_mead",
    # diagnostics
    "construction_error",
    "memory_report",
    "phase_breakdown",
    "convergence_table",
    "residual_series",
    "apply_report",
    "format_table",
    "GPFitReport",
    "gp_sweep_table",
]

"""repro — Adaptive sketching-based bottom-up construction of H2 matrices.

A pure-Python/NumPy reproduction of

    W. H. Boukaram, Y. Liu, P. Ghysels, X. S. Li,
    "Adaptive Sketching Based Construction of H2 Matrices on GPUs",
    IPDPS 2025 (arXiv:2506.16759),

including the cluster-tree / block-partition substrate, kernel matrices, a
batched (GPU-style) execution engine behind a named backend registry
(:mod:`repro.backends`), the bottom-up sketching construction algorithm
(fixed-sample and adaptive, compiled level-wise sweep), H2 arithmetic through
compiled batched apply plans, low-rank update recompression, the top-down
peeling and sketched H-matrix baselines, Krylov solvers with hierarchical
factorization/preconditioning, Gaussian-process regression with
geometry-reuse hyperparameter sweeps, and a multifrontal frontal-matrix
substrate for the weak-admissibility comparisons.

Every hierarchical format (H2, HSS, HODLR, H) implements the same
:class:`~repro.api.protocol.HierarchicalOperator` protocol, and the
:mod:`repro.api` façade reduces the pipeline to one call per step.
:mod:`repro.observe` adds an opt-in hierarchical tracer (pass
``ExecutionPolicy(tracer=repro.SpanTracer())``) that attributes wall time,
batched launches and flops to nested spans across every layer, with
Chrome-trace/JSON-lines/console exporters.  :mod:`repro.persist` saves any
compressed operator to a versioned, mmap-able artifact file
(``op.save(path)`` / :func:`repro.load_operator`) and backs the opt-in
content-addressed construction cache (``compress(..., cache_dir=...)`` or
``REPRO_CACHE_DIR``).

Quickstart
----------
Compress a covariance matrix into a hierarchical operator in three lines:

>>> import numpy as np
>>> import repro
>>> points = repro.uniform_cube_points(512, dim=3, seed=0)
>>> h2 = repro.compress(points, repro.ExponentialKernel(0.2), tol=1e-6, seed=1)
>>> h2.shape
(512, 512)
>>> y = h2 @ np.ones(512)       # compiled batched apply, original ordering

``format="hss"`` / ``"hodlr"`` / ``"hmatrix"`` select the other formats;
``repro.convert(h2, "hodlr")`` moves between them.

Solving linear systems (see the top-level README.md for the full
walk-through): a :class:`~repro.api.facade.Session` chains construction,
factorization and solves over one cached geometry:

>>> sess = repro.Session(points, seed=1)
>>> solve = (sess.compress(repro.ExponentialKernel(0.2), tol=1e-8)
...          .factor(noise=1e-2)
...          .solve(np.ones(512)))
>>> bool(solve.converged)
True

Gaussian-process regression shares the same session geometry — every
hyperparameter sweep point re-uses the cached tree/partition/distances/sample
bank:

>>> gp = sess.gp(repro.ExponentialKernel(0.2), noise=1e-2)
>>> gp.fit(np.sin(points[:, 0] * 6.0),
...        length_scales=[0.1, 0.2, 0.4])                # doctest: +SKIP
>>> mean, std = gp.predict(points[:16], return_std=True)  # doctest: +SKIP

The pre-façade entry points (``ClusterTree`` → ``build_block_partition`` →
``H2Constructor`` and friends) remain the expert path for custom operators,
extractors and partitions; :func:`repro.compress` accepts them through its
``tree=``/``partition=``/``operator=``/``extractor=`` overrides.
"""

from . import backends
from .api import (
    ExecutionPolicy,
    HierarchicalOperator,
    HierarchicalOperatorMixin,
    Session,
    available_conversions,
    compress,
    convert,
    register_conversion,
)
from .batched import (
    BatchedBackend,
    BlockSparseRowMatrix,
    ConstructionPlan,
    H2ApplyPlan,
    KernelLaunchCounter,
    SerialBackend,
    VariableBatch,
    VectorizedBackend,
    compile_apply_plan,
    get_backend,
)
from .core import (
    ConstructionConfig,
    ConstructionResult,
    GeometryContext,
    H2Constructor,
    recompress_h2,
)
from .diagnostics import (
    GPFitReport,
    apply_report,
    construction_error,
    convergence_table,
    format_table,
    gp_sweep_table,
    memory_report,
    phase_breakdown,
    residual_series,
)
from .gp import (
    GaussianProcess,
    NotPositiveDefiniteError,
    hyperparameter_grid,
    nelder_mead,
)
from .geometry import (
    BoundingBox,
    grid_points,
    plane_points,
    random_sphere_points,
    uniform_cube_points,
)
from .hmatrix import (
    BasisTree,
    H2Matrix,
    HMatrix,
    HODLRMatrix,
    LinearOperator,
    ShiftedLinearOperator,
    as_linear_operator,
    build_hmatrix_aca,
    build_hodlr,
    build_hss,
    hodlr_from_h2,
)
from .kernels import (
    ExponentialKernel,
    GaussianKernel,
    HelmholtzKernel,
    KernelFunction,
    LaplaceKernel,
    Matern32Kernel,
    Matern52Kernel,
    PairwiseKernel,
    ScaledKernel,
    SumKernel,
    WhiteNoiseKernel,
)
from .linalg import (
    LowRankMatrix,
    estimate_relative_error,
    estimate_spectral_norm,
    random_low_rank,
    row_id,
)
from . import observe
from .observe import HealthThresholds, SpanTracer
from . import persist
from .persist import ArtifactCache, load_operator, save_operator
from . import serve
from . import resilience
from .resilience import (
    FaultInjector,
    RecoveryPolicy,
    ResilienceError,
    SolveDidNotConvergeError,
)
from .sketching import (
    DenseEntryExtractor,
    DenseOperator,
    EntryExtractor,
    H2EntryExtractor,
    H2Operator,
    KernelEntryExtractor,
    KernelMatVecOperator,
    LowRankEntryExtractor,
    LowRankOperator,
    SketchingOperator,
    SumEntryExtractor,
    SumOperator,
)
from .solvers import (
    FrontReport,
    HierarchicalPreconditioner,
    HODLRFactorization,
    KrylovResult,
    MultifrontalSolver,
    bicgstab,
    cg,
    escalation_ladder,
    gmres,
)
from .tree import (
    BlockPartition,
    ClusterTree,
    GeneralAdmissibility,
    WeakAdmissibility,
    build_block_partition,
)

__version__ = "1.3.0"

#: Public API, kept alphabetically sorted (guarded by tests/test_public_api.py).
__all__ = [
    "ArtifactCache",
    "BasisTree",
    "BatchedBackend",
    "BlockPartition",
    "BlockSparseRowMatrix",
    "BoundingBox",
    "ClusterTree",
    "ConstructionConfig",
    "ConstructionPlan",
    "ConstructionResult",
    "DenseEntryExtractor",
    "DenseOperator",
    "EntryExtractor",
    "ExecutionPolicy",
    "ExponentialKernel",
    "FaultInjector",
    "FrontReport",
    "GPFitReport",
    "GaussianKernel",
    "GaussianProcess",
    "GeneralAdmissibility",
    "GeometryContext",
    "H2ApplyPlan",
    "H2Constructor",
    "H2EntryExtractor",
    "H2Matrix",
    "H2Operator",
    "HMatrix",
    "HODLRFactorization",
    "HODLRMatrix",
    "HealthThresholds",
    "HelmholtzKernel",
    "HierarchicalOperator",
    "HierarchicalOperatorMixin",
    "HierarchicalPreconditioner",
    "KernelEntryExtractor",
    "KernelFunction",
    "KernelLaunchCounter",
    "KernelMatVecOperator",
    "KrylovResult",
    "LaplaceKernel",
    "LinearOperator",
    "LowRankEntryExtractor",
    "LowRankMatrix",
    "LowRankOperator",
    "Matern32Kernel",
    "Matern52Kernel",
    "MultifrontalSolver",
    "NotPositiveDefiniteError",
    "PairwiseKernel",
    "RecoveryPolicy",
    "ResilienceError",
    "ScaledKernel",
    "SerialBackend",
    "Session",
    "ShiftedLinearOperator",
    "SketchingOperator",
    "SolveDidNotConvergeError",
    "SpanTracer",
    "SumEntryExtractor",
    "SumKernel",
    "SumOperator",
    "VariableBatch",
    "VectorizedBackend",
    "WeakAdmissibility",
    "WhiteNoiseKernel",
    "__version__",
    "apply_report",
    "as_linear_operator",
    "available_conversions",
    "backends",
    "bicgstab",
    "build_block_partition",
    "build_hmatrix_aca",
    "build_hodlr",
    "build_hss",
    "cg",
    "compile_apply_plan",
    "compress",
    "construction_error",
    "convergence_table",
    "convert",
    "escalation_ladder",
    "estimate_relative_error",
    "estimate_spectral_norm",
    "format_table",
    "get_backend",
    "gmres",
    "gp_sweep_table",
    "grid_points",
    "hodlr_from_h2",
    "hyperparameter_grid",
    "load_operator",
    "memory_report",
    "nelder_mead",
    "observe",
    "persist",
    "phase_breakdown",
    "plane_points",
    "random_low_rank",
    "random_sphere_points",
    "recompress_h2",
    "register_conversion",
    "residual_series",
    "resilience",
    "row_id",
    "save_operator",
    "serve",
    "uniform_cube_points",
]

"""Kernel-function interface.

A kernel ``K(x, y)`` together with a point set defines the dense matrix
``A[i, j] = K(points[i], points[j])`` that the construction algorithms
compress.  Kernels only need to provide a vectorised pairwise evaluation;
sub-block assembly (the paper's ``batchedGen`` input) is handled by
:mod:`repro.sketching.entry_extractor` on top of this interface.
"""

from __future__ import annotations

import copy
import dataclasses
from abc import ABC, abstractmethod
from typing import Dict

import numpy as np


class KernelFunction(ABC):
    """A symmetric kernel function ``K(x, y)`` evaluated on coordinate arrays."""

    #: Whether ``K(x, y) == K(y, x)``; all kernels in the paper are symmetric.
    symmetric: bool = True

    @abstractmethod
    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pairwise kernel matrix between row points ``x`` and column points ``y``.

        Parameters
        ----------
        x, y:
            Arrays of shape ``(m, dim)`` and ``(n, dim)``.

        Returns
        -------
        numpy.ndarray
            The ``(m, n)`` matrix ``K(x_i, y_j)``.
        """

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.evaluate(np.atleast_2d(x), np.atleast_2d(y))

    def matrix(self, points: np.ndarray) -> np.ndarray:
        """The full dense kernel matrix over ``points`` (test/small problems only)."""
        return self.evaluate(points, points)

    # --------------------------------------------------------- hyperparameters
    def rebind(self, **params: float) -> "KernelFunction":
        """A copy of this kernel with the given hyperparameters replaced.

        The canonical move of a hyperparameter sweep: the kernel *family* stays
        fixed while its parameters change, so everything geometric (cluster
        tree, block partition, sample pattern) can be reused across the sweep.
        Dataclass kernels re-run their ``__post_init__`` validation; unknown
        parameter names raise :class:`TypeError`.
        """
        if dataclasses.is_dataclass(self):
            return dataclasses.replace(self, **params)
        clone = copy.copy(self)
        for name, value in params.items():
            if not hasattr(clone, name):
                raise TypeError(
                    f"{type(self).__name__} has no hyperparameter {name!r}"
                )
            setattr(clone, name, value)
        return clone

    def hyperparameters(self) -> Dict[str, float]:
        """Scalar hyperparameters of this kernel (dataclass fields by default)."""
        if dataclasses.is_dataclass(self):
            return {
                f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if isinstance(getattr(self, f.name), (int, float))
            }
        return {}


def pairwise_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between the rows of ``x`` and ``y``.

    Uses the expanded-square formulation with a clamp at zero so it is a single
    BLAS-3 call plus elementwise work (the dominant cost of dense kernel
    assembly) instead of a Python loop.

    Squared distances below the round-off floor of the expansion
    (``~eps * (|x|^2 + |y|^2)``) are snapped to exactly zero so that coincident
    points are detected reliably — kernels singular at the origin substitute
    their configured self-interaction value for those entries.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x_sq = np.einsum("ij,ij->i", x, x)
    y_sq = np.einsum("ij,ij->i", y, y)
    sq = x_sq[:, None] + y_sq[None, :] - 2.0 * (x @ y.T)
    scale = float(x_sq.max(initial=0.0) + y_sq.max(initial=0.0))
    floor = 64.0 * np.finfo(np.float64).eps * max(scale, np.finfo(np.float64).tiny)
    sq[sq < floor] = 0.0
    return np.sqrt(sq, out=sq)


def pairwise_distances_stacked(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Batched Euclidean distances between ``(g, p, dim)`` and ``(g, q, dim)`` stacks.

    Item ``i`` of the result equals ``pairwise_distances(x[i], y[i])`` —
    including the per-block round-off floor, which is derived from each block's
    own coordinate scale — but all ``g`` blocks are evaluated with one einsum /
    matmul / sqrt pass.  This is the distance kernel behind the batched entry
    generator (``EntryExtractor._extract_stacked`` /
    ``extract_blocks_padded``): one launch evaluates the dense or coupling
    blocks of an entire tree level.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 3 or y.ndim != 3 or x.shape[0] != y.shape[0]:
        raise ValueError("stacked distances require (g, p, dim)/(g, q, dim) arrays")
    x_sq = np.einsum("gij,gij->gi", x, x)
    y_sq = np.einsum("gij,gij->gi", y, y)
    sq = x_sq[:, :, None] + y_sq[:, None, :] - 2.0 * np.matmul(x, y.transpose(0, 2, 1))
    tiny = np.finfo(np.float64).tiny
    scale = x_sq.max(axis=1, initial=0.0) + y_sq.max(axis=1, initial=0.0)
    floor = 64.0 * np.finfo(np.float64).eps * np.maximum(scale, tiny)
    sq[sq < floor[:, None, None]] = 0.0
    return np.sqrt(sq, out=sq)


class PairwiseKernel(KernelFunction):
    """Base class for radial kernels ``K(x, y) = f(|x - y|)``.

    Sub-classes implement :meth:`profile` acting elementwise on a distance
    array; optionally :attr:`diagonal_value` overrides the value at zero
    distance (needed for kernels singular at the origin such as the Helmholtz
    volume-IE kernel).
    """

    #: Value to use on the diagonal (distance exactly zero); ``None`` keeps
    #: the profile's own value at zero.
    diagonal_value: float | None = None

    @abstractmethod
    def profile(self, r: np.ndarray) -> np.ndarray:
        """Evaluate the radial profile ``f(r)`` elementwise on ``r >= 0``."""

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r = pairwise_distances(x, y)
        return self.profile_with_diagonal(r)

    def profile_with_diagonal(self, r: np.ndarray) -> np.ndarray:
        """Evaluate the profile on a distance array, honouring :attr:`diagonal_value`.

        The entry point for distance-reusing evaluation paths (the
        :class:`~repro.core.context.GeometryContext` caches the distance matrix
        across a hyperparameter sweep and re-evaluates only this function).
        """
        values = self.profile(r)
        if self.diagonal_value is not None:
            values = np.where(r == 0.0, self.diagonal_value, values)
        return values

    def value_at_zero(self) -> float:
        """The self-interaction value ``K(x, x)`` (prior variance of GP kernels)."""
        if self.diagonal_value is not None:
            return float(self.diagonal_value)
        return float(np.asarray(self.profile(np.zeros(1)))[0])

    # ------------------------------------------------------------- composition
    def __add__(self, other: "PairwiseKernel") -> "PairwiseKernel":
        from .composite import SumKernel

        if not isinstance(other, PairwiseKernel):
            return NotImplemented
        return SumKernel((self, other))

    def __mul__(self, scale: float) -> "PairwiseKernel":
        from .composite import ScaledKernel

        if not isinstance(scale, (int, float)):
            return NotImplemented
        return ScaledKernel(self, float(scale))

    def __rmul__(self, scale: float) -> "PairwiseKernel":
        return self.__mul__(scale)

"""Kernel composition: scaling, sums and white-noise (nugget) terms.

Gaussian-process covariance models are built from a smooth base kernel plus
observation noise, ``sigma_f^2 K(r / l) + sigma_n^2 I``.  All compositions
here stay radial (:class:`~repro.kernels.base.PairwiseKernel`), so a
distance-reusing evaluation path (the sweep cache of
:class:`~repro.core.context.GeometryContext`) works for composite kernels
exactly as for the primitive ones.  Python operators are provided as sugar:
``0.5 * ExponentialKernel(0.2) + WhiteNoiseKernel(1e-2)``.

Hyperparameter naming
---------------------
``hyperparameters()``/``rebind()`` form a consistent dictionary view for
optimizers.  When two components of a composition expose the *same* parameter
name (two variances, two length scales), the colliding names are qualified
with the component index — ``variance.0``, ``variance.1`` — in both the read
and the write direction, and rebinding the bare ambiguous name raises instead
of silently picking a component.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..utils.validation import check_positive
from .base import PairwiseKernel


@dataclass
class ScaledKernel(PairwiseKernel):
    """``variance * K(x, y)`` — a signal-variance (amplitude) hyperparameter."""

    kernel: PairwiseKernel = None  # type: ignore[assignment]
    variance: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.kernel, PairwiseKernel):
            raise TypeError("ScaledKernel requires a PairwiseKernel to scale")
        check_positive(self.variance, "variance")

    def profile(self, r: np.ndarray) -> np.ndarray:
        return self.variance * self.kernel.profile(r)

    def profile_with_diagonal(self, r: np.ndarray) -> np.ndarray:
        return self.variance * self.kernel.profile_with_diagonal(r)

    def rebind(self, **params: float) -> "ScaledKernel":
        """Route ``variance`` to the amplitude, everything else to the inner
        kernel; an inner parameter also called ``variance`` is addressed as
        ``variance.0`` (see the module docstring)."""
        variance = params.pop("variance", self.variance)
        if "variance.0" in params:
            params["variance"] = params.pop("variance.0")
        kernel = self.kernel.rebind(**params) if params else self.kernel
        return ScaledKernel(kernel, variance)

    def hyperparameters(self) -> Dict[str, float]:
        params = {
            ("variance.0" if name == "variance" else name): value
            for name, value in self.kernel.hyperparameters().items()
        }
        params["variance"] = self.variance
        return params


@dataclass
class SumKernel(PairwiseKernel):
    """Entrywise sum of radial kernels (e.g. smooth kernel + nugget)."""

    kernels: Tuple[PairwiseKernel, ...] = ()

    def __post_init__(self) -> None:
        self.kernels = tuple(self.kernels)
        if not self.kernels:
            raise ValueError("SumKernel requires at least one kernel")
        for kernel in self.kernels:
            if not isinstance(kernel, PairwiseKernel):
                raise TypeError("SumKernel components must be PairwiseKernels")

    def profile(self, r: np.ndarray) -> np.ndarray:
        result = self.kernels[0].profile(r)
        for kernel in self.kernels[1:]:
            result = result + kernel.profile(r)
        return result

    def profile_with_diagonal(self, r: np.ndarray) -> np.ndarray:
        result = self.kernels[0].profile_with_diagonal(r)
        for kernel in self.kernels[1:]:
            result = result + kernel.profile_with_diagonal(r)
        return result

    def _component_params(self):
        per_component = [kernel.hyperparameters() for kernel in self.kernels]
        counts = Counter(name for params in per_component for name in params)
        return per_component, counts

    def rebind(self, **params: float) -> "SumKernel":
        """Route parameters to components; qualified names (``name.i``)
        address component ``i`` directly, bare names must be unambiguous."""
        per_component, counts = self._component_params()
        routed: list[Dict[str, float]] = [{} for _ in self.kernels]
        for key, value in params.items():
            name, sep, index = key.rpartition(".")
            if counts.get(key, 0) == 1:
                # Unambiguous component key (possibly itself qualified by a
                # nested composition) — exact match wins over index parsing.
                owner = next(
                    i for i, params_i in enumerate(per_component) if key in params_i
                )
                routed[owner][key] = value
            elif counts.get(key, 0) > 1:
                raise TypeError(
                    f"hyperparameter {key!r} is ambiguous in this sum; "
                    f"qualify it as '{key}.<component>'"
                )
            elif sep and name and index.isdigit() and int(index) < len(self.kernels):
                if name not in per_component[int(index)]:
                    raise TypeError(
                        f"component {index} of the sum has no hyperparameter "
                        f"{name!r}"
                    )
                routed[int(index)][name] = value
            else:
                raise TypeError(
                    f"no component of the sum accepts hyperparameter {key!r}"
                )
        rebound = tuple(
            kernel.rebind(**accepted) if accepted else kernel
            for kernel, accepted in zip(self.kernels, routed)
        )
        return SumKernel(rebound)

    def hyperparameters(self) -> Dict[str, float]:
        per_component, counts = self._component_params()
        params: Dict[str, float] = {}
        for i, component in enumerate(per_component):
            for name, value in component.items():
                params[name if counts[name] == 1 else f"{name}.{i}"] = value
        return params


@dataclass
class WhiteNoiseKernel(PairwiseKernel):
    """Nugget kernel ``K(x, y) = variance * [x == y]`` (observation noise).

    Only coincident points interact, so the kernel contributes ``variance`` to
    the diagonal of the covariance matrix and nothing anywhere else — the
    explicit-kernel formulation of the diagonal shift that
    :class:`~repro.solvers.hodlr_factor.HODLRFactorization` applies through its
    ``shift`` argument.
    """

    variance: float = 1e-2

    def __post_init__(self) -> None:
        check_positive(self.variance, "variance")

    def profile(self, r: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(r) == 0.0, self.variance, 0.0)

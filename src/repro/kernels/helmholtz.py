"""Volume integral-equation kernels.

The second application in the paper compresses the discretized volume IE
operator of the Helmholtz equation on uniformly distributed points in a cube,

    K(x, y) = cos(k |x - y|) / |x - y|,   x != y,   k = 3    (Eq. 9).

The kernel is singular at the origin; the diagonal (self-interaction) value is
a discretization-dependent finite constant which we expose as a parameter.
The Laplace kernel ``1 / |x - y|`` is provided as the ``k = 0`` limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PairwiseKernel


@dataclass
class HelmholtzKernel(PairwiseKernel):
    """Real Helmholtz volume-IE kernel ``cos(k r) / r`` with finite self term."""

    wavenumber: float = 3.0
    #: Value used for coincident points (the paper evaluates the kernel only
    #: for ``x != y``; the self term comes from the discretization and is an
    #: O(1/h) constant, here left configurable).
    diagonal_value: float = 0.0

    def __post_init__(self) -> None:
        if self.wavenumber < 0:
            raise ValueError("wavenumber must be non-negative")

    def profile(self, r: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.cos(self.wavenumber * r) / r
        return np.where(r == 0.0, self.diagonal_value, values)


@dataclass
class LaplaceKernel(PairwiseKernel):
    """Laplace single-layer style kernel ``1 / |x - y|`` with finite self term."""

    diagonal_value: float = 0.0

    def profile(self, r: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            values = 1.0 / r
        return np.where(r == 0.0, self.diagonal_value, values)

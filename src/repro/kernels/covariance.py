"""Spatial-statistics covariance kernels.

The first application in the paper (Section V-A) compresses the covariance
matrix of a 3D Gaussian spatial process on uniformly distributed points with
the exponential kernel ``K(x, y) = exp(-|x - y| / l)`` and correlation length
``l = 0.2``.  The Gaussian and Matérn kernels are provided as additional
covariance models exercising the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import check_positive
from .base import PairwiseKernel


@dataclass
class ExponentialKernel(PairwiseKernel):
    """Exponential covariance ``K(x, y) = exp(-|x - y| / length_scale)`` (Eq. 8)."""

    length_scale: float = 0.2

    def __post_init__(self) -> None:
        check_positive(self.length_scale, "length_scale")

    def profile(self, r: np.ndarray) -> np.ndarray:
        return np.exp(-r / self.length_scale)


@dataclass
class GaussianKernel(PairwiseKernel):
    """Squared-exponential covariance ``K(x, y) = exp(-|x - y|^2 / (2 l^2))``."""

    length_scale: float = 0.2

    def __post_init__(self) -> None:
        check_positive(self.length_scale, "length_scale")

    def profile(self, r: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * (r / self.length_scale) ** 2)


@dataclass
class Matern32Kernel(PairwiseKernel):
    """Matérn covariance with smoothness ``nu = 3/2``."""

    length_scale: float = 0.2

    def __post_init__(self) -> None:
        check_positive(self.length_scale, "length_scale")

    def profile(self, r: np.ndarray) -> np.ndarray:
        scaled = np.sqrt(3.0) * r / self.length_scale
        return (1.0 + scaled) * np.exp(-scaled)


@dataclass
class Matern52Kernel(PairwiseKernel):
    """Matérn covariance with smoothness ``nu = 5/2``."""

    length_scale: float = 0.2

    def __post_init__(self) -> None:
        check_positive(self.length_scale, "length_scale")

    def profile(self, r: np.ndarray) -> np.ndarray:
        scaled = np.sqrt(5.0) * r / self.length_scale
        return (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)

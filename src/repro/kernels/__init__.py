"""Kernel functions defining the dense matrices to be compressed."""

from .base import (
    KernelFunction,
    PairwiseKernel,
    pairwise_distances,
    pairwise_distances_stacked,
)
from .composite import ScaledKernel, SumKernel, WhiteNoiseKernel
from .covariance import (
    ExponentialKernel,
    GaussianKernel,
    Matern32Kernel,
    Matern52Kernel,
)
from .helmholtz import HelmholtzKernel, LaplaceKernel

__all__ = [
    "KernelFunction",
    "PairwiseKernel",
    "pairwise_distances",
    "pairwise_distances_stacked",
    "ExponentialKernel",
    "GaussianKernel",
    "Matern32Kernel",
    "Matern52Kernel",
    "HelmholtzKernel",
    "LaplaceKernel",
    "ScaledKernel",
    "SumKernel",
    "WhiteNoiseKernel",
]

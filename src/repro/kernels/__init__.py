"""Kernel functions defining the dense matrices to be compressed."""

from .base import KernelFunction, PairwiseKernel
from .covariance import (
    ExponentialKernel,
    GaussianKernel,
    Matern32Kernel,
    Matern52Kernel,
)
from .helmholtz import HelmholtzKernel, LaplaceKernel

__all__ = [
    "KernelFunction",
    "PairwiseKernel",
    "ExponentialKernel",
    "GaussianKernel",
    "Matern32Kernel",
    "Matern52Kernel",
    "HelmholtzKernel",
    "LaplaceKernel",
]

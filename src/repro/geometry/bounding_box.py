"""Axis-aligned bounding boxes.

The general admissibility condition of the paper (Eq. 1) is evaluated on the
bounding boxes of cluster pairs: a pair ``(s, t)`` is admissible when the
average of the two box diameters is at most ``eta`` times the distance between
the boxes.  :class:`BoundingBox` provides the diameter and box-to-box distance
used by :mod:`repro.tree.admissibility`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned bounding box in ``dim`` dimensions.

    Parameters
    ----------
    low, high:
        Arrays of shape ``(dim,)`` with the minimum and maximum coordinates.
    """

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64)
        high = np.asarray(self.high, dtype=np.float64)
        if low.shape != high.shape or low.ndim != 1:
            raise ValueError("low/high must be 1-D arrays of equal shape")
        if np.any(high < low):
            raise ValueError("bounding box must satisfy high >= low componentwise")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BoundingBox":
        """Tight bounding box of a ``(n, dim)`` point set."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, dim) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @property
    def dim(self) -> int:
        return int(self.low.shape[0])

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.low + self.high)

    @property
    def extents(self) -> np.ndarray:
        """Edge lengths of the box along each axis."""
        return self.high - self.low

    def diameter(self) -> float:
        """Euclidean length of the box diagonal."""
        return float(np.linalg.norm(self.extents))

    def longest_axis(self) -> int:
        """Index of the axis with the largest extent (KD-tree split axis)."""
        return int(np.argmax(self.extents))

    def distance(self, other: "BoundingBox") -> float:
        """Minimum Euclidean distance between this box and ``other``.

        Zero when the boxes overlap or touch.
        """
        gap = np.maximum(
            0.0, np.maximum(self.low - other.high, other.low - self.high)
        )
        return float(np.linalg.norm(gap))

    def contains(self, points: np.ndarray, atol: float = 0.0) -> np.ndarray:
        """Boolean mask of which rows of ``points`` lie inside the box."""
        pts = np.asarray(points, dtype=np.float64)
        return np.all(
            (pts >= self.low - atol) & (pts <= self.high + atol), axis=1
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            np.minimum(self.low, other.low), np.maximum(self.high, other.high)
        )

"""Point-set generators for the paper's test problems.

The evaluation uses uniform 3D distributions of points in a cube for both the
covariance (Eq. 8) and Helmholtz volume-IE (Eq. 9) kernels, and planar
separator point sets for the multifrontal frontal matrices.  All generators
return ``(n, dim)`` ``float64`` arrays.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import SeedLike, as_generator


def uniform_cube_points(
    n: int, dim: int = 3, seed: SeedLike = None, side: float = 1.0
) -> np.ndarray:
    """``n`` points uniformly distributed in the cube ``[0, side]^dim``.

    This is the point distribution used for the covariance and IE matrices in
    the paper (Section V-A).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = as_generator(seed)
    return side * rng.random((n, dim))


def grid_points(shape: tuple[int, ...], spacing: float = 1.0) -> np.ndarray:
    """Points of a regular grid with ``shape[i]`` points along axis ``i``.

    Used for the uniform-grid Poisson discretization feeding the multifrontal
    frontal-matrix experiments.  Points are ordered lexicographically with the
    last axis fastest, matching :mod:`repro.multifrontal.poisson`.
    """
    if len(shape) == 0 or any(s <= 0 for s in shape):
        raise ValueError("shape must contain positive extents")
    axes = [spacing * np.arange(s, dtype=np.float64) for s in shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.reshape(-1) for m in mesh], axis=1)


def plane_points(
    nx: int, ny: int, spacing: float = 1.0, z: float = 0.0
) -> np.ndarray:
    """A planar ``nx x ny`` grid embedded in 3D at height ``z``.

    Frontal matrices of 3D Poisson problems live on (roughly) planar
    separators; the H2/HSS/HODLR compressions in Fig. 6(b) cluster the
    separator degrees of freedom geometrically, which this generator mimics.
    """
    pts2d = grid_points((nx, ny), spacing=spacing)
    return np.column_stack([pts2d, np.full(pts2d.shape[0], z, dtype=np.float64)])


def random_sphere_points(n: int, seed: SeedLike = None, radius: float = 1.0) -> np.ndarray:
    """``n`` points uniformly distributed on a sphere surface of ``radius``.

    A convenient surface distribution for additional examples/tests (boundary
    integral-equation style geometry).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = as_generator(seed)
    normals = rng.normal(size=(n, 3))
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return radius * normals / norms

"""Point-set generators and bounding-box geometry used by the cluster tree."""

from .bounding_box import BoundingBox
from .point_cloud import (
    grid_points,
    plane_points,
    random_sphere_points,
    uniform_cube_points,
)

__all__ = [
    "BoundingBox",
    "uniform_cube_points",
    "grid_points",
    "plane_points",
    "random_sphere_points",
]

"""Nested-dissection ordering of uniform grids by recursive coordinate bisection.

A multifrontal factorization eliminates unknowns following an elimination tree
whose upper levels correspond to nested-dissection separators; the frontal
matrix of a separator is the Schur complement of the separator unknowns after
all descendants have been eliminated.  For uniform grids the classical
geometric nested dissection cuts the grid with axis-aligned hyperplanes, which
is what this module implements (it is also what sparse direct solvers such as
STRUMPACK effectively obtain from METIS on these grids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .poisson import grid_coordinates


@dataclass
class Separator:
    """One separator of the dissection."""

    level: int
    #: Linear grid indices of the separator unknowns.
    indices: np.ndarray
    #: Axis the separating hyperplane is orthogonal to.
    axis: int


@dataclass
class NestedDissection:
    """Result of a recursive coordinate-bisection nested dissection."""

    shape: tuple
    separators: List[Separator] = field(default_factory=list)
    #: Elimination ordering: interiors first (recursively), separators last.
    permutation: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def top_separator(self) -> Separator:
        """The root separator (eliminated last, largest frontal matrix)."""
        if not self.separators:
            raise ValueError("dissection produced no separators")
        return min(self.separators, key=lambda s: s.level)

    def separators_at_level(self, level: int) -> List[Separator]:
        return [s for s in self.separators if s.level == level]

    @property
    def num_levels(self) -> int:
        return 1 + max((s.level for s in self.separators), default=-1)


def nested_dissection(shape: Sequence[int], max_levels: int = 3, min_size: int = 3) -> NestedDissection:
    """Recursively bisect a ``shape`` grid with axis-aligned separators.

    Parameters
    ----------
    shape:
        Grid extents (2 or 3 dimensions).
    max_levels:
        Number of dissection levels (the root separator is level 0).
    min_size:
        Sub-grids smaller than this along every axis are not subdivided further.

    Returns
    -------
    NestedDissection
        Separator list plus a fill-reducing elimination permutation in which
        every separator appears after the unknowns it separates.
    """
    shape = tuple(int(s) for s in shape)
    coords = np.stack(grid_coordinates(shape), axis=1)
    n = coords.shape[0]
    all_indices = np.arange(n, dtype=np.int64)

    result = NestedDissection(shape=shape)
    ordering: List[np.ndarray] = []

    def recurse(indices: np.ndarray, level: int) -> None:
        if indices.size == 0:
            return
        sub = coords[indices]
        extents = sub.max(axis=0) - sub.min(axis=0) + 1
        if level >= max_levels or np.all(extents < min_size):
            ordering.append(indices)
            return
        axis = int(np.argmax(extents))
        cut = int(sub[:, axis].min() + extents[axis] // 2)
        separator_mask = sub[:, axis] == cut
        left_mask = sub[:, axis] < cut
        right_mask = sub[:, axis] > cut
        separator = indices[separator_mask]
        result.separators.append(
            Separator(level=level, indices=separator, axis=axis)
        )
        recurse(indices[left_mask], level + 1)
        recurse(indices[right_mask], level + 1)
        ordering.append(separator)

    recurse(all_indices, 0)
    result.permutation = np.concatenate(ordering) if ordering else all_indices
    if result.permutation.shape[0] != n or np.unique(result.permutation).shape[0] != n:
        raise AssertionError("nested dissection permutation is not a permutation")
    return result

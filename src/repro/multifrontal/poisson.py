"""Finite-difference Poisson operators on uniform grids.

The frontal-matrix experiments (Fig. 6b) use the standard 7-point
discretization of ``-Laplace(u)`` on a uniform 3D grid with homogeneous
Dirichlet boundary conditions; the 2D 5-point variant is provided for cheaper
tests.  Matrices are assembled as Kronecker sums of 1D second-difference
operators, which is both exact and fast.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..geometry.point_cloud import grid_points


def _second_difference(n: int) -> sp.csr_matrix:
    """1D second-difference operator (Dirichlet) with stencil ``[-1, 2, -1]``."""
    if n <= 0:
        raise ValueError("grid extent must be positive")
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr")


def poisson_matrix(shape: Sequence[int]) -> sp.csr_matrix:
    """Assemble the (2D or 3D) finite-difference Laplacian on a ``shape`` grid.

    Grid points are ordered lexicographically with the *last* axis fastest
    (matching :func:`repro.geometry.point_cloud.grid_points`), and the operator
    is the Kronecker sum of 1D second differences:

        A = D_x (x) I (x) I + I (x) D_y (x) I + I (x) I (x) D_z.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) not in (1, 2, 3):
        raise ValueError("shape must have 1, 2 or 3 dimensions")
    operators = [_second_difference(s) for s in shape]
    identities = [sp.identity(s, format="csr") for s in shape]
    total = sp.csr_matrix((int(np.prod(shape)), int(np.prod(shape))))
    for axis in range(len(shape)):
        factors = [
            operators[axis] if k == axis else identities[k] for k in range(len(shape))
        ]
        term = factors[0]
        for factor in factors[1:]:
            term = sp.kron(term, factor, format="csr")
        total = total + term
    return total.tocsr()


def poisson_grid_points(shape: Sequence[int], spacing: float = 1.0) -> np.ndarray:
    """Coordinates of the grid points in the same ordering as :func:`poisson_matrix`."""
    return grid_points(tuple(int(s) for s in shape), spacing=spacing)


def grid_index(shape: Sequence[int], coordinates: np.ndarray) -> np.ndarray:
    """Linear indices of integer grid ``coordinates`` (rows) for a ``shape`` grid."""
    shape = tuple(int(s) for s in shape)
    coords = np.asarray(coordinates, dtype=np.int64)
    if coords.ndim == 1:
        coords = coords[None, :]
    if coords.shape[1] != len(shape):
        raise ValueError("coordinate dimension does not match the grid shape")
    return np.ravel_multi_index(tuple(coords.T), shape).astype(np.int64)


def grid_coordinates(shape: Sequence[int]) -> Tuple[np.ndarray, ...]:
    """Integer coordinate arrays of every grid point (same ordering as the matrix)."""
    shape = tuple(int(s) for s in shape)
    grids = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
    return tuple(g.reshape(-1) for g in grids)

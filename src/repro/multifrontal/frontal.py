"""Frontal (Schur-complement) matrices of nested-dissection separators.

In a multifrontal factorization the frontal matrix assembled at a separator —
after all interior unknowns have been eliminated — equals the Schur complement

    F = A_ss - A_si A_ii^{-1} A_is

of the separator block.  These dense matrices are the workload of Fig. 6(b);
they are numerically low-rank off the diagonal (they discretize a
boundary-to-boundary operator) and their unknowns carry the geometry of the
separator plane, which the hierarchical compressions cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .nested_dissection import nested_dissection
from .poisson import poisson_grid_points, poisson_matrix


@dataclass
class FrontalMatrix:
    """A dense frontal matrix together with the separator geometry."""

    matrix: np.ndarray
    points: np.ndarray
    separator_indices: np.ndarray
    grid_shape: tuple

    @property
    def size(self) -> int:
        return int(self.matrix.shape[0])


def schur_complement(
    matrix: sp.spmatrix, separator: np.ndarray, interior: np.ndarray | None = None
) -> np.ndarray:
    """Exact Schur complement of ``matrix`` onto the ``separator`` unknowns.

    Parameters
    ----------
    matrix:
        Sparse symmetric positive-definite matrix.
    separator:
        Indices of the unknowns kept (the frontal variables).
    interior:
        Indices eliminated; defaults to the complement of ``separator``.
    """
    matrix = sp.csr_matrix(matrix)
    n = matrix.shape[0]
    separator = np.asarray(separator, dtype=np.int64)
    if interior is None:
        mask = np.ones(n, dtype=bool)
        mask[separator] = False
        interior = np.nonzero(mask)[0]
    else:
        interior = np.asarray(interior, dtype=np.int64)

    a_ss = matrix[np.ix_(separator, separator)].toarray()
    if interior.size == 0:
        return a_ss
    a_si = sp.csc_matrix(matrix[np.ix_(separator, interior)])
    a_is = sp.csc_matrix(matrix[np.ix_(interior, separator)])
    a_ii = sp.csc_matrix(matrix[np.ix_(interior, interior)])
    solver = spla.splu(a_ii)
    solved = solver.solve(a_is.toarray())
    return a_ss - a_si @ solved


def root_frontal_matrix(grid_shape: tuple[int, ...]) -> FrontalMatrix:
    """Frontal matrix of the root nested-dissection separator of a Poisson grid.

    The returned matrix is the exact Schur complement of the middle separator
    plane after eliminating both halves of the grid — the largest front of the
    multifrontal factorization, sized ``~ n^2`` for an ``n^3`` grid.
    """
    grid_shape = tuple(int(s) for s in grid_shape)
    matrix = poisson_matrix(grid_shape)
    dissection = nested_dissection(grid_shape, max_levels=1)
    separator = dissection.top_separator().indices
    front = schur_complement(matrix, separator)
    points = poisson_grid_points(grid_shape)[separator]
    return FrontalMatrix(
        matrix=front,
        points=points,
        separator_indices=separator,
        grid_shape=grid_shape,
    )

"""Multifrontal substrate: Poisson problems, nested dissection and frontal matrices.

The paper's third test problem extracts frontal matrices from the multifrontal
factorization of a uniform-grid 3D Poisson problem and compares the memory of
compressing them with the proposed H2 algorithm against weak-admissibility
formats (STRUMPACK's HSS/HODLR).  This package builds that substrate from
scratch: the 7-point finite-difference operator, nested-dissection orderings
of the grid graph, and exact Schur-complement frontal matrices of separators.

:class:`repro.solvers.MultifrontalSolver` builds on this substrate to perform
the actual multifrontal *solve*, optionally compressing the large fronts with
the sketching constructor (the paper's application scenario).
"""

from .frontal import FrontalMatrix, root_frontal_matrix, schur_complement
from .nested_dissection import NestedDissection, nested_dissection
from .poisson import poisson_matrix, poisson_grid_points

__all__ = [
    "poisson_matrix",
    "poisson_grid_points",
    "NestedDissection",
    "nested_dissection",
    "FrontalMatrix",
    "schur_complement",
    "root_frontal_matrix",
]

"""Top-down peeling construction through a HODLR intermediate (H2Opus substitute).

The reference GPU implementation the paper compares against (H2Opus) uses the
matrix-vector-product-only construction of Lin, Lu & Ying: hierarchical levels
are processed *top down*; at every level the off-diagonal sibling blocks are
sketched with random vectors restricted to the sibling's columns, after
*peeling off* the contribution of the (already compressed) coarser-level
blocks.  Because the intermediate representation is weakly admissible
(HODLR-like), the block ranks for 3D geometries grow with the block size, so
the number of random vectors grows far beyond the O(1) vectors needed by the
paper's bottom-up algorithm — this is exactly the effect the Fig. 5 sample
annotations (262…18920 vectors) show.

The implementation below reproduces that algorithm faithfully for symmetric
matrices:

* per level, the two sibling-parity groups are excited separately so a row
  cluster never sees its own columns;
* coarser-level contributions are peeled using the already computed low-rank
  factors;
* ranks are detected adaptively with the same QR convergence test used by the
  bottom-up constructor;
* a second sketching pass (with the orthonormalised range) produces the
  right factors.

Dense diagonal leaf blocks are evaluated with the entry extractor, as in the
reference implementations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..hmatrix.hodlr import HODLRMatrix
from ..linalg.low_rank import LowRankMatrix
from ..linalg.qr import smallest_r_diagonal, truncated_pivoted_qr
from ..linalg.norm_estimation import estimate_spectral_norm
from ..sketching.entry_extractor import EntryExtractor
from ..sketching.operators import SketchingOperator
from ..tree.cluster_tree import ClusterTree
from ..utils.rng import SeedLike, as_generator


@dataclass
class PeelingResult:
    """Outcome of the top-down peeling construction."""

    matrix: HODLRMatrix
    total_samples: int
    operator_applications: int
    elapsed_seconds: float
    samples_per_level: Dict[int, int] = field(default_factory=dict)
    rank_per_level: Dict[int, int] = field(default_factory=dict)
    truncated: bool = False

    def memory_mb(self) -> float:
        return self.matrix.memory_bytes()["total"] / (1024.0**2)

    def rank_range(self) -> Tuple[int, int]:
        return self.matrix.rank_range()


class TopDownPeelingConstructor:
    """Matrix-free top-down HODLR construction by peeling (Lin-Lu-Ying style)."""

    def __init__(
        self,
        tree: ClusterTree,
        operator: SketchingOperator,
        extractor: EntryExtractor,
        tolerance: float = 1e-6,
        sample_block_size: int = 32,
        max_rank: int | None = None,
        seed: SeedLike = None,
    ):
        self.tree = tree
        self.operator = operator
        self.extractor = extractor
        self.tolerance = float(tolerance)
        self.sample_block_size = int(sample_block_size)
        self.max_rank = max_rank
        self.rng = as_generator(seed)
        if operator.n != tree.num_points or extractor.n != tree.num_points:
            raise ValueError("operator/extractor dimension must match the cluster tree")

    # ------------------------------------------------------------------ public
    def construct(self) -> PeelingResult:
        start = time.perf_counter()
        self.operator.reset_statistics()
        tree = self.tree
        n = tree.num_points
        hodlr = HODLRMatrix(tree=tree)

        norm = estimate_spectral_norm(
            self.operator.matvec, n, num_iterations=6, seed=self.rng
        )
        threshold = self.tolerance * max(norm, np.finfo(np.float64).tiny)

        samples_per_level: Dict[int, int] = {}
        rank_per_level: Dict[int, int] = {}
        truncated = False

        for level in range(1, tree.num_levels):
            level_samples_before = self.operator.samples_taken
            nodes = list(tree.nodes_at_level(level))
            # Sibling pairs: (nodes[2i], nodes[2i+1]).  The matrix is symmetric,
            # so a single parity pass covers every pair and the transposed block
            # is mirrored from the computed factors; a non-symmetric variant
            # would run both parities.
            for parity in (0,):
                # Row clusters whose sibling has this parity.
                rows = [nodes[i] for i in range(len(nodes)) if i % 2 != parity]
                cols = [nodes[i] for i in range(len(nodes)) if i % 2 == parity]
                if not rows:
                    continue
                bases, capped = self._sketch_ranges(hodlr, rows, cols, threshold)
                truncated = truncated or capped
                right_factors = self._second_pass(hodlr, rows, cols, bases)
                for s, t in zip(rows, cols):
                    q = bases[s]
                    w = right_factors[s]
                    hodlr.off_diagonal[(s, t)] = LowRankMatrix(q, w)
                    if (t, s) not in hodlr.off_diagonal:
                        # Symmetric matrix: the transpose block is (W, Q).
                        hodlr.off_diagonal[(t, s)] = LowRankMatrix(w, q)
            samples_per_level[level] = self.operator.samples_taken - level_samples_before
            ranks = [
                hodlr.off_diagonal[(nodes[i], nodes[i ^ 1])].rank
                for i in range(len(nodes))
            ]
            rank_per_level[level] = max(ranks) if ranks else 0

        # Dense diagonal leaf blocks.
        for leaf in tree.leaves():
            idx = tree.index_set(leaf)
            hodlr.diagonal[leaf] = self.extractor.extract(idx, idx)

        return PeelingResult(
            matrix=hodlr,
            total_samples=self.operator.samples_taken,
            operator_applications=self.operator.applications,
            elapsed_seconds=time.perf_counter() - start,
            samples_per_level=samples_per_level,
            rank_per_level=rank_per_level,
            truncated=truncated,
        )

    # ---------------------------------------------------------------- internals
    def _peel_rows(
        self,
        hodlr: HODLRMatrix,
        row_node: int,
        omega: np.ndarray,
        sample_rows: np.ndarray,
    ) -> np.ndarray:
        """Subtract the contribution of coarser-level blocks from ``sample_rows``.

        ``sample_rows`` holds the rows ``I_row_node`` of ``K @ omega``; every
        already-computed off-diagonal block ``(a, b)`` with ``I_a`` containing
        ``I_row_node`` contributes ``U_a[local rows] (V_b^T omega[I_b])``.
        """
        tree = self.tree
        result = sample_rows
        # Walk the ancestor chain: at each coarser level the ancestor `anc` of
        # row_node has an (already computed) off-diagonal block with its sibling.
        anc = row_node
        offset_start = tree.starts[row_node]
        while anc != 0:
            parent = tree.parent(anc)
            left, right = tree.children(parent)
            anc_sibling = right if anc == left else left
            block = hodlr.off_diagonal.get((anc, anc_sibling))
            if block is not None and block.rank > 0:
                local = slice(
                    offset_start - tree.starts[anc],
                    offset_start - tree.starts[anc] + tree.cluster_size(row_node),
                )
                contribution = block.left[local] @ (
                    block.right.T
                    @ omega[tree.starts[anc_sibling] : tree.ends[anc_sibling]]
                )
                result = result - contribution
            anc = parent
        return result

    def _sketch_ranges(
        self,
        hodlr: HODLRMatrix,
        rows: List[int],
        cols: List[int],
        threshold: float,
    ) -> Tuple[Dict[int, np.ndarray], bool]:
        """Adaptively sketch the range of every block ``K(I_row, I_col)`` of a parity group."""
        tree = self.tree
        n = tree.num_points
        samples: Dict[int, np.ndarray] = {s: np.zeros((tree.cluster_size(s), 0)) for s in rows}
        capped = False
        cap = self.max_rank if self.max_rank is not None else min(
            tree.cluster_size(cols[0]), n
        )

        while True:
            mins = [smallest_r_diagonal(samples[s]) if samples[s].shape[1] else np.inf for s in rows]
            if all(m <= threshold for m in mins):
                break
            current = max(block.shape[1] for block in samples.values())
            if current >= cap:
                capped = True
                break
            block_size = min(self.sample_block_size, cap - current)
            omega = np.zeros((n, block_size))
            for t in cols:
                omega[tree.starts[t] : tree.ends[t]] = self.rng.standard_normal(
                    (tree.cluster_size(t), block_size)
                )
            y = self.operator.multiply(omega)
            for s in rows:
                rows_of_y = y[tree.starts[s] : tree.ends[s]]
                peeled = self._peel_rows(hodlr, s, omega, rows_of_y)
                samples[s] = np.hstack([samples[s], peeled])

        bases: Dict[int, np.ndarray] = {}
        for s in rows:
            block = samples[s]
            if block.shape[1] == 0:
                bases[s] = np.zeros((block.shape[0], 0))
                continue
            q, r, _, rank = truncated_pivoted_qr(block, abs_tol=threshold)
            rank = min(rank, block.shape[1])
            if self.max_rank is not None:
                rank = min(rank, self.max_rank)
            bases[s] = q[:, :rank]
        return bases, capped

    def _second_pass(
        self,
        hodlr: HODLRMatrix,
        rows: List[int],
        cols: List[int],
        bases: Dict[int, np.ndarray],
    ) -> Dict[int, np.ndarray]:
        """Second sketching pass: ``W_s = K(I_col, I_row) Q_s`` for every pair.

        All row clusters of the parity group are excited simultaneously (their
        index ranges are disjoint), so a single operator application with
        ``max rank`` columns serves the whole group; contributions of coarser
        blocks are peeled from the sibling's rows.
        """
        tree = self.tree
        n = tree.num_points
        max_rank = max((bases[s].shape[1] for s in rows), default=0)
        right: Dict[int, np.ndarray] = {}
        if max_rank == 0:
            for s, t in zip(rows, cols):
                right[s] = np.zeros((tree.cluster_size(t), 0))
            return right
        omega = np.zeros((n, max_rank))
        for s in rows:
            q = bases[s]
            omega[tree.starts[s] : tree.ends[s], : q.shape[1]] = q
        y = self.operator.multiply(omega)
        for s, t in zip(rows, cols):
            rank = bases[s].shape[1]
            rows_of_y = y[tree.starts[t] : tree.ends[t]]
            peeled = self._peel_rows(hodlr, t, omega, rows_of_y)
            right[s] = peeled[:, :rank]
        return right

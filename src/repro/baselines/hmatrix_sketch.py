"""Colored-probing sketching construction of a non-nested H matrix
(ButterflyPACK substitute).

The paper's second comparator is ButterflyPACK's sketching-based construction
of a strongly-admissible H matrix [Levitt & Martinsson 2022], which compresses
every admissible block of the partition from matrix-vector products by probing
groups of blocks that do not interfere with each other (graph coloring), and
therefore needs O(log N) *blocks* of random vectors (the Fig. 5 annotations:
262-513 vectors, growing with N) and produces a non-nested representation with
O(N log N) memory.

This module implements that scheme directly on our block partition:

* levels are processed from coarse to fine; for every level the *column*
  clusters are greedily colored so that no row cluster interacts (at this or a
  finer level) with two excited columns of the same color;
* for each color a random block restricted to the excited columns is pushed
  through the black-box operator; contributions of coarser, already-compressed
  admissible blocks are peeled off, leaving each target block's sketch clean;
* a second pass with the orthonormalised ranges produces the right factors;
* dense inadmissible leaf blocks are evaluated with the entry extractor.

Ranks are detected adaptively with the same QR criterion as the bottom-up
constructor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..hmatrix.hmatrix import HMatrix
from ..linalg.low_rank import LowRankMatrix
from ..linalg.norm_estimation import estimate_spectral_norm
from ..linalg.qr import smallest_r_diagonal, truncated_pivoted_qr
from ..sketching.entry_extractor import EntryExtractor
from ..sketching.operators import SketchingOperator
from ..tree.block_partition import BlockPartition
from ..utils.rng import SeedLike, as_generator


@dataclass
class HMatrixSketchResult:
    """Outcome of the colored-probing H-matrix construction."""

    matrix: HMatrix
    total_samples: int
    operator_applications: int
    elapsed_seconds: float
    colors_per_level: Dict[int, int] = field(default_factory=dict)
    samples_per_level: Dict[int, int] = field(default_factory=dict)

    def memory_mb(self) -> float:
        return self.matrix.memory_bytes()["total"] / (1024.0**2)

    def rank_range(self) -> Tuple[int, int]:
        return self.matrix.rank_range()


class HMatrixSketchingConstructor:
    """Sketching-based construction of a strongly-admissible H matrix."""

    def __init__(
        self,
        partition: BlockPartition,
        operator: SketchingOperator,
        extractor: EntryExtractor,
        tolerance: float = 1e-6,
        sample_block_size: int = 32,
        max_rank: int | None = None,
        seed: SeedLike = None,
    ):
        self.partition = partition
        self.tree = partition.tree
        self.operator = operator
        self.extractor = extractor
        self.tolerance = float(tolerance)
        self.sample_block_size = int(sample_block_size)
        self.max_rank = max_rank
        self.rng = as_generator(seed)
        if operator.n != self.tree.num_points or extractor.n != self.tree.num_points:
            raise ValueError("operator/extractor dimension must match the cluster tree")

    # ------------------------------------------------------------------ public
    def construct(self) -> HMatrixSketchResult:
        start = time.perf_counter()
        self.operator.reset_statistics()
        tree = self.tree
        h = HMatrix(tree=tree, partition=self.partition)

        norm = estimate_spectral_norm(
            self.operator.matvec, tree.num_points, num_iterations=6, seed=self.rng
        )
        threshold = self.tolerance * max(norm, np.finfo(np.float64).tiny)

        colors_per_level: Dict[int, int] = {}
        samples_per_level: Dict[int, int] = {}

        for level in range(1, tree.num_levels):
            pairs = self.partition.admissible_pairs_at_level(level)
            if not pairs:
                continue
            before = self.operator.samples_taken
            color_classes = self._color_columns(level, pairs)
            colors_per_level[level] = len(color_classes)
            for excited_cols in color_classes:
                targets = [(s, t) for (s, t) in pairs if t in excited_cols]
                self._compress_color(h, level, targets, excited_cols, threshold)
            samples_per_level[level] = self.operator.samples_taken - before

        # Dense inadmissible leaf blocks.
        for s in tree.leaves():
            rows = tree.index_set(s)
            for t in self.partition.near(s):
                h.dense[(s, t)] = self.extractor.extract(rows, tree.index_set(t))

        return HMatrixSketchResult(
            matrix=h,
            total_samples=self.operator.samples_taken,
            operator_applications=self.operator.applications,
            elapsed_seconds=time.perf_counter() - start,
            colors_per_level=colors_per_level,
            samples_per_level=samples_per_level,
        )

    # --------------------------------------------------------------- coloring
    def _unresolved_partners(self, node: int, level: int) -> set:
        """Clusters at ``level`` whose interaction with ``node`` is *not* covered
        by a coarser admissible block (i.e. the pair is admissible or refined at
        this level) — exciting two of them simultaneously would contaminate the
        probe of ``node``'s block row."""
        partners = set(self.partition.far(node))
        # Inadmissible (refined) pairs at this level: recover them by walking the
        # dual traversal one level at a time — a pair (node, t) is unresolved if
        # neither it nor any ancestor pair is admissible.
        for t in self.tree.nodes_at_level(level):
            if t in partners:
                continue
            s_anc, t_anc = node, t
            covered = False
            while True:
                if t_anc in self.partition.far(s_anc):
                    covered = True
                    break
                if s_anc == 0:
                    break
                s_anc = self.tree.parent(s_anc)
                t_anc = self.tree.parent(t_anc)
            if not covered:
                partners.add(t)
        return partners

    def _color_columns(
        self, level: int, pairs: Sequence[Tuple[int, int]]
    ) -> List[set]:
        """Greedy coloring of the level's column clusters.

        Two column clusters conflict when some row cluster has *unresolved*
        interactions with both; members of a color class can be excited in the
        same probing pass without contaminating each other's block rows.
        """
        columns = sorted({t for _, t in pairs})
        unresolved: Dict[int, set] = {}
        for s in self.tree.nodes_at_level(level):
            unresolved[s] = self._unresolved_partners(s, level)

        conflicts: Dict[int, set] = {t: set() for t in columns}
        for s, partners in unresolved.items():
            members = [t for t in columns if t in partners]
            for i, t1 in enumerate(members):
                for t2 in members[i + 1 :]:
                    conflicts[t1].add(t2)
                    conflicts[t2].add(t1)

        color_of: Dict[int, int] = {}
        classes: List[set] = []
        for t in columns:
            used = {color_of[u] for u in conflicts[t] if u in color_of}
            color = 0
            while color in used:
                color += 1
            color_of[t] = color
            while len(classes) <= color:
                classes.append(set())
            classes[color].add(t)
        return classes

    # ------------------------------------------------------------ compression
    def _peel_rows(
        self,
        h: HMatrix,
        row_node: int,
        omega: np.ndarray,
        sample_rows: np.ndarray,
    ) -> np.ndarray:
        """Subtract *strictly coarser* compressed blocks from the probed rows of ``row_node``.

        Same-level blocks are never peeled: the coloring guarantees that no
        same-level partner of ``row_node`` other than the probe's own target is
        excited, and peeling the (possibly already computed) transposed target
        block would cancel the very contribution being measured.
        """
        tree = self.tree
        result = sample_rows
        anc = tree.parent(row_node) if row_node != 0 else 0
        offset_start = tree.starts[row_node]
        size = tree.cluster_size(row_node)
        while anc != 0:
            parent = tree.parent(anc)
            for b in self.partition.far(anc):
                block = h.low_rank.get((anc, b))
                if block is None or block.rank == 0:
                    continue
                projected = block.right.T @ omega[tree.starts[b] : tree.ends[b]]
                if not np.any(projected):
                    continue
                local = slice(
                    offset_start - tree.starts[anc],
                    offset_start - tree.starts[anc] + size,
                )
                result = result - block.left[local] @ projected
            anc = parent
        return result

    def _compress_color(
        self,
        h: HMatrix,
        level: int,
        targets: List[Tuple[int, int]],
        excited_cols: set,
        threshold: float,
    ) -> None:
        """Sketch and factorize every target block of one color class."""
        if not targets:
            return
        tree = self.tree
        n = tree.num_points
        cap = self.max_rank if self.max_rank is not None else max(
            tree.cluster_size(t) for _, t in targets
        )

        samples: Dict[Tuple[int, int], np.ndarray] = {
            (s, t): np.zeros((tree.cluster_size(s), 0)) for s, t in targets
        }
        omegas: List[np.ndarray] = []
        while True:
            mins = [
                smallest_r_diagonal(block) if block.shape[1] else np.inf
                for block in samples.values()
            ]
            if all(m <= threshold for m in mins):
                break
            current = max(block.shape[1] for block in samples.values())
            if current >= cap:
                break
            block_size = min(self.sample_block_size, cap - current)
            omega = np.zeros((n, block_size))
            for t in excited_cols:
                omega[tree.starts[t] : tree.ends[t]] = self.rng.standard_normal(
                    (tree.cluster_size(t), block_size)
                )
            omegas.append(omega)
            y = self.operator.multiply(omega)
            for s, t in targets:
                probe = y[tree.starts[s] : tree.ends[s]]
                peeled = self._peel_rows(h, s, omega, probe)
                samples[(s, t)] = np.hstack([samples[(s, t)], peeled])

        # Orthonormalise the ranges.
        bases: Dict[Tuple[int, int], np.ndarray] = {}
        for key, block in samples.items():
            if block.shape[1] == 0:
                bases[key] = np.zeros((block.shape[0], 0))
                continue
            q, _, _, rank = truncated_pivoted_qr(block, abs_tol=threshold)
            if self.max_rank is not None:
                rank = min(rank, self.max_rank)
            bases[key] = q[:, :rank]

        # Second pass: right factors W = K(I_t, I_s) Q_{s,t}.  Roles are swapped
        # (row clusters are excited with their bases, column clusters are read),
        # so the *row* clusters of the targets are re-colored with the same
        # conflict rule; each sub-color needs one application of max-rank columns.
        if all(bases[key].shape[1] == 0 for key in bases):
            for s, t in targets:
                h.low_rank[(s, t)] = LowRankMatrix(
                    bases[(s, t)], np.zeros((tree.cluster_size(t), 0))
                )
            return
        swapped = [(t, s) for (s, t) in targets]
        row_color_classes = self._color_columns(level, swapped)
        for excited_rows in row_color_classes:
            sub_targets = [(s, t) for (s, t) in targets if s in excited_rows]
            max_rank = max((bases[(s, t)].shape[1] for s, t in sub_targets), default=0)
            if max_rank == 0:
                for s, t in sub_targets:
                    h.low_rank[(s, t)] = LowRankMatrix(
                        bases[(s, t)], np.zeros((tree.cluster_size(t), 0))
                    )
                continue
            omega2 = np.zeros((n, max_rank))
            for s, t in sub_targets:
                q = bases[(s, t)]
                omega2[tree.starts[s] : tree.ends[s], : q.shape[1]] = q
            y2 = self.operator.multiply(omega2)
            for s, t in sub_targets:
                rank = bases[(s, t)].shape[1]
                probe = y2[tree.starts[t] : tree.ends[t]]
                peeled = self._peel_rows(h, t, omega2, probe)
                h.low_rank[(s, t)] = LowRankMatrix(bases[(s, t)], peeled[:, :rank])

"""Comparator algorithms the paper evaluates against.

* :class:`TopDownPeelingConstructor` — the top-down peeling construction of
  Lin, Lu & Ying (2011) through a weak-admissibility (HODLR) intermediate, the
  algorithm implemented on GPUs by H2Opus.  Its sample count grows with the
  HODLR ranks (large for 3D geometries) and with log N, which is the source of
  the orders-of-magnitude runtime gap in Fig. 5.
* :class:`HMatrixSketchingConstructor` — a colored-probing sketching
  construction of a non-nested H matrix in the spirit of Levitt & Martinsson
  (2022) as implemented in ButterflyPACK, requiring O(Csp · r · log N) samples.
"""

from .topdown_peeling import PeelingResult, TopDownPeelingConstructor
from .hmatrix_sketch import HMatrixSketchResult, HMatrixSketchingConstructor

__all__ = [
    "TopDownPeelingConstructor",
    "PeelingResult",
    "HMatrixSketchingConstructor",
    "HMatrixSketchResult",
]

"""Named execution-backend registry (the public face of :mod:`repro.batched.backend`).

Every component that executes batched work — the bottom-up constructor, the
compiled H2 apply plans, the Krylov solvers iterating on them and the GP
subsystem — resolves its backend through this registry, so a new execution
strategy plugs in once and is immediately available everywhere a backend name
is accepted:

>>> import repro.backends
>>> class MyBackend(repro.backends.SerialBackend):
...     name = "mybackend"
>>> repro.backends.register("mybackend", MyBackend)
>>> repro.backends.get("mybackend").name
'mybackend'

Built-in names: ``serial``/``cpu`` (one BLAS call per block) and
``vectorized``/``batched``/``gpu`` (shape-grouped stacked execution, the GPU
analogue).  ``"auto"`` follows the ``REPRO_BACKEND`` environment variable and
falls back to ``vectorized`` — see
:class:`~repro.api.policy.ExecutionPolicy`, which consolidates backend
selection, construction-path choice and launch-counter wiring.
"""

from .batched.backend import (
    BatchedBackend,
    SerialBackend,
    VectorizedBackend,
    available_backends as available,
    get_backend as get,
    register_backend as register,
)
from .batched.counters import KernelLaunchCounter

__all__ = [
    "BatchedBackend",
    "KernelLaunchCounter",
    "SerialBackend",
    "VectorizedBackend",
    "available",
    "get",
    "register",
]

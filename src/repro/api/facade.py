"""The fluent façade: ``compress`` one-liners and chained ``Session`` workflows.

Before this module, the paper's pipeline (sketch → construct → apply/solve)
needed eight lines of tree/partition/operator/extractor boilerplate before
``construct()`` was callable.  The façade reduces the common cases to one
call each:

>>> import numpy as np, repro
>>> points = repro.uniform_cube_points(512, seed=0)
>>> h2 = repro.compress(points, repro.ExponentialKernel(0.2), tol=1e-6)
>>> h2.shape
(512, 512)

and chains the full solve/GP workflows through :class:`Session`:

>>> solve = (repro.Session(points)
...          .compress(repro.ExponentialKernel(0.2), tol=1e-8)
...          .factor(noise=1e-2)
...          .solve(np.ones(512)))
>>> bool(solve.converged)
True

Every returned operator implements the
:class:`~repro.api.protocol.HierarchicalOperator` protocol, so the solvers,
diagnostics and GP subsystem compose against the protocol instead of a
specific class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..core.builder import ConstructionResult, H2Constructor
from ..core.config import ConstructionConfig
from ..core.context import GeometryContext
from ..hmatrix.hmatrix import build_hmatrix_aca
from ..hmatrix.hodlr import build_hodlr
from ..kernels.base import KernelFunction
from ..sketching.entry_extractor import (
    DenseEntryExtractor,
    EntryExtractor,
    KernelEntryExtractor,
)
from ..sketching.operators import DenseOperator, KernelMatVecOperator, SketchingOperator
from ..tree.admissibility import GeneralAdmissibility, WeakAdmissibility
from ..tree.block_partition import BlockPartition, build_block_partition
from ..tree.cluster_tree import ClusterTree
from ..utils.rng import SeedLike
from .conversion import convert
from .policy import ExecutionPolicy
from .protocol import HierarchicalOperator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gp.regression import GaussianProcess
    from ..persist.cache import ArtifactCache
    from ..solvers.hodlr_factor import HODLRFactorization
    from ..solvers.krylov import KrylovResult

#: Hierarchical formats :func:`compress` can target directly.
FORMATS: Tuple[str, ...] = ("h2", "hss", "hodlr", "hmatrix")


def _resolve_cache(
    cache: "ArtifactCache | None", cache_dir: object | None
) -> "ArtifactCache | None":
    """The artifact cache of a call: explicit instance > ``cache_dir=`` >
    ``REPRO_CACHE_DIR`` > off."""
    from ..persist.cache import ArtifactCache, default_cache

    if cache is not None:
        return cache
    if cache_dir is not None:
        return ArtifactCache(cache_dir)
    return default_cache()


def _cache_integrity_kwargs(recovery: object | None) -> dict:
    """``ArtifactCache.get`` integrity arguments under a recovery policy.

    With a policy installed, cache reads verify the per-buffer checksums and
    map the recovery mode onto the corruption behaviour (strict → raise
    typed, warn → evict + structured warning, recover → silent evict +
    rebuild); without one, reads keep the legacy lock-free fast path.
    """
    if recovery is None:
        return {}
    mode = {"strict": "raise", "warn": "warn", "recover": "evict"}[recovery.mode]
    return {"on_corruption": mode, "verify": True}


def _default_admissibility(
    fmt: str, eta: float, admissibility: object | None
) -> object | None:
    """The admissibility a compression request resolves to (cache-key form)."""
    if admissibility is not None:
        return admissibility
    if fmt == "hodlr":
        return None  # HODLR needs no block partition
    return WeakAdmissibility() if fmt == "hss" else GeneralAdmissibility(eta=eta)


def _resolve_geometry(
    points: Optional[np.ndarray],
    fmt: str,
    leaf_size: int,
    eta: float,
    admissibility: object | None,
    tree: Optional[ClusterTree],
    partition: Optional[BlockPartition],
) -> Tuple[ClusterTree, Optional[BlockPartition]]:
    """Tree + (optional) partition for the requested format."""
    if partition is not None:
        return partition.tree, partition
    if tree is None:
        if points is None:
            raise ValueError(
                "compress() needs points, a tree or a partition to define the geometry"
            )
        tree = ClusterTree.build(points, leaf_size=leaf_size)
    if fmt == "hodlr":
        return tree, None  # HODLR needs no block partition
    if admissibility is None:
        admissibility = (
            WeakAdmissibility() if fmt == "hss" else GeneralAdmissibility(eta=eta)
        )
    return tree, build_block_partition(tree, admissibility)


def _resolve_evaluators(
    kernel: object,
    tree: ClusterTree,
    operator: Optional[SketchingOperator],
    extractor: Optional[EntryExtractor],
) -> Tuple[Optional[SketchingOperator], Optional[EntryExtractor]]:
    """Operator/extractor pair from a kernel, a dense array, or overrides."""
    if operator is not None and extractor is not None:
        return operator, extractor
    if isinstance(kernel, KernelFunction):
        operator = operator or KernelMatVecOperator(kernel, tree.points)
        extractor = extractor or KernelEntryExtractor(kernel, tree.points)
        return operator, extractor
    if isinstance(kernel, np.ndarray):
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError("a dense kernel matrix must be square and 2-D")
        permuted = np.ascontiguousarray(
            kernel[np.ix_(tree.perm, tree.perm)], dtype=np.float64
        )
        return operator or DenseOperator(permuted), extractor or DenseEntryExtractor(
            permuted
        )
    if kernel is None:
        raise ValueError(
            "compress() needs a kernel (KernelFunction or dense array) or an "
            "explicit operator/extractor pair"
        )
    raise TypeError(
        f"cannot interpret {type(kernel).__name__} as a kernel; pass a "
        "KernelFunction, a dense (n, n) array, or operator=/extractor= overrides"
    )


def compress(
    points: Optional[np.ndarray] = None,
    kernel: object = None,
    *,
    format: str = "h2",
    tol: float = 1e-6,
    leaf_size: int = 64,
    eta: float = 0.7,
    admissibility: object | None = None,
    sample_block_size: int = 64,
    adaptive: bool = True,
    initial_samples: int | None = None,
    max_samples: int | None = None,
    max_rank: int | None = None,
    seed: SeedLike = None,
    policy: ExecutionPolicy | None = None,
    tree: Optional[ClusterTree] = None,
    partition: Optional[BlockPartition] = None,
    operator: Optional[SketchingOperator] = None,
    extractor: Optional[EntryExtractor] = None,
    config: ConstructionConfig | None = None,
    full_result: bool = False,
    cache: "ArtifactCache | None" = None,
    cache_dir: object | None = None,
) -> "HierarchicalOperator | ConstructionResult":
    """Compress a kernel matrix into a hierarchical operator in one call.

    Parameters
    ----------
    points:
        ``(n, dim)`` coordinates in the original ordering (may be omitted
        when ``tree`` or ``partition`` is given).
    kernel:
        A :class:`~repro.kernels.base.KernelFunction`, a dense ``(n, n)``
        array (original ordering), or omitted with explicit ``operator=`` /
        ``extractor=`` overrides (cluster-tree permuted ordering, the expert
        path used by the benchmark harness).
    format:
        ``"h2"`` (strong admissibility, the paper's constructor), ``"hss"``
        (weak admissibility), ``"hodlr"`` (per-block ACA) or ``"hmatrix"``
        (independent low-rank blocks, ACA).
    tol:
        Compression tolerance of the chosen constructor.
    leaf_size, eta, admissibility:
        Geometry knobs (ignored when ``tree``/``partition`` is given);
        ``admissibility`` defaults to general admissibility at ``eta`` for
        ``"h2"``/``"hmatrix"`` and weak admissibility for ``"hss"``.
    sample_block_size, adaptive, initial_samples, max_samples, max_rank:
        Sketching-constructor knobs (``max_rank`` also caps the ACA ranks of
        ``"hodlr"``/``"hmatrix"``).
    seed:
        Seed of the sketching vectors (``"h2"``/``"hss"`` only).
    policy:
        :class:`~repro.api.policy.ExecutionPolicy` deciding backend,
        construction path and launch-counter wiring; defaults to
        ``ExecutionPolicy()`` (env-driven).
    config:
        Full :class:`~repro.core.config.ConstructionConfig` override; wins
        over the individual knobs.
    full_result:
        Return the :class:`~repro.core.builder.ConstructionResult` (with
        sampling/launch statistics) instead of just the operator
        (``"h2"``/``"hss"`` only).
    cache, cache_dir:
        Opt into the content-addressed artifact cache
        (:class:`~repro.persist.cache.ArtifactCache`): pass an instance, a
        directory, or set ``REPRO_CACHE_DIR``.  When the exact same
        compression (points, kernel identity, tolerance, format, geometry
        and sampling knobs, seed) was stored before, the operator is loaded
        (zero-copy memmap) instead of re-constructed; otherwise it is
        constructed and stored.  Only plain requests participate — expert
        overrides (``tree``/``partition``/``operator``/``extractor``/
        ``config``), dense-array kernels, non-integer seeds and
        ``full_result=True`` always construct.

    Returns
    -------
    HierarchicalOperator
        The compressed operator (or the full ``ConstructionResult`` when
        ``full_result=True``).
    """
    fmt = format.lower()
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {format!r}; available: {list(FORMATS)}")
    policy = policy if policy is not None else ExecutionPolicy()

    artifact_cache = _resolve_cache(cache, cache_dir)
    artifact_key = None
    if (
        artifact_cache is not None
        and points is not None
        and isinstance(kernel, KernelFunction)
        and tree is None
        and partition is None
        and operator is None
        and extractor is None
        and config is None
        and not full_result
        and isinstance(seed, (int, np.integer, type(None)))
    ):
        from ..persist.format import ArtifactError

        try:
            artifact_key = artifact_cache.key(
                points,
                kernel,
                tol=tol,
                format=fmt,
                leaf_size=leaf_size,
                admissibility=_default_admissibility(fmt, eta, admissibility),
                seed=None if seed is None else int(seed),
                extra={
                    "sample_block_size": int(sample_block_size),
                    "adaptive": bool(adaptive),
                    "initial_samples": initial_samples,
                    "max_samples": max_samples,
                    "max_rank": max_rank,
                },
            )
        except ArtifactError:
            # Unhashable request (custom admissibility, ...): construct as usual.
            artifact_key = None
        else:
            cached = artifact_cache.get(
                artifact_key, tracer=policy.tracer,
                **_cache_integrity_kwargs(policy.recovery),
            )
            if cached is not None:
                if hasattr(cached, "apply_backend"):
                    cached.apply_backend = policy.resolve_backend()
                if policy.health is not None:
                    from ..observe.health import check_operator_health

                    check_operator_health(
                        cached, kernel, tol, thresholds=policy.health,
                        tracer=policy.tracer, source="loaded",
                    )
                return cached

    tree, partition = _resolve_geometry(
        points, fmt, leaf_size, eta, admissibility, tree, partition
    )
    operator, extractor = _resolve_evaluators(kernel, tree, operator, extractor)

    if fmt in ("h2", "hss"):
        if config is None:
            config = policy.construction_config(
                tolerance=tol,
                sample_block_size=sample_block_size,
                adaptive=adaptive,
                initial_samples=initial_samples,
                max_samples=max_samples,
                max_rank=max_rank,
            )
        result = H2Constructor(
            partition, operator, extractor, config=config, seed=seed,
            tracer=policy.tracer,
        ).construct()
        result.matrix.apply_backend = policy.resolve_backend()
        if policy.health is not None and isinstance(kernel, KernelFunction):
            from ..observe.health import check_operator_health

            result.health = check_operator_health(
                result.matrix, kernel, config.tolerance,
                thresholds=policy.health, tracer=policy.tracer,
                source="constructed",
            )
        if artifact_key is not None:
            artifact_cache.put(artifact_key, result.matrix)
            if policy.faults is not None:
                policy.faults.corrupt_artifact(
                    artifact_cache.path_for(artifact_key)
                )
        return result if full_result else result.matrix

    if full_result:
        raise ValueError(
            "full_result=True is only available for the sketching formats "
            "('h2'/'hss'); the ACA formats return the operator directly"
        )
    entries = extractor.extract
    if fmt == "hodlr":
        compressed = build_hodlr(tree, entries, tol=tol, max_rank=max_rank)
    else:
        compressed = build_hmatrix_aca(partition, entries, tol=tol, max_rank=max_rank)
    if policy.health is not None and isinstance(kernel, KernelFunction):
        from ..observe.health import check_operator_health

        check_operator_health(
            compressed, kernel, tol, thresholds=policy.health,
            tracer=policy.tracer, source="constructed",
        )
    if artifact_key is not None:
        artifact_cache.put(artifact_key, compressed)
        if policy.faults is not None:
            policy.faults.corrupt_artifact(artifact_cache.path_for(artifact_key))
    return compressed


class Session:
    """Fluent geometry-reuse workflow over a fixed point set.

    Wraps a :class:`~repro.core.context.GeometryContext` (tree, partition,
    cached distances, frozen sample bank, compiled plans) behind chainable
    steps::

        sess = repro.Session(points, seed=0)
        solve = sess.compress(kernel, tol=1e-8).factor(noise=1e-2).solve(b)
        gp = sess.gp(kernel, noise=1e-2)           # shares the same geometry
        results = sess.sweep([k1, k2, k3])         # hyperparameter sweep

    Parameters
    ----------
    points:
        ``(n, dim)`` coordinates in the original ordering.
    leaf_size, admissibility, distance_cache, cache_limit_mb, seed:
        Forwarded to :class:`~repro.core.context.GeometryContext`;
        admissibility defaults to weak (the HSS/HODLR partition every
        downstream factorization consumes).
    policy:
        :class:`~repro.api.policy.ExecutionPolicy` for every construction,
        apply and solve of this session.
    cache, cache_dir:
        Opt into the content-addressed artifact cache for every
        :meth:`compress` of the session (an
        :class:`~repro.persist.cache.ArtifactCache`, a directory, or the
        ``REPRO_CACHE_DIR`` environment variable).
    """

    def __init__(
        self,
        points: np.ndarray,
        *,
        leaf_size: int = 64,
        admissibility: object | None = None,
        policy: ExecutionPolicy | None = None,
        distance_cache: str = "auto",
        cache_limit_mb: float = 600.0,
        seed: SeedLike = 0,
        cache: "ArtifactCache | None" = None,
        cache_dir: object | None = None,
    ):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self._points = np.ascontiguousarray(
            np.atleast_2d(np.asarray(points, dtype=np.float64))
        )
        self.context = GeometryContext(
            self._points,
            leaf_size=leaf_size,
            admissibility=admissibility,
            backend=self.policy.resolve_backend(),
            distance_cache=distance_cache,
            cache_limit_mb=cache_limit_mb,
            seed=seed,
            construction_path=self.policy.construction_path,
            tracer=self.policy.tracer,
            artifact_cache=_resolve_cache(cache, cache_dir),
        )
        self._result: Optional[ConstructionResult] = None
        self._operator: Optional[HierarchicalOperator] = None
        self._factorization: Optional["HODLRFactorization"] = None
        self._shift: float = 0.0

    # ------------------------------------------------------------------ state
    @property
    def points(self) -> np.ndarray:
        """Training coordinates in the original ordering."""
        return self._points

    @property
    def tree(self) -> ClusterTree:
        return self.context.tree

    @property
    def partition(self) -> BlockPartition:
        return self.context.partition

    @property
    def result(self) -> ConstructionResult:
        """The most recent :meth:`compress` construction result."""
        if self._result is None:
            raise RuntimeError("call compress() first")
        return self._result

    @property
    def operator(self) -> HierarchicalOperator:
        """The most recent compressed operator."""
        if self._operator is None:
            raise RuntimeError("call compress() first")
        return self._operator

    @property
    def factorization(self) -> "HODLRFactorization":
        """The most recent :meth:`factor` factorization."""
        if self._factorization is None:
            raise RuntimeError("call factor() first")
        return self._factorization

    # ------------------------------------------------------------------ steps
    def compress(
        self,
        kernel: KernelFunction,
        tol: float = 1e-6,
        format: str = "h2",
        sample_block_size: int = 64,
        **construct_kwargs: object,
    ) -> "Session":
        """Construct the hierarchical representation of ``K(kernel)``.

        Re-uses every cached geometry ingredient of the session (tree,
        partition, distances, frozen sample bank, plan skeletons), so
        repeated calls across hyperparameters cost little more than the
        kernel-value work.  ``format="hodlr"``/``"hmatrix"`` convert the
        constructed matrix through the :func:`~repro.api.conversion.convert`
        registry; ``"h2"``/``"hss"`` return it as constructed (the session's
        admissibility decides which of the two it is).
        """
        fmt = format.lower()
        if fmt not in FORMATS:
            raise ValueError(f"unknown format {format!r}; available: {list(FORMATS)}")
        if fmt == "hss" and not isinstance(
            self.partition.admissibility, WeakAdmissibility
        ):
            raise ValueError(
                "format='hss' requires a weak-admissibility session; this "
                "session was built with "
                f"{type(self.partition.admissibility).__name__}"
            )
        result = self.context.construct(
            kernel,
            tolerance=tol,
            sample_block_size=sample_block_size,
            **construct_kwargs,
        )
        self._result = result
        operator: HierarchicalOperator = result.matrix
        if self.policy.health is not None:
            from ..observe.health import check_operator_health

            result.health = check_operator_health(
                result.matrix, kernel, tol, thresholds=self.policy.health,
                tracer=self.policy.tracer, source="constructed",
            )
        if fmt == "hodlr":
            operator = convert(operator, "hodlr")
        elif fmt == "hmatrix":
            operator = convert(operator, "hmatrix", tol=tol)
        if operator is not result.matrix and self.policy.health is not None:
            from ..observe.health import check_operator_health

            check_operator_health(
                operator, kernel, tol, thresholds=self.policy.health,
                tracer=self.policy.tracer, source="converted",
            )
        self._operator = operator
        # The previous factorization (and its noise shift) described the old
        # operator; solve() must not silently reuse them.
        self._factorization = None
        self._shift = 0.0
        return self

    def sweep(
        self,
        kernels: Sequence[KernelFunction],
        tol: float = 1e-6,
        **construct_kwargs: object,
    ) -> List[ConstructionResult]:
        """Construct every kernel of a hyperparameter sweep over the shared geometry."""
        results = []
        for kernel in kernels:
            self.compress(kernel, tol=tol, **construct_kwargs)
            results.append(self.result)
        return results

    def factor(self, noise: float = 0.0) -> "Session":
        """Factor the compressed operator (plus a ``noise`` diagonal shift).

        Flattens the weak-admissibility construction to HODLR form and runs
        the recursive Woodbury factorization; requires a weak-admissibility
        session (the default).
        """
        from ..solvers.hodlr_factor import HODLRFactorization
        from ..hmatrix.hodlr import HODLRMatrix

        operator = self.operator
        hodlr = (
            operator
            if isinstance(operator, HODLRMatrix)
            else convert(operator, "hodlr")
        )
        self._factorization = HODLRFactorization(
            hodlr, shift=noise, tracer=self.policy.tracer
        )
        self._shift = float(noise)
        return self

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-10,
        maxiter: int | None = None,
        method: str = "auto",
    ) -> "KrylovResult":
        """Solve ``(K + noise I) x = b`` against the compressed operator.

        ``method="auto"`` runs CG on the compiled batched apply,
        preconditioned by the :meth:`factor` factorization when one exists;
        ``"cg"``/``"gmres"``/``"bicgstab"`` select the Krylov method
        explicitly, and ``"ladder"`` runs the full
        :func:`~repro.solvers.ladder.escalation_ladder` (CG → preconditioned
        CG → GMRES(m) → HODLR direct).  The ``noise`` shift of the last
        :meth:`factor` call is applied to the operator, so factor+solve agree
        on the system.

        When the session policy carries a
        :class:`~repro.resilience.RecoveryPolicy`, a non-converged solve is
        never returned silently: ``strict`` raises
        :class:`~repro.resilience.SolveDidNotConvergeError`, ``warn`` warns
        through the ``repro.resilience`` logger and returns the flagged
        result, and ``recover`` escalates through the remaining ladder rungs.
        """
        from ..hmatrix.linear_operator import as_linear_operator
        from ..solvers import krylov
        from ..solvers.ladder import escalation_ladder

        recovery = self.policy.recovery
        faults = self.policy.faults
        if method == "ladder":
            return escalation_ladder(
                self.operator, b, tol=tol, maxiter=maxiter,
                shift=self._shift, factorization=self._factorization,
                recovery=recovery, tracer=self.policy.tracer,
                faults=faults, health=self.policy.health,
            )
        methods = {"auto": krylov.cg, "cg": krylov.cg, "gmres": krylov.gmres,
                   "bicgstab": krylov.bicgstab}
        if method not in methods:
            raise ValueError(
                f"unknown method {method!r}; available: "
                f"{sorted(methods) + ['ladder']}"
            )
        operator = as_linear_operator(self.operator, shift=self._shift)
        preconditioner = self._factorization
        if faults is not None:
            maxiter = faults.stall_maxiter(maxiter)
        result = methods[method](
            operator, b, tol=tol, maxiter=maxiter, M=preconditioner,
            tracer=self.policy.tracer, health=self.policy.health,
        )
        if result.converged or recovery is None:
            return result
        return self._handle_unconverged_solve(
            result, b, tol=tol, method=method,
            preconditioned=preconditioner is not None,
        )

    def _handle_unconverged_solve(
        self, result: "KrylovResult", b: np.ndarray, *, tol: float,
        method: str, preconditioned: bool,
    ) -> "KrylovResult":
        """Apply the recovery policy to a solve that returned ``converged=False``."""
        from ..resilience.errors import SolveDidNotConvergeError
        from ..resilience.policy import resilience_adapter
        from ..solvers.ladder import escalation_ladder

        recovery = self.policy.recovery
        if recovery.mode == "strict":
            raise SolveDidNotConvergeError(
                f"{result.method} did not converge in {result.iterations} "
                f"iterations (final residual {result.final_residual:.3e} > "
                f"tol {tol:.3e})",
                result=result,
            )
        if recovery.mode == "warn":
            resilience_adapter().warn(
                "solve-not-converged", method=result.method,
                iterations=result.iterations,
                final_residual=result.final_residual, tol=tol,
            )
            return result
        # recover: escalate through the rungs the failed solve did not cover.
        done = {"cg", "pcg"} if preconditioned else {"cg"}
        if method == "gmres":
            done.add("gmres")
        rungs = tuple(r for r in recovery.ladder if r not in done)
        if not rungs:
            raise SolveDidNotConvergeError(
                f"{result.method} did not converge and the recovery ladder "
                f"has no further rungs (ladder={list(recovery.ladder)})",
                result=result,
            )
        escalated = escalation_ladder(
            self.operator, b, tol=tol, shift=self._shift,
            factorization=self._factorization, recovery=recovery,
            rungs=rungs, x0=result.x, tracer=self.policy.tracer,
            health=self.policy.health,
        )
        escalated.extra["escalated_from"] = result.method
        return escalated

    def gp(
        self, kernel: KernelFunction, noise: float = 1e-2, **gp_kwargs: object
    ) -> "GaussianProcess":
        """A :class:`~repro.gp.regression.GaussianProcess` sharing this geometry."""
        from ..gp.regression import GaussianProcess

        return GaussianProcess(
            self._points, kernel, noise=noise, context=self.context,
            policy=self.policy, **gp_kwargs
        )

    # ------------------------------------------------------------ diagnostics
    def describe(self) -> str:
        return f"Session({self.context.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return self.describe()

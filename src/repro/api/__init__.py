"""repro.api — the unified operator protocol, execution policy and façade.

One stable surface over the whole library:

* :class:`~repro.api.protocol.HierarchicalOperator` — the operator contract
  every hierarchical format implements (structural ``isinstance``), with
  :class:`~repro.api.protocol.HierarchicalOperatorMixin` supplying the
  derived methods so a format only writes its core apply;
* :class:`~repro.api.policy.ExecutionPolicy` — backend selection,
  construction-path choice and launch-counter wiring consolidated behind the
  named registry of :mod:`repro.backends`;
* :func:`~repro.api.facade.compress` / :class:`~repro.api.facade.Session` —
  the fluent entry points (points + kernel → operator in one call; chained
  ``compress/sweep/factor/solve/gp`` workflows with geometry reuse);
* :func:`~repro.api.conversion.convert` — the format-conversion registry
  (``h2 → hodlr/hmatrix/dense``, extensible via
  :func:`~repro.api.conversion.register_conversion`).

The protocol and policy modules are import-light; the façade (which pulls in
the constructor, solver and GP subsystems) loads lazily on first attribute
access so the format modules can import the protocol without cycles.
"""

from .policy import ExecutionPolicy
from .protocol import (
    PROTOCOL_METHODS,
    HierarchicalOperator,
    HierarchicalOperatorMixin,
)

#: Lazily imported façade attributes (module file relative to this package).
_LAZY = {
    "FORMATS": "facade",
    "Session": "facade",
    "compress": "facade",
    "available_conversions": "conversion",
    "convert": "conversion",
    "register_conversion": "conversion",
}

__all__ = [
    "ExecutionPolicy",
    "FORMATS",
    "HierarchicalOperator",
    "HierarchicalOperatorMixin",
    "PROTOCOL_METHODS",
    "Session",
    "available_conversions",
    "compress",
    "convert",
    "register_conversion",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

"""Format-conversion registry between hierarchical representations.

``convert(op, "hodlr")`` turns any registered source format into the
requested target format through a ``(source class, target name)`` registry,
subsuming the old ad-hoc bridges (``hodlr_from_h2``) behind one entry point
that third-party formats can extend via :func:`register_conversion`.

Built-in conversions:

==============  ==========  ====================================================
source          target      notes
==============  ==========  ====================================================
``H2Matrix``    ``hodlr``   weak (HSS) partition: expand nested bases exactly;
                            strong partition: re-compress onto the weak
                            partition with ACA on the H2 entry evaluator
                            (``tol=`` / ``max_rank=`` forwarded) — either way
                            the bridge to the HODLR direct solver
``H2Matrix``    ``hmatrix`` re-compress every admissible block independently
                            with ACA on the H2 entry evaluator (``tol=`` /
                            ``max_rank=`` forwarded)
``H2Matrix``    ``dense``   dense reconstruction (small problems)
``HODLRMatrix`` ``dense``   dense reconstruction
``HMatrix``     ``dense``   dense reconstruction
any             itself      identity (returned unchanged)
==============  ==========  ====================================================

``"hss"`` is accepted as a target alias of ``"h2"`` for matrices already on
the weak partition (HSS *is* an H2 matrix there); requesting it for any
other operator raises :class:`ValueError`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..hmatrix.h2matrix import H2Matrix
from ..hmatrix.hmatrix import HMatrix, build_hmatrix_aca
from ..hmatrix.hodlr import HODLRMatrix, _hodlr_from_h2, build_hodlr

#: ``(source class, target format name) -> conversion callable``.
_CONVERSIONS: Dict[Tuple[type, str], Callable] = {}


def register_conversion(
    source_type: type, target_format: str, fn: Callable, overwrite: bool = False
) -> None:
    """Register ``fn(op, **kwargs)`` as the ``source_type -> target_format`` conversion.

    Lookup walks the source object's MRO, so registering a base class covers
    its subclasses.  Registering an existing pair raises :class:`ValueError`
    unless ``overwrite=True``.
    """
    key = (source_type, target_format.lower())
    if not overwrite and key in _CONVERSIONS:
        raise ValueError(
            f"conversion {source_type.__name__} -> {target_format!r} is already "
            "registered; pass overwrite=True to replace it"
        )
    _CONVERSIONS[key] = fn


def available_conversions() -> Tuple[Tuple[str, str], ...]:
    """Sorted ``(source class name, target format)`` pairs currently registered."""
    return tuple(
        sorted((cls.__name__, fmt) for cls, fmt in _CONVERSIONS)
    )


def convert(op: object, target_format: str, **kwargs: object):
    """Convert a hierarchical operator to ``target_format``.

    ``target_format`` is one of the registry names (``"h2"``, ``"hss"``,
    ``"hodlr"``, ``"hmatrix"``, ``"dense"``, plus anything registered via
    :func:`register_conversion`); extra keyword arguments are forwarded to
    the conversion (e.g. ``tol=`` for the ACA-based ``hmatrix`` target).
    Converting an operator to its own format returns it unchanged.
    """
    fmt = target_format.lower()
    if fmt == "hss":
        # HSS *is* the H2 format on the weak partition — but only there;
        # silently passing a strong-admissibility matrix through would hand
        # downstream HSS consumers (HODLR factorization, GP) a wrong-format
        # operator.
        from ..tree.admissibility import WeakAdmissibility

        if isinstance(op, H2Matrix) and isinstance(
            op.partition.admissibility, WeakAdmissibility
        ):
            return op
        raise ValueError(
            "'hss' requires an H2 matrix on the weak-admissibility partition; "
            f"got {type(op).__name__}"
            + (
                f" on {type(op.partition.admissibility).__name__}"
                if isinstance(op, H2Matrix)
                else ""
            )
        )
    if getattr(op, "format_name", None) == fmt and not kwargs:
        return op
    for klass in type(op).__mro__:
        fn = _CONVERSIONS.get((klass, fmt))
        if fn is not None:
            return fn(op, **kwargs)
    targets = sorted(
        {f for cls, f in _CONVERSIONS if isinstance(op, cls)}
    )
    raise ValueError(
        f"no conversion from {type(op).__name__} to {target_format!r}; "
        f"available targets for this operator: {targets or 'none'}"
    )


# ----------------------------------------------------------- built-in bridges
def _hmatrix_from_h2(
    h2: H2Matrix, tol: float = 1e-6, max_rank: int | None = None
) -> HMatrix:
    """Re-compress an H2 matrix into independent-block H form (ACA per block)."""
    return build_hmatrix_aca(
        h2.partition,
        lambda rows, cols: h2.get_block(rows, cols, permuted=True),
        tol=tol,
        max_rank=max_rank,
    )


def _hodlr_from_h2_any(
    h2: H2Matrix, tol: float = 1e-6, max_rank: int | None = None
) -> HODLRMatrix:
    """Convert any H2 matrix to HODLR, whichever partition it lives on.

    On the weak (HSS) partition the nested bases expand *exactly* into
    non-nested low-rank sibling blocks (``tol``/``max_rank`` are ignored —
    no re-compression happens).  On a strong-admissibility partition the
    coupling structure does not match HODLR's sibling blocks, so the matrix
    is re-compressed onto the weak partition: every off-diagonal sibling
    block is rebuilt with partial-pivoted ACA on the H2 entry evaluator
    (accuracy governed by ``tol``, the forwarded default ``1e-6``).  The old
    behaviour — leaking the internal ``ValueError: dense off-diagonal
    block ... not on the weak partition`` — is gone; ``convert(h2, "hodlr")``
    now succeeds for both admissibility families.
    """
    from ..tree.admissibility import WeakAdmissibility

    if isinstance(h2.partition.admissibility, WeakAdmissibility):
        return _hodlr_from_h2(h2)
    return build_hodlr(
        h2.tree,
        lambda rows, cols: h2.get_block(rows, cols, permuted=True),
        tol=tol,
        max_rank=max_rank,
    )


def _to_dense(op, permuted: bool = False) -> np.ndarray:
    return op.to_dense(permuted=permuted)


register_conversion(H2Matrix, "hodlr", _hodlr_from_h2_any)
register_conversion(H2Matrix, "hmatrix", _hmatrix_from_h2)
register_conversion(H2Matrix, "dense", _to_dense)
register_conversion(HODLRMatrix, "dense", _to_dense)
register_conversion(HMatrix, "dense", _to_dense)

"""Execution policy: one object deciding *how* the library executes.

Before this module, execution knobs were scattered — the batched backend was
chosen per constructor config, per matrix and per call; the construction
sweep (packed vs loop) came from ``ConstructionConfig.construction_path`` or
the ``REPRO_CONSTRUCT_PATH`` environment variable; launch counters were wired
ad hoc.  :class:`ExecutionPolicy` consolidates all of it behind the named
backend registry (:mod:`repro.backends`) and threads through the façade
(:func:`repro.api.compress`, :class:`repro.api.Session`), the constructor,
the compiled apply plans, the solvers and the GP subsystem.

Environment overrides (read when a knob is left at ``"auto"``):

``REPRO_BACKEND``
    Backend name resolved by :func:`repro.backends.get` (default
    ``vectorized``).
``REPRO_CONSTRUCT_PATH``
    ``packed`` (compiled level-wise sweep, default) or ``loop`` (per-node
    reference sweep).
``REPRO_RESILIENCE``
    ``strict`` / ``warn`` / ``recover`` to install a default
    :class:`~repro.resilience.RecoveryPolicy` on policies that did not pass
    ``recovery=`` explicitly (``off``/unset leaves recovery disabled).
``REPRO_FAULTS``
    A :class:`~repro.resilience.FaultInjector` spec string (see
    :mod:`repro.resilience.faults`) installing deterministic fault injection
    on policies that did not pass ``faults=`` explicitly.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Union

from ..observe.tracer import NOOP_TRACER
from ..resilience.faults import FaultInjector
from ..resilience.policy import RecoveryPolicy
from ..utils.env import env_choice, normalize_choice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..batched.backend import BatchedBackend
    from ..batched.counters import KernelLaunchCounter
    from ..core.config import ConstructionConfig
    from ..observe.health import HealthThresholds
    from ..observe.tracer import NoopTracer, SpanTracer


@dataclass
class ExecutionPolicy:
    """Backend selection, construction path and launch-counter wiring.

    Attributes
    ----------
    backend:
        Name from the :mod:`repro.backends` registry (``"serial"``,
        ``"vectorized"``, anything registered via
        :func:`repro.backends.register`) or an existing
        :class:`~repro.batched.backend.BatchedBackend` instance.  ``"auto"``
        (default) follows ``REPRO_BACKEND`` and falls back to
        ``vectorized``.
    construction_path:
        ``"packed"`` / ``"loop"`` / ``"auto"`` (default: follow
        ``REPRO_CONSTRUCT_PATH``, falling back to ``packed``).
    counter:
        **Deprecated** — the tracer owns the shared counter now.  When given,
        every backend this policy resolves accumulates its launches there; a
        :class:`DeprecationWarning` points at the replacement
        (``tracer=SpanTracer(counter=...)`` to share an explicit counter, or
        just read :meth:`launch_counter` — ``share_backend`` already makes
        one counter span the whole policy).  Only combinable with a backend
        *name* — an existing backend instance already owns a counter, so
        passing both raises :class:`ValueError` at resolution time (silently
        dropping the shared counter would break the contract above).
    share_backend:
        When ``True`` (default), :meth:`resolve_backend` resolves the name
        once and returns the *same* instance on every call, so launch
        counters accumulate per policy even without an explicit ``counter``.
    tracer:
        A :class:`~repro.observe.SpanTracer` recording hierarchical spans for
        everything executed under this policy, or the zero-overhead
        :data:`~repro.observe.NOOP_TRACER` (default).  :meth:`resolve_backend`
        binds the tracer to the resolved backend's launch counter and stores
        it on the backend instance, so apply plans, solvers and the GP layer
        all attribute their work to the same trace without extra plumbing.
    health:
        :class:`~repro.observe.health.HealthThresholds` enabling the
        numerical-health telemetry: a stochastic compression-error probe on
        every operator this policy constructs, loads or converts, and
        post-hoc convergence diagnosis (stagnation / divergence /
        preconditioner-ineffectiveness) on every Krylov solve.  Breaches
        *warn* through the ``repro.observe.health`` structured logger — they
        never raise.  ``None`` (default) disables all probes.
    memory_profile:
        When ``True`` and the tracer is enabled, attach a
        :class:`~repro.observe.memory.MemorySampler` so every span carries
        ``mem_peak_bytes`` / ``mem_current_bytes`` / ``mem_rss_bytes``
        attributes (tracemalloc-based; meaningful overhead — keep off for
        benchmarking).  Ignored without an enabled tracer.
    recovery:
        A :class:`~repro.resilience.RecoveryPolicy` (or a bare mode string
        ``"strict"``/``"warn"``/``"recover"``) turning detected faults into
        recovery actions at every guarded boundary: NaN/Inf sample
        screening with relaunch retries, rank-saturation re-construction
        with escalated budgets, packed→loop engine fallback, artifact
        integrity handling, and the solver escalation ladder on
        non-converged solves.  ``None`` (default) follows
        ``REPRO_RESILIENCE`` and otherwise disables every guard — the
        legacy behaviour, at zero overhead.
    faults:
        A :class:`~repro.resilience.FaultInjector` (or its spec string, see
        :mod:`repro.resilience.faults`) injecting deterministic failures at
        the guarded boundaries.  ``None`` (default) follows
        ``REPRO_FAULTS``.  Installing faults without an explicit
        ``recovery`` enables a default ``RecoveryPolicy(mode="recover")``
        so injected chaos is recovered, not fatal.
    """

    backend: "Union[str, BatchedBackend]" = "auto"
    construction_path: str = "auto"
    counter: "Optional[KernelLaunchCounter]" = None
    share_backend: bool = True
    tracer: "Union[SpanTracer, NoopTracer, None]" = None
    health: "Optional[HealthThresholds]" = None
    memory_profile: bool = False
    recovery: "Union[RecoveryPolicy, str, None]" = None
    faults: "Union[FaultInjector, str, None]" = None
    _resolved: "Optional[BatchedBackend]" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if isinstance(self.construction_path, str):
            self.construction_path = normalize_choice(self.construction_path)
        if self.construction_path not in ("auto", "packed", "loop"):
            raise ValueError(
                "construction_path must be 'auto', 'packed' or 'loop'"
            )
        if self.tracer is None:
            self.tracer = NOOP_TRACER
        if self.recovery is None:
            env_mode = env_choice("REPRO_RESILIENCE", "off")
            if env_mode not in ("off", "none", "0", "false"):
                self.recovery = env_mode
        if isinstance(self.recovery, str):
            self.recovery = RecoveryPolicy(mode=self.recovery)
        if self.faults is None:
            env_spec = os.environ.get("REPRO_FAULTS", "").strip()
            if env_spec:
                self.faults = env_spec
        if isinstance(self.faults, str):
            self.faults = FaultInjector.from_spec(self.faults)
        if self.faults is not None and self.recovery is None:
            # Injected chaos without an explicit policy must be recovered,
            # not fatal: REPRO_FAULTS alone turns any run into a chaos test
            # that is still expected to produce correct results.
            self.recovery = RecoveryPolicy(mode="recover")
        if self.memory_profile and self.tracer.enabled and self.tracer.memory is None:
            from ..observe.memory import MemorySampler

            self.tracer.memory = MemorySampler()
        if self.counter is not None:
            warnings.warn(
                "ExecutionPolicy(counter=...) is deprecated: the policy's "
                "tracer owns the shared launch counter.  Pass "
                "tracer=SpanTracer(counter=...) to share an explicit counter "
                "or read policy.launch_counter() for the resolved backend's.",
                DeprecationWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------- resolution
    def resolve_backend(self) -> "BatchedBackend":
        """The backend instance this policy executes on.

        Besides resolving the name, this is the single consolidation point of
        launch-counter and tracer ownership: the policy's tracer adopts the
        resolved backend's counter (or supplies its own to the backend
        factory) and is installed as ``backend.tracer``.
        """
        from ..batched.backend import BatchedBackend, get_backend

        if self._resolved is not None:
            return self._resolved
        if self.counter is not None and isinstance(self.backend, BatchedBackend):
            raise ValueError(
                "ExecutionPolicy(counter=...) requires a backend name; the "
                "supplied backend instance keeps its own counter (use "
                "backend.counter instead)"
            )
        counter = self.counter
        if counter is None and self.tracer.enabled:
            counter = self.tracer.counter  # None until first bind: fine
        backend = get_backend(self.backend, counter=counter)
        if self.tracer.enabled:
            self.tracer.bind_counter(backend.counter)
            backend.tracer = self.tracer
        if self.faults is not None:
            backend.faults = self.faults
        if self.recovery is not None:
            backend.recovery = self.recovery
        if self.share_backend:
            self._resolved = backend
        return backend

    def resolve_construction_path(self) -> str:
        """``"packed"`` or ``"loop"`` after applying the env override."""
        mode = normalize_choice(self.construction_path)
        if mode == "auto":
            mode = env_choice("REPRO_CONSTRUCT_PATH", "packed")
        if mode not in ("packed", "loop"):
            raise ValueError(
                f"unknown construction path {mode!r}; use 'packed' or 'loop'"
            )
        return mode

    # ------------------------------------------------------------ composition
    def construction_config(self, **overrides: object) -> "ConstructionConfig":
        """A :class:`~repro.core.config.ConstructionConfig` under this policy.

        Keyword arguments mirror the config fields (``tolerance``,
        ``sample_block_size``, ...); the policy fills ``backend`` and
        ``construction_path`` unless explicitly overridden.
        """
        from ..core.config import ConstructionConfig

        overrides.setdefault("backend", self.resolve_backend())
        overrides.setdefault("construction_path", self.construction_path)
        return ConstructionConfig(**overrides)  # type: ignore[arg-type]

    def with_backend(self, backend: "Union[str, BatchedBackend]") -> "ExecutionPolicy":
        """A copy of this policy on a different backend."""
        return replace(self, backend=backend)

    @classmethod
    def from_env(cls, **overrides: object) -> "ExecutionPolicy":
        """Policy snapshot of the current ``REPRO_*`` environment."""
        values: dict = {
            "backend": env_choice("REPRO_BACKEND", "vectorized"),
            "construction_path": env_choice("REPRO_CONSTRUCT_PATH", "packed"),
        }
        values.update(overrides)
        return cls(**values)

    # ------------------------------------------------------------ diagnostics
    def launch_counter(self) -> "KernelLaunchCounter":
        """The launch counter of the resolved backend."""
        return self.resolve_backend().counter

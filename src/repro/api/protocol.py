"""The :class:`HierarchicalOperator` protocol: one contract for every format.

The library produces several hierarchical representations — nested-basis H2
matrices (strong or weak/HSS admissibility), non-nested H matrices and HODLR
matrices — and every downstream subsystem (Krylov solvers, factorizations,
Gaussian processes, diagnostics, benchmarks) only ever needs the same small
surface: shapes, forward/transpose applies for vectors and blocks, dense
reconstruction and memory/rank accounting, all with uniform ``permuted=``
semantics (operators act in the *original* point ordering by default; the
internal representation lives in the cluster-tree permuted ordering).

Two classes implement that contract:

:class:`HierarchicalOperator`
    The abstract protocol.  Its ``__subclasshook__`` makes ``isinstance``
    checks *structural*: any object providing the full method set conforms,
    whether or not it inherits from this class — so third-party formats
    registered through :mod:`repro.api` compose with the solvers without
    subclassing anything.

:class:`HierarchicalOperatorMixin`
    The shared implementation.  A concrete format only supplies its core
    permuted block apply (:meth:`~HierarchicalOperatorMixin._apply_permuted`)
    plus its storage accounting (:meth:`~HierarchicalOperatorMixin._memory_components`,
    :meth:`~HierarchicalOperatorMixin._block_counts`, ``rank_range``); the
    mixin derives ``matvec`` / ``matmat`` / ``rmatvec`` / ``rmatmat`` /
    ``__matmul__`` with input validation and permutation handling, and the
    unified ``memory_bytes()`` / ``statistics()`` dictionaries.

This module is import-light (NumPy only) so the format modules can depend on
it without dragging in the rest of the library.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple

import numpy as np

#: Attributes an object must provide to pass the structural ``isinstance``
#: check of :class:`HierarchicalOperator`.
PROTOCOL_METHODS: Tuple[str, ...] = (
    "shape",
    "dtype",
    "matvec",
    "matmat",
    "rmatvec",
    "rmatmat",
    "to_dense",
    "memory_bytes",
    "statistics",
    "rank_range",
    "__matmul__",
)


class HierarchicalOperator(ABC):
    """Protocol of a square hierarchical operator over a cluster tree.

    Required surface (all of it provided by
    :class:`HierarchicalOperatorMixin` except the core apply and the storage
    accounting):

    ``shape`` / ``dtype``
        ``(n, n)`` dimensions and the element dtype (float64 throughout this
        library).
    ``matvec(x, permuted=False)`` / ``matmat(X, permuted=False)``
        Forward apply to a vector ``(n,)`` or block ``(n, k)``; ``matmat``
        requires a 2-D block and routes through the format's batched
        multi-RHS path.
    ``rmatvec`` / ``rmatmat``
        Exact transpose applies (whether or not the stored data is
        symmetric).
    ``__matmul__``
        ``op @ x`` as an alias of the forward apply.
    ``to_dense(permuted=False)``
        Dense reconstruction (small problems / validation).
    ``memory_bytes()``
        Component-wise byte accounting; always contains the unified keys
        ``"low_rank"``, ``"dense"`` and ``"total"``.
    ``statistics()``
        Unified summary with at least ``format``, ``n``, ``depth``,
        ``rank_min``, ``rank_max``, ``num_low_rank_blocks``,
        ``num_dense_blocks`` and ``memory_mb``.
    ``rank_range()``
        ``(min, max)`` low-rank block / basis ranks.

    ``permuted=`` is uniform across every method that takes it: ``False``
    (default) means inputs and outputs use the original point ordering,
    ``True`` the cluster-tree ordering.

    **Complex-dtype contract.** The stored operators are real (float64).
    Applying one to a complex vector or block is still well defined and
    exact: ``A (x_re + i x_im) = A x_re + i A x_im``, so every apply method
    accepts complex inputs, applies the real operator to the real and
    imaginary parts separately, and returns a complex result — the same
    semantics as :class:`scipy.sparse.linalg.LinearOperator`.  Inputs are
    never silently cast to ``float64``; the imaginary part is never
    dropped.  (Real-valued subsystems that cannot honour this contract —
    the Krylov solvers — raise ``TypeError`` on complex data instead of
    returning wrong numbers.)
    """

    @classmethod
    def __subclasshook__(cls, subclass: type) -> bool:
        if cls is not HierarchicalOperator:
            return NotImplemented  # pragma: no cover - subclass hooks
        if all(any(m in b.__dict__ for b in subclass.__mro__) for m in PROTOCOL_METHODS):
            return True
        return NotImplemented

    # The abstract stubs below document the contract for real subclasses; the
    # structural hook above means conformance never *requires* inheriting.
    @property
    @abstractmethod
    def shape(self) -> Tuple[int, int]:
        """``(n, n)`` operator dimensions."""

    @abstractmethod
    def matvec(self, x: np.ndarray, permuted: bool = False) -> np.ndarray:
        """Forward apply to a vector or block of vectors."""

    @abstractmethod
    def to_dense(self, permuted: bool = False) -> np.ndarray:
        """Dense reconstruction."""


class HierarchicalOperatorMixin:
    """Derives the full :class:`HierarchicalOperator` surface from one core apply.

    A concrete format supplies

    * ``tree`` — the cluster tree (``perm`` / ``iperm`` / ``depth``),
    * ``shape`` — the ``(n, n)`` dimensions,
    * :meth:`_apply_permuted` — the forward/transpose apply on a permuted
      2-D block,
    * :meth:`_memory_components` — per-component byte counts,
    * :meth:`_block_counts` — ``(num_low_rank_blocks, num_dense_blocks)``,
    * ``rank_range()`` — ``(min, max)`` ranks,

    and inherits everything else.  Extra keyword arguments of the public
    applies (e.g. the per-call ``backend=`` of
    :class:`~repro.hmatrix.h2matrix.H2Matrix`) are forwarded verbatim to
    :meth:`_apply_permuted`.
    """

    #: Registry/statistics name of the format (``"h2"``, ``"hodlr"``, ...).
    format_name = "hierarchical"

    # ------------------------------------------------------------------ basics
    @property
    def dtype(self) -> np.dtype:
        """Element dtype (float64 throughout this library)."""
        return np.dtype(np.float64)

    @property
    def num_rows(self) -> int:
        return int(self.shape[0])

    # ------------------------------------------------------------------- apply
    def _apply_permuted(
        self, x: np.ndarray, transpose: bool = False, **kwargs: object
    ) -> np.ndarray:
        """Apply to a 2-D block ``x`` in the permuted ordering (core hook)."""
        raise NotImplementedError  # pragma: no cover - abstract hook

    def _apply(
        self, x: np.ndarray, permuted: bool, transpose: bool, **kwargs: object
    ) -> np.ndarray:
        x = np.asarray(x)
        if np.iscomplexobj(x):
            # The stored operator is real; a complex block applies to the
            # real and imaginary parts separately (scipy LinearOperator
            # semantics).  The old float64 cast silently dropped the
            # imaginary part and returned wrong numbers under a mere
            # ComplexWarning.
            real = self._apply(
                np.ascontiguousarray(x.real, dtype=np.float64),
                permuted,
                transpose,
                **kwargs,
            )
            imag = self._apply(
                np.ascontiguousarray(x.imag, dtype=np.float64),
                permuted,
                transpose,
                **kwargs,
            )
            return real + 1j * imag
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[:, None]
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[1]} rows, "
                f"x has {x.shape[0]}"
            )
        xp = x if permuted else x[self.tree.perm]
        yp = self._apply_permuted(xp, transpose=transpose, **kwargs)
        y = yp if permuted else yp[self.tree.iperm]
        return y[:, 0] if single else y

    def matvec(
        self, x: np.ndarray, permuted: bool = False, **kwargs: object
    ) -> np.ndarray:
        """Multiply by a vector ``(n,)`` or block ``(n, k)``.

        ``permuted=True`` means ``x`` is already in the cluster-tree ordering
        and the result is returned in that ordering; otherwise the original
        point ordering is used.  Extra keyword arguments are forwarded to the
        format's core apply.
        """
        return self._apply(x, permuted=permuted, transpose=False, **kwargs)

    def matmat(
        self, x: np.ndarray, permuted: bool = False, **kwargs: object
    ) -> np.ndarray:
        """Multiply by a block of vectors ``(n, k)`` in one batched apply."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {x.shape}")
        return self._apply(x, permuted=permuted, transpose=False, **kwargs)

    def rmatvec(
        self, x: np.ndarray, permuted: bool = False, **kwargs: object
    ) -> np.ndarray:
        """Transpose apply ``A^T x`` (exact, whether or not the data is symmetric)."""
        return self._apply(x, permuted=permuted, transpose=True, **kwargs)

    def rmatmat(
        self, x: np.ndarray, permuted: bool = False, **kwargs: object
    ) -> np.ndarray:
        """Transpose apply to a block of vectors, ``A^T X``."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"rmatmat expects a 2-D block, got shape {x.shape}")
        return self._apply(x, permuted=permuted, transpose=True, **kwargs)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Write this operator to ``path`` in the :mod:`repro.persist` format.

        The artifact round-trips exactly: ``load(path).to_dense()`` is
        bitwise-equal to ``self.to_dense()``.  ``save`` is a convenience of
        the mixin, not part of :data:`PROTOCOL_METHODS` — third-party
        structural conformers are not required to provide it; use
        :func:`repro.persist.save` for any registered format.
        """
        from ..persist import save as _save

        _save(self, path)

    # ----------------------------------------------------------------- memory
    def _memory_components(self) -> Dict[str, int]:
        """Per-component byte counts of the stored representation."""
        raise NotImplementedError  # pragma: no cover - abstract hook

    def memory_bytes(self) -> Dict[str, int]:
        """Byte accounting with the unified ``low_rank``/``dense``/``total`` keys.

        Format-specific component keys (e.g. ``basis``/``coupling`` for H2)
        are preserved alongside the unified ones; ``low_rank`` aggregates
        every non-dense component so cross-format memory comparisons (Fig. 6)
        read the same keys everywhere.
        """
        components = {k: int(v) for k, v in self._memory_components().items()}
        total = sum(components.values())
        dense = components.setdefault("dense", 0)
        components.setdefault("low_rank", total - dense)
        components["total"] = total
        return components

    def total_memory_mb(self) -> float:
        return self.memory_bytes()["total"] / (1024.0 * 1024.0)

    # ------------------------------------------------------------- statistics
    def _block_counts(self) -> Tuple[int, int]:
        """``(num_low_rank_blocks, num_dense_blocks)`` of the representation."""
        raise NotImplementedError  # pragma: no cover - abstract hook

    def _extra_statistics(self) -> Dict[str, object]:
        """Format-specific additions merged into :meth:`statistics`."""
        return {}

    def statistics(self) -> Dict[str, object]:
        """Unified summary statistics shared by every hierarchical format."""
        lo, hi = self.rank_range()
        low_rank_blocks, dense_blocks = self._block_counts()
        stats: Dict[str, object] = {
            "format": self.format_name,
            "n": int(self.shape[0]),
            "depth": int(self.tree.depth),
            "rank_min": int(lo),
            "rank_max": int(hi),
            "num_low_rank_blocks": int(low_rank_blocks),
            "num_dense_blocks": int(dense_blocks),
            "memory_mb": self.total_memory_mb(),
        }
        stats.update(self._extra_statistics())
        return stats

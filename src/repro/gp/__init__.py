"""Gaussian-process regression & model selection on compressed covariances.

The canonical consumer of every layer of the library: construction
(:mod:`repro.core`), the batched apply engine (:mod:`repro.batched`), the
HODLR factorization and Krylov solvers (:mod:`repro.solvers`) and the
geometry-reuse sweep cache (:class:`repro.core.context.GeometryContext`)
compose into :class:`~repro.gp.regression.GaussianProcess`: exact-up-to-
tolerance marginal log-likelihoods, preconditioned-CG posteriors, seeded
prior/posterior sampling and grid + Nelder–Mead hyperparameter selection.
"""

from .regression import GaussianProcess, NotPositiveDefiniteError
from .sweep import hyperparameter_grid, nelder_mead

__all__ = [
    "GaussianProcess",
    "NotPositiveDefiniteError",
    "hyperparameter_grid",
    "nelder_mead",
]

"""Hyperparameter sweeps and gradient-free likelihood optimization.

The model-selection loop of :meth:`repro.gp.regression.GaussianProcess.fit`:
a cartesian grid over length scales and nuggets (every point re-using the
cached geometry of the GP's :class:`~repro.core.context.GeometryContext`),
optionally refined by a compact Nelder–Mead simplex search in log-parameter
space — gradients of the sketched log-likelihood are noisy, so a
direct-search method is the robust default.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

from ..kernels.base import KernelFunction


def hyperparameter_grid(
    kernel: KernelFunction,
    noise: float,
    length_scales: Sequence[float] | None = None,
    noises: Sequence[float] | None = None,
) -> Iterator[Tuple[KernelFunction, float]]:
    """Iterate the cartesian grid of kernel length scales and noise values.

    ``None`` grids collapse to the current value, so the degenerate call
    yields exactly the current ``(kernel, noise)`` point.  Kernels without a
    ``length_scale`` hyperparameter reject a length-scale grid.
    """
    if length_scales is not None and "length_scale" not in kernel.hyperparameters():
        raise TypeError(
            f"{type(kernel).__name__} has no length_scale hyperparameter to sweep"
        )
    kernels = (
        [kernel]
        if length_scales is None
        else [kernel.rebind(length_scale=float(ls)) for ls in length_scales]
    )
    noise_values = [float(noise)] if noises is None else [float(nz) for nz in noises]
    for k in kernels:
        for nz in noise_values:
            yield k, nz


def nelder_mead(
    f: Callable[[np.ndarray], float],
    x0: np.ndarray,
    initial_step: float = 0.25,
    max_evals: int = 60,
    xtol: float = 1e-3,
    ftol: float = 1e-8,
) -> Tuple[np.ndarray, float]:
    """Minimise ``f`` with a Nelder–Mead simplex search (SciPy-backed).

    A thin convenience wrapper over
    :func:`scipy.optimize.minimize(method="Nelder-Mead") <scipy.optimize.minimize>`
    with the initial simplex spanned by ``initial_step`` along every
    coordinate of ``x0``, a hard evaluation budget and ``xtol``/``ftol``
    termination.  Returns the best evaluated point and its value — tracked on
    our side so a budget-terminated search still reports the true incumbent.
    ``f`` may return ``inf`` for infeasible points (e.g. a
    non-positive-definite covariance).
    """
    from scipy.optimize import minimize

    x0 = np.asarray(x0, dtype=np.float64).reshape(-1)
    dim = x0.shape[0]
    best: List[object] = [x0, np.inf]
    evals = 0

    def call(x: np.ndarray) -> float:
        nonlocal evals
        evals += 1
        value = float(f(x))
        if not np.isfinite(value):
            value = np.inf
        if value < best[1]:
            best[0], best[1] = np.array(x), value
        return value

    simplex = np.vstack([x0] + [x0 + initial_step * row for row in np.eye(dim)])
    minimize(
        call,
        x0,
        method="Nelder-Mead",
        options={
            "initial_simplex": simplex,
            "maxfev": max_evals,
            "xatol": xtol,
            "fatol": ftol,
        },
    )
    return np.asarray(best[0], dtype=np.float64), float(best[1])

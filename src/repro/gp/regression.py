"""Gaussian-process regression on hierarchically compressed covariance matrices.

The end-to-end statistical workload the paper's covariance benchmarks point
at: a :class:`GaussianProcess` over ``n`` training points with a radial
covariance kernel and a noise (nugget) variance composes every layer of the
library —

* the covariance matrix ``K`` is compressed once per hyperparameter point with
  the sketching constructor, through a geometry-reusing
  :class:`~repro.core.context.GeometryContext` (tree, partition, distances,
  sample pattern and apply-plan skeleton are shared across the sweep);
* the marginal log-likelihood uses the HODLR factorization of the *shifted*
  covariance ``K + noise I`` for ``log det`` (matrix determinant lemma) and as
  the preconditioner of a CG solve for the quadratic term, iterating on the
  compiled batched apply plan of the H2 matrix;
* posterior mean/variance at test points reuse the factorization-seeded CG
  machinery; prior and posterior sampling draw from a seeded generator so
  results are reproducible across execution backends.

The likelihood is "exact up to tolerance": with construction tolerance
``eps`` the returned value matches the dense
``numpy.linalg.slogdet``/``solve`` reference to a comparable relative error
(the acceptance tests pin ``<= 1e-6`` at ``n <= 2048``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.policy import ExecutionPolicy
from ..core.context import GeometryContext
from ..diagnostics.gp_report import GPFitReport
from ..observe.tracer import NOOP_TRACER
from ..hmatrix.hodlr import _hodlr_from_h2
from ..hmatrix.linear_operator import as_linear_operator
from ..kernels.base import KernelFunction, PairwiseKernel
from ..solvers.hodlr_factor import HODLRFactorization
from ..solvers.krylov import cg
from ..solvers.preconditioner import HierarchicalPreconditioner
from ..utils.rng import SeedLike, as_generator
from ..utils.validation import check_positive
from .sweep import hyperparameter_grid, nelder_mead

LOG_2PI = float(np.log(2.0 * np.pi))


class NotPositiveDefiniteError(ValueError):
    """The shifted covariance ``K + noise I`` is not positive definite.

    Raised per hyperparameter point; grid sweeps treat it as "skip this
    point" while genuine configuration errors (wrong admissibility, invalid
    parameters) propagate as plain :class:`ValueError`/:class:`TypeError`.
    """


@dataclass
class _FittedState:
    """Everything tied to one evaluated hyperparameter point."""

    kernel: KernelFunction
    noise: float
    result: object  # ConstructionResult
    factorization: HODLRFactorization
    preconditioner: HierarchicalPreconditioner
    alpha: np.ndarray
    log_likelihood: float
    log_determinant: float
    quadratic_term: float
    report: GPFitReport

    @property
    def matrix(self):
        return self.result.matrix


class GaussianProcess:
    """GP regression with hierarchical covariance compression.

    Parameters
    ----------
    train_points:
        ``(n, dim)`` training inputs (original ordering; all public inputs and
        outputs use it).
    kernel:
        The covariance kernel, typically a
        :class:`~repro.kernels.base.PairwiseKernel` (optionally composed with
        :class:`~repro.kernels.composite.ScaledKernel` for a signal variance).
    noise:
        Observation-noise variance (the nugget), applied as a diagonal shift
        of the compressed covariance — never materialised in the kernel.
    tolerance:
        Construction tolerance of the compressed covariance; drives the
        accuracy of the log-likelihood and posterior.
    leaf_size, backend, seed:
        Forwarded to the internally created
        :class:`~repro.core.context.GeometryContext` (ignored when an explicit
        ``context`` is passed).  The context must use weak admissibility — the
        HODLR factorization consumes its output directly.
    policy:
        Optional :class:`~repro.api.policy.ExecutionPolicy` consolidating
        backend and construction-path selection (wins over ``backend`` for
        the internally created context).
    solve_tol:
        Relative residual tolerance of the preconditioned CG solves.
    max_cg_iterations:
        Iteration cap of the CG solves (``None``: the system dimension).
    """

    def __init__(
        self,
        train_points: np.ndarray,
        kernel: KernelFunction,
        noise: float = 1e-2,
        *,
        tolerance: float = 1e-8,
        leaf_size: int = 64,
        backend: str = "auto",
        policy: "ExecutionPolicy | None" = None,
        solve_tol: float = 1e-10,
        max_cg_iterations: int | None = None,
        seed: SeedLike = 0,
        context: GeometryContext | None = None,
    ):
        self.train_points = np.ascontiguousarray(
            np.atleast_2d(np.asarray(train_points, dtype=np.float64))
        )
        check_positive(noise, "noise")
        check_positive(tolerance, "tolerance")
        self.kernel = kernel
        self.noise = float(noise)
        self.tolerance = float(tolerance)
        self.solve_tol = float(solve_tol)
        self.max_cg_iterations = max_cg_iterations
        if context is None:
            construction_path = "auto"
            tracer = None
            if policy is not None:
                backend = policy.resolve_backend()
                construction_path = policy.construction_path
                tracer = policy.tracer
            context = GeometryContext(
                self.train_points,
                leaf_size=leaf_size,
                backend=backend,
                seed=seed,
                construction_path=construction_path,
                tracer=tracer,
            )
        self.context = context
        self._tracer = getattr(context, "tracer", None) or NOOP_TRACER
        # Resilience wiring: an explicit policy wins; a policy-resolved
        # context carries the knobs on its backend (installed by
        # ExecutionPolicy.resolve_backend), so Session.gp(...) inherits them.
        backend_of_context = getattr(context, "backend", None)
        self._recovery = (
            policy.recovery if policy is not None
            else getattr(backend_of_context, "recovery", None)
        )
        self._faults = (
            policy.faults if policy is not None
            else getattr(backend_of_context, "faults", None)
        )
        if self.context.num_points != self.train_points.shape[0]:
            raise ValueError(
                "context was built over a different number of points "
                f"({self.context.num_points} vs {self.train_points.shape[0]})"
            )
        # The context stores the points in its cluster-tree ordering; they
        # must be the *same* points, or alpha/logdet would silently describe a
        # different covariance than the one predict() cross-correlates with.
        tree = self.context.tree
        if tree.points.shape != self.train_points.shape or not np.array_equal(
            tree.points, self.train_points[tree.perm]
        ):
            raise ValueError(
                "context was built over different point coordinates than "
                "train_points"
            )
        self._state: Optional[_FittedState] = None
        self._y: Optional[np.ndarray] = None
        #: Flattened HODLR of the most recent construction result: the
        #: flattening is independent of the noise shift, so noise-only sweep
        #: points (context result-cache hits) skip straight to factorization.
        self._hodlr_cache: Optional[Tuple[object, object]] = None
        #: Fit reports of every hyperparameter point evaluated by the last
        #: :meth:`fit` call (sweep + optimizer), in evaluation order.
        self.fit_reports_: List[GPFitReport] = []

    # ------------------------------------------------------------------ basics
    @property
    def num_train(self) -> int:
        return int(self.train_points.shape[0])

    def _require_fit(self) -> _FittedState:
        if self._state is None:
            raise RuntimeError("call fit() before predicting or sampling")
        return self._state

    @property
    def log_marginal_likelihood_(self) -> float:
        """Log marginal likelihood of the fitted model."""
        return self._require_fit().log_likelihood

    @property
    def alpha_(self) -> np.ndarray:
        """The representer weights ``(K + noise I)^{-1} y`` of the fitted model."""
        return self._require_fit().alpha

    # -------------------------------------------------------------- evaluation
    def _evaluate(
        self, y: np.ndarray, kernel: KernelFunction, noise: float
    ) -> _FittedState:
        """Construct, factor and solve at one hyperparameter point.

        Under an enabled tracer every candidate runs inside a ``gp/evaluate``
        span whose children are the construction, factorization and solve
        spans of the layers below.
        """
        check_positive(noise, "noise")
        tracer = self._tracer
        if not tracer.enabled:
            return self._evaluate_impl(y, kernel, noise)
        with tracer.span(
            "gp/evaluate", category="gp",
            kernel=type(kernel).__name__, noise=float(noise),
        ) as span:
            state = self._evaluate_impl(y, kernel, noise)
            span.set(
                log_marginal_likelihood=state.log_likelihood,
                cg_iterations=state.report.cg_iterations,
                plan_reused=state.report.plan_reused,
            )
        registry = tracer.metrics
        if registry is not None:
            registry.counter("gp.evaluations").inc()
            registry.histogram("gp.log_marginal_likelihood").observe(
                state.log_likelihood
            )
        return state

    def _evaluate_impl(
        self, y: np.ndarray, kernel: KernelFunction, noise: float
    ) -> _FittedState:
        stats = self.context.statistics
        reuses_before = stats.plan_reuses + stats.result_cache_hits
        t_construct = time.perf_counter()
        result = self.context.construct(kernel, tolerance=self.tolerance)
        construct_seconds = time.perf_counter() - t_construct
        matrix = result.matrix
        plan_reused = stats.plan_reuses + stats.result_cache_hits > reuses_before

        t0 = time.perf_counter()
        if self._hodlr_cache is not None and self._hodlr_cache[0] is result:
            hodlr = self._hodlr_cache[1]
        else:
            try:
                hodlr = _hodlr_from_h2(matrix)
            except ValueError as exc:
                raise ValueError(
                    "GaussianProcess requires a weak-admissibility (HSS) context "
                    "so the constructed covariance can be factored in HODLR form"
                ) from exc
            self._hodlr_cache = (result, hodlr)
        factorization = HODLRFactorization(hodlr, shift=noise, tracer=self._tracer)
        factor_seconds = time.perf_counter() - t0
        if factorization.determinant_sign <= 0.0:
            raise NotPositiveDefiniteError(
                "shifted covariance is not positive definite at "
                f"noise={noise:.3e}; increase the noise/nugget or loosen the "
                "construction tolerance"
            )
        log_determinant = factorization.logdet()

        preconditioner = HierarchicalPreconditioner(factorization)
        operator = as_linear_operator(matrix, shift=noise)
        launches_before = matrix.apply_backend.counter.total()
        t0 = time.perf_counter()
        maxiter = self.max_cg_iterations
        if self._faults is not None:
            maxiter = self._faults.stall_maxiter(maxiter)
        solve = cg(
            operator,
            y,
            tol=self.solve_tol,
            maxiter=maxiter,
            M=preconditioner,
            tracer=self._tracer,
        )
        if not solve.converged and self._recovery is not None:
            solve = self._recover_solve(solve, y, matrix, noise, factorization)
        solve_seconds = time.perf_counter() - t0
        apply_launches = matrix.apply_backend.counter.total() - launches_before

        alpha = solve.x
        quadratic = float(y @ alpha)
        n = y.shape[0]
        log_likelihood = -0.5 * (quadratic + log_determinant + n * LOG_2PI)

        report = GPFitReport(
            n=n,
            kernel=type(kernel).__name__,
            params=kernel.hyperparameters(),
            noise=float(noise),
            log_marginal_likelihood=log_likelihood,
            log_determinant=log_determinant,
            quadratic_term=quadratic,
            cg_iterations=solve.iterations,
            cg_converged=solve.converged,
            construction_samples=result.total_samples,
            rank_range=result.rank_range,
            construction_launches=result.total_kernel_launches,
            apply_launches=int(apply_launches),
            plan_reused=plan_reused,
            construction_seconds=construct_seconds,
            factorization_seconds=factor_seconds,
            solve_seconds=solve_seconds,
        )
        return _FittedState(
            kernel=kernel,
            noise=float(noise),
            result=result,
            factorization=factorization,
            preconditioner=preconditioner,
            alpha=alpha,
            log_likelihood=log_likelihood,
            log_determinant=log_determinant,
            quadratic_term=quadratic,
            report=report,
        )

    def _recover_solve(self, solve, y, matrix, noise, factorization):
        """Recovery-policy handling of a non-converged representer solve.

        ``strict`` raises :class:`~repro.resilience.SolveDidNotConvergeError`;
        ``warn`` announces the flagged result through the ``repro.resilience``
        logger and keeps it; ``recover`` escalates through the ladder rungs
        beyond preconditioned CG (GMRES(m), then the factorization applied as
        a direct solve), warm-started from the failed iterate.
        """
        from ..resilience.errors import SolveDidNotConvergeError
        from ..resilience.policy import resilience_adapter
        from ..solvers.ladder import escalation_ladder

        recovery = self._recovery
        if recovery.mode == "strict":
            raise SolveDidNotConvergeError(
                f"representer solve did not converge in {solve.iterations} "
                f"iterations (final residual {solve.final_residual:.3e} > "
                f"tol {self.solve_tol:.3e}); raise max_cg_iterations or the "
                "noise",
                result=solve,
            )
        if recovery.mode == "warn":
            resilience_adapter().warn(
                "gp-solve-not-converged", iterations=solve.iterations,
                final_residual=solve.final_residual, tol=self.solve_tol,
            )
            return solve
        rungs = tuple(r for r in recovery.ladder if r not in ("cg", "pcg"))
        if not rungs:
            raise SolveDidNotConvergeError(
                "representer solve did not converge and the recovery ladder "
                f"has no rungs beyond pcg (ladder={list(recovery.ladder)})",
                result=solve,
            )
        escalated = escalation_ladder(
            matrix, y, tol=self.solve_tol, shift=noise,
            factorization=factorization, recovery=recovery, rungs=rungs,
            x0=solve.x, tracer=self._tracer,
        )
        escalated.extra["escalated_from"] = solve.method
        return escalated

    # --------------------------------------------------------------------- fit
    def fit(
        self,
        y: np.ndarray,
        length_scales: Sequence[float] | None = None,
        noises: Sequence[float] | None = None,
        optimize: bool = False,
        max_optimizer_evals: int = 25,
    ) -> "GaussianProcess":
        """Fit the GP to targets ``y``, optionally selecting hyperparameters.

        Without grids this evaluates the current ``(kernel, noise)`` point.
        With ``length_scales`` and/or ``noises`` the cartesian grid is swept
        (re-using the cached geometry at every point) and the maximizer of the
        marginal log-likelihood is selected; ``optimize=True`` then refines
        the winner with a Nelder–Mead search in log-parameter space.  All
        evaluated points are recorded in :attr:`fit_reports_`.
        """
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if y.shape[0] != self.num_train:
            raise ValueError(
                f"y has length {y.shape[0]}, expected {self.num_train}"
            )
        self.fit_reports_ = []
        best: Optional[_FittedState] = None
        for kernel, noise in hyperparameter_grid(
            self.kernel, self.noise, length_scales=length_scales, noises=noises
        ):
            try:
                state = self._evaluate(y, kernel, noise)
            except NotPositiveDefiniteError:
                continue  # skip this grid point, keep sweeping
            self.fit_reports_.append(state.report)
            if best is None or state.log_likelihood > best.log_likelihood:
                best = state
        if best is None:
            raise NotPositiveDefiniteError(
                "no hyperparameter point produced a positive-definite "
                "shifted covariance"
            )
        if optimize:
            best = self._optimize(y, best, max_optimizer_evals)
        self.kernel = best.kernel
        self.noise = best.noise
        self._state = best
        self._y = y
        return self

    def _optimize(
        self, y: np.ndarray, start: _FittedState, max_evals: int
    ) -> _FittedState:
        """Gradient-free refinement of ``(kernel params, noise)`` around ``start``."""
        params = start.kernel.hyperparameters()
        # Log-space search: only strictly positive parameters are optimizable
        # (e.g. a zero Helmholtz diagonal_value stays fixed).
        names = sorted(name for name, value in params.items() if value > 0)
        x0 = np.log(np.array([params[name] for name in names] + [start.noise]))
        # Running argmax: evaluated states hold a full factorization each, so
        # only the current best is kept alive during the search.
        best: List[_FittedState] = [start]

        def objective(x: np.ndarray) -> float:
            values = np.exp(x)
            kernel = start.kernel.rebind(
                **{name: float(v) for name, v in zip(names, values[:-1])}
            )
            noise = float(values[-1])
            try:
                state = self._evaluate(y, kernel, noise)
            except NotPositiveDefiniteError:
                return np.inf
            self.fit_reports_.append(state.report)
            if state.log_likelihood > best[0].log_likelihood:
                best[0] = state
            return -state.log_likelihood

        nelder_mead(objective, x0, initial_step=0.25, max_evals=max_evals)
        return best[0]

    def log_marginal_likelihood(
        self,
        y: np.ndarray | None = None,
        kernel: KernelFunction | None = None,
        noise: float | None = None,
    ) -> float:
        """Marginal log-likelihood, re-evaluated when any argument is given."""
        if y is None and kernel is None and noise is None:
            return self._require_fit().log_likelihood
        if y is None:
            if self._y is None:
                raise RuntimeError("no targets available; pass y or call fit() first")
            y = self._y
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        state = self._evaluate(
            y,
            kernel if kernel is not None else self.kernel,
            noise if noise is not None else self.noise,
        )
        return state.log_likelihood

    # ----------------------------------------------------------------- predict
    def _cross_covariance(self, points: np.ndarray) -> np.ndarray:
        return self.kernel.evaluate(points, self.train_points)

    def _prior_variance(self, points: np.ndarray) -> np.ndarray:
        if isinstance(self.kernel, PairwiseKernel):
            return np.full(points.shape[0], self.kernel.value_at_zero())
        return np.array(
            [float(self.kernel.evaluate(p[None], p[None])[0, 0]) for p in points]
        )

    def _solve_shifted(self, b: np.ndarray) -> np.ndarray:
        """Solve ``(K + noise I) X = B`` through the factorization + CG polish.

        The HODLR factorization solves the whole block directly (near-linear);
        one batched residual check through the compiled apply plan detects
        columns outside the solve tolerance, which are polished with a few
        preconditioned CG iterations against the true shifted operator.
        """
        state = self._require_fit()
        single = b.ndim == 1
        block = b[:, None] if single else b
        x = state.factorization.solve(block)
        residual = block - (state.matrix.matmat(x) + self.noise * x)
        b_norms = np.linalg.norm(block, axis=0)
        r_norms = np.linalg.norm(residual, axis=0)
        needs_polish = r_norms > self.solve_tol * 1e2 * np.maximum(b_norms, 1e-300)
        if np.any(needs_polish):
            operator = as_linear_operator(state.matrix, shift=self.noise)
            for j in np.nonzero(needs_polish)[0]:
                solve = cg(
                    operator,
                    block[:, j],
                    tol=self.solve_tol,
                    maxiter=self.max_cg_iterations,
                    M=state.preconditioner,
                    x0=x[:, j],
                )
                x[:, j] = solve.x
        return x[:, 0] if single else x

    def predict(
        self,
        points: np.ndarray,
        return_std: bool = False,
        include_noise: bool = False,
    ) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally standard deviation) at ``points``.

        ``include_noise=True`` returns the predictive deviation of noisy
        observations (adds the nugget variance) instead of the latent one.
        """
        state = self._require_fit()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        k_cross = self._cross_covariance(points)
        mean = k_cross @ state.alpha
        if not return_std:
            return mean
        v = self._solve_shifted(k_cross.T)
        variance = self._prior_variance(points) - np.einsum(
            "ij,ji->i", k_cross, v
        )
        if include_noise:
            variance = variance + self.noise
        return mean, np.sqrt(np.maximum(variance, 0.0))

    # ---------------------------------------------------------------- sampling
    @staticmethod
    def _cholesky(matrix: np.ndarray, jitter: float) -> np.ndarray:
        """Cholesky with escalating jitter (covariances are barely PD)."""
        bump = jitter
        eye = np.eye(matrix.shape[0])
        for _ in range(8):
            try:
                return np.linalg.cholesky(matrix + bump * eye)
            except np.linalg.LinAlgError:
                bump *= 100.0
        raise np.linalg.LinAlgError(
            "covariance is numerically indefinite even after jittering"
        )

    def sample_prior(
        self,
        points: np.ndarray,
        num_samples: int = 1,
        seed: SeedLike = None,
        jitter: float = 1e-12,
    ) -> np.ndarray:
        """Draw ``num_samples`` prior functions at ``points``: shape ``(m, num_samples)``.

        Backend-independent: the prior only involves the exact kernel, so the
        same seed yields bitwise-identical draws on every execution backend.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        cov = self.kernel.evaluate(points, points)
        chol = self._cholesky(cov, jitter)
        z = as_generator(seed).standard_normal((points.shape[0], int(num_samples)))
        return chol @ z

    def sample_posterior(
        self,
        points: np.ndarray,
        num_samples: int = 1,
        seed: SeedLike = None,
        jitter: float = 1e-12,
    ) -> np.ndarray:
        """Draw posterior functions at ``points``: shape ``(m, num_samples)``.

        The posterior covariance is assembled densely at the ``m`` test points
        (``m`` is assumed small next to ``n``); the training-side solves run
        through the hierarchical machinery.
        """
        state = self._require_fit()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        k_cross = self._cross_covariance(points)
        mean = k_cross @ state.alpha
        v = self._solve_shifted(k_cross.T)
        cov = self.kernel.evaluate(points, points) - k_cross @ v
        cov = 0.5 * (cov + cov.T)
        chol = self._cholesky(cov, jitter)
        z = as_generator(seed).standard_normal((points.shape[0], int(num_samples)))
        return mean[:, None] + chol @ z

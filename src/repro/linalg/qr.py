"""Column-pivoted QR helpers.

Two uses in the construction algorithm:

* the **interpolative decomposition** (Section II-B) is computed from a
  column-pivoted QR whose triangular factor is truncated once its diagonal
  falls below the compression tolerance;
* the **adaptive convergence test** (Section III-B) computes an (unpivoted)
  QR of every node's sample block and inspects the smallest absolute diagonal
  entry of ``R`` — if it is below the absolute threshold the samples already
  capture the block row to the requested accuracy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla


def truncated_pivoted_qr(
    matrix: np.ndarray,
    rel_tol: float | None = None,
    abs_tol: float | None = None,
    max_rank: int | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Column-pivoted QR with rank truncation.

    Computes ``matrix[:, perm] = Q @ R`` and the numerical rank ``k`` such that
    ``|R[k, k]|`` is the first diagonal entry below the truncation threshold.
    The threshold is ``max(rel_tol * |R[0, 0]|, abs_tol)`` where either
    tolerance may be omitted.

    Returns
    -------
    (Q, R, perm, rank):
        The full economic factors (not yet truncated) plus the numerical rank;
        callers slice ``Q[:, :rank]`` / ``R[:rank]`` as needed.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    m, n = a.shape
    if m == 0 or n == 0:
        return (
            np.zeros((m, 0)),
            np.zeros((0, n)),
            np.arange(n, dtype=np.int64),
            0,
        )
    q, r, perm = sla.qr(a, mode="economic", pivoting=True)
    diag = np.abs(np.diag(r))
    limit = min(m, n)
    if rel_tol is None and abs_tol is None:
        rank = limit
    else:
        threshold = 0.0
        if rel_tol is not None and diag.size:
            threshold = max(threshold, rel_tol * diag[0])
        if abs_tol is not None:
            threshold = max(threshold, abs_tol)
        below = np.nonzero(diag <= threshold)[0]
        rank = int(below[0]) if below.size else limit
    if max_rank is not None:
        rank = min(rank, int(max_rank))
    return q, r, perm.astype(np.int64), rank


def smallest_r_diagonal(matrix: np.ndarray) -> float:
    """Smallest absolute diagonal entry of ``R`` in a QR factorization of ``matrix``.

    This is the quantity the adaptive construction inspects to decide whether a
    node has received enough sample vectors: once the sample block is
    numerically rank deficient (smallest ``|R_ii|`` below the absolute
    tolerance) the current samples span the block row to the target accuracy.
    An empty matrix reports ``0.0`` (trivially converged).
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    if a.shape[0] == 0 or a.shape[1] == 0:
        return 0.0
    if a.shape[0] < a.shape[1]:
        # Fewer rows than sample vectors: R is (m, d) upper-trapezoidal and the
        # trailing columns have no diagonal entry; the sample block cannot be
        # full column rank, so the node is converged by definition.
        return 0.0
    r = np.linalg.qr(a, mode="r")
    diag = np.abs(np.diag(r))
    if diag.size == 0:
        return 0.0
    return float(diag.min())


def householder_orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Return an orthonormal basis of the column space of ``matrix`` via QR.

    Used by the top-down peeling baseline to orthonormalise sampled blocks.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.size == 0:
        return np.zeros((a.shape[0], 0))
    q, _ = np.linalg.qr(a)
    return q

"""Low-rank matrix objects.

Used for the third application of the paper: updating an existing H2
representation with an additional low-rank product ``U V^T`` (rank 32 in the
experiments) and recompressing the sum into a new H2 matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import SeedLike, as_generator


@dataclass
class LowRankMatrix:
    """An explicit rank-``k`` matrix ``U @ V.T``.

    Attributes
    ----------
    left:
        ``(m, k)`` factor ``U``.
    right:
        ``(n, k)`` factor ``V``.
    """

    left: np.ndarray
    right: np.ndarray

    def __post_init__(self) -> None:
        self.left = np.asarray(self.left, dtype=np.float64)
        self.right = np.asarray(self.right, dtype=np.float64)
        if self.left.ndim != 2 or self.right.ndim != 2:
            raise ValueError("low-rank factors must be two-dimensional")
        if self.left.shape[1] != self.right.shape[1]:
            raise ValueError(
                "left and right factors must share the same rank, got "
                f"{self.left.shape[1]} and {self.right.shape[1]}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.left.shape[0], self.right.shape[0])

    @property
    def rank(self) -> int:
        return int(self.left.shape[1])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``(U V^T) x`` for a vector or block of vectors ``x``."""
        return self.left @ (self.right.T @ x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``(U V^T)^T x = V U^T x``."""
        return self.right @ (self.left.T @ x)

    def to_dense(self) -> np.ndarray:
        return self.left @ self.right.T

    def entries(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """The sub-block ``(U V^T)[rows, cols]`` without forming the dense matrix."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self.left[rows] @ self.right[cols].T

    def frobenius_norm(self) -> float:
        """Frobenius norm computed through the ``k x k`` Gram matrices."""
        gram = (self.left.T @ self.left) @ (self.right.T @ self.right)
        return float(np.sqrt(max(np.trace(gram), 0.0)))

    def symmetrized(self) -> "LowRankMatrix":
        """Return the symmetric low-rank matrix ``0.5 (U V^T + V U^T)`` of rank ``2k``."""
        left = np.hstack([0.5 * self.left, 0.5 * self.right])
        right = np.hstack([self.right, self.left])
        return LowRankMatrix(left, right)


def random_low_rank(
    n: int,
    rank: int,
    seed: SeedLike = None,
    scale: float = 1.0,
    symmetric: bool = False,
) -> LowRankMatrix:
    """Generate a random rank-``rank`` matrix of size ``n x n``.

    The factors have unit-normal entries scaled by ``scale / sqrt(rank)`` so the
    spectral norm of the product is O(``scale * n / sqrt(rank)``) — comparable
    in magnitude to a kernel matrix block, which makes the low-rank update
    experiments (Fig. 5c) non-trivial.
    """
    if rank <= 0 or n <= 0:
        raise ValueError("n and rank must be positive")
    rng = as_generator(seed)
    u = scale / np.sqrt(rank) * rng.standard_normal((n, rank))
    if symmetric:
        return LowRankMatrix(u, u.copy())
    v = scale / np.sqrt(rank) * rng.standard_normal((n, rank))
    return LowRankMatrix(u, v)

"""Dense linear-algebra building blocks: pivoted QR, interpolative decomposition,
low-rank objects and randomized norm estimation."""

from .interpolative import InterpolativeDecomposition, row_id, column_id
from .low_rank import LowRankMatrix, random_low_rank
from .norm_estimation import (
    estimate_spectral_norm,
    estimate_relative_error,
)
from .qr import truncated_pivoted_qr, smallest_r_diagonal

__all__ = [
    "InterpolativeDecomposition",
    "row_id",
    "column_id",
    "LowRankMatrix",
    "random_low_rank",
    "estimate_spectral_norm",
    "estimate_relative_error",
    "truncated_pivoted_qr",
    "smallest_r_diagonal",
]

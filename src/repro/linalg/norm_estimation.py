"""Randomized spectral-norm estimation.

The paper measures the approximation error ``|K_comp - K| / |K|`` with a few
iterations of the power method applied to the difference between the
constructed hierarchical matrix and the black-box sampler (Section V-A), and
uses a sketched norm estimate to convert the relative compression tolerance
into the absolute threshold of the adaptive convergence test.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..utils.rng import SeedLike, as_generator

MatVec = Callable[[np.ndarray], np.ndarray]


def estimate_spectral_norm(
    matvec: MatVec,
    n: int,
    rmatvec: MatVec | None = None,
    num_iterations: int = 10,
    seed: SeedLike = None,
) -> float:
    """Estimate ``||A||_2`` with the power method on ``A^T A``.

    Parameters
    ----------
    matvec:
        Function computing ``A @ x`` for a vector ``x`` of length ``n``.
    n:
        Number of columns of ``A``.
    rmatvec:
        Function computing ``A^T @ x``; defaults to ``matvec`` (symmetric ``A``).
    num_iterations:
        Number of power iterations (the paper uses "a few").
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = as_generator(seed)
    adjoint = rmatvec if rmatvec is not None else matvec
    x = rng.standard_normal(n)
    x_norm = np.linalg.norm(x)
    if x_norm == 0.0:
        return 0.0
    x /= x_norm
    estimate = 0.0
    for _ in range(max(1, num_iterations)):
        y = np.asarray(matvec(x)).reshape(-1)
        y_norm = np.linalg.norm(y)
        if y_norm == 0.0:
            return 0.0
        z = np.asarray(adjoint(y)).reshape(-1)
        z_norm = np.linalg.norm(z)
        # For unit x, z = A^T A x so ||z|| converges to sigma_max(A)^2.
        estimate = np.sqrt(z_norm) if z_norm > 0 else y_norm
        if z_norm == 0.0:
            break
        x = z / z_norm
    return float(estimate)


def estimate_relative_error(
    reference_matvec: MatVec,
    approx_matvec: MatVec,
    n: int,
    num_iterations: int = 10,
    seed: SeedLike = None,
) -> float:
    """Relative spectral-norm error ``||A - B||_2 / ||A||_2`` via power iteration.

    Both operators are accessed only through matrix-vector products, matching
    how the paper validates constructions against the black-box sampler.
    """
    rng = as_generator(seed)

    def diff(x: np.ndarray) -> np.ndarray:
        return np.asarray(reference_matvec(x)).reshape(-1) - np.asarray(
            approx_matvec(x)
        ).reshape(-1)

    num = estimate_spectral_norm(diff, n, num_iterations=num_iterations, seed=rng)
    den = estimate_spectral_norm(
        reference_matvec, n, num_iterations=num_iterations, seed=rng
    )
    if den == 0.0:
        return 0.0 if num == 0.0 else np.inf
    return float(num / den)


def sketched_frobenius_norm(
    matvec: MatVec, n: int, num_samples: int = 16, seed: SeedLike = None
) -> float:
    """Unbiased sketch of the Frobenius norm: ``sqrt(E ||A w||^2)`` for Gaussian ``w``.

    Cheaper than the power method and sufficient for converting a relative
    tolerance into the absolute convergence threshold ``eps_abs = eps * |K|``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = as_generator(seed)
    omega = rng.standard_normal((n, max(1, num_samples)))
    y = np.asarray(matvec(omega))
    return float(np.sqrt(np.sum(y**2) / max(1, num_samples)))

"""Interpolative decompositions (ID).

The column ID (Eq. 3) approximates an ``m x n`` matrix ``A`` by a linear
combination of ``k`` of its own columns, ``A ~= A[:, S] @ [I  T] @ P^T``; the
row ID is the column ID of ``A^T`` and produces the factorization used to
skeletonize the sample blocks in Algorithm 1:

    A ~= X @ A[J, :],     X[J, :] = I_k,

where ``J`` are the skeleton row indices and the remaining (redundant) rows
are expressed through the interpolation matrix ``T`` (``X`` stacks ``T`` on
an identity, up to the row permutation which we keep explicit instead of
assuming pre-sorted indices as the paper does for presentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.linalg as sla

from .qr import truncated_pivoted_qr


@dataclass
class InterpolativeDecomposition:
    """Result of a row ID ``A ~= interpolation @ A[skeleton, :]``.

    Attributes
    ----------
    skeleton:
        The ``k`` selected (skeletonization) row indices ``J``.
    redundant:
        The remaining row indices, in pivot order.
    interpolation:
        The ``(m, k)`` matrix ``X`` with ``X[skeleton, :] = I``.
    rank:
        ``k``, the number of skeleton rows.
    """

    skeleton: np.ndarray
    redundant: np.ndarray
    interpolation: np.ndarray
    rank: int

    @property
    def num_rows(self) -> int:
        return int(self.interpolation.shape[0])

    def reconstruct(self, skeleton_rows: np.ndarray) -> np.ndarray:
        """Rebuild the approximation ``X @ skeleton_rows``."""
        return self.interpolation @ skeleton_rows


def column_id(
    matrix: np.ndarray,
    rel_tol: float | None = None,
    abs_tol: float | None = None,
    max_rank: int | None = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Column interpolative decomposition ``A ~= A[:, S] @ coeffs``.

    Returns ``(S, coeffs, rank)`` with ``coeffs`` of shape ``(rank, n)`` and
    ``coeffs[:, S] = I`` so that ``A[:, S] @ coeffs`` approximates ``A`` to the
    requested tolerance (measured on the pivoted-QR diagonal, as in Eq. 3).
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    m, n = a.shape
    _, r, perm, rank = truncated_pivoted_qr(
        a, rel_tol=rel_tol, abs_tol=abs_tol, max_rank=max_rank
    )
    skeleton = perm[:rank]
    if rank == 0:
        return skeleton, np.zeros((0, n)), 0
    r1 = r[:rank, :rank]
    r2 = r[:rank, rank:]
    if r2.shape[1]:
        t = sla.solve_triangular(r1, r2, lower=False)
    else:
        t = np.zeros((rank, 0))
    coeffs = np.zeros((rank, n))
    coeffs[:, skeleton] = np.eye(rank)
    coeffs[:, perm[rank:]] = t
    return skeleton.astype(np.int64), coeffs, rank


def row_id(
    matrix: np.ndarray,
    rel_tol: float | None = None,
    abs_tol: float | None = None,
    max_rank: int | None = None,
) -> InterpolativeDecomposition:
    """Row interpolative decomposition ``A ~= X @ A[J, :]``.

    Implemented as the column ID of ``A^T`` (the GPU code batches exactly this:
    transpose the sample blocks, run a column-pivoted QR, form ``T = R1^{-1} R2``).

    Parameters
    ----------
    matrix:
        The ``(m, d)`` sample block ``Y_loc`` of a node.
    rel_tol:
        Relative truncation tolerance on the pivoted-QR diagonal.
    abs_tol:
        Absolute truncation tolerance (used when a global matrix-norm based
        threshold is requested, Section III-B).
    max_rank:
        Optional hard cap on the rank.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    m = a.shape[0]
    skeleton, coeffs, rank = column_id(
        a.T, rel_tol=rel_tol, abs_tol=abs_tol, max_rank=max_rank
    )
    interpolation = coeffs.T  # (m, rank), identity on skeleton rows
    all_rows = np.arange(m, dtype=np.int64)
    mask = np.ones(m, dtype=bool)
    mask[skeleton] = False
    redundant = all_rows[mask]
    return InterpolativeDecomposition(
        skeleton=skeleton.astype(np.int64),
        redundant=redundant,
        interpolation=interpolation,
        rank=rank,
    )

"""Convergence reporting for the Krylov solver subsystem.

Renders :class:`~repro.solvers.krylov.KrylovResult` objects (anything with the
same attribute surface works) with the same dependency-free fixed-width tables
the benchmark harness uses for the paper figures: one summary row per solver
run, and optionally the iteration-by-iteration residual series for
convergence plots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .reporting import format_series, format_table


def convergence_table(
    results: Mapping[str, object] | Sequence[object],
    title: str | None = "solver convergence",
) -> str:
    """One summary row per solve: iterations, matvecs, final residual, time.

    ``results`` maps a label to a result object, or is a sequence of results
    (labelled by their ``method`` attribute).
    """
    if not isinstance(results, Mapping):
        labelled = {}
        for i, r in enumerate(results):
            label = getattr(r, "method", f"run{i}")
            if label in labelled:  # two runs of the same method: keep both rows
                label = f"{label} #{i}"
            labelled[label] = r
        results = labelled
    rows = []
    for label, r in results.items():
        rows.append(
            [
                label,
                getattr(r, "method", "?"),
                int(getattr(r, "iterations", 0)),
                int(getattr(r, "matvecs", 0)),
                int(getattr(r, "preconditioner_applications", 0)),
                float(getattr(r, "final_residual", np.nan)),
                "yes" if getattr(r, "converged", False) else "NO",
                float(getattr(r, "elapsed_seconds", 0.0)),
            ]
        )
    return format_table(
        ["label", "method", "iters", "matvecs", "M applies", "rel resid", "conv", "time s"],
        rows,
        title=title,
        float_format="{:.3g}",
    )


def residual_series(
    results: Mapping[str, object],
    every: int = 1,
    title: str | None = "relative residual per iteration",
) -> str:
    """The residual histories of several runs as one iteration-indexed table.

    ``every`` thins long histories (every ``k``-th iteration is printed; the
    first and last iterations are always kept).
    """
    every = max(1, int(every))
    series = {}
    for label, r in results.items():
        history = np.asarray(getattr(r, "residual_norms"), dtype=np.float64)
        if history.size == 0:
            continue
        keep = {0, history.size - 1} | set(range(0, history.size, every))
        series[label] = {int(i): float(history[i]) for i in sorted(keep)}
    return format_series("iteration", series, title=title, float_format="{:.3e}")

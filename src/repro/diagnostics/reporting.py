"""Plain-text table/series formatting for the benchmark harness.

The benchmark scripts print the same rows/series the paper reports (Fig. 5-7,
Table II); these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a fixed-width text table."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Mapping[str, Mapping[object, object]],
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render several series sharing an x-axis as one table.

    ``series`` maps a series name to a mapping of x value -> y value; missing
    points are rendered as ``-`` (e.g. a baseline that ran out of memory, as
    H2Opus does for N > 65536 in the paper).
    """
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)

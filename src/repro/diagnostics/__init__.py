"""Accuracy, memory, profiling and throughput diagnostics used by the
benchmark harness.

The reports in this package are *views*: they render numbers that the core
layers already record rather than owning their own instrumentation.  Two
recording routes feed them:

- **Dedicated measurements** — :func:`apply_report`,
  :func:`construction_report`, :func:`memory_report` and friends run (or
  inspect) a concrete object and read its counters/timers directly.  This is
  the original API and still works untraced.
- **Trace data** — when work runs under an enabled
  :class:`repro.observe.SpanTracer` (see :class:`repro.api.ExecutionPolicy`),
  the same numbers land on spans, and :meth:`PhaseBreakdown.from_span` /
  :meth:`ApplyReport.from_span` rebuild the reports from the trace alone.
  Phase times and launch counts agree exactly between the two routes because
  they share one underlying measurement.

Per-phase construction timing (Fig. 7) lives in :mod:`.profiling`, launch
and throughput accounting in :mod:`.apply_report` /
:mod:`.construction_report`, accuracy in :mod:`.error`, memory in
:mod:`.memory`, solver convergence in :mod:`.solver_report` and GP sweep
statistics in :mod:`.gp_report`.
"""

from .apply_report import ApplyReport, apply_report
from .construction_report import ConstructionReport, construction_report
from .error import construction_error, dense_relative_error
from .gp_report import GPFitReport, gp_sweep_table
from .memory import MemoryReport, memory_report
from .profiling import PhaseBreakdown, phase_breakdown
from .reporting import format_table, format_series
from .solver_report import convergence_table, residual_series

__all__ = [
    "ApplyReport",
    "apply_report",
    "ConstructionReport",
    "construction_report",
    "GPFitReport",
    "gp_sweep_table",
    "construction_error",
    "dense_relative_error",
    "MemoryReport",
    "memory_report",
    "PhaseBreakdown",
    "phase_breakdown",
    "format_table",
    "format_series",
    "convergence_table",
    "residual_series",
]

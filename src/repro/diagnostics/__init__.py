"""Accuracy, memory, profiling and apply-throughput diagnostics used by the
benchmark harness."""

from .apply_report import ApplyReport, apply_report
from .construction_report import ConstructionReport, construction_report
from .error import construction_error, dense_relative_error
from .gp_report import GPFitReport, gp_sweep_table
from .memory import MemoryReport, memory_report
from .profiling import PhaseBreakdown, phase_breakdown
from .reporting import format_table, format_series
from .solver_report import convergence_table, residual_series

__all__ = [
    "ApplyReport",
    "apply_report",
    "ConstructionReport",
    "construction_report",
    "GPFitReport",
    "gp_sweep_table",
    "construction_error",
    "dense_relative_error",
    "MemoryReport",
    "memory_report",
    "PhaseBreakdown",
    "phase_breakdown",
    "format_table",
    "format_series",
    "convergence_table",
    "residual_series",
]

"""Launch-count and throughput reporting for the compiled construction sweep.

:func:`~repro.diagnostics.apply_report.apply_report` instruments the *apply*
side of the batched engine; this module does the same for the *construction*
sweep (:mod:`repro.batched.construction_plan`): how many batched launches one
full construction costs, how the schedule splits between the per-shape-group
entry-generation launches and the O(levels) sweep launches, and what point
throughput the backend achieves.  Everything is derived from the statistics a
:class:`~repro.core.builder.ConstructionResult` already carries, so reports
can be built for both execution paths (``packed`` and the per-node ``loop``
reference) and compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.builder import ConstructionResult

#: Counter operations that belong to the entry generator (one launch per
#: shape group of requested blocks) rather than to the sweep schedule.
GENERATION_OPS = ("batched_gen",)


@dataclass
class ConstructionReport:
    """One construction × backend × path launch/throughput measurement."""

    n: int
    backend: str
    #: ``"packed"`` (compiled level-wise sweep) or ``"loop"`` (per-node).
    path: str
    levels: int
    #: Total adaptive sampling rounds summed over the levels of the sweep.
    sampling_rounds: int
    elapsed_seconds: float
    #: Launches grouped by operation, e.g. ``{"construct_upsweep": 5, ...}``.
    launches_by_operation: Dict[str, int]
    #: Entry-generation launches (one per shape group of requested blocks).
    generation_launches: int
    #: All remaining launches — the sweep schedule proper.  O(levels) per
    #: convergence round on the packed path, O(nodes) on the loop path.
    sweep_launches: int
    total_samples: int
    phase_seconds: Dict[str, float]

    @property
    def points_per_second(self) -> float:
        return self.n / max(self.elapsed_seconds, 1e-12)

    @property
    def sweep_launches_per_round(self) -> float:
        return self.sweep_launches / max(self.sampling_rounds, 1)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "backend": self.backend,
            "path": self.path,
            "levels": self.levels,
            "sampling_rounds": self.sampling_rounds,
            "elapsed_seconds": self.elapsed_seconds,
            "points_per_second": self.points_per_second,
            "launches_by_operation": dict(self.launches_by_operation),
            "generation_launches": self.generation_launches,
            "sweep_launches": self.sweep_launches,
            "sweep_launches_per_round": self.sweep_launches_per_round,
            "total_samples": self.total_samples,
            "phase_seconds": dict(self.phase_seconds),
        }


def construction_report(result: "ConstructionResult") -> ConstructionReport:
    """Summarise one :class:`~repro.core.builder.ConstructionResult`.

    Splits the recorded launches into entry generation (inherently one launch
    per distinct block shape) and the sweep schedule (the part the compiled
    path collapses to O(levels) per convergence round), and attaches the
    wall-clock/phase timings for throughput tables.
    """
    launches = dict(result.kernel_launches)
    generation = sum(launches.get(op, 0) for op in GENERATION_OPS)
    backend = result.config.backend
    return ConstructionReport(
        n=result.matrix.num_rows,
        backend=getattr(backend, "name", backend),
        path=result.construction_path,
        levels=result.matrix.tree.num_levels,
        sampling_rounds=sum(level.sampling_rounds for level in result.levels),
        elapsed_seconds=result.elapsed_seconds,
        launches_by_operation=launches,
        generation_launches=generation,
        sweep_launches=result.total_kernel_launches - generation,
        total_samples=result.total_samples,
        phase_seconds=dict(result.phase_seconds),
    )

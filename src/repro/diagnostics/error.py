"""Approximation-error measurement.

The paper measures the relative error ``|K_comp - K| / |K|`` with a few power
iterations on the difference between the constructed hierarchical matrix and
the black-box sampler.  :func:`construction_error` does exactly that;
:func:`dense_relative_error` computes the exact spectral/Frobenius error on
small problems where the dense matrix is available (used by the test-suite).
"""

from __future__ import annotations

import numpy as np

from ..hmatrix.h2matrix import H2Matrix
from ..linalg.norm_estimation import estimate_relative_error
from ..sketching.operators import SketchingOperator
from ..utils.rng import SeedLike


def construction_error(
    matrix: H2Matrix,
    operator: SketchingOperator,
    num_iterations: int = 10,
    seed: SeedLike = 0,
) -> float:
    """Relative spectral-norm error of ``matrix`` against the black-box ``operator``.

    Both operands act in the permuted ordering; only matrix-vector products are
    used, so this works at any problem size.
    """

    def reference(x: np.ndarray) -> np.ndarray:
        return operator.matvec(x)

    def approx(x: np.ndarray) -> np.ndarray:
        return matrix.matvec(x, permuted=True)

    return estimate_relative_error(
        reference, approx, matrix.num_rows, num_iterations=num_iterations, seed=seed
    )


def dense_relative_error(
    approx_dense: np.ndarray, reference_dense: np.ndarray, norm: str = "fro"
) -> float:
    """Exact relative error between two dense matrices (tests / small problems)."""
    approx_dense = np.asarray(approx_dense, dtype=np.float64)
    reference_dense = np.asarray(reference_dense, dtype=np.float64)
    if approx_dense.shape != reference_dense.shape:
        raise ValueError("matrices must have identical shapes")
    if norm == "fro":
        denominator = np.linalg.norm(reference_dense)
        numerator = np.linalg.norm(approx_dense - reference_dense)
    elif norm == "2":
        denominator = np.linalg.norm(reference_dense, 2)
        numerator = np.linalg.norm(approx_dense - reference_dense, 2)
    else:
        raise ValueError("norm must be 'fro' or '2'")
    if denominator == 0.0:
        return 0.0 if numerator == 0.0 else np.inf
    return float(numerator / denominator)

"""Launch-count and throughput reporting for the batched H2 apply engine.

The construction benchmarks already count batched dispatches (Section IV-B's
O(log N) launch argument); this module extends the instrumentation to the
*apply* side: how many batched launches one matvec/matmat costs, how that
compares to the per-node block count, and what effective throughput the
compiled plan achieves on a given backend.

Two routes produce the same :class:`ApplyReport`: :func:`apply_report` runs a
dedicated timed measurement, and :meth:`ApplyReport.from_span` rebuilds the
report from one traced ``apply`` span (recorded whenever a compiled apply
executes under an enabled :class:`repro.observe.SpanTracer`) — launch counts
agree exactly between the two, timings up to run-to-run noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import numpy as np

from ..batched.backend import get_backend
from ..batched.counters import KernelLaunchCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hmatrix.h2matrix import H2Matrix


@dataclass
class ApplyReport:
    """One matrix × backend × RHS-width measurement of the compiled apply."""

    n: int
    k: int
    backend: str
    levels: int
    #: Batched dispatches issued per apply (== plan stages on both backends).
    launches_per_apply: int
    #: Per-node block GEMMs the stages fuse (what the per-node loop would run).
    block_products: int
    #: Launches grouped by phase, e.g. ``{"apply_coupling": 7, ...}``.
    launches_by_phase: Dict[str, int]
    seconds_per_apply: float
    #: Executed multiply-add flops per apply (zero-padding included).
    flops_per_apply: int
    #: Bytes of pre-stacked static operands read per apply.
    operand_bytes: int

    @property
    def gflops(self) -> float:
        return self.flops_per_apply / max(self.seconds_per_apply, 1e-12) / 1e9

    @property
    def bandwidth_gb_s(self) -> float:
        return self.operand_bytes / max(self.seconds_per_apply, 1e-12) / 2**30

    @classmethod
    def from_span(cls, span) -> "ApplyReport":
        """Rebuild the report from one traced ``apply`` span.

        The compiled :meth:`H2ApplyPlan.execute <repro.batched.apply_plan.H2ApplyPlan.execute>`
        stamps its span with the plan geometry (``n``, ``k``, ``backend``,
        ``levels``, ``block_products``, ``operand_bytes``) and attributes the
        batched-primitive calls and flops it issued, so a single traced apply
        carries everything a report needs — no dedicated re-measurement.
        """
        attrs = span.attributes
        return cls(
            n=int(attrs.get("n", 0)),
            k=int(attrs.get("k", 1)),
            backend=str(attrs.get("backend", "?")),
            levels=int(attrs.get("levels", 0)),
            launches_per_apply=span.total_calls,
            block_products=int(attrs.get("block_products", 0)),
            launches_by_phase=dict(span.calls),
            seconds_per_apply=span.duration,
            flops_per_apply=int(span.flops),
            operand_bytes=int(attrs.get("operand_bytes", 0)),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "k": self.k,
            "backend": self.backend,
            "levels": self.levels,
            "launches_per_apply": self.launches_per_apply,
            "block_products": self.block_products,
            "launches_by_phase": dict(self.launches_by_phase),
            "seconds_per_apply": self.seconds_per_apply,
            "gflops": self.gflops,
            "bandwidth_gb_s": self.bandwidth_gb_s,
        }


def apply_report(
    matrix: "H2Matrix",
    backend: str = "vectorized",
    k: int = 1,
    repeats: int = 3,
    seed: int = 0,
) -> ApplyReport:
    """Measure one backend's batched apply of ``matrix`` with ``k`` RHS columns.

    Compiles (or reuses) the matrix's apply plan, runs ``repeats`` applies on a
    fresh :class:`KernelLaunchCounter` and reports the per-apply launch counts
    (exactly the plan's stage count — O(levels), independent of the number of
    tree nodes) together with wall-clock throughput.
    """
    plan = matrix.apply_plan()
    counter = KernelLaunchCounter()
    be = get_backend(backend, counter=counter)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((matrix.num_rows, k))
    matrix.matvec(x, backend=be)  # warm-up (also compiles on first use)
    counter.reset()
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        matrix.matvec(x, backend=be)
        best = min(best, time.perf_counter() - start)
    launches = counter.total_calls() // max(1, repeats)
    by_phase = {
        op: count // max(1, repeats) for op, count in counter.calls_by_operation().items()
    }
    return ApplyReport(
        n=matrix.num_rows,
        k=k,
        backend=be.name,
        levels=matrix.tree.num_levels,
        launches_per_apply=launches,
        block_products=plan.num_block_products,
        launches_by_phase=by_phase,
        seconds_per_apply=best,
        flops_per_apply=plan.flops(k),
        operand_bytes=int(sum(stage.a.nbytes for stage in plan.stages)),
    )

"""Per-sweep-point Gaussian-process fit diagnostics.

Every hyperparameter point a :class:`~repro.gp.regression.GaussianProcess`
evaluates produces one :class:`GPFitReport` tying the statistical quantities
(log-likelihood split into its determinant and quadratic terms) to the
systems-level costs that produced them: construction samples and launches,
solver iterations, apply-side launches and per-phase wall time.
:func:`gp_sweep_table` renders a sweep's reports in the same tabular format as
the paper-figure benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .reporting import format_table


@dataclass
class GPFitReport:
    """Statistics of one Gaussian-process likelihood evaluation."""

    n: int
    kernel: str
    params: Dict[str, float]
    noise: float
    log_marginal_likelihood: float
    log_determinant: float
    quadratic_term: float
    cg_iterations: int
    cg_converged: bool
    construction_samples: int
    rank_range: Tuple[int, int]
    construction_launches: int
    apply_launches: int
    plan_reused: bool
    construction_seconds: float
    factorization_seconds: float
    solve_seconds: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.construction_seconds
            + self.factorization_seconds
            + self.solve_seconds
        )

    def summary(self) -> Dict[str, object]:
        lo, hi = self.rank_range
        return {
            "n": self.n,
            "kernel": self.kernel,
            **{k: float(v) for k, v in self.params.items()},
            "noise": self.noise,
            "log_likelihood": self.log_marginal_likelihood,
            "logdet": self.log_determinant,
            "cg_iters": self.cg_iterations,
            "samples": self.construction_samples,
            "rank_range": f"{lo}-{hi}",
            "launches": self.construction_launches + self.apply_launches,
            "plan_reused": self.plan_reused,
            "time_s": self.total_seconds,
        }


def gp_sweep_table(
    reports: Sequence[GPFitReport], title: str = "GP hyperparameter sweep"
) -> str:
    """Human-readable table of a sweep's per-point fit reports."""
    param_names: List[str] = []
    for report in reports:
        for name in report.params:
            if name not in param_names:
                param_names.append(name)
    headers = (
        param_names
        + ["noise", "log-lik", "logdet", "CG its", "samples", "launches", "reused", "s"]
    )
    rows = []
    for r in reports:
        rows.append(
            [r.params.get(name, "") for name in param_names]
            + [
                r.noise,
                r.log_marginal_likelihood,
                r.log_determinant,
                r.cg_iterations,
                r.construction_samples,
                r.construction_launches + r.apply_launches,
                "yes" if r.plan_reused else "no",
                r.total_seconds,
            ]
        )
    return format_table(headers, rows, title=title)

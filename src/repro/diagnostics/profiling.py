"""Construction-phase profiling (Fig. 7).

The paper breaks the construction runtime into sampling, entry generation,
BSR multiplication, the convergence test, the interpolative decompositions,
the shrink/upsweep bookkeeping and miscellaneous work, and reports the share
of each phase on CPU and GPU for growing problem sizes.
:class:`PhaseBreakdown` converts the phase timers recorded by the constructor
into that percentage breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

#: Canonical phase ordering used in tables and plots.
PHASE_ORDER: Sequence[str] = (
    "sampling",
    "entry_generation",
    "bsr_gemm",
    "convergence",
    "id",
    "shrink_upsweep",
    "misc",
)


@dataclass
class PhaseBreakdown:
    """Absolute and relative per-phase times of one construction."""

    seconds: Dict[str, float]

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds.values()))

    def percentages(self) -> Dict[str, float]:
        total = self.total_seconds
        if total <= 0:
            return {phase: 0.0 for phase in self.seconds}
        return {phase: 100.0 * value / total for phase, value in self.seconds.items()}

    def ordered(self) -> Dict[str, float]:
        """Phase times in the canonical order (missing phases reported as 0)."""
        out = {phase: self.seconds.get(phase, 0.0) for phase in PHASE_ORDER}
        for phase, value in self.seconds.items():
            if phase not in out:
                out[phase] = value
        return out

    def ordered_percentages(self) -> Dict[str, float]:
        total = self.total_seconds
        ordered = self.ordered()
        if total <= 0:
            return {phase: 0.0 for phase in ordered}
        return {phase: 100.0 * value / total for phase, value in ordered.items()}


def phase_breakdown(result) -> PhaseBreakdown:
    """Build a :class:`PhaseBreakdown` from a ``ConstructionResult``."""
    return PhaseBreakdown(seconds=dict(result.phase_seconds))

"""Construction-phase profiling (Fig. 7).

The paper breaks the construction runtime into sampling, entry generation,
BSR multiplication, the convergence test, the interpolative decompositions,
the shrink/upsweep bookkeeping and miscellaneous work, and reports the share
of each phase on CPU and GPU for growing problem sizes.

:class:`PhaseBreakdown` is a *view over trace data*: under an enabled
:class:`repro.observe.SpanTracer` the constructor's :class:`~repro.utils.timing.PhaseTimer`
records one ``construct.phase`` span per phase block, and
:meth:`PhaseBreakdown.from_span` aggregates them — the same measurement also
feeds the legacy ``ConstructionResult.phase_seconds`` dict, so both routes
produce identical numbers.  :func:`phase_breakdown` accepts a
``ConstructionResult`` (traced or not) or a trace span directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

#: Canonical phase ordering used in tables and plots.
PHASE_ORDER: Sequence[str] = (
    "sampling",
    "entry_generation",
    "bsr_gemm",
    "convergence",
    "id",
    "shrink_upsweep",
    "misc",
)


@dataclass
class PhaseBreakdown:
    """Absolute and relative per-phase times of one construction."""

    seconds: Dict[str, float]
    #: Peak allocated bytes per phase — populated only when the construction
    #: traced under ``ExecutionPolicy(memory_profile=True)`` (empty otherwise).
    peak_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds.values()))

    def percentages(self) -> Dict[str, float]:
        total = self.total_seconds
        if total <= 0:
            return {phase: 0.0 for phase in self.seconds}
        return {phase: 100.0 * value / total for phase, value in self.seconds.items()}

    def ordered(self) -> Dict[str, float]:
        """Phase times in the canonical order (missing phases reported as 0)."""
        out = {phase: self.seconds.get(phase, 0.0) for phase in PHASE_ORDER}
        for phase, value in self.seconds.items():
            if phase not in out:
                out[phase] = value
        return out

    def ordered_percentages(self) -> Dict[str, float]:
        total = self.total_seconds
        ordered = self.ordered()
        if total <= 0:
            return {phase: 0.0 for phase in ordered}
        return {phase: 100.0 * value / total for phase, value in ordered.items()}

    def ordered_peak_bytes(self) -> Dict[str, int]:
        """Per-phase peak bytes in canonical order (missing phases as 0)."""
        out = {phase: self.peak_bytes.get(phase, 0) for phase in PHASE_ORDER}
        for phase, value in self.peak_bytes.items():
            if phase not in out:
                out[phase] = value
        return out

    @classmethod
    def from_span(cls, span) -> "PhaseBreakdown":
        """Aggregate the ``construct.phase`` spans below ``span`` (or a tracer)."""
        from ..observe.views import phase_peak_bytes, phase_seconds

        return cls(seconds=phase_seconds(span), peak_bytes=phase_peak_bytes(span))


def phase_breakdown(result) -> PhaseBreakdown:
    """Build a :class:`PhaseBreakdown` from a ``ConstructionResult`` or a span.

    Accepts anything carrying ``phase_seconds`` (the legacy result path), a
    :class:`repro.observe.Span` / :class:`repro.observe.SpanTracer` (the trace
    path), or a traced ``ConstructionResult`` — all yield the same numbers.
    """
    seconds = getattr(result, "phase_seconds", None)
    if seconds is not None:
        trace = getattr(result, "trace", None)
        peaks = {}
        if trace is not None:
            from ..observe.views import phase_peak_bytes

            peaks = phase_peak_bytes(trace)
        return PhaseBreakdown(seconds=dict(seconds), peak_bytes=peaks)
    return PhaseBreakdown.from_span(result)

"""Memory accounting of hierarchical representations (Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class MemoryReport:
    """Memory footprint of a hierarchical matrix in convenient units."""

    components_bytes: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        return int(self.components_bytes.get("total", sum(self.components_bytes.values())))

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0**2)

    @property
    def total_gb(self) -> float:
        return self.total_bytes / (1024.0**3)

    def component_mb(self, name: str) -> float:
        return self.components_bytes.get(name, 0) / (1024.0**2)

    def as_dict(self) -> Dict[str, float]:
        out = {f"{k}_mb": v / (1024.0**2) for k, v in self.components_bytes.items()}
        out["total_mb"] = self.total_mb
        return out


def memory_report(matrix) -> MemoryReport:
    """Build a :class:`MemoryReport` from any object exposing ``memory_bytes()``.

    Works for every :class:`~repro.api.protocol.HierarchicalOperator`; the
    protocol guarantees the unified ``low_rank``/``dense``/``total`` keys, so
    cross-format comparisons (Fig. 6) can read ``component_mb("low_rank")``
    regardless of which format produced the operator.
    """
    components = matrix.memory_bytes()
    if not isinstance(components, dict):
        components = {"total": int(components)}
    return MemoryReport(components_bytes=dict(components))

"""Cluster tree, admissibility conditions and the dual-tree block partition."""

from .admissibility import (
    AdmissibilityCondition,
    GeneralAdmissibility,
    WeakAdmissibility,
)
from .block_partition import BlockPartition, build_block_partition
from .cluster_tree import ClusterTree

__all__ = [
    "ClusterTree",
    "AdmissibilityCondition",
    "GeneralAdmissibility",
    "WeakAdmissibility",
    "BlockPartition",
    "build_block_partition",
]

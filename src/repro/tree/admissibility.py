"""Admissibility conditions for the dual tree traversal.

The paper uses the *general admissibility condition* (Eq. 1)

    adm(s, t) = 1   iff   (D(s) + D(t)) / 2 <= eta * Dist(s, t)

where ``D`` is the bounding-box diameter of a cluster and ``Dist`` the
distance between the two bounding boxes.  ``eta >= 1`` corresponds to weak
admissibility and ``eta <= 0.5`` to strong admissibility; the experiments use
``eta`` in {0.5, 0.7}.

:class:`WeakAdmissibility` implements the HODLR/HSS partition (every
off-diagonal sibling block is admissible) so the same bottom-up constructor
can produce HSS matrices for the Fig. 6(b) comparison.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from .cluster_tree import ClusterTree


class AdmissibilityCondition(ABC):
    """Decides whether the block defined by a cluster pair is low-rank compressible."""

    @abstractmethod
    def is_admissible(self, tree: ClusterTree, s: int, t: int) -> bool:
        """Return ``True`` when block ``(s, t)`` may be stored in low-rank form."""

    def __call__(self, tree: ClusterTree, s: int, t: int) -> bool:
        return self.is_admissible(tree, s, t)


@dataclass(frozen=True)
class GeneralAdmissibility(AdmissibilityCondition):
    """The distance-based general admissibility condition of Eq. (1).

    Parameters
    ----------
    eta:
        Separation parameter.  Smaller values demand more separation before a
        block is declared admissible, producing a finer partition with a
        larger sparsity constant ``Csp`` (Fig. 4).
    """

    eta: float = 0.7

    def __post_init__(self) -> None:
        if not self.eta > 0:
            raise ValueError("eta must be positive")

    def is_admissible(self, tree: ClusterTree, s: int, t: int) -> bool:
        if s == t:
            return False
        dist = tree.distance(s, t)
        if dist <= 0.0:
            return False
        avg_diam = 0.5 * (tree.diameter(s) + tree.diameter(t))
        return avg_diam <= self.eta * dist


@dataclass(frozen=True)
class WeakAdmissibility(AdmissibilityCondition):
    """HODLR-style weak admissibility: any off-diagonal sibling block is admissible.

    Running the bottom-up constructor with this condition yields an HSS
    representation (nested bases on the HODLR partition), which is the
    Martinsson (2011) algorithm the paper generalises.
    """

    def is_admissible(self, tree: ClusterTree, s: int, t: int) -> bool:
        return s != t

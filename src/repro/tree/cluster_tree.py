"""Binary KD cluster tree over a point set.

The paper clusters the row/column indices of the matrix hierarchically into a
cluster tree ``I`` (Fig. 1) using a KD-tree with a leaf size of 64-256, and
stores tree nodes *contiguously level by level* so that every construction
step can be expressed as a batched operation over all nodes of a level
(Section IV-A).  :class:`ClusterTree` follows the same layout:

* the tree is a **complete binary tree**: every node above the leaf level has
  exactly two children and all leaves live at the same depth, so nodes can be
  addressed with the implicit heap numbering ``children(i) = (2i+1, 2i+2)``;
* building the tree computes a permutation of the input points such that the
  index set of every node is a **contiguous range** ``[start, end)`` in the
  permuted ordering; all index sets handed to kernels are therefore cheap
  slices;
* splits are performed at the median of the longest bounding-box axis, which
  keeps sibling sizes within one point of each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from ..geometry.bounding_box import BoundingBox
from ..utils.validation import require


@dataclass
class ClusterTree:
    """A complete binary cluster tree stored level by level.

    Attributes
    ----------
    points:
        The input points re-ordered by the tree permutation, shape ``(n, dim)``.
    perm:
        ``points[i] == original_points[perm[i]]``.
    iperm:
        Inverse permutation: ``original_points[j] == points[iperm_position]`` with
        ``iperm[perm[i]] = i``.
    starts, ends:
        Per-node contiguous index range ``[starts[i], ends[i])`` into the
        permuted ordering.
    box_low, box_high:
        Per-node bounding boxes, shape ``(num_nodes, dim)``.
    depth:
        Depth of the leaf level; the root is at depth ``0`` and there are
        ``depth + 1`` levels in total.
    leaf_size:
        The target maximum leaf cluster size used to pick ``depth``.
    """

    points: np.ndarray
    perm: np.ndarray
    iperm: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    box_low: np.ndarray
    box_high: np.ndarray
    depth: int
    leaf_size: int
    _index_cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, points: np.ndarray, leaf_size: int = 64) -> "ClusterTree":
        """Build a cluster tree over ``points`` with leaves of about ``leaf_size``.

        Parameters
        ----------
        points:
            ``(n, dim)`` array of point coordinates.
        leaf_size:
            Maximum number of points per leaf cluster.  The tree depth is the
            smallest ``L`` with ``n / 2**L <= leaf_size`` (at least 1 level of
            subdivision whenever ``n > leaf_size``).
        """
        pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        require(pts.ndim == 2 and pts.shape[0] > 0, "points must be a (n, dim) array")
        require(leaf_size >= 1, "leaf_size must be >= 1")
        n = pts.shape[0]
        dim = pts.shape[1]

        depth = 0
        while (n + (1 << depth) - 1) // (1 << depth) > leaf_size:
            depth += 1

        num_nodes = (1 << (depth + 1)) - 1
        starts = np.zeros(num_nodes, dtype=np.int64)
        ends = np.zeros(num_nodes, dtype=np.int64)
        box_low = np.zeros((num_nodes, dim), dtype=np.float64)
        box_high = np.zeros((num_nodes, dim), dtype=np.float64)

        perm = np.arange(n, dtype=np.int64)
        work = pts.copy()

        # Recursive median split; because the tree is complete we simply walk
        # the heap ordering and split each node's range in half (by count) at
        # the median of the longest bounding-box axis.
        def split(node: int, level: int, start: int, end: int) -> None:
            starts[node] = start
            ends[node] = end
            seg = work[start:end]
            count = end - start
            if count:
                box_low[node] = seg.min(axis=0)
                box_high[node] = seg.max(axis=0)
            if level == depth:
                return
            half = count // 2
            if count > 1:
                extents = box_high[node] - box_low[node]
                axis = int(np.argmax(extents))
                # argpartition orders the segment so that the `half` smallest
                # coordinates along `axis` come first -> median split by count.
                order = np.argpartition(
                    seg[:, axis], max(half - 1, 0), kind="introselect"
                )
                work[start:end] = seg[order]
                perm[start:end] = perm[start:end][order]
            left, right = 2 * node + 1, 2 * node + 2
            split(left, level + 1, start, start + half)
            split(right, level + 1, start + half, end)

        split(0, 0, 0, n)

        iperm = np.empty(n, dtype=np.int64)
        iperm[perm] = np.arange(n, dtype=np.int64)
        return cls(
            points=work,
            perm=perm,
            iperm=iperm,
            starts=starts,
            ends=ends,
            box_low=box_low,
            box_high=box_high,
            depth=depth,
            leaf_size=leaf_size,
        )

    # -------------------------------------------------------------- structure
    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def num_levels(self) -> int:
        """Number of levels including the root level."""
        return self.depth + 1

    @property
    def num_nodes(self) -> int:
        return int(self.starts.shape[0])

    def level_of(self, node: int) -> int:
        """Depth of ``node`` (root has depth 0)."""
        return int(np.floor(np.log2(node + 1)))

    def nodes_at_level(self, level: int) -> range:
        """Node ids of all clusters at ``level`` (ordered left to right)."""
        require(0 <= level <= self.depth, f"level {level} out of range")
        first = (1 << level) - 1
        return range(first, (1 << (level + 1)) - 1)

    def num_nodes_at_level(self, level: int) -> int:
        return 1 << level

    def is_leaf(self, node: int) -> bool:
        return 2 * node + 1 >= self.num_nodes

    def children(self, node: int) -> tuple[int, int]:
        require(not self.is_leaf(node), f"node {node} is a leaf")
        return 2 * node + 1, 2 * node + 2

    def parent(self, node: int) -> int:
        require(node != 0, "root has no parent")
        return (node - 1) // 2

    def leaves(self) -> range:
        return self.nodes_at_level(self.depth)

    # ------------------------------------------------------------------ data
    def cluster_size(self, node: int) -> int:
        return int(self.ends[node] - self.starts[node])

    def index_set(self, node: int) -> np.ndarray:
        """Indices (in permuted ordering) owned by ``node``."""
        key = int(node)
        cached = self._index_cache.get(key)
        if cached is None:
            cached = np.arange(self.starts[node], self.ends[node], dtype=np.int64)
            self._index_cache[key] = cached
        return cached

    def bounding_box(self, node: int) -> BoundingBox:
        return BoundingBox(self.box_low[node], self.box_high[node])

    def diameter(self, node: int) -> float:
        return float(np.linalg.norm(self.box_high[node] - self.box_low[node]))

    def distance(self, s: int, t: int) -> float:
        gap = np.maximum(
            0.0,
            np.maximum(
                self.box_low[s] - self.box_high[t], self.box_low[t] - self.box_high[s]
            ),
        )
        return float(np.linalg.norm(gap))

    def cluster_points(self, node: int) -> np.ndarray:
        """Coordinates of the points owned by ``node`` (a contiguous view)."""
        return self.points[self.starts[node] : self.ends[node]]

    def level_sizes(self, level: int) -> np.ndarray:
        """Cluster sizes of all nodes at ``level`` as an array."""
        nodes = np.fromiter(self.nodes_at_level(level), dtype=np.int64)
        return (self.ends[nodes] - self.starts[nodes]).astype(np.int64)

    def iter_levels_bottom_up(self) -> Iterator[int]:
        """Iterate levels from the leaf level up to (and excluding) the root."""
        for level in range(self.depth, 0, -1):
            yield level

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural invariants (used by the test-suite)."""
        n = self.num_points
        assert self.starts[0] == 0 and self.ends[0] == n
        assert np.array_equal(np.sort(self.perm), np.arange(n))
        for node in range(self.num_nodes):
            assert self.starts[node] <= self.ends[node]
            if not self.is_leaf(node):
                left, right = self.children(node)
                assert self.starts[left] == self.starts[node]
                assert self.ends[left] == self.starts[right]
                assert self.ends[right] == self.ends[node]
            seg = self.points[self.starts[node] : self.ends[node]]
            if seg.shape[0]:
                assert np.all(seg >= self.box_low[node] - 1e-12)
                assert np.all(seg <= self.box_high[node] + 1e-12)

    def describe(self) -> str:
        """One-line human readable summary."""
        leaf_sizes = self.level_sizes(self.depth)
        return (
            f"ClusterTree(n={self.num_points}, dim={self.dim}, depth={self.depth}, "
            f"leaves={len(leaf_sizes)}, leaf size {leaf_sizes.min()}-{leaf_sizes.max()})"
        )

    def leaf_cluster_sizes(self) -> List[int]:
        return [self.cluster_size(node) for node in self.leaves()]

"""Dual tree traversal producing the matrix (block) tree of Fig. 2.

Starting from the root pair ``(root, root)`` the traversal tests every cluster
pair against the admissibility condition.  Admissible pairs become admissible
leaves of the matrix tree (low-rank blocks, green in Fig. 1); inadmissible
pairs of leaf clusters become dense blocks (red); all other inadmissible pairs
are refined into their four children pairs.

The result is summarised per node ``tau``:

* ``near_field(tau)`` — the set ``N_tau`` of clusters forming inadmissible
  (dense) leaf blocks with ``tau`` (only non-empty at the leaf level);
* ``far_field(tau)`` — the set ``F_tau`` of clusters forming admissible leaf
  blocks with ``tau`` whose parents were inadmissible, i.e. the coupling
  blocks ``B_{tau,b}`` of the H2 matrix;

together with the per-level admissible pair lists and the sparsity constant
``Csp`` (the maximum number of blocks in any block row of a level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .admissibility import AdmissibilityCondition, GeneralAdmissibility
from .cluster_tree import ClusterTree


@dataclass
class BlockPartition:
    """Block partitioning of a matrix induced by a cluster tree and admissibility."""

    tree: ClusterTree
    admissibility: AdmissibilityCondition
    #: ``far_field[node]`` lists the clusters b with (node, b) an admissible leaf.
    far_field: List[List[int]] = field(default_factory=list)
    #: ``near_field[node]`` lists the clusters b with (node, b) a dense leaf block.
    near_field: List[List[int]] = field(default_factory=list)

    # ------------------------------------------------------------ accessors
    def far(self, node: int) -> List[int]:
        """The set ``F_node`` of admissible (coupling) partners of ``node``."""
        return self.far_field[node]

    def near(self, node: int) -> List[int]:
        """The set ``N_node`` of inadmissible (dense) partners of ``node``."""
        return self.near_field[node]

    def admissible_pairs_at_level(self, level: int) -> List[Tuple[int, int]]:
        """All admissible leaf pairs ``(s, t)`` with both clusters at ``level``."""
        pairs: List[Tuple[int, int]] = []
        for s in self.tree.nodes_at_level(level):
            for t in self.far_field[s]:
                pairs.append((s, t))
        return pairs

    def inadmissible_leaf_pairs(self) -> List[Tuple[int, int]]:
        """All dense leaf pairs ``(s, t)`` (both clusters at the leaf level)."""
        pairs: List[Tuple[int, int]] = []
        for s in self.tree.leaves():
            for t in self.near_field[s]:
                pairs.append((s, t))
        return pairs

    # ------------------------------------------------------------ statistics
    def sparsity_constant_at_level(self, level: int) -> int:
        """Maximum number of blocks in a block row of the level's block-sparse matrix."""
        best = 0
        leaf = level == self.tree.depth
        for s in self.tree.nodes_at_level(level):
            count = len(self.far_field[s])
            if leaf:
                count += len(self.near_field[s])
            best = max(best, count)
        return best

    def sparsity_constant(self) -> int:
        """The sparsity constant ``Csp`` over all levels."""
        return max(
            (self.sparsity_constant_at_level(level) for level in range(self.tree.num_levels)),
            default=0,
        )

    def num_admissible_blocks(self) -> int:
        return sum(len(f) for f in self.far_field)

    def num_inadmissible_blocks(self) -> int:
        return sum(len(n) for n in self.near_field)

    def num_admissible_blocks_at_level(self, level: int) -> int:
        return sum(len(self.far_field[s]) for s in self.tree.nodes_at_level(level))

    def statistics(self) -> Dict[str, object]:
        """Summary statistics used by the Fig. 4 partitioning benchmark."""
        per_level = {
            level: {
                "admissible_blocks": self.num_admissible_blocks_at_level(level),
                "sparsity_constant": self.sparsity_constant_at_level(level),
            }
            for level in range(self.tree.num_levels)
        }
        return {
            "num_points": self.tree.num_points,
            "depth": self.tree.depth,
            "num_admissible_blocks": self.num_admissible_blocks(),
            "num_inadmissible_blocks": self.num_inadmissible_blocks(),
            "sparsity_constant": self.sparsity_constant(),
            "per_level": per_level,
        }

    # ------------------------------------------------------------ validation
    def validate_disjoint_cover(self) -> None:
        """Check the leaves of the matrix tree tile the full matrix exactly once.

        Every index pair ``(i, j)`` must be covered by exactly one admissible
        or inadmissible leaf block.  The check is O(N^2) and intended for the
        test-suite on small problems only.
        """
        n = self.tree.num_points
        cover = np.zeros((n, n), dtype=np.int32)
        for level in range(self.tree.num_levels):
            for s in self.tree.nodes_at_level(level):
                rows = slice(self.tree.starts[s], self.tree.ends[s])
                for t in self.far_field[s]:
                    cols = slice(self.tree.starts[t], self.tree.ends[t])
                    cover[rows, cols] += 1
        for s in self.tree.leaves():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            for t in self.near_field[s]:
                cols = slice(self.tree.starts[t], self.tree.ends[t])
                cover[rows, cols] += 1
        if not np.all(cover == 1):
            missing = int(np.sum(cover == 0))
            double = int(np.sum(cover > 1))
            raise AssertionError(
                f"block partition does not tile the matrix: {missing} entries uncovered, "
                f"{double} entries covered more than once"
            )


def build_block_partition(
    tree: ClusterTree,
    admissibility: AdmissibilityCondition | None = None,
) -> BlockPartition:
    """Run the dual tree traversal and return the resulting :class:`BlockPartition`.

    Parameters
    ----------
    tree:
        The cluster tree over the matrix indices.
    admissibility:
        The admissibility condition; defaults to
        :class:`~repro.tree.admissibility.GeneralAdmissibility` with
        ``eta = 0.7`` as used in the paper's experiments.
    """
    adm = admissibility if admissibility is not None else GeneralAdmissibility(0.7)
    far: List[List[int]] = [[] for _ in range(tree.num_nodes)]
    near: List[List[int]] = [[] for _ in range(tree.num_nodes)]

    # Iterative dual traversal (explicit stack avoids deep recursion for large trees).
    stack: List[Tuple[int, int]] = [(0, 0)]
    while stack:
        s, t = stack.pop()
        if adm.is_admissible(tree, s, t):
            far[s].append(t)
            continue
        if tree.is_leaf(s) and tree.is_leaf(t):
            near[s].append(t)
            continue
        s1, s2 = tree.children(s)
        t1, t2 = tree.children(t)
        stack.extend([(s1, t1), (s1, t2), (s2, t1), (s2, t2)])

    for lst in far:
        lst.sort()
    for lst in near:
        lst.sort()
    return BlockPartition(tree=tree, admissibility=adm, far_field=far, near_field=near)

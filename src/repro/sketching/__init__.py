"""Black-box sketching operators ``Kblk`` and entry-evaluation functions.

Algorithm 1 requires two inputs: (a) a black-box function ``Y = Kblk(Omega)``
applying the matrix to a block of random vectors in O(N d) time, and (b) a
function evaluating arbitrary sub-blocks ``K(s, t)`` (the ``batchedGen``
input).  This package provides both interfaces plus implementations for dense
matrices, kernel matrices, existing H2 matrices, low-rank matrices and sums
thereof (the low-rank update application combines an H2 operator with a
low-rank operator).
"""

from .entry_extractor import (
    DenseEntryExtractor,
    EntryExtractor,
    H2EntryExtractor,
    KernelEntryExtractor,
    LowRankEntryExtractor,
    SumEntryExtractor,
)
from .operators import (
    DenseOperator,
    H2Operator,
    KernelMatVecOperator,
    LowRankOperator,
    SketchingOperator,
    SumOperator,
)

__all__ = [
    "SketchingOperator",
    "DenseOperator",
    "KernelMatVecOperator",
    "H2Operator",
    "LowRankOperator",
    "SumOperator",
    "EntryExtractor",
    "DenseEntryExtractor",
    "KernelEntryExtractor",
    "H2EntryExtractor",
    "LowRankEntryExtractor",
    "SumEntryExtractor",
]

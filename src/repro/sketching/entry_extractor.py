"""Entry-evaluation functions (the ``batchedGen`` input of Algorithm 1).

The construction evaluates two kinds of sub-blocks directly: the dense
inadmissible leaf blocks ``D_{tau,b} = K(I_tau, I_b)`` and the coupling blocks
``B_{s,t} = K(I~_s, I~_t)`` at the skeleton indices.  On the GPU all blocks of
a level are generated with a single batched kernel launch;
:meth:`EntryExtractor.extract_blocks` plays that role.  Extractors that can
evaluate a *stack* of equally-shaped blocks in one vectorised pass
(``supports_stacked``) run one launch per shape group — a dense-matrix
extractor gathers all blocks with a single fancy index, a radial-kernel
extractor evaluates one batched distance computation followed by a single
``profile_with_diagonal`` call over the whole ``(g, p, q)`` stack.
:meth:`EntryExtractor.extract_blocks_padded` additionally zero-pads every
block to one uniform shape, producing the stacked operand layout the compiled
construction engine (:mod:`repro.batched.construction_plan`) feeds straight
into ``batched_gemm_scatter``.

All index arrays refer to the cluster-tree permuted ordering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..batched.counters import KernelLaunchCounter
from ..kernels.base import KernelFunction, PairwiseKernel, pairwise_distances_stacked
from ..linalg.low_rank import LowRankMatrix


class EntryExtractor(ABC):
    """Evaluates arbitrary sub-blocks of the matrix being compressed."""

    #: Whether :meth:`_extract_stacked` evaluates a whole shape group in one
    #: vectorised pass (otherwise batched requests fall back to a block loop).
    supports_stacked: bool = False

    def __init__(self) -> None:
        #: Total number of matrix entries evaluated (paper: O(r N) overall).
        self.entries_evaluated: int = 0

    @property
    @abstractmethod
    def n(self) -> int:
        """Matrix dimension."""

    @abstractmethod
    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Evaluate the sub-block ``K[rows, cols]``."""

    def _extract_stacked(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Evaluate a uniform stack of sub-blocks ``K[rows[i], cols[i]]``.

        ``rows``/``cols`` are ``(g, p)`` / ``(g, q)`` index arrays; the result
        is the ``(g, p, q)`` stack.  Only called when ``supports_stacked``.
        """
        raise NotImplementedError

    def extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        self.entries_evaluated += int(rows.shape[0] * cols.shape[0])
        if rows.size == 0 or cols.size == 0:
            return np.zeros((rows.shape[0], cols.shape[0]), dtype=np.float64)
        return np.asarray(self._extract(rows, cols), dtype=np.float64)

    def _evaluate_shape_groups(
        self,
        requests: Sequence[Tuple[np.ndarray, np.ndarray]],
        counter: KernelLaunchCounter | None,
    ):
        """Group requests by exact block shape and evaluate group by group.

        The shared core of :meth:`extract_blocks` and
        :meth:`extract_blocks_padded`: records one ``batched_gen`` launch per
        shape group, evaluates each group in a single vectorised pass when
        ``supports_stacked`` (falling back to a per-block loop otherwise or
        for singleton groups) and yields ``((p, q), indices, stacked)`` with
        ``stacked`` of shape ``(len(indices), p, q)``.  Zero-size shapes yield
        ``stacked=None``.
        """
        reqs = [
            (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))
            for rows, cols in requests
        ]
        groups: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for i, (rows, cols) in enumerate(reqs):
            groups[(int(rows.shape[0]), int(cols.shape[0]))].append(i)
        if counter is not None:
            counter.record("batched_gen", len(groups))
        for (p, q), indices in groups.items():
            if p == 0 or q == 0:
                yield (p, q), indices, None
                continue
            if not self.supports_stacked or len(indices) == 1:
                stacked = np.stack([self.extract(*reqs[i]) for i in indices])
            else:
                rows_idx = np.stack([reqs[i][0] for i in indices])
                cols_idx = np.stack([reqs[i][1] for i in indices])
                stacked = np.asarray(
                    self._extract_stacked(rows_idx, cols_idx), dtype=np.float64
                )
                self.entries_evaluated += int(stacked.size)
            yield (p, q), indices, stacked

    def extract_blocks(
        self,
        requests: Sequence[Tuple[np.ndarray, np.ndarray]],
        counter: KernelLaunchCounter | None = None,
    ) -> List[np.ndarray]:
        """Evaluate a batch of sub-blocks (the batched entry generator).

        One call evaluates all dense or coupling blocks of a level.  Requests
        are grouped by block shape; every group is one vectorised evaluation
        (one "kernel launch", recorded in ``counter`` when given) for
        extractors with ``supports_stacked``, and one launch covering the
        per-block loop otherwise.  An empty request list records nothing.
        """
        if not requests:
            return []
        out: List[np.ndarray | None] = [None] * len(requests)
        for (p, q), indices, stacked in self._evaluate_shape_groups(requests, counter):
            for pos, i in enumerate(indices):
                out[i] = (
                    np.zeros((p, q)) if stacked is None else stacked[pos]
                )
        return out  # type: ignore[return-value]

    def extract_blocks_padded(
        self,
        requests: Sequence[Tuple[np.ndarray, np.ndarray]],
        pad_rows: int,
        pad_cols: int,
        counter: KernelLaunchCounter | None = None,
    ) -> np.ndarray:
        """Evaluate a batch of sub-blocks into one zero-padded ``(g, pr, pc)`` stack.

        Every request's block lands in ``out[i, :len(rows), :len(cols)]`` with
        exact zeros in the padding — the layout the compiled construction
        engine stacks into batched GEMM operands.  Requests are grouped by
        exact shape like :meth:`extract_blocks` (one launch per group for
        extractors with ``supports_stacked``); each group's stacked result is
        scattered into the zero-initialised output with one fancy write, so
        only real entries are ever evaluated or moved.
        """
        g = len(requests)
        out = np.zeros((g, int(pad_rows), int(pad_cols)), dtype=np.float64)
        if g == 0:
            return out
        for (p, q), indices, stacked in self._evaluate_shape_groups(requests, counter):
            if stacked is None:
                continue
            out[np.asarray(indices, dtype=np.int64), :p, :q] = stacked
        return out

    def __call__(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.extract(rows, cols)


class DenseEntryExtractor(EntryExtractor):
    """Entries of an explicit dense matrix (permuted ordering)."""

    supports_stacked = True

    def __init__(self, matrix: np.ndarray):
        super().__init__()
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("DenseEntryExtractor requires a square matrix")

    @property
    def n(self) -> int:
        return int(self.matrix.shape[0])

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.matrix[np.ix_(rows, cols)]

    def _extract_stacked(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.matrix[rows[:, :, None], cols[:, None, :]]


class KernelEntryExtractor(EntryExtractor):
    """Entries of a kernel matrix over a (permuted) point set.

    Radial (:class:`~repro.kernels.base.PairwiseKernel`) kernels evaluate
    stacked block batches with one batched distance computation followed by a
    single ``profile_with_diagonal`` pass over the whole stack.
    """

    def __init__(self, kernel: KernelFunction, points: np.ndarray):
        super().__init__()
        self.kernel = kernel
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2:
            raise ValueError("points must be a (n, dim) array")

    @property
    def supports_stacked(self) -> bool:  # type: ignore[override]
        return isinstance(self.kernel, PairwiseKernel)

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.kernel.evaluate(self.points[rows], self.points[cols])

    def _extract_stacked(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        r = pairwise_distances_stacked(self.points[rows], self.points[cols])
        return self.kernel.profile_with_diagonal(r)


class H2EntryExtractor(EntryExtractor):
    """Entries of an existing H2 matrix (used by the low-rank update application)."""

    def __init__(self, h2matrix) -> None:
        super().__init__()
        self.h2matrix = h2matrix

    @property
    def n(self) -> int:
        return int(self.h2matrix.num_rows)

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.h2matrix.get_block(rows, cols, permuted=True)


class LowRankEntryExtractor(EntryExtractor):
    """Entries of an explicit low-rank matrix ``U V^T``."""

    def __init__(self, low_rank: LowRankMatrix):
        super().__init__()
        self.low_rank = low_rank

    @property
    def n(self) -> int:
        return int(self.low_rank.shape[0])

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.low_rank.entries(rows, cols)


class SumEntryExtractor(EntryExtractor):
    """Entrywise sum of several extractors (H2 matrix + low-rank update)."""

    def __init__(self, extractors: Sequence[EntryExtractor]):
        super().__init__()
        if not extractors:
            raise ValueError("SumEntryExtractor requires at least one extractor")
        sizes = {e.n for e in extractors}
        if len(sizes) != 1:
            raise ValueError(f"extractors have inconsistent sizes: {sorted(sizes)}")
        self.extractors = list(extractors)

    @property
    def n(self) -> int:
        return int(self.extractors[0].n)

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        result = self.extractors[0]._extract(rows, cols)
        for extractor in self.extractors[1:]:
            result = result + extractor._extract(rows, cols)
        return result

"""Entry-evaluation functions (the ``batchedGen`` input of Algorithm 1).

The construction evaluates two kinds of sub-blocks directly: the dense
inadmissible leaf blocks ``D_{tau,b} = K(I_tau, I_b)`` and the coupling blocks
``B_{s,t} = K(I~_s, I~_t)`` at the skeleton indices.  On the GPU all blocks of
a level are generated with a single batched kernel launch; here
:meth:`EntryExtractor.extract_blocks` plays that role (and records one launch
in the optional counter).

All index arrays refer to the cluster-tree permuted ordering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np

from ..batched.counters import KernelLaunchCounter
from ..kernels.base import KernelFunction
from ..linalg.low_rank import LowRankMatrix


class EntryExtractor(ABC):
    """Evaluates arbitrary sub-blocks of the matrix being compressed."""

    def __init__(self) -> None:
        #: Total number of matrix entries evaluated (paper: O(r N) overall).
        self.entries_evaluated: int = 0

    @property
    @abstractmethod
    def n(self) -> int:
        """Matrix dimension."""

    @abstractmethod
    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Evaluate the sub-block ``K[rows, cols]``."""

    def extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        self.entries_evaluated += int(rows.shape[0] * cols.shape[0])
        if rows.size == 0 or cols.size == 0:
            return np.zeros((rows.shape[0], cols.shape[0]), dtype=np.float64)
        return np.asarray(self._extract(rows, cols), dtype=np.float64)

    def extract_blocks(
        self,
        requests: Sequence[Tuple[np.ndarray, np.ndarray]],
        counter: KernelLaunchCounter | None = None,
    ) -> List[np.ndarray]:
        """Evaluate a batch of sub-blocks (the batched entry generator).

        One call evaluates all dense or coupling blocks of a level; with a GPU
        this is a single kernel launch, recorded in ``counter`` when given.
        """
        if counter is not None:
            counter.record("batched_gen", 1)
        return [self.extract(rows, cols) for rows, cols in requests]

    def __call__(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.extract(rows, cols)


class DenseEntryExtractor(EntryExtractor):
    """Entries of an explicit dense matrix (permuted ordering)."""

    def __init__(self, matrix: np.ndarray):
        super().__init__()
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("DenseEntryExtractor requires a square matrix")

    @property
    def n(self) -> int:
        return int(self.matrix.shape[0])

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.matrix[np.ix_(rows, cols)]


class KernelEntryExtractor(EntryExtractor):
    """Entries of a kernel matrix over a (permuted) point set."""

    def __init__(self, kernel: KernelFunction, points: np.ndarray):
        super().__init__()
        self.kernel = kernel
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2:
            raise ValueError("points must be a (n, dim) array")

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.kernel.evaluate(self.points[rows], self.points[cols])


class H2EntryExtractor(EntryExtractor):
    """Entries of an existing H2 matrix (used by the low-rank update application)."""

    def __init__(self, h2matrix) -> None:
        super().__init__()
        self.h2matrix = h2matrix

    @property
    def n(self) -> int:
        return int(self.h2matrix.num_rows)

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.h2matrix.get_block(rows, cols, permuted=True)


class LowRankEntryExtractor(EntryExtractor):
    """Entries of an explicit low-rank matrix ``U V^T``."""

    def __init__(self, low_rank: LowRankMatrix):
        super().__init__()
        self.low_rank = low_rank

    @property
    def n(self) -> int:
        return int(self.low_rank.shape[0])

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.low_rank.entries(rows, cols)


class SumEntryExtractor(EntryExtractor):
    """Entrywise sum of several extractors (H2 matrix + low-rank update)."""

    def __init__(self, extractors: Sequence[EntryExtractor]):
        super().__init__()
        if not extractors:
            raise ValueError("SumEntryExtractor requires at least one extractor")
        sizes = {e.n for e in extractors}
        if len(sizes) != 1:
            raise ValueError(f"extractors have inconsistent sizes: {sorted(sizes)}")
        self.extractors = list(extractors)

    @property
    def n(self) -> int:
        return int(self.extractors[0].n)

    def _extract(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        result = self.extractors[0]._extract(rows, cols)
        for extractor in self.extractors[1:]:
            result = result + extractor._extract(rows, cols)
        return result

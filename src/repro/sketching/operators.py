"""Black-box sketching operators ``Y = Kblk(Omega)``.

All operators act in the *cluster-tree permuted* ordering, because that is the
ordering Algorithm 1 works in; adapters that permute on the way in/out are
trivial to add on top when needed.  Every operator also counts how many sample
vectors it has produced (``samples_taken``), which the benchmarks report as the
"total samples" annotation of Fig. 5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..kernels.base import KernelFunction
from ..linalg.low_rank import LowRankMatrix


class SketchingOperator(ABC):
    """Abstract black-box operator applying the matrix to a block of vectors."""

    def __init__(self) -> None:
        #: Total number of sample (column) vectors this operator has been applied to.
        self.samples_taken: int = 0
        #: Number of times the black-box was invoked.
        self.applications: int = 0

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of rows/columns of the (square) operator."""

    @abstractmethod
    def _multiply(self, omega: np.ndarray) -> np.ndarray:
        """Apply the operator to ``omega`` of shape ``(n, d)``."""

    def multiply(self, omega: np.ndarray) -> np.ndarray:
        """Apply the operator, recording sampling statistics."""
        omega = np.asarray(omega, dtype=np.float64)
        if omega.ndim == 1:
            omega = omega[:, None]
        if omega.shape[0] != self.n:
            raise ValueError(
                f"operator has dimension {self.n}, got block with {omega.shape[0]} rows"
            )
        self.samples_taken += omega.shape[1]
        self.applications += 1
        return self._multiply(omega)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Single (or blocked) matrix-vector product without altering statistics."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        y = self._multiply(x[:, None] if single else x)
        return y[:, 0] if single else y

    def reset_statistics(self) -> None:
        self.samples_taken = 0
        self.applications = 0


class DenseOperator(SketchingOperator):
    """Sketching operator backed by an explicit dense matrix (permuted ordering)."""

    def __init__(self, matrix: np.ndarray):
        super().__init__()
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("DenseOperator requires a square matrix")

    @property
    def n(self) -> int:
        return int(self.matrix.shape[0])

    def _multiply(self, omega: np.ndarray) -> np.ndarray:
        return self.matrix @ omega


class KernelMatVecOperator(SketchingOperator):
    """Exact kernel-matrix application evaluated in row blocks.

    Computes ``K(points, points) @ omega`` without ever materialising the full
    N x N matrix: rows are generated in blocks of ``row_block`` points and
    immediately multiplied.  This plays the role of the paper's fast black-box
    sampler for the covariance/IE experiments (there the sampler was an
    existing H2Opus matrix); the cost here is O(N^2 d / row_block) kernel
    evaluations, which is fine at reproduction scale and keeps the operator
    exact so accuracy checks are meaningful.
    """

    def __init__(self, kernel: KernelFunction, points: np.ndarray, row_block: int = 2048):
        super().__init__()
        self.kernel = kernel
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2:
            raise ValueError("points must be a (n, dim) array")
        self.row_block = max(1, int(row_block))

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    def _multiply(self, omega: np.ndarray) -> np.ndarray:
        out = np.empty((self.n, omega.shape[1]), dtype=np.float64)
        for start in range(0, self.n, self.row_block):
            stop = min(start + self.row_block, self.n)
            rows = self.kernel.evaluate(self.points[start:stop], self.points)
            out[start:stop] = rows @ omega
        return out


class H2Operator(SketchingOperator):
    """Sketching operator wrapping an existing H2 matrix (O(N d) application)."""

    def __init__(self, h2matrix) -> None:
        super().__init__()
        self.h2matrix = h2matrix

    @property
    def n(self) -> int:
        return int(self.h2matrix.num_rows)

    def _multiply(self, omega: np.ndarray) -> np.ndarray:
        return self.h2matrix.matvec(omega, permuted=True)


class LowRankOperator(SketchingOperator):
    """Sketching operator wrapping an explicit low-rank matrix ``U V^T``."""

    def __init__(self, low_rank: LowRankMatrix):
        super().__init__()
        self.low_rank = low_rank
        if low_rank.shape[0] != low_rank.shape[1]:
            raise ValueError("LowRankOperator requires a square low-rank matrix")

    @property
    def n(self) -> int:
        return int(self.low_rank.shape[0])

    def _multiply(self, omega: np.ndarray) -> np.ndarray:
        return self.low_rank.matvec(omega)


class SumOperator(SketchingOperator):
    """Sum of several sketching operators (e.g. H2 matrix + low-rank update)."""

    def __init__(self, operators: Sequence[SketchingOperator]):
        super().__init__()
        if not operators:
            raise ValueError("SumOperator requires at least one operator")
        sizes = {op.n for op in operators}
        if len(sizes) != 1:
            raise ValueError(f"operators have inconsistent sizes: {sorted(sizes)}")
        self.operators = list(operators)

    @property
    def n(self) -> int:
        return int(self.operators[0].n)

    def _multiply(self, omega: np.ndarray) -> np.ndarray:
        result = self.operators[0]._multiply(omega)
        for op in self.operators[1:]:
            result = result + op._multiply(omega)
        return result

"""Normalization of configuration choices and environment overrides.

Every place that accepts a *named choice* — backend names in the
:mod:`repro.backends` registry, the construction path of
:class:`~repro.api.policy.ExecutionPolicy`, the ``REPRO_*`` environment
variables — must agree on how values are normalized, or the same spelling is
accepted in one spot and rejected in another (``"Vectorized"`` resolved while
``" vectorized"`` raised; ``REPRO_CONSTRUCT_PATH="PACKED "`` raised while
``"packed"`` worked).  These helpers are that single agreement: strip
surrounding whitespace, then casefold.
"""

from __future__ import annotations

import os


def normalize_choice(value: str) -> str:
    """Canonical form of a configuration choice: stripped and casefolded.

    Applied to every user-supplied choice string (backend names,
    construction paths, format names) *and* to every ``REPRO_*`` environment
    value before comparison, so ``" Vectorized "`` and ``"vectorized"`` are
    the same choice everywhere.
    """
    return value.strip().casefold()


def env_choice(name: str, default: str) -> str:
    """A normalized choice read from environment variable ``name``.

    Unset, empty or whitespace-only values fall back to ``default`` (itself
    normalized), so ``REPRO_BACKEND=""`` behaves like an absent override.
    """
    raw = os.environ.get(name)
    if raw is None:
        return normalize_choice(default)
    value = normalize_choice(raw)
    return value if value else normalize_choice(default)


def env_path(name: str) -> str | None:
    """A filesystem path read from environment variable ``name``.

    Paths are stripped of surrounding whitespace but — unlike choices — never
    casefolded (paths are case-sensitive).  Unset or blank values return
    ``None``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    value = raw.strip()
    return value or None

"""Deprecation shims for legacy entry points superseded by :mod:`repro.api`.

The façade PR keeps every pre-existing entry point importable and functional;
the decorator below marks a callable as a thin shim over its replacement and
emits a :class:`DeprecationWarning` on *call* (imports stay silent, so merely
importing ``repro`` never warns).
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def deprecated_entry_point(replacement: str) -> Callable[[F], F]:
    """Mark ``func`` as a deprecated shim; calls warn and forward unchanged.

    Parameters
    ----------
    replacement:
        Human-readable spelling of the new entry point, e.g.
        ``"repro.compress(..., format='hss')"``.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def shim(*args, **kwargs):
            warnings.warn(
                f"{func.__name__} is deprecated; use {replacement} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return func(*args, **kwargs)

        shim.__deprecated__ = replacement  # type: ignore[attr-defined]
        return shim  # type: ignore[return-value]

    return decorate

"""Prefix-sum helpers used to lay out variable-size batches in a flat buffer.

The GPU implementation in the paper avoids many small device allocations by
computing, per level, the total workspace needed with a parallel prefix sum
over block dimensions and performing a single allocation per operation.  The
helpers in this module implement the same bookkeeping for the NumPy-backed
batched engine in :mod:`repro.batched`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def exclusive_prefix_sum(sizes: Sequence[int]) -> np.ndarray:
    """Return the exclusive prefix sum of ``sizes`` as an ``int64`` array.

    The result has the same length as ``sizes``; element ``i`` holds the sum of
    all elements strictly before ``i``.

    Examples
    --------
    >>> exclusive_prefix_sum([2, 3, 1]).tolist()
    [0, 2, 5]
    """
    arr = np.asarray(sizes, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("sizes must be one-dimensional")
    out = np.zeros(arr.shape[0], dtype=np.int64)
    if arr.shape[0] > 1:
        np.cumsum(arr[:-1], out=out[1:])
    return out


def offsets_from_sizes(sizes: Sequence[int]) -> Tuple[np.ndarray, int]:
    """Return ``(offsets, total)`` for laying out blocks of ``sizes`` contiguously.

    ``offsets[i]`` is the starting position of block ``i`` in a flat buffer of
    length ``total``.
    """
    offsets = exclusive_prefix_sum(sizes)
    arr = np.asarray(sizes, dtype=np.int64)
    total = int(offsets[-1] + arr[-1]) if arr.size else 0
    return offsets, total


def total_from_sizes(sizes: Sequence[int]) -> int:
    """Total number of elements required to store all blocks of ``sizes``."""
    arr = np.asarray(sizes, dtype=np.int64)
    return int(arr.sum()) if arr.size else 0



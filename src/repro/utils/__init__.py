"""Small shared utilities: prefix sums, timers, validation, RNG/env helpers."""

from .env import env_choice, env_path, normalize_choice
from .prefix_sum import exclusive_prefix_sum, offsets_from_sizes, total_from_sizes
from .timing import PhaseTimer, Timer
from .validation import check_positive, check_square, require
from .rng import as_generator, spawn_generator

__all__ = [
    "exclusive_prefix_sum",
    "offsets_from_sizes",
    "total_from_sizes",
    "PhaseTimer",
    "Timer",
    "check_positive",
    "check_square",
    "require",
    "as_generator",
    "spawn_generator",
    "env_choice",
    "env_path",
    "normalize_choice",
]

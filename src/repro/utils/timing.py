"""Lightweight timers used for the per-phase profiling of the constructor.

The paper's Fig. 7 breaks the construction runtime into phases (sampling,
entry generation, BSR multiplication, convergence test, ID, shrink/upsweep,
miscellaneous).  :class:`PhaseTimer` accumulates wall-clock time per named
phase so the benchmark harness can regenerate that breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """A simple accumulating wall-clock timer."""

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class PhaseTimer:
    """Accumulate wall-clock time per named phase.

    Used by :class:`repro.core.builder.H2Constructor` to produce the Fig. 7
    breakdown (``sampling``, ``entry_generation``, ``bsr_gemm``,
    ``convergence``, ``id``, ``shrink_upsweep``, ``misc``).

    When constructed with an enabled :class:`repro.observe.SpanTracer`, every
    ``phase(...)`` block additionally opens a ``construct.phase`` span and the
    accumulated seconds are the *span's own duration* — one measurement feeds
    both the timer dict and the trace, so the legacy ``phase_seconds`` numbers
    and :func:`repro.observe.phase_seconds` agree exactly.
    """

    phases: Dict[str, float] = field(default_factory=dict)
    tracer: object = None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        tracer = self.tracer
        if tracer is not None and getattr(tracer, "enabled", False):
            span = None
            try:
                with tracer.span(f"phase/{name}", category="construct.phase",
                                 phase=name) as span:
                    yield
            finally:
                if span is not None:
                    self.phases[name] = self.phases.get(name, 0.0) + span.duration
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def total(self) -> float:
        return float(sum(self.phases.values()))

    def percentages(self) -> Dict[str, float]:
        """Return the per-phase share of total time in percent."""
        total = self.total()
        if total <= 0.0:
            return {name: 0.0 for name in self.phases}
        return {name: 100.0 * value / total for name, value in self.phases.items()}

    def merge(self, other: "PhaseTimer") -> None:
        for name, value in other.phases.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.phases)

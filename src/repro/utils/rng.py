"""Random-number-generator helpers.

All stochastic components of the library (sketching operators, adaptive
sampling, synthetic workloads) accept either an integer seed, ``None`` or an
existing :class:`numpy.random.Generator`; :func:`as_generator` normalises the
three cases so results are reproducible when a seed is given.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged (so callers can thread
    one generator through a whole construction), an integer creates a fresh
    seeded generator and ``None`` creates an OS-seeded one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generator(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent generator for sub-stream ``stream`` of ``rng``.

    Used when the adaptive construction repeatedly draws fresh sketching
    matrices: each draw uses its own deterministic sub-stream so that adding
    samples never re-uses previously drawn random vectors.
    """
    seed_seq = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=(int(stream),)
    )
    return np.random.default_rng(seed_seq)

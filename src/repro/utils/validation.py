"""Argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Any

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float | int, name: str) -> None:
    """Ensure ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_square(matrix: np.ndarray, name: str = "matrix") -> None:
    """Ensure ``matrix`` is a two-dimensional square array."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")


def as_index_array(indices: Any) -> np.ndarray:
    """Convert ``indices`` to a 1-D ``int64`` array (without copying when possible)."""
    arr = np.asarray(indices, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"index array must be one-dimensional, got shape {arr.shape}")
    return arr

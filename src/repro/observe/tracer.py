"""Tracers: the span factory threaded through the execution layers.

Two implementations share one duck-typed protocol:

* :data:`NOOP_TRACER` — the process-wide no-op.  ``enabled`` is ``False``,
  ``span()`` returns one cached context manager whose enter/exit do nothing,
  and every other method is a ``pass``.  Hot paths keep a
  ``if tracer.enabled:`` guard around anything that would allocate, so a
  policy without tracing pays a single attribute load per call site.
* :class:`SpanTracer` — the real thing.  Opening a span snapshots the bound
  :class:`~repro.batched.counters.KernelLaunchCounter`; closing it stores the
  per-operation launch/call deltas on the span, making launch attribution a
  pure read of counters that the backends maintain anyway.

A tracer is carried by :class:`repro.api.ExecutionPolicy` exactly like the
shared launch counter: ``policy.resolve_backend()`` binds the tracer to the
backend's counter and stores the tracer on the backend instance, so every
layer downstream (apply plans, solvers, GP) finds it at
``backend.tracer`` without extra plumbing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..batched.counters import KernelLaunchCounter
from .metrics import MetricsRegistry, metrics as _global_metrics
from .span import Span, SpanEvent


def _delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    """Per-key difference ``after - before``, dropping zero entries."""
    out: Dict[str, int] = {}
    for key, value in after.items():
        diff = value - before.get(key, 0)
        if diff:
            out[key] = diff
    return out


class _NoopSpan:
    """Stand-in span handle: accepts the Span mutation API and discards it."""

    __slots__ = ()

    duration = 0.0
    flops = 0
    bytes = 0

    def set(self, **attributes: object) -> "_NoopSpan":
        return self

    def add_event(self, name: str, timestamp: float = 0.0, **attributes: object) -> None:
        return None

    def add_flops(self, count: int) -> None:
        return None

    def add_bytes(self, count: int) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _NoopSpanContext:
    """Reusable context manager returned by :meth:`NoopTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """Disabled tracer: every operation is a no-op and allocates nothing."""

    __slots__ = ()

    enabled = False
    counter: Optional[KernelLaunchCounter] = None
    metrics: Optional[MetricsRegistry] = None
    memory = None
    roots: List[Span] = []

    def span(self, name: str, category: str = "", **attributes: object) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def event(self, name: str, **attributes: object) -> None:
        return None

    def add_flops(self, count: int) -> None:
        return None

    def add_bytes(self, count: int) -> None:
        return None

    def bind_counter(self, counter: KernelLaunchCounter) -> None:
        return None

    def reset(self) -> None:
        return None

    @property
    def current(self) -> None:
        return None


NOOP_TRACER = NoopTracer()


class _SpanContext:
    """Context manager produced by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_attributes", "_span",
                 "_counts0", "_calls0", "_mem")

    def __init__(self, tracer: "SpanTracer", name: str, category: str,
                 attributes: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._counts0: Optional[Dict[str, int]] = None
        self._calls0: Optional[Dict[str, int]] = None
        self._mem: Optional[List[int]] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer.current
        span = Span(
            name=self._name,
            category=self._category,
            attributes=self._attributes,
            parent=parent,
        )
        counter = tracer.counter
        if counter is not None:
            self._counts0 = dict(counter.counts)
            self._calls0 = dict(counter.calls)
        if parent is not None:
            parent.children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        self._span = span
        sampler = tracer.memory
        if sampler is not None:
            self._mem = sampler.enter()
        span.start = tracer._clock()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = self._span
        span.end = tracer._clock()
        if self._mem is not None and tracer.memory is not None:
            span.attributes.update(tracer.memory.exit(self._mem))
        counter = tracer.counter
        if counter is not None and self._counts0 is not None:
            span.launches = _delta(counter.counts, self._counts0)
            span.calls = _delta(counter.calls, self._calls0)
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        stack = tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit (e.g. generator GC ordering); stay consistent
            try:
                stack.remove(span)
            except ValueError:
                pass
        registry = tracer.metrics
        if registry is not None:
            key = span.category or span.name
            registry.histogram(f"span.{key}.seconds").observe(span.duration)
            if span.launches:
                registry.counter("launches.attributed").inc(span.self_launches)
        return False


class SpanTracer:
    """Recording tracer: builds a forest of :class:`~repro.observe.span.Span`.

    Parameters
    ----------
    counter:
        The :class:`~repro.batched.counters.KernelLaunchCounter` spans read
        for launch attribution.  Usually left ``None`` and bound lazily — the
        first backend resolved under the owning policy calls
        :meth:`bind_counter` with its counter.
    metrics:
        A :class:`~repro.observe.metrics.MetricsRegistry` fed one duration
        histogram per span category.  Defaults to the process-wide registry;
        pass ``metrics=None`` explicitly via ``record_metrics=False``-style
        wrappers is not needed — use a private registry to isolate.
    memory:
        A :class:`~repro.observe.memory.MemorySampler` bracketing every span
        with tracemalloc/RSS readings, attaching ``mem_peak_bytes`` /
        ``mem_current_bytes`` / ``mem_rss_bytes`` span attributes.  ``None``
        (default) keeps spans allocation-free; usually enabled via
        ``ExecutionPolicy(memory_profile=True)``.
    """

    enabled = True

    def __init__(
        self,
        counter: Optional[KernelLaunchCounter] = None,
        metrics: Optional[MetricsRegistry] = None,
        memory: Optional[object] = None,
    ):
        self.counter = counter
        self.metrics = _global_metrics() if metrics is None else metrics
        self.memory = memory
        self.roots: List[Span] = []
        self.orphan_events: List[SpanEvent] = []
        self._stack: List[Span] = []
        self._clock = time.perf_counter

    # ---------------------------------------------------------------- spanning
    def span(self, name: str, category: str = "", **attributes: object) -> _SpanContext:
        """Context manager opening a nested span; yields the :class:`Span`."""
        return _SpanContext(self, name, category, attributes)

    def event(self, name: str, **attributes: object) -> None:
        """Record a point-in-time event on the currently open span."""
        event = SpanEvent(name=name, timestamp=self._clock(), attributes=attributes)
        current = self.current
        if current is not None:
            current.events.append(event)
        else:
            self.orphan_events.append(event)

    def add_flops(self, count: int) -> None:
        current = self.current
        if current is not None:
            current.add_flops(count)

    def add_bytes(self, count: int) -> None:
        current = self.current
        if current is not None:
            current.add_bytes(count)

    # ----------------------------------------------------------------- wiring
    def bind_counter(self, counter: KernelLaunchCounter) -> None:
        """Adopt ``counter`` for launch attribution (first bind wins)."""
        if self.counter is None:
            self.counter = counter

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop all recorded spans/events (the bound counter is untouched)."""
        self.roots.clear()
        self.orphan_events.clear()
        self._stack.clear()

"""Process-wide metrics: counters, gauges and percentile histograms.

The tracer records *structured* data (span trees); metrics are the flat,
always-on aggregates that survive across traces — how many solves ran this
process, the p95 construction time, the current cache occupancy.  The three
instrument types follow the usual conventions:

* :class:`Counter` — monotone accumulator (``inc``);
* :class:`Gauge` — last-write-wins value (``set``);
* :class:`Histogram` — streaming distribution with exact count/sum/min/max and
  approximate percentiles (p50/p95/p99) over a bounded reservoir of samples.

A :class:`MetricsRegistry` is a get-or-create namespace of instruments; the
module-level :func:`metrics` accessor returns the process-wide registry that
:class:`~repro.observe.tracer.SpanTracer` feeds by default.

Every instrument and the registry itself are **thread-safe**: the serving
layer (:mod:`repro.serve`) updates them from asyncio worker threads, so
mutation of the instrument maps, counter/gauge values and histogram
reservoirs is serialized by per-object :class:`threading.Lock`\\ s.  The
locks guard single dict/list/int operations, so the hot-path cost is one
uncontended acquire per observation.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing counter (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, temperature, ...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)


class Histogram:
    """Streaming distribution with bounded-memory percentile estimates.

    ``count``/``sum``/``min``/``max`` are exact.  Percentiles are computed
    over a reservoir of the most recent ``capacity`` observations (default
    4096) — exact until the reservoir fills, a sliding window afterwards.
    Observations and percentile reads are serialized by a per-histogram
    lock, so concurrent writers never corrupt the reservoir index and
    readers never see a half-updated sample list.
    """

    __slots__ = ("name", "capacity", "count", "sum", "min", "max",
                 "_samples", "_lock")

    def __init__(self, name: str, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                self._samples[self.count % self.capacity] = value
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) by linear interpolation.

        Well-defined on every reservoir state: an empty histogram returns
        ``nan`` (there is no value to report — distinguishable from a real
        observation of ``0.0``), a single sample is every percentile of
        itself, and out-of-range ``q`` values clamp to [0, 100] instead of
        raising so exporters can never crash a run.
        """
        q = min(100.0, max(0.0, float(q)))
        with self._lock:
            if not self._samples:
                return math.nan
            data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Get-or-create namespace of named instruments (thread-safe)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(
                        name, capacity=capacity
                    )
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_LOCK = threading.Lock()


def metrics() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _REGISTRY
    if _REGISTRY is None:
        with _REGISTRY_LOCK:
            if _REGISTRY is None:
                _REGISTRY = MetricsRegistry()
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry (test isolation; keeps the instance).

    Existing instrument *handles* become stale — callers should re-fetch via
    :func:`metrics` — but anything holding only the registry keeps working.
    A no-op before the registry's first use.
    """
    if _REGISTRY is not None:
        _REGISTRY.reset()

"""repro.observe — hierarchical tracing, metrics and trace exporters.

The observability spine of the library.  One :class:`SpanTracer`, carried by
an :class:`repro.api.ExecutionPolicy`, records a tree of :class:`Span` objects
as work flows through the constructor, the compiled apply plans, the Krylov
solvers, the HODLR factorization and the GP sweeps.  Each span carries
wall-clock time plus launch/FLOP/byte attribution read from the backend's
:class:`~repro.batched.counters.KernelLaunchCounter`, so the trace and the
paper's launch-count arguments come from the same source of truth.

Quick tour::

    from repro import ExecutionPolicy, Session
    from repro.observe import SpanTracer, console_tree, save_chrome_trace

    tracer = SpanTracer()
    policy = ExecutionPolicy(backend="vectorized", tracer=tracer)
    session = Session(points, kernel, policy=policy)
    with tracer.span("workload"):
        session.compress()
        session.factor()
        session.solve(b)
    print(console_tree(tracer))
    save_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev

With the default :data:`NOOP_TRACER` nothing is recorded and the hot paths
pay only an ``if tracer.enabled`` check.
"""

from .exporters import (
    console_tree,
    from_jsonl,
    save_chrome_trace,
    to_chrome_trace,
    to_jsonl,
)
from .health import (
    HealthEvent,
    HealthReport,
    HealthThresholds,
    StructuredLogAdapter,
    check_operator_health,
    compression_ratio,
    diagnose_convergence,
    estimate_compression_error,
    rank_level_summary,
    record_solver_health,
)
from .memory import (
    CATEGORIES,
    MemoryLedger,
    MemorySampler,
    categorize_operator_bytes,
    memory_ledger,
    reset_memory_ledger,
    rss_bytes,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)
from .openmetrics import (
    MetricsJSONLFlusher,
    render_openmetrics,
    sanitize_metric_name,
    save_openmetrics,
)
from .span import Span, SpanEvent
from .tracer import NOOP_TRACER, NoopTracer, SpanTracer
from .views import (
    find_spans,
    launches_by_operation,
    phase_peak_bytes,
    phase_seconds,
    span_durations,
    total_launches,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "HealthEvent",
    "HealthReport",
    "HealthThresholds",
    "Histogram",
    "MemoryLedger",
    "MemorySampler",
    "MetricsJSONLFlusher",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanEvent",
    "SpanTracer",
    "StructuredLogAdapter",
    "categorize_operator_bytes",
    "check_operator_health",
    "compression_ratio",
    "console_tree",
    "diagnose_convergence",
    "estimate_compression_error",
    "find_spans",
    "from_jsonl",
    "launches_by_operation",
    "memory_ledger",
    "metrics",
    "phase_peak_bytes",
    "phase_seconds",
    "rank_level_summary",
    "record_solver_health",
    "render_openmetrics",
    "reset_memory_ledger",
    "reset_metrics",
    "rss_bytes",
    "sanitize_metric_name",
    "save_chrome_trace",
    "save_openmetrics",
    "span_durations",
    "to_chrome_trace",
    "to_jsonl",
    "total_launches",
]

"""Aggregation helpers that turn span forests into flat report inputs.

The diagnostics layer (:mod:`repro.diagnostics`) builds its report objects
from these views, so a single traced run yields the Fig. 7 phase breakdown,
the apply/launch reports and the GP tables without any parallel bookkeeping.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from .exporters import TraceSource, _all_spans, _roots
from .span import Span


def find_spans(
    source: TraceSource,
    name: Optional[str] = None,
    category: Optional[str] = None,
) -> List[Span]:
    """All spans in the forest matching ``name`` and/or ``category``."""
    out = []
    for span in _all_spans(source):
        if name is not None and span.name != name:
            continue
        if category is not None and span.category != category:
            continue
        out.append(span)
    return out


def phase_seconds(source: TraceSource, category: str = "construct.phase") -> Dict[str, float]:
    """Accumulated seconds per construction phase, summed over phase spans.

    Phase spans carry a ``phase`` attribute (set by
    :class:`~repro.utils.timing.PhaseTimer` when it runs in traced mode);
    repeated spans of one phase accumulate, mirroring the legacy timer dict.
    """
    totals: Dict[str, float] = defaultdict(float)
    for span in find_spans(source, category=category):
        phase = span.attributes.get("phase", span.name)
        totals[str(phase)] += span.duration
    return dict(totals)


def phase_peak_bytes(
    source: TraceSource, category: str = "construct.phase"
) -> Dict[str, int]:
    """Peak allocated bytes per phase, from ``mem_peak_bytes`` attributes.

    Populated only when the run traced with a
    :class:`~repro.observe.memory.MemorySampler`
    (``ExecutionPolicy(memory_profile=True)``); phases without memory
    attribution are omitted.  Repeated spans of one phase keep the maximum —
    peaks do not add.
    """
    peaks: Dict[str, int] = {}
    for span in find_spans(source, category=category):
        peak = span.attributes.get("mem_peak_bytes")
        if peak is None:
            continue
        phase = str(span.attributes.get("phase", span.name))
        peaks[phase] = max(peaks.get(phase, 0), int(peak))
    return peaks


def launches_by_operation(source: TraceSource) -> Dict[str, int]:
    """Inclusive per-operation launch counts summed over the *root* spans.

    Only roots are summed (their deltas already include all descendants), so
    the result equals the backend counter's growth over the traced region.
    """
    totals: Dict[str, int] = defaultdict(int)
    for root in _roots(source):
        for op, n in root.launches.items():
            totals[op] += n
    return dict(totals)


def total_launches(source: TraceSource) -> int:
    return int(sum(launches_by_operation(source).values()))


def span_durations(source: TraceSource, category: str) -> List[float]:
    """Durations (seconds) of every span with the given category."""
    return [span.duration for span in find_spans(source, category=category)]

"""Numerical-health probes: is the compressed operator still *right*?

The tracer answers "where did the time go"; this module answers the question
that actually sinks deployments — whether the hierarchical approximation and
the solves on top of it are numerically healthy.  Three kinds of signals:

* :func:`estimate_compression_error` — a cheap stochastic relative-error
  estimate of a constructed/loaded/converted operator against the exact
  kernel: ``k`` Gaussian probe vectors are pushed through the operator and
  through exact kernel rows on a sampled row subset, and the Frobenius-norm
  mismatch is reported relative to the exact block.  Cost is
  ``O(rows * n * k)`` kernel entries plus ``k`` fast applies — independent of
  the compression tolerance and far below one construction.
* :func:`diagnose_convergence` — post-hoc classification of a Krylov residual
  history into stagnation / divergence / preconditioner-ineffectiveness
  events, recorded on :class:`~repro.solvers.krylov.KrylovResult` by the
  solver layer.
* :func:`check_operator_health` — the façade-level wrapper producing a
  :class:`HealthReport` (error estimate, per-level rank summaries,
  compression ratio) and feeding the process metrics registry.

Everything *warns, never raises*: threshold breaches go through
:class:`StructuredLogAdapter` (logger ``repro.observe.health``) carrying the
enclosing span's identity, and increment the ``health.warnings`` counter.
Thresholds live on :class:`HealthThresholds`, carried by
``ExecutionPolicy(health=...)``.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .metrics import MetricsRegistry, metrics as _global_metrics
from .tracer import NOOP_TRACER

_TINY = 1e-300


@dataclass(frozen=True)
class HealthThresholds:
    """Warning thresholds and probe knobs (carried by ``ExecutionPolicy``).

    Attributes
    ----------
    error_factor:
        The compression-error probe flags when the estimated relative error
        exceeds ``error_factor * tol``.  The sampled-row estimate of the
        *global* relative error is noisy and the construction tolerance is a
        truncation (not approximation) bound, so the default leaves a wide
        safety margin — a healthy construction lands orders of magnitude
        below it.
    probe_rows / probe_vectors / probe_seed:
        Size and seed of the stochastic probe.
    stagnation_window / stagnation_improvement:
        A non-converged solve whose relative residual improved by less than
        ``stagnation_improvement`` (fractionally) over the last
        ``stagnation_window`` iterations is flagged as stagnating.
    divergence_factor:
        Flag when the final residual exceeds ``divergence_factor`` times the
        best residual seen.
    precond_fraction:
        A preconditioned solve that fails to converge within
        ``precond_fraction * n`` iterations flags the preconditioner as
        ineffective (an unpreconditioned Krylov method would need O(n)).
    """

    error_factor: float = 50.0
    probe_rows: int = 64
    probe_vectors: int = 8
    probe_seed: int = 0
    stagnation_window: int = 10
    stagnation_improvement: float = 0.01
    divergence_factor: float = 10.0
    precond_fraction: float = 0.5


@dataclass
class HealthEvent:
    """One detected health condition (warning-grade, never fatal)."""

    kind: str
    message: str
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "message": self.message, **self.attributes}


class StructuredLogAdapter:
    """``key=value`` warnings through :mod:`logging`, carrying span identity.

    All health signals report through one adapter so a deployment can route
    them (or silence them) with a single logger name.  Each warning also
    increments a counter in the metrics registry — ``health.warnings`` by
    default; subsystems with their own warning budget (e.g.
    :mod:`repro.resilience`, counting ``resilience.warnings``) pass their
    counter name so dashboards can tell the streams apart.
    """

    def __init__(
        self,
        logger_name: str = "repro.observe.health",
        metrics: Optional[MetricsRegistry] = None,
        counter: str = "health.warnings",
    ):
        self._logger = logging.getLogger(logger_name)
        self._metrics = metrics
        self._counter_name = str(counter)

    def warn(self, event: str, span: object = None, **fields: object) -> None:
        registry = self._metrics if self._metrics is not None else _global_metrics()
        registry.counter(self._counter_name).inc()
        parts = [f"event={event}"]
        if span is not None:
            parts.append(f"span={getattr(span, 'name', '?')}")
            parts.append(f"span_id={id(span):#x}")
        for key, value in fields.items():
            if isinstance(value, float):
                value = f"{value:.6g}"
            parts.append(f"{key}={value}")
        self._logger.warning(" ".join(parts))


_DEFAULT_ADAPTER: Optional[StructuredLogAdapter] = None


def _adapter() -> StructuredLogAdapter:
    global _DEFAULT_ADAPTER
    if _DEFAULT_ADAPTER is None:
        _DEFAULT_ADAPTER = StructuredLogAdapter()
    return _DEFAULT_ADAPTER


# --------------------------------------------------------- compression probe
def estimate_compression_error(
    operator: object,
    kernel: object,
    rows: int = 64,
    vectors: int = 8,
    seed: int = 0,
) -> float:
    """Stochastic relative-error estimate of ``operator`` vs. ``kernel``.

    Draws ``vectors`` Gaussian probes ``omega``, compares
    ``(A omega)[I]`` against the exact ``K[I, :] omega`` on a random sorted
    row subset ``I`` of size ``rows`` (in the operator's permuted ordering),
    and returns ``||approx - exact||_F / ||exact||_F``.  This estimates the
    row-sampled relative spectral/Frobenius error of the approximation; for a
    healthy construction it sits at or below the truncation tolerance.
    """
    tree = getattr(operator, "tree", None)
    if tree is None:
        raise TypeError(
            f"{type(operator).__name__} carries no cluster tree; the "
            "compression-error probe needs tree.points to evaluate exact "
            "kernel entries"
        )
    points = tree.points  # permuted coordinates
    n = int(operator.shape[0])
    rng = np.random.default_rng(seed)
    m = min(int(rows), n)
    idx = np.sort(rng.choice(n, size=m, replace=False))
    omega = rng.standard_normal((n, max(1, int(vectors))))
    exact = kernel.evaluate(points[idx], points) @ omega
    approx = operator.matmat(omega, permuted=True)[idx]
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(approx - exact)) / denom


def compression_ratio(operator: object) -> float:
    """Dense-equivalent bytes over actual bytes (higher is better)."""
    n = int(operator.shape[0])
    total = int(operator.memory_bytes().get("total", 0))
    if total <= 0:
        return math.inf
    return (n * n * 8.0) / total


def rank_level_summary(operator: object) -> Dict[int, Dict[str, float]]:
    """Per-level rank statistics of a nested-basis operator (``{}`` if n/a)."""
    level_ranks = getattr(operator, "level_ranks", None)
    if level_ranks is None:
        return {}
    out: Dict[int, Dict[str, float]] = {}
    for level, ranks in sorted(level_ranks().items()):
        if not ranks:
            continue
        out[int(level)] = {
            "count": float(len(ranks)),
            "min": float(min(ranks)),
            "mean": float(sum(ranks)) / len(ranks),
            "max": float(max(ranks)),
        }
    return out


@dataclass
class HealthReport:
    """Outcome of :func:`check_operator_health` (stored on results)."""

    source: str  #: ``constructed`` / ``loaded`` / ``converted``
    est_relative_error: float
    tol: float
    error_factor: float
    flagged: bool
    compression_ratio: float
    rank_levels: Dict[int, Dict[str, float]] = field(default_factory=dict)
    probe_rows: int = 0
    probe_vectors: int = 0
    probe_seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "est_relative_error": self.est_relative_error,
            "tol": self.tol,
            "error_factor": self.error_factor,
            "flagged": self.flagged,
            "compression_ratio": self.compression_ratio,
            "rank_levels": {str(k): dict(v) for k, v in self.rank_levels.items()},
            "probe": {
                "rows": self.probe_rows,
                "vectors": self.probe_vectors,
                "seed": self.probe_seed,
            },
        }


def check_operator_health(
    operator: object,
    kernel: object,
    tol: float,
    thresholds: Optional[HealthThresholds] = None,
    tracer: object = NOOP_TRACER,
    source: str = "constructed",
    adapter: Optional[StructuredLogAdapter] = None,
) -> HealthReport:
    """Probe one operator and report; warns (never raises) on a breach.

    Feeds the metrics registry (the tracer's when enabled, the process-wide
    one otherwise): ``health.compression_error`` and per-level
    ``ranks.level<L>`` histograms, the ``health.compression_ratio`` gauge,
    and — via the adapter — the ``health.warnings`` counter on a flag.
    """
    thresholds = thresholds if thresholds is not None else HealthThresholds()
    est = estimate_compression_error(
        operator,
        kernel,
        rows=thresholds.probe_rows,
        vectors=thresholds.probe_vectors,
        seed=thresholds.probe_seed,
    )
    bound = thresholds.error_factor * float(tol)
    flagged = est > bound
    ratio = compression_ratio(operator)
    levels = rank_level_summary(operator)

    registry = tracer.metrics if getattr(tracer, "enabled", False) else None
    if registry is None:
        registry = _global_metrics()
    registry.histogram("health.compression_error").observe(est)
    registry.gauge("health.compression_ratio").set(ratio)
    for level, stats in levels.items():
        hist = registry.histogram(f"ranks.level{level}")
        hist.observe(stats["mean"])

    report = HealthReport(
        source=source,
        est_relative_error=est,
        tol=float(tol),
        error_factor=thresholds.error_factor,
        flagged=flagged,
        compression_ratio=ratio,
        rank_levels=levels,
        probe_rows=thresholds.probe_rows,
        probe_vectors=thresholds.probe_vectors,
        probe_seed=thresholds.probe_seed,
    )
    if getattr(tracer, "enabled", False):
        tracer.event(
            "health.operator_probe",
            source=source,
            est_relative_error=est,
            flagged=flagged,
        )
    if flagged:
        active = adapter if adapter is not None else _adapter()
        active.warn(
            "compression_error",
            span=getattr(tracer, "current", None),
            source=source,
            est_relative_error=est,
            bound=bound,
            tol=float(tol),
        )
    return report


# ------------------------------------------------------- convergence triage
def diagnose_convergence(
    history: np.ndarray,
    converged: bool,
    thresholds: Optional[HealthThresholds] = None,
    method: str = "",
    n: Optional[int] = None,
    precond_applications: int = 0,
) -> List[HealthEvent]:
    """Classify a relative-residual history into health events.

    At most one event per kind:

    * ``divergence`` — the final residual sits ``divergence_factor`` above
      the best residual reached (the iteration lost ground);
    * ``stagnation`` — not converged and the last ``stagnation_window``
      iterations improved the residual by less than
      ``stagnation_improvement`` (fractionally);
    * ``preconditioner_ineffective`` — a preconditioned solve burned more
      than ``precond_fraction * n`` iterations without converging.
    """
    thresholds = thresholds if thresholds is not None else HealthThresholds()
    h = np.asarray(history, dtype=np.float64)
    events: List[HealthEvent] = []
    if h.size < 2:
        return events
    final = float(h[-1])
    best = float(h.min())
    iterations = int(h.size - 1)

    if final > thresholds.divergence_factor * max(best, _TINY):
        events.append(HealthEvent(
            kind="divergence",
            message=(
                f"{method or 'solve'}: residual ended {final / max(best, _TINY):.3g}x "
                "above its best"
            ),
            attributes={"method": method, "final_residual": final,
                        "best_residual": best, "iterations": iterations},
        ))
    if not converged:
        window = int(thresholds.stagnation_window)
        if iterations >= window and not events:
            reference = float(h[-1 - window])
            improvement = 1.0 - final / max(reference, _TINY)
            if improvement < thresholds.stagnation_improvement:
                events.append(HealthEvent(
                    kind="stagnation",
                    message=(
                        f"{method or 'solve'}: residual improved "
                        f"{improvement:.3g} over the last {window} iterations"
                    ),
                    attributes={"method": method, "window": window,
                                "improvement": improvement,
                                "final_residual": final,
                                "iterations": iterations},
                ))
        if (
            precond_applications > 0
            and n
            and iterations >= thresholds.precond_fraction * n
        ):
            events.append(HealthEvent(
                kind="preconditioner_ineffective",
                message=(
                    f"{method or 'solve'}: preconditioned but unconverged "
                    f"after {iterations} iterations (n={n})"
                ),
                attributes={"method": method, "iterations": iterations,
                            "n": int(n),
                            "precond_applications": int(precond_applications)},
            ))
    return events


def record_solver_health(
    result: object,
    thresholds: Optional[HealthThresholds],
    tracer: object = NOOP_TRACER,
    adapter: Optional[StructuredLogAdapter] = None,
) -> List[HealthEvent]:
    """Diagnose a :class:`~repro.solvers.krylov.KrylovResult` in place.

    Runs :func:`diagnose_convergence` on the residual history, stores the
    events under ``result.extra["health_events"]`` (as plain dicts), mirrors
    them as tracer events and structured-log warnings, and returns them.
    A ``thresholds`` of ``None`` disables the diagnosis entirely.
    """
    if thresholds is None:
        return []
    events = diagnose_convergence(
        result.residual_norms,
        converged=result.converged,
        thresholds=thresholds,
        method=result.method,
        n=int(result.x.shape[0]),
        precond_applications=result.preconditioner_applications,
    )
    if not events:
        return events
    result.extra["health_events"] = [event.to_dict() for event in events]
    active = adapter if adapter is not None else _adapter()
    enabled = getattr(tracer, "enabled", False)
    for event in events:
        if enabled:
            tracer.event(f"health.{event.kind}", **event.attributes)
        active.warn(event.kind,
                    span=getattr(tracer, "current", None),
                    **event.attributes)
    return events

"""Hierarchical spans: the unit of trace data.

A :class:`Span` is one timed region of work (``construct``, ``phase/id``,
``solve/cg`` ...).  Spans nest — the tracer maintains a stack, so a span opened
while another is active becomes its child — and each span carries, besides
wall-clock time, the *launch attribution* pulled from the backend's
:class:`~repro.batched.counters.KernelLaunchCounter`: the per-operation launch
and call deltas observed while the span was open.  Because the deltas are
inclusive (they cover the children too), ``self_launches`` recovers the
launches issued by the span's own code.

Spans are plain data.  Exporters (:mod:`repro.observe.exporters`) turn them
into JSON-lines, Chrome ``trace_event`` JSON or a console tree; diagnostics
(:mod:`repro.diagnostics`) rebuild their reports as views over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class SpanEvent:
    """A point-in-time marker attached to a span (e.g. one Krylov iteration)."""

    name: str
    timestamp: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "attributes": dict(self.attributes),
        }


@dataclass
class Span:
    """One timed, attributed region of work in a trace tree.

    ``start``/``end`` are :func:`time.perf_counter` readings; ``launches`` and
    ``calls`` are the *inclusive* per-operation counter deltas observed between
    them (children included).  ``flops`` and ``bytes`` are explicit
    attributions added by instrumented code (e.g. the compiled apply plan).
    """

    name: str
    category: str = ""
    start: float = 0.0
    end: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    events: List[SpanEvent] = field(default_factory=list)
    launches: Dict[str, int] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)
    flops: int = 0
    bytes: int = 0
    parent: Optional["Span"] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ timing
    @property
    def duration(self) -> float:
        """Wall-clock seconds spent in the span (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    # ------------------------------------------------------------- attribution
    @property
    def total_launches(self) -> int:
        """Inclusive launch count (this span plus all descendants)."""
        return int(sum(self.launches.values()))

    @property
    def total_calls(self) -> int:
        """Inclusive batched-primitive call count."""
        return int(sum(self.calls.values()))

    @property
    def self_launches(self) -> int:
        """Launches issued by this span's own code (inclusive minus children)."""
        return self.total_launches - sum(c.total_launches for c in self.children)

    @property
    def self_duration(self) -> float:
        """Seconds not covered by any child span."""
        return self.duration - sum(c.duration for c in self.children)

    # ----------------------------------------------------------------- editing
    def set(self, **attributes: object) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def add_event(self, name: str, timestamp: float, **attributes: object) -> SpanEvent:
        event = SpanEvent(name=name, timestamp=timestamp, attributes=attributes)
        self.events.append(event)
        return event

    def add_flops(self, count: int) -> None:
        self.flops += int(count)

    def add_bytes(self, count: int) -> None:
        self.bytes += int(count)

    # --------------------------------------------------------------- traversal
    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(
        self, name: Optional[str] = None, category: Optional[str] = None
    ) -> List["Span"]:
        """All descendant spans (self included) matching name and/or category."""
        out = []
        for span in self.walk():
            if name is not None and span.name != name:
                continue
            if category is not None and span.category != category:
                continue
            out.append(span)
        return out

    # ------------------------------------------------------------------ export
    def to_dict(self) -> Dict[str, object]:
        """Flat (child-free) dict form; exporters add ids to encode the tree."""
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "launches": dict(self.launches),
            "calls": dict(self.calls),
            "flops": self.flops,
            "bytes": self.bytes,
            "events": [event.to_dict() for event in self.events],
        }

"""OpenMetrics / Prometheus text exposition of the metrics registry.

Renders a :class:`~repro.observe.metrics.MetricsRegistry` to the OpenMetrics
text format (the strict superset of the Prometheus exposition format), so a
scraper — or the future ``repro.serve`` endpoint — can consume the process
telemetry without any new dependency:

* :class:`~repro.observe.metrics.Counter` → ``counter`` family, sample name
  suffixed ``_total``;
* :class:`~repro.observe.metrics.Gauge` → ``gauge`` family;
* :class:`~repro.observe.metrics.Histogram` → ``summary`` family with
  ``quantile`` labels (p50/p95/p99) plus ``_count`` / ``_sum`` samples.

Dotted repro metric names (``persist.cache.hits``) are sanitized to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric-name alphabet and prefixed ``repro_``.
The exposition ends with the mandatory ``# EOF`` terminator.

For file-based collection, :class:`MetricsJSONLFlusher` appends periodic
JSON-line snapshots of the same registry — one line per flush, suitable for
tailing or post-hoc loading.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Optional

from .metrics import MetricsRegistry, metrics as _global_metrics

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles exposed per histogram (matching the p50/p95/p99 summaries).
QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted repro metric name onto the OpenMetrics name alphabet."""
    candidate = prefix + _NAME_BAD.sub("_", name)
    if not _NAME_OK.match(candidate):  # e.g. empty name after the prefix
        candidate = prefix + "metric"
    return candidate


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry as OpenMetrics text (ending in ``# EOF``)."""
    registry = registry if registry is not None else _global_metrics()
    snapshot = registry.snapshot()
    lines = []

    for name, value in snapshot["counters"].items():
        metric = sanitize_metric_name(name)
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")

    for name, value in snapshot["gauges"].items():
        metric = sanitize_metric_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, summary in snapshot["histograms"].items():
        metric = sanitize_metric_name(name)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        # Quantiles come from the live histogram, not the snapshot: the
        # snapshot zero-fills empty reservoirs, while the exposition renders
        # the honest ``NaN`` the percentile contract defines.
        hist = registry.histogram(name)
        for quantile, percentile in QUANTILES:
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_value(hist.percentile(percentile))}"
            )
        lines.append(f"{metric}_count {_format_value(summary['count'])}")
        lines.append(f"{metric}_sum {_format_value(summary['sum'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def save_openmetrics(path: str, registry: Optional[MetricsRegistry] = None) -> str:
    """Write the exposition to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_openmetrics(registry))
    return path


class MetricsJSONLFlusher:
    """Periodic JSON-lines dumps of a metrics registry.

    Call :meth:`maybe_flush` from any convenient point in the workload loop —
    it appends one snapshot line at most every ``interval_seconds`` and is a
    cheap clock read otherwise.  :meth:`flush` writes unconditionally.

    Each line is ``{"elapsed_seconds": ..., "metrics": {counters, gauges,
    histograms}}``, so ``[json.loads(l) for l in open(path)]`` recovers the
    full series.
    """

    def __init__(
        self,
        path: str,
        interval_seconds: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
    ):
        if interval_seconds <= 0:
            raise ValueError("flush interval must be positive")
        self.path = path
        self.interval_seconds = float(interval_seconds)
        self._registry = registry
        self._start = time.monotonic()
        self._last_flush: Optional[float] = None
        self.flush_count = 0

    def maybe_flush(self) -> bool:
        """Flush if the interval elapsed since the last flush; did we?"""
        now = time.monotonic()
        if (
            self._last_flush is not None
            and now - self._last_flush < self.interval_seconds
        ):
            return False
        self.flush()
        return True

    def flush(self) -> None:
        registry = self._registry if self._registry is not None else _global_metrics()
        now = time.monotonic()
        line = {
            "elapsed_seconds": now - self._start,
            "metrics": registry.snapshot(),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            json.dump(line, handle, sort_keys=True)
            handle.write("\n")
        self._last_flush = now
        self.flush_count += 1
